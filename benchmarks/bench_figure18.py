"""Figure 18: BFT (HotStuff) vs Kafka on YCSB."""

from repro.bench.experiments import figure18

from conftest import run_once


def test_figure18(benchmark):
    result = run_once(benchmark, figure18)

    def curve(consensus, column):
        return result.series("consensus", consensus, column)

    bft_tput = curve("hotstuff", "throughput_tps")
    kafka_tput = curve("kafka", "throughput_tps")
    assert min(bft_tput) > 0.75 * max(kafka_tput)
    bft_latency = curve("hotstuff", "latency_ms")
    assert bft_latency[-1] > bft_latency[0]
    # within one region (<=20 nodes) the BFT latency penalty is modest
    assert bft_latency[0] < 0.2 * bft_latency[-1]
