"""Figure 8: overall performance on YCSB."""

from repro.bench.experiments import figure8

from conftest import run_once


def test_figure8(benchmark):
    result = run_once(benchmark, figure8)
    tput = dict(zip(result.column("system"), result.column("throughput_tps")))
    latency = dict(zip(result.column("system"), result.column("latency_ms")))
    best_existing = max(tput["fabric"], tput["fastfabric"], tput["rbc"])
    # HarmonyBC ~2x over the best existing blockchain (paper: 2.0x)
    assert tput["harmony"] > 1.5 * best_existing
    assert tput["harmony"] > tput["aria"]
    # the YCSB inversion: Fabric v2.x beats FastFabric#, whose runtime is
    # dominated by dependency-graph traversal on 10-record transactions
    assert tput["fabric"] > tput["fastfabric"]
    assert latency["fastfabric"] > latency["fabric"]
    # ~70% lower latency than the SOV blockchains
    assert latency["harmony"] < 0.5 * latency["fabric"]
