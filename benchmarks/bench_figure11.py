"""Figure 11: impact of contention on Smallbank."""

from repro.bench.experiments import figure11

from conftest import run_once


def test_figure11(benchmark):
    result = run_once(benchmark, figure11)

    def curve(system, column):
        return result.series("system", system, column)

    # abort rates grow with skew; Harmony stays lowest among OE systems
    for system in ("harmony", "aria", "rbc"):
        aborts = curve(system, "abort_rate")
        assert aborts[-1] >= aborts[0]
    h_abort = curve("harmony", "abort_rate")
    a_abort = curve("aria", "abort_rate")
    assert sum(h_abort) <= sum(a_abort) + 0.05
    # Smallbank is mild: Harmony's throughput degrades gracefully
    h_tput = curve("harmony", "throughput_tps")
    assert h_tput[-1] > 0.4 * h_tput[0]
    # Harmony on top at medium contention (skew 0.6)
    at_06 = {
        s: result.series("system", s, "throughput_tps")[3]
        for s in ("harmony", "aria", "rbc", "fabric", "fastfabric")
    }
    assert at_06["harmony"] == max(at_06.values())
