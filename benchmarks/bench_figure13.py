"""Figure 13: false abort rates (Harmony lowest in all cases)."""

from repro.bench.experiments import figure13

from conftest import run_once


def test_figure13(benchmark):
    result = run_once(benchmark, figure13)

    def total(workload, system):
        return sum(
            row[3]
            for row in result.rows
            if row[0] == workload and row[1] == system
        )

    for workload in ("ycsb", "smallbank"):
        harmony = total(workload, "harmony")
        for other in ("fabric", "rbc", "aria"):
            assert harmony <= total(workload, other) + 1e-9, (
                f"harmony should have the lowest false aborts on {workload}"
            )
    # false aborts generally grow with contention for the value-based rules
    ycsb_aria = [
        row[3] for row in result.rows if row[0] == "ycsb" and row[1] == "aria"
    ]
    assert max(ycsb_aria) > ycsb_aria[0]
