"""Figure 19: TPC-C across warehouse counts."""

from repro.bench.experiments import figure19

from conftest import run_once


def test_figure19(benchmark):
    result = run_once(benchmark, figure19)

    def curve(system, column):
        return result.series("system", system, column)

    harmony = curve("harmony", "throughput_tps")
    aria = curve("aria", "throughput_tps")
    rbc = curve("rbc", "throughput_tps")
    # HarmonyBC wins at every warehouse count
    assert all(h >= a for h, a in zip(harmony, aria))
    assert all(h > r for h, r in zip(harmony, rbc))
    # the margin is largest at 1 warehouse (highest contention; paper: 3.3x)
    margin_1wh = harmony[0] / max(aria[0], rbc[0])
    assert margin_1wh > 1.5
    # beyond ~20 warehouses, the growing database starts hurting everyone
    assert harmony[-1] < max(harmony)
