"""Figure 16: replica scaling on YCSB."""

from repro.bench.experiments import figure16

from conftest import run_once


def test_figure16(benchmark):
    result = run_once(benchmark, figure16)

    def curve(system, column):
        return result.series("system", system, column)

    for system in ("harmony", "aria", "rbc"):
        tput = curve(system, "throughput_tps")
        assert tput[-1] > 0.8 * tput[0]
    fabric_tput = curve("fabric", "throughput_tps")
    assert fabric_tput[-1] < 0.95 * fabric_tput[0]
    for system in ("fabric", "fastfabric"):
        tput = curve(system, "throughput_tps")
        assert tput[-1] <= tput[0]
        assert curve(system, "latency_ms")[-1] > 1.2 * curve(system, "latency_ms")[0]
    # HarmonyBC stays on top at every replica count
    h = curve("harmony", "throughput_tps")
    for other in ("aria", "rbc", "fabric", "fastfabric"):
        o = curve(other, "throughput_tps")
        assert all(hv >= ov for hv, ov in zip(h, o))
