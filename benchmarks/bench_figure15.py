"""Figure 15: replica scaling on Smallbank (OE flat, SOV degrades)."""

from repro.bench.experiments import figure15

from conftest import run_once


def test_figure15(benchmark):
    result = run_once(benchmark, figure15)

    def curve(system, column):
        return result.series("system", system, column)

    # OE systems: throughput essentially flat from 4 to 80 replicas
    for system in ("harmony", "aria", "rbc"):
        tput = curve(system, "throughput_tps")
        assert tput[-1] > 0.8 * tput[0], f"{system} should be ~flat in replicas"
    # SOV: broadcast of rw-sets saturates the orderer uplink. Fabric's
    # throughput drops once the broadcast outpaces validation; FastFabric#
    # stays bottlenecked on its own graph traversal but pays the same
    # growing delivery latency.
    fabric_tput = curve("fabric", "throughput_tps")
    assert fabric_tput[-1] < 0.95 * fabric_tput[0]
    for system in ("fabric", "fastfabric"):
        tput = curve(system, "throughput_tps")
        assert tput[-1] <= tput[0]
        latency = curve(system, "latency_ms")
        assert latency[-1] > 1.5 * latency[0]
