"""Figure 10: impact of block size on YCSB."""

from repro.bench.experiments import figure10

from conftest import run_once


def test_figure10(benchmark):
    result = run_once(benchmark, figure10)

    def curve(system, column):
        return result.series("system", system, column)

    # FastFabric#'s latency blows up with block size (bigger graphs)
    ff_latency = curve("fastfabric", "latency_ms")
    assert ff_latency[-1] > 3 * ff_latency[0]
    assert max(ff_latency) == max(
        max(curve(s, "latency_ms")) for s in ("harmony", "aria", "rbc", "fabric", "fastfabric")
    )
    # Harmony peaks at a moderate block size then flattens/drops
    harmony = curve("harmony", "throughput_tps")
    assert harmony[0] < max(harmony)
    # throughput drops at block=100 vs the optimum due to conflicts
    assert harmony[-1] <= max(harmony)
