"""Figure 21: Harmony's optimizations survive the removal of disk overheads."""

from repro.bench.experiments import figure21

from conftest import run_once


def test_figure21(benchmark):
    result = run_once(benchmark, figure21)

    def cell(workload, engine, system):
        for row in result.rows:
            if row[0] == workload and row[1] == engine and row[2] == system:
                return row[3]
        raise KeyError((workload, engine, system))

    for workload in ("ycsb", "smallbank", "tpcc"):
        # removing device latency helps; removing the buffer manager helps more
        for system in ("aria", "harmony"):
            ssd = cell(workload, "PGSQL (SSD)", system)
            ram = cell(workload, "PGSQL (RAMDisk)", system)
            mem = cell(workload, "memory engine", system)
            assert ssd < ram < mem
        # Harmony still beats Aria with every storage engine
        for engine in ("PGSQL (SSD)", "PGSQL (RAMDisk)", "memory engine"):
            assert cell(workload, engine, "harmony") >= cell(workload, engine, "aria")
        # even the memory engine stays below the consensus ceiling
        ceiling = cell(workload, "consensus ceiling", "hotstuff")
        assert cell(workload, "memory engine", "harmony") < ceiling
