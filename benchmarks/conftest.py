"""Shared helpers for the benchmark suite.

Each ``bench_*.py`` regenerates one table/figure: it runs the experiment
under ``pytest-benchmark`` (one round — these are end-to-end system runs,
not microbenchmarks), prints the paper-style table, writes it to
``benchmarks/results/``, and asserts the paper's qualitative shape.
"""

from __future__ import annotations

import pathlib

from repro.bench.report import ExperimentResult, render

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record(result: ExperimentResult) -> ExperimentResult:
    """Print and persist a regenerated table/figure."""
    text = render(result)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    filename = result.name.lower().replace(" ", "")
    (RESULTS_DIR / f"{filename}.txt").write_text(text + "\n")
    return result


def run_once(benchmark, fn) -> ExperimentResult:
    """Run an experiment exactly once under the benchmark fixture."""
    return record(benchmark.pedantic(fn, rounds=1, iterations=1))
