"""Figure 12: impact of contention on YCSB."""

from repro.bench.experiments import figure12

from conftest import run_once


def test_figure12(benchmark):
    result = run_once(benchmark, figure12)

    def curve(system, column):
        return result.series("system", system, column)

    # Fabric aborts even at skew 0 (non-deterministic endorsement rw-sets)
    assert curve("fabric", "abort_rate")[0] > 0.0
    # everyone collapses toward skew 1.0
    for system in ("harmony", "aria", "rbc"):
        tput = curve(system, "throughput_tps")
        assert tput[-1] < tput[0]
    # HarmonyBC outperforms AriaBC and RBC at every skew
    h = curve("harmony", "throughput_tps")
    a = curve("aria", "throughput_tps")
    r = curve("rbc", "throughput_tps")
    assert all(hv >= av for hv, av in zip(h, a))
    assert all(hv > rv for hv, rv in zip(h, r))
    # ... with consistently lower abort rates than Aria (ww aborts)
    assert sum(curve("harmony", "abort_rate")) < sum(curve("aria", "abort_rate")) + 0.05
