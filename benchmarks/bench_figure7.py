"""Figure 7: overall performance on Smallbank."""

from repro.bench.experiments import figure7

from conftest import run_once


def test_figure7(benchmark):
    result = run_once(benchmark, figure7)
    tput = dict(zip(result.column("system"), result.column("throughput_tps")))
    latency = dict(zip(result.column("system"), result.column("latency_ms")))
    best_existing = max(tput["fabric"], tput["fastfabric"], tput["rbc"])
    # HarmonyBC: 2x-4x over the best existing private blockchain (paper: 3.5x)
    assert tput["harmony"] > 2.0 * best_existing
    # ... and ahead of AriaBC
    assert tput["harmony"] > tput["aria"]
    # OE latency well below SOV latency (fewer round trips)
    assert latency["harmony"] < latency["fabric"]
    assert latency["harmony"] < latency["fastfabric"]
    # AriaBC's larger optimal block size costs it latency
    assert latency["aria"] > latency["harmony"]
