"""Figure 9: impact of block size on Smallbank."""

from repro.bench.experiments import figure9

from conftest import run_once


def test_figure9(benchmark):
    result = run_once(benchmark, figure9)

    def curve(system, column):
        return result.series("system", system, column)

    # tiny blocks (5) limit concurrency for every concurrent system
    for system in ("harmony", "aria", "rbc"):
        tput = curve(system, "throughput_tps")
        assert tput[0] < max(tput), f"{system} should improve past block=5"
    # RBC's serial commit means large blocks buy little: its optimum is
    # at a smaller block size than AriaBC's (paper: 10 vs 75)
    blocks = curve("rbc", "block_size")
    rbc_best = blocks[curve("rbc", "throughput_tps").index(max(curve("rbc", "throughput_tps")))]
    aria_best = blocks[curve("aria", "throughput_tps").index(max(curve("aria", "throughput_tps")))]
    assert rbc_best <= aria_best
    # latency grows with block size for every system
    for system in ("harmony", "aria", "fabric"):
        lat = curve(system, "latency_ms")
        assert lat[-1] > lat[0]
