"""Table 3: how often workloads exercise the backward dangerous structure."""

from repro.bench.experiments import table3

from conftest import run_once


def test_table3(benchmark):
    result = run_once(benchmark, table3)

    def series(workload):
        return [
            row[2] for row in result.rows if row[0] == workload
        ]

    ycsb = series("ycsb")
    smallbank = series("smallbank")
    tpcc = series("tpcc")
    # hit rate grows with skew for YCSB/Smallbank
    assert ycsb[-1] > ycsb[0]
    assert ycsb[-1] > 0.3  # paper: 74.3% at skew 1.0
    assert smallbank[-1] > smallbank[0]
    # Smallbank is far less contentious than YCSB at equal skew
    assert smallbank[-1] < ycsb[-1]
    # TPC-C: 1 warehouse is the contention peak (paper: 47.9%)
    assert tpcc[0] == max(tpcc)
    assert tpcc[0] > 0.25
