"""Figure 17: BFT (HotStuff) vs Kafka on Smallbank, up to 80 geo nodes."""

from repro.bench.experiments import figure17

from conftest import run_once


def test_figure17(benchmark):
    result = run_once(benchmark, figure17)

    def curve(consensus, column):
        return result.series("consensus", consensus, column)

    bft_tput = curve("hotstuff", "throughput_tps")
    kafka_tput = curve("kafka", "throughput_tps")
    # BFT leaves throughput almost unaffected (consensus not the bottleneck)
    assert min(bft_tput) > 0.75 * max(kafka_tput)
    # latency: grows sharply once nodes span continents (>20 nodes)
    bft_latency = curve("hotstuff", "latency_ms")
    assert bft_latency[-1] > 5 * bft_latency[0]
    kafka_latency = curve("kafka", "latency_ms")
    # HotStuff needs more round trips than Kafka at every scale
    assert all(b > k for b, k in zip(bft_latency, kafka_latency))
