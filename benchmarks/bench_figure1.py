"""Figure 1: the disk database layer, not consensus, is the bottleneck."""

from repro.bench.experiments import figure1

from conftest import run_once


def test_figure1(benchmark):
    result = run_once(benchmark, figure1)
    by_layer = dict(zip(result.column("layer"), result.column("throughput_ktps")))
    disk_layers = [v for k, v in by_layer.items() if "disk DB layer" in k]
    consensus = [v for k, v in by_layer.items() if "hotstuff" in k]
    # consensus outruns every disk DB layer by ~an order of magnitude
    assert min(consensus) > 8 * max(disk_layers)
    # the memory DB layer sits in between (the "gap for improvement")
    assert max(disk_layers) < by_layer["aria (memory DB layer)"] < min(consensus)
