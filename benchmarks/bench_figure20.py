"""Figure 20: ablation study — each optimization earns its keep."""

from repro.bench.experiments import figure20

from conftest import run_once


def test_figure20(benchmark):
    result = run_once(benchmark, figure20)

    def cell(workload, level, variant, column):
        index = result.headers.index(column)
        for row in result.rows:
            if row[0] == workload and row[1] == level and row[2] == variant:
                return row[index]
        raise KeyError((workload, level, variant))

    for workload in ("ycsb", "smallbank", "tpcc"):
        raw_high = cell(workload, "high", "raw-HarmonyBC", "throughput_tps")
        full_high = cell(workload, "high", "HarmonyBC (+inter-block)", "throughput_tps")
        raw_low = cell(workload, "low", "raw-HarmonyBC", "throughput_tps")
        full_low = cell(workload, "low", "HarmonyBC (+inter-block)", "throughput_tps")
        # the full system beats raw-Harmony under both contention levels
        assert full_high > raw_high
        assert full_low > raw_low

    # update-reordering is the big win under HIGH contention (abort rate)
    for workload in ("ycsb", "tpcc"):
        raw_aborts = cell(workload, "high", "raw-HarmonyBC", "abort_rate")
        reorder_aborts = cell(workload, "high", "+update-reorder", "abort_rate")
        assert reorder_aborts < raw_aborts

    # inter-block parallelism is the big win under LOW contention (CPU util)
    for workload in ("ycsb", "smallbank"):
        coalesce_util = cell(workload, "low", "+update-coalesce", "cpu_util")
        full_util = cell(workload, "low", "HarmonyBC (+inter-block)", "cpu_util")
        assert full_util > coalesce_util
        # ... at the cost of a slightly higher abort rate
        assert (
            cell(workload, "low", "HarmonyBC (+inter-block)", "abort_rate")
            >= cell(workload, "low", "+update-coalesce", "abort_rate")
        )
