"""Figure 14: hotspot resiliency (HarmonyBC flat; AriaBC/RBC collapse)."""

from repro.bench.experiments import figure14

from conftest import run_once


def test_figure14(benchmark):
    result = run_once(benchmark, figure14)

    def curve(system, column):
        return result.series("system", system, column)

    harmony = curve("harmony", "throughput_tps")
    aria = curve("aria", "throughput_tps")
    rbc = curve("rbc", "throughput_tps")
    # HarmonyBC is almost unaffected by hotspot probability
    assert min(harmony) > 0.6 * max(harmony)
    assert max(curve("harmony", "abort_rate")) < 0.05
    # AriaBC drops significantly as hotspot probability rises; RBC's abort
    # rate climbs steeply (its serial commit keeps its absolute throughput
    # low and flat in our cost model — see EXPERIMENTS.md)
    assert aria[-1] < 0.5 * aria[0]
    assert curve("aria", "abort_rate")[-1] > 0.4
    assert curve("rbc", "abort_rate")[-1] > 5 * (curve("rbc", "abort_rate")[0] + 0.01)
    # at full hotspot pressure Harmony dominates by a wide margin, and the
    # margin grows with hotspot probability
    assert harmony[-1] > 2 * max(aria[-1], rbc[-1])
    assert harmony[-1] / aria[-1] > harmony[0] / aria[0]
