"""Unit + property tests for the update-command algebra (Section 3.3)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.storage.mvstore import TOMBSTONE
from repro.txn.commands import (
    AddFields,
    AddValue,
    Compose,
    DeleteValue,
    MulValue,
    SetFields,
    SetValue,
    apply_safely,
    coalesce,
)


class TestPrimitives:
    def test_set_is_blind(self):
        assert SetValue(5).reads_value is False
        assert SetValue(5).apply(123) == 5

    def test_delete_installs_tombstone(self):
        assert DeleteValue().apply(7) is TOMBSTONE
        assert DeleteValue().reads_value is False

    def test_add_and_mul_are_rmw(self):
        assert AddValue(3).reads_value is True
        assert MulValue(2).reads_value is True
        assert AddValue(3).apply(10) == 13
        assert MulValue(3).apply(10) == 30

    def test_rmw_on_missing_value_raises(self):
        with pytest.raises(KeyError):
            AddValue(1).apply(None)
        with pytest.raises(KeyError):
            MulValue(2).apply(TOMBSTONE)

    def test_set_fields_overwrites_subset(self):
        cmd = SetFields.of(a=1)
        assert cmd.apply({"a": 0, "b": 2}) == {"a": 1, "b": 2}

    def test_set_fields_rejects_non_record(self):
        with pytest.raises(TypeError):
            SetFields.of(a=1).apply(42)

    def test_add_fields_accumulates(self):
        cmd = AddFields.of(x=5, y=-1)
        assert cmd.apply({"x": 1, "y": 1}) == {"x": 6, "y": 0}

    def test_add_fields_creates_missing_field(self):
        assert AddFields.of(z=2).apply({"x": 1}) == {"x": 1, "z": 2}

    def test_commands_do_not_mutate_input_record(self):
        base = {"x": 1}
        AddFields.of(x=1).apply(base)
        SetFields.of(x=9).apply(base)
        assert base == {"x": 1}


class TestCoalesce:
    def test_paper_example_add_then_mul(self):
        # T1 add(x,10), T2 mul(x,3) ordered [T2, T1]: mul first then add
        merged = coalesce([MulValue(3), AddValue(10)])
        assert merged.apply(10) == 40  # the Section 3.3.1 example

    def test_add_add_merges_to_single_add(self):
        merged = coalesce([AddValue(2), AddValue(5)])
        assert isinstance(merged, AddValue)
        assert merged.delta == 7

    def test_mul_mul_merges(self):
        merged = coalesce([MulValue(2), MulValue(3)])
        assert isinstance(merged, MulValue)
        assert merged.factor == 6

    def test_blind_write_annihilates_prefix(self):
        merged = coalesce([AddValue(5), MulValue(2), SetValue(9)])
        assert isinstance(merged, SetValue)
        assert merged.apply(None) == 9  # no RMW left: safe on missing base

    def test_set_then_add_folds_into_set(self):
        merged = coalesce([SetValue(10), AddValue(5)])
        assert isinstance(merged, SetValue)
        assert merged.value == 15

    def test_mixed_falls_back_to_compose(self):
        merged = coalesce([AddValue(1), MulValue(2)])
        assert isinstance(merged, Compose)
        assert merged.apply(3) == 8
        assert merged.reads_value is True

    def test_nested_compose_flattens(self):
        inner = coalesce([AddValue(1), MulValue(2)])
        merged = coalesce([inner, AddValue(10)])
        assert merged.apply(3) == 18

    def test_field_commands_merge(self):
        merged = coalesce([AddFields.of(x=1), AddFields.of(x=2, y=3)])
        assert isinstance(merged, AddFields)
        assert merged.apply({"x": 0, "y": 0}) == {"x": 3, "y": 3}

    def test_set_fields_then_add_fields_on_same_field(self):
        merged = coalesce([SetFields.of(x=10), AddFields.of(x=5)])
        assert isinstance(merged, SetFields)
        assert merged.apply({"x": 0}) == {"x": 15}

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            coalesce([])


def _command_strategy():
    scalar = st.integers(min_value=-50, max_value=50)
    return st.one_of(
        scalar.map(AddValue),
        st.integers(min_value=1, max_value=5).map(MulValue),
        scalar.map(SetValue),
    )


class TestCoalesceProperties:
    @given(st.lists(_command_strategy(), min_size=1, max_size=8), st.integers(-100, 100))
    def test_coalesce_equals_sequential_application(self, commands, base):
        expected = base
        for command in commands:
            expected = command.apply(expected)
        assert coalesce(commands).apply(base) == expected

    @given(st.lists(_command_strategy(), min_size=1, max_size=8))
    def test_coalesce_is_associative_in_grouping(self, commands):
        whole = coalesce(commands)
        if len(commands) > 1:
            split = len(commands) // 2
            regrouped = coalesce(
                [coalesce(commands[:split]), coalesce(commands[split:])]
            )
            assert whole.apply(7) == regrouped.apply(7)

    @given(st.lists(_command_strategy(), min_size=1, max_size=6))
    def test_blind_coalesced_command_never_needs_base(self, commands):
        merged = coalesce(commands)
        if not merged.reads_value:
            # must be applicable to a missing value without raising
            merged.apply(None)


class TestApplySafely:
    def test_noop_on_missing_base(self):
        assert apply_safely(AddValue(5), None) is None

    def test_normal_application(self):
        assert apply_safely(AddValue(5), 10) == 15

    def test_type_mismatch_is_noop(self):
        assert apply_safely(SetFields.of(a=1), 42) == 42
