"""Failure injection and adversarial scenarios.

Covers the security/robustness story: tampered ledgers, a byzantine replica
diverging, torn checkpoints mid-recovery, contracts that crash, and the
I/O accounting that makes coalescence worth it.
"""

from __future__ import annotations

import pytest

from repro.chain.ledger import TamperError
from repro.chain.node import ReplicaNode
from repro.chain.ordering import OrderingService
from repro.chain.recovery import recover_node
from repro.consensus.crypto import Signer
from repro.core.harmony import HarmonyConfig, HarmonyExecutor
from repro.execution import OverlayView
from repro.storage.engine import StorageEngine
from repro.storage.mvstore import TOMBSTONE
from repro.txn.transaction import Txn, TxnSpec

from tests.conftest import generic_registry, make_engine, make_txns


def spec(ops) -> TxnSpec:
    return TxnSpec("ops", (("ops", tuple(ops)),))


def make_node(name="r0", signer=None, inter_block=False) -> ReplicaNode:
    executor = HarmonyExecutor(
        make_engine(), generic_registry(), HarmonyConfig(inter_block=inter_block)
    )
    return ReplicaNode(name, executor, signer)


class TestTamperScenarios:
    def test_tampered_payload_rejected_on_delivery(self):
        signer = Signer("ordering-service")
        ordering = OrderingService(signer)
        node = make_node(signer=signer)
        block = ordering.form_block([spec([("add", 0, 1)])])
        block.specs = (spec([("add", 0, 1_000_000)]),)  # man-in-the-middle
        with pytest.raises((TamperError, ValueError)):
            node.process_block(block)

    def test_tampered_history_detected_by_backtrace(self):
        signer = Signer("ordering-service")
        ordering = OrderingService(signer)
        node = make_node(signer=signer)
        for i in range(4):
            node.process_block(ordering.form_block([spec([("add", i, 1)])]))
        assert node.ledger.verify_chain()
        node.ledger[2].specs = (spec([("set", 0, 666)]),)
        assert not node.ledger.verify_chain()

    def test_replayed_block_rejected(self):
        signer = Signer("ordering-service")
        ordering = OrderingService(signer)
        node = make_node(signer=signer)
        block = ordering.form_block([spec([("add", 0, 1)])])
        node.process_block(block)
        with pytest.raises(TamperError):
            node.process_block(block)  # duplicate delivery


class TestByzantineReplica:
    def test_divergent_replica_exposed_by_state_hash(self):
        """A faulty replica can only corrupt its own state; state hashes
        expose the divergence immediately (Section 4: a faulty database
        node cannot affect the non-faulty majority)."""
        signer = Signer("ordering-service")
        ordering = OrderingService(signer)
        honest_a = make_node("a", signer)
        honest_b = make_node("b", signer)
        byzantine = make_node("evil", signer)
        for i in range(3):
            block = ordering.form_block([spec([("add", i, 10)])])
            for node in (honest_a, honest_b, byzantine):
                node.process_block(block)
        # the byzantine replica tampers with its local state
        byzantine.engine.store.apply_block(99, [(("k", 0), 1_000_000)])
        assert honest_a.state_hash() == honest_b.state_hash()
        assert byzantine.state_hash() != honest_a.state_hash()


class TestCrashScenarios:
    def test_crash_immediately_after_genesis(self):
        node = make_node()
        recovered = recover_node(node)
        assert recovered.state_hash() == node.state_hash()

    def test_repeated_crash_recover_cycles(self):
        signer = Signer("ordering-service")
        ordering = OrderingService(signer)
        node = make_node(signer=signer, inter_block=True)
        node.engine.checkpoints.interval_blocks = 2
        current = node
        for i in range(6):
            block = ordering.form_block(
                [spec([("add", i % 4, 1)]), spec([("r", i % 4), ("set", 9, i)])]
            )
            node.process_block(block)
            if i % 2 == 1:  # crash every other block
                current = recover_node(node)
                assert current.state_hash() == node.state_hash()

    def test_crashing_contract_does_not_poison_block(self):
        registry = generic_registry()

        @registry.register("crash")
        def crash(ctx, ops=None):
            ctx.read(("k", 0))
            raise ValueError("contract bug")

        engine = make_engine()
        executor = HarmonyExecutor(engine, registry, HarmonyConfig(inter_block=False))
        txns = [
            Txn(0, 0, TxnSpec("crash")),
            Txn(1, 0, TxnSpec("ops", (("ops", (("add", 1, 5),)),))),
            Txn(2, 0, TxnSpec("ops", (("ops", (("add", 2, 7),)),))),
        ]
        executor.execute_block(0, txns)
        assert txns[0].aborted
        assert txns[1].committed and txns[2].committed
        assert engine.store.get_latest(("k", 1))[0] == 105


class TestOverlayView:
    def test_overlay_shadows_base(self):
        engine = make_engine()
        overlay = OverlayView(engine.store.latest_snapshot(), block_id=5)
        assert overlay.get(("k", 1))[0] == 100
        overlay.put(("k", 1), 777)
        value, version = overlay.get(("k", 1))
        assert value == 777 and version == (5, 0)

    def test_overlay_tombstone_reads_none(self):
        engine = make_engine()
        overlay = OverlayView(engine.store.latest_snapshot(), block_id=5)
        overlay.put(("k", 1), TOMBSTONE)
        assert overlay.get(("k", 1))[0] is None

    def test_ordered_writes_follow_seq(self):
        engine = make_engine()
        overlay = OverlayView(engine.store.latest_snapshot(), block_id=5)
        overlay.put(("k", 2), 1)
        overlay.put(("k", 1), 2)
        assert [k for k, _v in overlay.ordered_writes()] == [("k", 2), ("k", 1)]

    def test_scan_merges_overlay(self):
        engine = make_engine()
        overlay = OverlayView(engine.store.latest_snapshot(), block_id=5)
        overlay.put(("k", 1), 111)
        overlay.put(("k", 999), 5)
        rows = dict(overlay.scan(("k", 0), ("k", 1000)))
        assert rows[("k", 1)] == 111 and rows[("k", 999)] == 5


class TestCoalescenceIOAccounting:
    def test_coalescence_saves_disk_writes_on_hotspots(self):
        """The Figure 5 claim, measured: N updaters on one key cost one
        page write with coalescence, N without."""

        def run(coalesce: bool) -> int:
            engine = StorageEngine(pool_pages=2)
            engine.preload({("k", i): 0 for i in range(600)})
            executor = HarmonyExecutor(
                engine,
                generic_registry(),
                HarmonyConfig(inter_block=False, coalesce=coalesce),
            )
            op_lists = [[("add", 0, 1)] for _ in range(10)]
            executor.execute_block(0, make_txns(op_lists))
            # buffer accesses on the hot page == physical update count
            return engine.buffer_hits + engine.buffer_misses

        assert run(True) < run(False)

    def test_final_state_identical_with_and_without_coalescence(self):
        states = []
        for coalesce in (True, False):
            engine = make_engine()
            executor = HarmonyExecutor(
                engine,
                generic_registry(),
                HarmonyConfig(inter_block=False, coalesce=coalesce),
            )
            op_lists = [
                [("add", 0, 3)],
                [("mul", 0, 2)],
                [("add", 1, 7), ("mul", 1, 3)],
            ]
            executor.execute_block(0, make_txns(op_lists))
            states.append(engine.state_hash())
        assert states[0] == states[1]
