"""Tests for block-snapshot MVCC."""

from __future__ import annotations

import pytest

from repro.storage.mvstore import MVStore, TOMBSTONE


def loaded_store():
    store = MVStore()
    store.load({("k", i): i * 10 for i in range(5)})
    return store


class TestVersions:
    def test_load_then_latest(self):
        store = loaded_store()
        value, version = store.get_latest(("k", 1))
        assert value == 10
        assert version[0] == -1  # genesis pseudo-block

    def test_apply_block_bumps_version(self):
        store = loaded_store()
        store.apply_block(0, [(("k", 1), 99)])
        value, version = store.get_latest(("k", 1))
        assert value == 99 and version == (0, 0)
        assert store.last_committed_block == 0

    def test_apply_out_of_order_rejected(self):
        store = loaded_store()
        store.apply_block(3, [(("k", 0), 1)])
        with pytest.raises(ValueError):
            store.apply_block(3, [(("k", 0), 2)])
        with pytest.raises(ValueError):
            store.apply_block(2, [(("k", 0), 2)])

    def test_intra_block_seq_orders_versions(self):
        store = loaded_store()
        store.apply_block(0, [(("k", 1), 5), (("k", 2), 6)])
        _, v1 = store.get_latest(("k", 1))
        _, v2 = store.get_latest(("k", 2))
        assert v1 == (0, 0) and v2 == (0, 1)


class TestSnapshots:
    def test_snapshot_isolation_across_blocks(self):
        store = loaded_store()
        store.apply_block(0, [(("k", 1), 111)])
        store.apply_block(1, [(("k", 1), 222)])
        assert store.snapshot(-1).get(("k", 1))[0] == 10
        assert store.snapshot(0).get(("k", 1))[0] == 111
        assert store.snapshot(1).get(("k", 1))[0] == 222
        assert store.snapshot(5).get(("k", 1))[0] == 222  # future = latest

    def test_missing_key(self):
        store = loaded_store()
        assert store.snapshot(0).get("ghost") == (None, None)

    def test_tombstone_hidden_from_reads(self):
        store = loaded_store()
        store.apply_block(0, [(("k", 1), TOMBSTONE)])
        value, version = store.snapshot(0).get(("k", 1))
        assert value is None and version == (0, 0)
        assert store.snapshot(-1).get(("k", 1))[0] == 10  # time travel
        assert ("k", 1) not in store

    def test_scan_range_and_order(self):
        store = loaded_store()
        rows = list(store.snapshot(-1).scan(("k", 1), ("k", 4)))
        assert rows == [(("k", 1), 10), (("k", 2), 20), (("k", 3), 30)]

    def test_scan_respects_snapshot(self):
        store = loaded_store()
        store.apply_block(0, [(("k", 2), 999), (("k", 9), 90)])
        old = dict(store.snapshot(-1).scan(("k", 0), ("k", 99)))
        new = dict(store.snapshot(0).scan(("k", 0), ("k", 99)))
        assert ("k", 9) not in old and new[("k", 9)] == 90
        assert old[("k", 2)] == 20 and new[("k", 2)] == 999

    def test_scan_skips_tombstones(self):
        store = loaded_store()
        store.apply_block(0, [(("k", 2), TOMBSTONE)])
        rows = dict(store.snapshot(0).scan(("k", 0), ("k", 99)))
        assert ("k", 2) not in rows


class TestMaintenance:
    def test_gc_drops_old_versions_keeps_visibility(self):
        store = loaded_store()
        for b in range(5):
            store.apply_block(b, [(("k", 1), 100 + b)])
        dropped = store.gc(keep_after_block=3)
        assert dropped > 0
        assert store.snapshot(3).get(("k", 1))[0] == 103
        assert store.snapshot(4).get(("k", 1))[0] == 104

    def test_gc_watermark_skips_untouched_chains(self):
        store = MVStore()
        store.load({("k", i): i for i in range(1_000)})
        # a bulk load of fresh single-version chains leaves nothing pending
        assert store._gc_pending == set()
        store.apply_block(0, [(("k", 1), 10), (("k", 2), 20)])
        store.apply_block(1, [(("k", 1), 11)])
        assert store._gc_pending == {("k", 1), ("k", 2)}
        # ("k", 1) drops its load + block-0 versions, ("k", 2) its load one
        assert store.gc(keep_after_block=1) == 3
        # collapsed chains leave the watermark; nothing left to walk
        assert store._gc_pending == set()
        assert store.gc(keep_after_block=5) == 0

    def test_state_hash_tracks_content_not_history(self):
        a = loaded_store()
        b = loaded_store()
        assert a.state_hash() == b.state_hash()
        a.apply_block(0, [(("k", 1), 7)])
        assert a.state_hash() != b.state_hash()
        b.apply_block(0, [(("k", 1), 6)])
        b.apply_block(1, [(("k", 1), 7)])
        assert a.state_hash() == b.state_hash()

    def test_materialize_roundtrip(self):
        store = loaded_store()
        store.apply_block(0, [(("k", 0), TOMBSTONE), (("k", 1), 77)])
        state = store.materialize()
        assert ("k", 0) not in state and state[("k", 1)] == 77

    def test_materialize_at_previous_block(self):
        store = loaded_store()
        store.apply_block(0, [(("k", 1), 50)])
        store.apply_block(1, [(("k", 1), 60)])
        assert store.materialize_at(0)[("k", 1)] == 50
        assert store.materialize_at(1)[("k", 1)] == 60

    def test_len_counts_live_keys(self):
        store = loaded_store()
        assert len(store) == 5
        store.apply_block(0, [(("k", 0), TOMBSTONE)])
        assert len(store) == 4
