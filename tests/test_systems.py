"""End-to-end tests of the assembled blockchains (OE and SOV)."""

from __future__ import annotations

import pytest

from repro.chain.sov import SOVBlockchain, SOVConfig
from repro.chain.system import OEBlockchain, OEConfig
from repro.consensus.network import NetworkPreset
from repro.core.harmony import HarmonyConfig
from repro.sim.costs import StorageProfile
from repro.workloads.smallbank import SmallbankWorkload
from repro.workloads.ycsb import YCSBWorkload


def small_ycsb():
    return YCSBWorkload(num_keys=1000, theta=0.6)


def oe_run(system, **overrides):
    defaults = dict(system=system, block_size=15, num_blocks=10)
    defaults.update(overrides)
    return OEBlockchain(OEConfig(**defaults), small_ycsb()).run()


def sov_run(system, **overrides):
    defaults = dict(system=system, block_size=15, num_blocks=10)
    defaults.update(overrides)
    return SOVBlockchain(SOVConfig(**defaults), small_ycsb()).run()


class TestOESystems:
    @pytest.mark.parametrize("system", ["harmony", "aria", "rbc", "serial"])
    def test_runs_and_commits(self, system):
        metrics = oe_run(system)
        assert metrics.committed > 0
        assert metrics.throughput_tps > 0
        assert metrics.extra["ledger_ok"] is True
        assert 0 <= metrics.abort_rate < 1
        assert metrics.false_aborts <= metrics.aborted

    def test_serial_never_aborts(self):
        assert oe_run("serial").abort_rate == 0.0

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            oe_run("quantum")

    def test_replica_consistency_harmony(self):
        chain = OEBlockchain(
            OEConfig(system="harmony", block_size=10, num_blocks=8), small_ycsb()
        )
        chain.run()
        assert chain.consistency_check()

    def test_replica_consistency_aria(self):
        chain = OEBlockchain(
            OEConfig(system="aria", block_size=10, num_blocks=8), small_ycsb()
        )
        chain.run()
        assert chain.consistency_check()

    def test_inter_block_helps_harmony_throughput(self):
        """At the paper's contention level, better utilization outweighs the
        extra inter-block aborts (Section 5.7)."""
        workload = YCSBWorkload(num_keys=10_000, theta=0.6)
        with_ibp = OEBlockchain(
            OEConfig(
                system="harmony",
                block_size=25,
                num_blocks=20,
                harmony=HarmonyConfig(inter_block=True),
            ),
            workload,
        ).run()
        workload2 = YCSBWorkload(num_keys=10_000, theta=0.6)
        without = OEBlockchain(
            OEConfig(
                system="harmony",
                block_size=25,
                num_blocks=20,
                harmony=HarmonyConfig(inter_block=False),
            ),
            workload2,
        ).run()
        assert with_ibp.throughput_tps > without.throughput_tps
        assert with_ibp.cpu_utilization > without.cpu_utilization
        assert with_ibp.abort_rate >= without.abort_rate  # the tradeoff

    def test_storage_profiles_order_throughput(self):
        ssd = oe_run("harmony", profile=StorageProfile.SSD)
        ram = oe_run("harmony", profile=StorageProfile.RAMDISK)
        mem = oe_run("harmony", profile=StorageProfile.MEMORY)
        assert ssd.throughput_tps < ram.throughput_tps < mem.throughput_tps

    def test_oe_throughput_flat_in_replicas(self):
        few = oe_run("harmony", num_replicas=4)
        many = oe_run("harmony", num_replicas=80, network=NetworkPreset.CLOUD_LAN_5G)
        assert many.throughput_tps > 0.7 * few.throughput_tps

    def test_hotstuff_consensus_increases_latency_only(self):
        kafka = oe_run("harmony", consensus="kafka", num_replicas=8)
        bft = oe_run("harmony", consensus="hotstuff", num_replicas=8)
        assert bft.mean_latency_ms > kafka.mean_latency_ms
        assert bft.throughput_tps == pytest.approx(kafka.throughput_tps, rel=0.2)


class TestSOVSystems:
    @pytest.mark.parametrize("system", ["fabric", "fastfabric"])
    def test_runs_and_commits(self, system):
        metrics = sov_run(system)
        assert metrics.committed > 0
        assert metrics.extra["ledger_ok"] is True

    def test_sov_latency_exceeds_oe(self):
        """SOV pays the endorsement round trips (Figures 7/8 latency)."""
        fabric = sov_run("fabric")
        harmony = oe_run("harmony")
        assert fabric.mean_latency_ms > harmony.mean_latency_ms

    def test_endorsement_staleness_causes_aborts(self):
        calm = sov_run("fabric", max_endorser_lag=0)
        laggy = sov_run("fabric", max_endorser_lag=3)
        assert laggy.abort_rate >= calm.abort_rate

    def test_sov_degrades_with_replicas(self):
        few = sov_run("fabric", num_replicas=4, network=NetworkPreset.CLOUD_LAN_5G)
        many = sov_run("fabric", num_replicas=80, network=NetworkPreset.CLOUD_LAN_5G)
        assert many.throughput_tps < few.throughput_tps

    def test_fastfabric_graph_costs_accounted(self):
        metrics = sov_run("fastfabric")
        assert metrics.committed > 0


class TestMetricsSanity:
    def test_latency_positive_and_finite(self):
        metrics = oe_run("harmony")
        assert 0 < metrics.mean_latency_ms < 10_000
        assert metrics.p95_latency_ms >= metrics.mean_latency_ms * 0.5

    def test_cpu_utilization_bounded(self):
        metrics = oe_run("harmony")
        assert 0 < metrics.cpu_utilization <= 1

    def test_io_counters_populated(self):
        # a pool smaller than the table forces real disk reads
        metrics = oe_run("harmony", pool_pages=4)
        assert metrics.io_reads > 0
        assert metrics.buffer_hits + metrics.buffer_misses > 0

    def test_deterministic_metrics_across_runs(self):
        a = oe_run("harmony")
        b = oe_run("harmony")
        assert a.committed == b.committed
        assert a.extra["state_hash"] == b.extra["state_hash"]
        assert a.sim_time_us == b.sim_time_us
