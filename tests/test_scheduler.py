"""Tests for the multi-core block-pipeline scheduler."""

from __future__ import annotations

import pytest

from repro.sim.scheduler import BlockTiming, PipelineSimulator


def block(arrival=0.0, sims=(), commits=(), serial=False, pre=0.0, post=0.0):
    return BlockTiming(
        arrival_us=arrival,
        sim_durations=list(sims),
        commit_durations=list(commits),
        serial_commit=serial,
        pre_exec_serial_us=pre,
        post_commit_serial_us=post,
    )


class TestSingleBlock:
    def test_parallel_tasks_use_all_cores(self):
        sim = PipelineSimulator(num_cores=4)
        result = sim.simulate([block(sims=[100.0] * 4)])
        assert result.makespan_us == pytest.approx(100.0)

    def test_more_tasks_than_cores_queue(self):
        sim = PipelineSimulator(num_cores=2)
        result = sim.simulate([block(sims=[100.0] * 4)])
        assert result.makespan_us == pytest.approx(200.0)

    def test_serial_commit_sums(self):
        sim = PipelineSimulator(num_cores=8)
        result = sim.simulate([block(commits=[10.0] * 5, serial=True)])
        assert result.makespan_us == pytest.approx(50.0)

    def test_parallel_commit_overlaps(self):
        sim = PipelineSimulator(num_cores=8)
        result = sim.simulate([block(commits=[10.0] * 5, serial=False)])
        assert result.makespan_us == pytest.approx(10.0)

    def test_pre_and_post_serial_on_critical_path(self):
        sim = PipelineSimulator(num_cores=8)
        result = sim.simulate([block(sims=[10.0], pre=5.0, post=7.0)])
        assert result.makespan_us == pytest.approx(22.0)

    def test_utilization_bounds(self):
        sim = PipelineSimulator(num_cores=4)
        result = sim.simulate([block(sims=[100.0])])
        assert 0.0 < result.cpu_utilization <= 0.26  # 1 of 4 cores busy


class TestPipelining:
    def test_without_inter_block_straggler_blocks_next(self):
        # block 0 has a 1000us straggler; block 1 cannot start before it ends
        sim = PipelineSimulator(num_cores=4, inter_block=False)
        blocks = [block(sims=[1000.0, 10.0, 10.0]), block(sims=[10.0] * 3)]
        result = sim.simulate(blocks)
        assert result.sim_start_us[1] >= 1000.0
        assert result.makespan_us >= 1010.0

    def test_inter_block_absorbs_straggler(self):
        # with IBP block 1 only waits for block -1 (none): starts immediately
        sim = PipelineSimulator(num_cores=4, inter_block=True, snapshot_lag=2)
        blocks = [block(sims=[1000.0, 10.0, 10.0]), block(sims=[10.0] * 3)]
        result = sim.simulate(blocks)
        assert result.sim_start_us[1] < 1000.0
        # commit order is still enforced: block 1 commits after block 0
        assert result.commit_finish_us[1] >= result.commit_finish_us[0]

    def test_inter_block_improves_utilization(self):
        blocks_a = [
            block(sims=[500.0] + [50.0] * 6) for _ in range(6)
        ]
        blocks_b = [
            block(sims=[500.0] + [50.0] * 6) for _ in range(6)
        ]
        base = PipelineSimulator(num_cores=4, inter_block=False).simulate(blocks_a)
        ibp = PipelineSimulator(num_cores=4, inter_block=True).simulate(blocks_b)
        assert ibp.makespan_us < base.makespan_us
        assert ibp.cpu_utilization > base.cpu_utilization

    def test_snapshot_lag_controls_overlap(self):
        blocks = [block(sims=[100.0] * 2) for _ in range(4)]
        lag3 = PipelineSimulator(num_cores=8, inter_block=True, snapshot_lag=3).simulate(
            [block(sims=[100.0] * 2) for _ in range(4)]
        )
        lag1 = PipelineSimulator(num_cores=8, inter_block=True, snapshot_lag=1).simulate(
            blocks
        )
        assert lag3.makespan_us <= lag1.makespan_us

    def test_commit_order_monotone(self):
        sim = PipelineSimulator(num_cores=2, inter_block=True)
        blocks = [block(sims=[10.0 * (i + 1)] * 3) for i in range(5)]
        result = sim.simulate(blocks)
        finishes = result.commit_finish_us
        assert all(a <= b for a, b in zip(finishes, finishes[1:]))

    def test_arrival_gates_start(self):
        sim = PipelineSimulator(num_cores=4)
        result = sim.simulate([block(arrival=500.0, sims=[10.0])])
        assert result.makespan_us == pytest.approx(510.0)


class TestValidation:
    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            PipelineSimulator(num_cores=0)

    def test_rejects_bad_lag(self):
        with pytest.raises(ValueError):
            PipelineSimulator(num_cores=1, snapshot_lag=0)

    def test_empty_stream(self):
        result = PipelineSimulator(num_cores=2).simulate([])
        assert result.makespan_us == 0.0
        assert result.cpu_utilization == 0.0
