"""Fault-injection subsystem unit layer (ISSUE 6, tier-1).

Fast seeded coverage of every fault-layer contract that doesn't need the
full drill matrix (that lives in ``test_fault_drills.py`` behind the
``faults`` marker):

- fault plans are pure, validated data, derivable from a seed alone;
- retry backoff schedules are deterministic and bounded;
- vote reconciliation is idempotent under duplication, loud under
  equivocation, and degrades missing votes to timeout vetoes;
- the partition-degradation policy aborts deterministically instead of
  diverging;
- the ``crash_after_prepare=`` kwarg shim and the generalizing fault hook
  are decision-identical;
- ``MVStore.writes_in_block``'s watermark index matches the naive
  every-chain walk (the satellite fix's differential).
"""

from __future__ import annotations

import pytest

from repro.chain.system import decision_digest
from repro.faults.drill import run_drill
from repro.faults.inject import FaultInjector, FaultyVoteChannel
from repro.faults.plan import (
    CRASH_AFTER_PREPARE,
    PARTITION,
    VOTE_DUPLICATE,
    FaultEvent,
    FaultPlan,
    generate_chaos_plan,
    standard_plans,
)
from repro.faults.supervisor import RetryPolicy, SupervisedShardGroup
from repro.shard.system import ShardConfig, ShardedBlockchain
from repro.shard.twopc import (
    GENESIS_CERT_HASH,
    ShardVote,
    make_certificate,
    reconcile_votes,
)
from repro.sim.rng import SeededRng
from repro.storage.mvstore import TOMBSTONE, MVStore
from repro.workloads.base import ShardAffinity
from repro.workloads.smallbank import SmallbankWorkload

NUM_SHARDS = 2


def build_chain(num_shards=NUM_SHARDS, scheme="harmony", seed=61):
    affinity = ShardAffinity(num_shards, 0.5) if num_shards > 1 else None
    workload = SmallbankWorkload(num_accounts=90, theta=0.6, affinity=affinity)
    config = ShardConfig(
        system=scheme,
        num_shards=num_shards,
        block_size=8,
        seed=seed,
        checkpoint_interval=2,
        checkpoint_base_interval=2,
    )
    return ShardedBlockchain(config, workload)


def run_supervised(plan, num_shards=NUM_SHARDS, num_blocks=6, scheme="harmony"):
    chain = build_chain(num_shards=num_shards, scheme=scheme, seed=plan.seed)
    supervisor = SupervisedShardGroup(chain, FaultInjector(plan, num_shards))
    rng = SeededRng(plan.seed, "faults-unit-drive")
    for _ in range(num_blocks):
        specs = chain.workload.generate_block(chain.config.block_size, rng)
        supervisor.process_block(chain.ordering.form_block(specs))
    supervisor.finalize()
    return chain, supervisor


class TestFaultPlans:
    def test_standard_roster_is_broad_and_deterministic(self):
        plans = standard_plans(num_blocks=8, num_shards=3)
        names = [p.name for p in plans]
        assert len(names) == len(set(names))
        assert len(plans) >= 10
        # pure data: rebuilding the roster yields identical plans
        assert plans == standard_plans(num_blocks=8, num_shards=3)

    def test_chaos_plans_derive_from_seed_alone(self):
        a = generate_chaos_plan(7, num_blocks=8, num_shards=3)
        b = generate_chaos_plan(7, num_blocks=8, num_shards=3)
        c = generate_chaos_plan(8, num_blocks=8, num_shards=3)
        assert a == b
        assert a.events  # a chaos plan schedules something
        assert a != c

    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent("sudden-vibe-shift", block_id=1, shard=0)
        with pytest.raises(ValueError):
            FaultEvent(PARTITION, block_id=1, shard=0, blocks=0)

    def test_partition_window_queries(self):
        plan = FaultPlan(
            "w", 1, (FaultEvent(PARTITION, block_id=2, shard=1, blocks=3),)
        )
        assert plan.lagging_shards(1) == frozenset()
        assert plan.lagging_shards(2) == frozenset({1})
        assert plan.lagging_shards(4) == frozenset({1})
        assert plan.lagging_shards(5) == frozenset()


class TestRetryPolicy:
    def test_backoff_deterministic_bounded_and_monotone(self):
        policy = RetryPolicy(
            max_attempts=6, base_backoff_us=50.0, multiplier=2.0, max_backoff_us=300.0
        )
        schedule = policy.schedule()
        assert schedule == policy.schedule()  # pure function of the policy
        assert len(schedule) == policy.max_attempts - 1
        assert schedule == (50.0, 100.0, 200.0, 300.0, 300.0)  # capped tail
        assert all(a <= b for a, b in zip(schedule, schedule[1:]))

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestVoteReconciliation:
    VOTES = [
        ShardVote(tid=4, shard_id=0, commit=True),
        ShardVote(tid=4, shard_id=1, commit=True),
        ShardVote(tid=9, shard_id=0, commit=False, reason="waw"),
        ShardVote(tid=9, shard_id=1, commit=True),
    ]

    def test_duplicate_votes_are_idempotent(self):
        clean = make_certificate(3, list(self.VOTES), GENESIS_CERT_HASH)
        noisy = make_certificate(
            3, list(self.VOTES) + list(self.VOTES) * 2, GENESIS_CERT_HASH
        )
        assert noisy.hash == clean.hash
        assert noisy.votes == clean.votes
        assert noisy.abort_tids == frozenset({9})

    def test_equivocation_raises(self):
        votes = list(self.VOTES) + [ShardVote(tid=4, shard_id=0, commit=False)]
        with pytest.raises(ValueError, match="equivocating"):
            reconcile_votes(votes)

    def test_missing_votes_degrade_to_timeout_vetoes(self):
        expected = {4: frozenset({0, 1}), 9: frozenset({0, 1, 2})}
        cert = make_certificate(
            3, list(self.VOTES), GENESIS_CERT_HASH, expected=expected
        )
        synthesized = [v for v in cert.votes if v.reason == "vote-timeout"]
        assert [(v.tid, v.shard_id) for v in synthesized] == [(9, 2)]
        assert not synthesized[0].commit
        assert cert.abort_tids == frozenset({9})
        assert cert.verify(GENESIS_CERT_HASH)

    def test_faulty_channel_fates_follow_the_plan(self):
        plan = FaultPlan(
            "wire",
            1,
            (
                FaultEvent(VOTE_DUPLICATE, block_id=2, shard=1),
                FaultEvent(PARTITION, block_id=3, shard=0, attempts=2),
            ),
        )
        channel = FaultyVoteChannel(plan)
        votes = [ShardVote(1, 0, True), ShardVote(1, 1, True)]
        assert len(channel.deliver(votes, 2)) == 3  # shard 1 duplicated
        assert [v.shard_id for v in channel.deliver(votes, 3, attempt=0)] == [1]
        assert [v.shard_id for v in channel.deliver(votes, 3, attempt=2)] == [0, 1]


class TestCrashShimEquivalence:
    def test_kwarg_shim_matches_fault_hook(self):
        """The deprecated ``crash_after_prepare=`` kwarg and the
        generalizing fault hook take the identical code path: same
        executions skipped, same certificate stream."""

        def drive(crash_via_hook: bool):
            chain = build_chain()
            rng = SeededRng(chain.config.seed, "shim-equivalence")
            skipped = None
            for i in range(5):
                block = chain.ordering.form_block(
                    chain.workload.generate_block(chain.config.block_size, rng)
                )
                if i == 4:
                    if crash_via_hook:
                        hook = lambda bid: (frozenset(), frozenset({1}))
                        outcome = chain.process_global_block(block, fault_hook=hook)
                    else:
                        outcome = chain.process_global_block(
                            block, crash_after_prepare=frozenset({1})
                        )
                    skipped = set(outcome.executions)
                else:
                    chain.process_global_block(block)
            return chain, skipped

        via_kwarg, skipped_kwarg = drive(False)
        via_hook, skipped_hook = drive(True)
        assert skipped_kwarg == skipped_hook == {0}
        assert via_kwarg.cert_log.head_hash == via_hook.cert_log.head_hash
        assert via_kwarg.cert_log.verify_chain()


class TestWritesInBlockDifferential:
    def test_indexed_walk_matches_naive_walk(self):
        """Satellite fix: the per-block key watermark returns exactly what
        the every-chain walk returns — repeated keys, tombstones, all
        block heights — while touching only the block's own chains."""
        indexed, naive = MVStore(), MVStore()
        for store in (indexed, naive):
            store.load({f"k{i}": i for i in range(40)})
        rng = SeededRng(3, "writes-in-block-differential")
        for block_id in range(12):
            writes = []
            for _ in range(15):
                key = f"k{rng.randint(0, 39)}"
                if rng.random() < 0.15:
                    writes.append((key, TOMBSTONE))
                else:
                    writes.append((key, rng.randint(0, 10_000)))
            # repeated key in one block: both versions must replay in order
            writes.append(writes[0])
            for store in (indexed, naive):
                store.apply_block(block_id, list(writes))
        for block_id in range(-1, 13):
            assert indexed.writes_in_block(block_id, indexed=True) == naive.writes_in_block(
                block_id, indexed=False
            )

    def test_watermark_survives_gc_like_the_naive_walk(self):
        store = MVStore()
        store.load({"a": 0, "b": 0})
        for block_id in range(6):
            store.apply_block(block_id, [("a", block_id), ("b", -block_id)])
        store.gc(keep_after_block=3)
        for block_id in range(6):
            assert store.writes_in_block(block_id, indexed=True) == store.writes_in_block(
                block_id, indexed=False
            )


class TestQuickDrills:
    """Two representative drills stay in tier-1 so every PR exercises the
    supervised-recovery path; the full matrix runs behind ``-m faults``."""

    def test_crash_after_prepare_drill_bit_identical(self):
        plan = FaultPlan(
            "unit-crash", 61, (FaultEvent(CRASH_AFTER_PREPARE, block_id=5, shard=0),)
        )
        result = run_drill("harmony", 2, plan)
        assert result.ok, result.failures
        assert result.stats["recoveries"] == 1

    def test_partition_heals_within_retry_window(self):
        plan = FaultPlan(
            "unit-partition",
            61,
            (FaultEvent(PARTITION, block_id=4, shard=1, attempts=2),),
        )
        result = run_drill("harmony", 2, plan)
        assert result.ok, result.failures
        assert result.stats["retry_rounds"] == 2
        assert result.stats["degraded_blocks"] == []


class TestPartitionDegradation:
    def test_unhealed_partition_aborts_deterministically(self):
        """The timeout→abort policy: when the partition outlives the
        retry budget, every cross-shard transaction touching the
        unreachable shard is vetoed by a synthesized timeout vote — the
        run stays deterministic (bit-identical to a rerun) and every
        replica can still replay it from sub-blocks + certificates."""
        plan = FaultPlan(
            "partition-degrade",
            61,
            (FaultEvent(PARTITION, block_id=3, shard=1, attempts=99),),
        )
        chain_a, sup_a = run_supervised(plan)
        chain_b, sup_b = run_supervised(plan)

        assert sup_a.degraded_blocks == [3]
        cert = chain_a.cert_log[3]
        timeouts = [v for v in cert.votes if v.reason == "vote-timeout"]
        assert timeouts and all(v.shard_id == 1 and not v.commit for v in timeouts)
        assert {v.tid for v in timeouts} <= cert.abort_tids
        assert chain_a.cert_log.verify_chain()

        # deterministic degradation: a rerun lands on the identical run
        digest_a = decision_digest(sup_a.decision_records())
        digest_b = decision_digest(sup_b.decision_records())
        assert digest_a == digest_b
        assert (
            chain_a.group.combined_state_hash()
            == chain_b.group.combined_state_hash()
        )
        assert chain_a.cert_log.head_hash == chain_b.cert_log.head_hash
        assert sup_a.injected_delay_us == sup_b.injected_delay_us

        # aborts, not divergence: a fresh replica replaying the certified
        # stream reproduces the degraded run's state
        assert chain_a.consistency_check()

    def test_multi_block_partition_lags_then_catches_up(self):
        plan = FaultPlan(
            "partition-window",
            61,
            (FaultEvent(PARTITION, block_id=2, shard=1, blocks=2),),
        )
        chain, supervisor = run_supervised(plan)
        assert supervisor.degraded_blocks == [2, 3]
        # the lagging shard caught up: same height as its peers, chained
        heights = {len(node.ledger) for node in chain.group.nodes}
        assert heights == {6}
        assert chain.group.ledgers_ok()
        assert chain.cert_log.verify_chain()
        assert chain.consistency_check()


class TestSupervisorAccounting:
    def test_backoff_and_delay_accounting_deterministic(self):
        plan = FaultPlan(
            "unit-accounting",
            61,
            (FaultEvent(CRASH_AFTER_PREPARE, block_id=4, shard=1),),
        )
        _, sup_a = run_supervised(plan)
        _, sup_b = run_supervised(plan)
        assert sup_a.injected_delay_us == sup_b.injected_delay_us
        assert sup_a.injected_delay_us > 0.0
        assert sup_a.recoveries == 1

    def test_double_fault_consumes_bounded_recovery_attempts(self):
        plan = FaultPlan(
            "unit-double-fault",
            61,
            (
                FaultEvent(
                    CRASH_AFTER_PREPARE, block_id=4, shard=1, recovery_failures=2
                ),
            ),
        )
        chain, supervisor = run_supervised(plan)
        assert supervisor.failed_recoveries == 2
        assert supervisor.recoveries == 1
        assert chain.group.ledgers_ok()
        assert chain.consistency_check()
