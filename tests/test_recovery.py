"""Tests for crash recovery by deterministic replay (Section 4)."""

from __future__ import annotations

from repro.chain.node import ReplicaNode
from repro.chain.ordering import OrderingService
from repro.chain.recovery import recover_node
from repro.core.harmony import HarmonyConfig, HarmonyExecutor
from repro.txn.transaction import TxnSpec

from tests.conftest import generic_registry, make_engine


def spec(ops) -> TxnSpec:
    return TxnSpec("ops", (("ops", tuple(ops)),))


def sov_block(engine, ordering, block_id, ops_lists):
    """Form a Fabric-style endorsed block: freeze read versions against the
    replica's latest snapshot and evaluate commands into value writes."""
    from repro.dcc.fabric import endorsed_value_writes
    from repro.txn.context import SimulationContext
    from repro.txn.transaction import Txn

    block = ordering.form_block([spec(ops) for ops in ops_lists])
    txns = [
        Txn(tid=block.first_tid + i, block_id=block_id, spec=s)
        for i, s in enumerate(block.specs)
    ]
    snapshot = engine.store.latest_snapshot()
    registry = generic_registry()
    for txn in txns:
        txn.output = registry.execute(SimulationContext(txn, snapshot, engine))
        endorsed_value_writes(txn, snapshot)
    block.endorsed_txns = txns
    return block


def build_node(checkpoint_interval=3, inter_block=False) -> ReplicaNode:
    engine = make_engine()
    engine.checkpoints.interval_blocks = checkpoint_interval
    executor = HarmonyExecutor(
        engine,
        generic_registry(),
        HarmonyConfig(inter_block=inter_block),
    )
    return ReplicaNode("r0", executor, None)


def feed_blocks(node: ReplicaNode, num_blocks: int, ordering=None):
    ordering = ordering or OrderingService()
    for i in range(num_blocks):
        node.process_block(
            ordering.form_block(
                [
                    spec([("add", i % 4, 1)]),
                    spec([("r", i % 4), ("set", 10 + (i % 3), i)]),
                    spec([("mul", 5, 1)]),
                ]
            )
        )
    return ordering


class TestRecovery:
    def test_recover_from_checkpoint_reaches_same_state(self):
        node = build_node(checkpoint_interval=3)
        feed_blocks(node, 8)  # checkpoints at blocks 2 and 5
        recovered = recover_node(node)
        assert recovered.state_hash() == node.state_hash()

    def test_recover_without_checkpoint_replays_genesis(self):
        node = build_node(checkpoint_interval=100)
        feed_blocks(node, 4)
        assert node.engine.checkpoints.latest() is None
        recovered = recover_node(node)
        assert recovered.state_hash() == node.state_hash()

    def test_torn_checkpoint_falls_back_to_previous(self):
        node = build_node(checkpoint_interval=2)
        feed_blocks(node, 8)
        node.engine.checkpoints.torn_latest = True  # crash mid-checkpoint
        recovered = recover_node(node)
        assert recovered.state_hash() == node.state_hash()

    def test_recovery_with_inter_block_parallelism(self):
        """The replayed first block simulates against a lag-2 snapshot, so
        the checkpoint's prev_state and Rule-3 records must round-trip."""
        node = build_node(checkpoint_interval=3, inter_block=True)
        feed_blocks(node, 9)
        recovered = recover_node(node)
        assert recovered.state_hash() == node.state_hash()

    def test_recovered_node_continues_processing(self):
        node = build_node(checkpoint_interval=3)
        ordering = feed_blocks(node, 6)
        recovered = recover_node(node)
        block = ordering.form_block([spec([("add", 0, 100)])])
        node.process_block(block)
        recovered.process_block(block)
        assert recovered.state_hash() == node.state_hash()

    def test_recovered_ledger_verifies(self):
        node = build_node()
        feed_blocks(node, 6)
        recovered = recover_node(node)
        assert recovered.ledger.verify_chain()
        assert recovered.ledger.height == node.ledger.height

    def test_key_born_with_stored_none_survives_recovery(self):
        """A key whose first value is a stored ``None`` (a Fabric-style
        evaluated no-op write) lands in the checkpoint but equals the
        ``dict.get`` default — the delta fast-forward must use membership,
        not ``.get``, or the recovered replica silently loses the version
        an uncrashed replica's version checks still see."""
        from repro.dcc.fabric import FabricValidator

        engine = make_engine()
        engine.checkpoints.interval_blocks = 2
        node = ReplicaNode("r0", FabricValidator(engine, generic_registry()), None)
        ordering = OrderingService()

        node.process_block(sov_block(engine, ordering, 0, [[("set", 1, 5)]]))
        # block 1 (the checkpoint block): AddValue on an absent key
        # evaluates to a stored None — a live, versioned entry
        node.process_block(sov_block(engine, ordering, 1, [[("add", 99, 1)]]))
        born_none = ("k", 99)
        value, version = engine.store.get_latest(born_none)
        assert value is None and version is not None
        assert engine.checkpoints.latest().block_id == 1

        recovered = recover_node(node)
        rec_value, rec_version = recovered.engine.store.get_latest(born_none)
        assert rec_value is None and rec_version is not None
        assert recovered.state_hash() == node.state_hash()

        # legacy checkpoints (no recorded block writes) take the
        # state-diff fallback, whose membership test must still keep the
        # stored-None key's version
        engine.checkpoints.latest().block_writes = None
        legacy = recover_node(node)
        _, legacy_version = legacy.engine.store.get_latest(born_none)
        assert legacy_version is not None
        assert legacy.state_hash() == node.state_hash()

    def test_same_value_rewrite_in_checkpoint_block_keeps_its_version(self):
        """A key rewritten in the checkpoint block with an unchanged value
        is invisible to a state *diff* (state == prev_state for it), so
        recovery must replay the block's recorded writes verbatim — or the
        recovered replica keeps the older version, and a transaction
        endorsed against the newer one passes SOV validation everywhere
        except on the recovered replica, diverging the replicas."""
        from repro.dcc.fabric import FabricValidator

        engine = make_engine()
        engine.checkpoints.interval_blocks = 2
        node = ReplicaNode("r0", FabricValidator(engine, generic_registry()), None)
        ordering = OrderingService()

        node.process_block(sov_block(engine, ordering, 0, [[("set", 1, 5)]]))
        # block 1 (the checkpoint block) rewrites the key with its
        # current value: the version advances, the value does not
        node.process_block(sov_block(engine, ordering, 1, [[("set", 1, 5)]]))
        key = ("k", 1)
        _, version = engine.store.get_latest(key)
        assert version is not None and version[0] == 1
        assert engine.checkpoints.latest().block_id == 1

        recovered = recover_node(node)
        assert recovered.engine.store.get_latest(key)[1] == version
        assert recovered.state_hash() == node.state_hash()

        # a read endorsed against the post-checkpoint version must commit
        # on both replicas (no stale-read abort on the recovered one)
        block = sov_block(engine, ordering, 2, [[("r", 1), ("set", 1, 6)]])
        node.process_block(block)
        recovered.process_block(block)
        assert all(t.committed for t in block.endorsed_txns)
        assert recovered.state_hash() == node.state_hash()

    def test_logical_log_smaller_than_physical(self):
        """Section 2.4: deterministic replay needs only input blocks."""
        node = build_node()
        feed_blocks(node, 6)
        from repro.storage.wal import LogMode

        assert node.engine.wal.mode is LogMode.LOGICAL
        assert node.engine.wal.stats.bytes < 6 * 3 * 640  # << physical rwsets
