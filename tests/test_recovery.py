"""Tests for crash recovery by deterministic replay (Section 4)."""

from __future__ import annotations

from repro.chain.node import ReplicaNode
from repro.chain.ordering import OrderingService
from repro.chain.recovery import recover_node
from repro.core.harmony import HarmonyConfig, HarmonyExecutor
from repro.txn.transaction import TxnSpec

from tests.conftest import generic_registry, make_engine


def spec(ops) -> TxnSpec:
    return TxnSpec("ops", (("ops", tuple(ops)),))


def sov_block(engine, ordering, block_id, ops_lists):
    """Form a Fabric-style endorsed block: freeze read versions against the
    replica's latest snapshot and evaluate commands into value writes."""
    from repro.dcc.fabric import endorsed_value_writes
    from repro.txn.context import SimulationContext
    from repro.txn.transaction import Txn

    block = ordering.form_block([spec(ops) for ops in ops_lists])
    txns = [
        Txn(tid=block.first_tid + i, block_id=block_id, spec=s)
        for i, s in enumerate(block.specs)
    ]
    snapshot = engine.store.latest_snapshot()
    registry = generic_registry()
    for txn in txns:
        txn.output = registry.execute(SimulationContext(txn, snapshot, engine))
        endorsed_value_writes(txn, snapshot)
    block.endorsed_txns = txns
    return block


def build_node(checkpoint_interval=3, inter_block=False, **engine_kwargs) -> ReplicaNode:
    engine = make_engine(**engine_kwargs)
    engine.checkpoints.interval_blocks = checkpoint_interval
    executor = HarmonyExecutor(
        engine,
        generic_registry(),
        HarmonyConfig(inter_block=inter_block),
    )
    return ReplicaNode("r0", executor, None)


def feed_blocks(node: ReplicaNode, num_blocks: int, ordering=None):
    ordering = ordering or OrderingService()
    for i in range(num_blocks):
        node.process_block(
            ordering.form_block(
                [
                    spec([("add", i % 4, 1)]),
                    spec([("r", i % 4), ("set", 10 + (i % 3), i)]),
                    spec([("mul", 5, 1)]),
                ]
            )
        )
    return ordering


class TestRecovery:
    def test_recover_from_checkpoint_reaches_same_state(self):
        node = build_node(checkpoint_interval=3)
        feed_blocks(node, 8)  # checkpoints at blocks 2 and 5
        recovered = recover_node(node)
        assert recovered.state_hash() == node.state_hash()

    def test_recover_without_checkpoint_replays_genesis(self):
        node = build_node(checkpoint_interval=100)
        feed_blocks(node, 4)
        assert node.engine.checkpoints.latest() is None
        recovered = recover_node(node)
        assert recovered.state_hash() == node.state_hash()

    def test_torn_checkpoint_falls_back_to_previous(self):
        node = build_node(checkpoint_interval=2)
        feed_blocks(node, 8)
        node.engine.checkpoints.torn_latest = True  # crash mid-checkpoint
        recovered = recover_node(node)
        assert recovered.state_hash() == node.state_hash()

    def test_recovery_with_inter_block_parallelism(self):
        """The replayed first block simulates against a lag-2 snapshot, so
        the checkpoint's prev_state and Rule-3 records must round-trip."""
        node = build_node(checkpoint_interval=3, inter_block=True)
        feed_blocks(node, 9)
        recovered = recover_node(node)
        assert recovered.state_hash() == node.state_hash()

    def test_recovered_node_continues_processing(self):
        node = build_node(checkpoint_interval=3)
        ordering = feed_blocks(node, 6)
        recovered = recover_node(node)
        block = ordering.form_block([spec([("add", 0, 100)])])
        node.process_block(block)
        recovered.process_block(block)
        assert recovered.state_hash() == node.state_hash()

    def test_recovered_ledger_verifies(self):
        node = build_node()
        feed_blocks(node, 6)
        recovered = recover_node(node)
        assert recovered.ledger.verify_chain()
        assert recovered.ledger.height == node.ledger.height

    def test_key_born_with_stored_none_survives_recovery(self):
        """A key whose first value is a stored ``None`` (a Fabric-style
        evaluated no-op write) lands in the checkpoint but equals the
        ``dict.get`` default — the delta fast-forward must use membership,
        not ``.get``, or the recovered replica silently loses the version
        an uncrashed replica's version checks still see."""
        from repro.dcc.fabric import FabricValidator

        # full (non-incremental) checkpoints: the legacy branch below
        # mutates the stored Checkpoint object, which only exists on the
        # deep-copy path (delta chains reconstruct a fresh one per call)
        engine = make_engine(incremental_checkpoints=False)
        engine.checkpoints.interval_blocks = 2
        node = ReplicaNode("r0", FabricValidator(engine, generic_registry()), None)
        ordering = OrderingService()

        node.process_block(sov_block(engine, ordering, 0, [[("set", 1, 5)]]))
        # block 1 (the checkpoint block): AddValue on an absent key
        # evaluates to a stored None — a live, versioned entry
        node.process_block(sov_block(engine, ordering, 1, [[("add", 99, 1)]]))
        born_none = ("k", 99)
        value, version = engine.store.get_latest(born_none)
        assert value is None and version is not None
        assert engine.checkpoints.latest().block_id == 1

        recovered = recover_node(node)
        rec_value, rec_version = recovered.engine.store.get_latest(born_none)
        assert rec_value is None and rec_version is not None
        assert recovered.state_hash() == node.state_hash()

        # legacy checkpoints (no recorded block writes) take the
        # state-diff fallback, whose membership test must still keep the
        # stored-None key's version
        engine.checkpoints.latest().block_writes = None
        legacy = recover_node(node)
        _, legacy_version = legacy.engine.store.get_latest(born_none)
        assert legacy_version is not None
        assert legacy.state_hash() == node.state_hash()

    def test_same_value_rewrite_in_checkpoint_block_keeps_its_version(self):
        """A key rewritten in the checkpoint block with an unchanged value
        is invisible to a state *diff* (state == prev_state for it), so
        recovery must replay the block's recorded writes verbatim — or the
        recovered replica keeps the older version, and a transaction
        endorsed against the newer one passes SOV validation everywhere
        except on the recovered replica, diverging the replicas."""
        from repro.dcc.fabric import FabricValidator

        engine = make_engine()
        engine.checkpoints.interval_blocks = 2
        node = ReplicaNode("r0", FabricValidator(engine, generic_registry()), None)
        ordering = OrderingService()

        node.process_block(sov_block(engine, ordering, 0, [[("set", 1, 5)]]))
        # block 1 (the checkpoint block) rewrites the key with its
        # current value: the version advances, the value does not
        node.process_block(sov_block(engine, ordering, 1, [[("set", 1, 5)]]))
        key = ("k", 1)
        _, version = engine.store.get_latest(key)
        assert version is not None and version[0] == 1
        assert engine.checkpoints.latest().block_id == 1

        recovered = recover_node(node)
        assert recovered.engine.store.get_latest(key)[1] == version
        assert recovered.state_hash() == node.state_hash()

        # a read endorsed against the post-checkpoint version must commit
        # on both replicas (no stale-read abort on the recovered one)
        block = sov_block(engine, ordering, 2, [[("r", 1), ("set", 1, 6)]])
        node.process_block(block)
        recovered.process_block(block)
        assert all(t.committed for t in block.endorsed_txns)
        assert recovered.state_hash() == node.state_hash()

    def test_torn_base_compaction_recovers_without_losing_an_interval(self):
        """A crash mid-base-compaction leaves the chain prefix through the
        compaction's own delta intact — recovery lands at the *same* block
        (the full-checkpoint scheme would step a whole interval back)."""
        node = build_node(
            checkpoint_interval=2,
            incremental_checkpoints=True,
            checkpoint_base_interval=2,
        )
        feed_blocks(node, 8)  # checkpoints at 1,3,5,7; compactions at 3 and 7
        from repro.storage.checkpoint import Checkpoint

        assert isinstance(node.engine.checkpoints._entries[-1], Checkpoint)
        before = node.engine.checkpoints.latest().block_id
        node.engine.checkpoints.torn_latest = True  # crash mid-compaction
        assert node.engine.checkpoints.latest().block_id == before
        recovered = recover_node(node)
        assert recovered.state_hash() == node.state_hash()

    def test_logical_log_smaller_than_physical(self):
        """Section 2.4: deterministic replay needs only input blocks."""
        node = build_node()
        feed_blocks(node, 6)
        from repro.storage.wal import LogMode

        assert node.engine.wal.mode is LogMode.LOGICAL
        assert node.engine.wal.stats.bytes < 6 * 3 * 640  # << physical rwsets


# --------------------------------------------------------------------------
# Incremental (delta-chain) vs full-checkpoint recovery: bit-identical.
# --------------------------------------------------------------------------
def _scheme_builders():
    from repro.dcc.aria import AriaExecutor
    from repro.dcc.fabric import FabricValidator
    from repro.dcc.fastfabric import FastFabricValidator
    from repro.dcc.rbc import RBCExecutor
    from repro.dcc.serial import SerialExecutor

    return {
        "harmony": lambda e, r: HarmonyExecutor(e, r, HarmonyConfig(inter_block=True)),
        "aria": lambda e, r: AriaExecutor(e, r),
        "rbc": lambda e, r: RBCExecutor(e, r),
        "serial": lambda e, r: SerialExecutor(e, r),
        "fabric": lambda e, r: FabricValidator(e, r),
        "fastfabric": lambda e, r: FastFabricValidator(e, r),
    }


def _feed_scheme(
    scheme: str, incremental: bool, num_blocks=8, base_interval=2
) -> ReplicaNode:
    """One replica of ``scheme`` fed a deterministic block stream.

    Each call regenerates the identical stream (own ordering service, same
    specs), so two calls differing only in the checkpoint flavour yield
    replicas whose durable state must recover identically. The default
    ``base_interval=2`` exercises a base compaction mid-stream.
    """
    from repro.storage.engine import StorageEngine

    engine = StorageEngine(
        pool_pages=8,
        checkpoint_interval=3,
        incremental_checkpoints=incremental,
        checkpoint_base_interval=base_interval,
    )
    engine.preload({("k", i): 100 for i in range(24)})
    node = ReplicaNode("r0", _scheme_builders()[scheme](engine, generic_registry()), None)
    ordering = OrderingService()
    for i in range(num_blocks):
        ops_lists = [
            [("add", i % 4, 1)],
            [("r", i % 4), ("set", 10 + (i % 3), i)],
            [("rmw", 5, 2)],
        ]
        if scheme in ("fabric", "fastfabric"):
            block = sov_block(engine, ordering, i, ops_lists)
        else:
            block = ordering.form_block([spec(ops) for ops in ops_lists])
        node.process_block(block)
    return node


def _feed_workload(name: str, incremental: bool, num_blocks=8) -> ReplicaNode:
    """One Harmony replica fed a registered workload's gate-profile stream
    (deterministic per call, so the full/delta pair sees identical blocks)."""
    from repro.sim.rng import SeededRng
    from repro.storage.engine import StorageEngine
    from repro.workloads import ShardAffinity, make_workload

    workload = make_workload(name, profile="gate", affinity=ShardAffinity(3, 0.5))
    engine = StorageEngine(
        pool_pages=8,
        checkpoint_interval=3,
        incremental_checkpoints=incremental,
        checkpoint_base_interval=2,
    )
    engine.preload(workload.initial_state())
    node = ReplicaNode(
        "r0",
        HarmonyExecutor(
            engine, workload.build_registry(), HarmonyConfig(inter_block=True)
        ),
        None,
    )
    ordering = OrderingService()
    rng = SeededRng(29, f"recovery/{name}")
    for _ in range(num_blocks):
        node.process_block(ordering.form_block(workload.generate_block(10, rng)))
    return node


class TestIncrementalRecoveryDifferential:
    """ISSUE 5 acceptance: recovery from a base+delta chain must be
    bit-identical — version chains, key directory, state hash — to
    recovery from the retained full-deepcopy checkpoints, per scheme."""

    import pytest as _pytest

    @_pytest.mark.parametrize(
        "scheme", ["harmony", "aria", "rbc", "serial", "fabric", "fastfabric"]
    )
    def test_delta_chain_recovery_bit_identical_to_full(self, scheme):
        node_full = _feed_scheme(scheme, incremental=False)
        node_delta = _feed_scheme(scheme, incremental=True)
        assert node_delta.state_hash() == node_full.state_hash()  # same runs

        rec_full = recover_node(node_full)
        rec_delta = recover_node(node_delta)
        full_store = rec_full.engine.store
        delta_store = rec_delta.engine.store
        assert delta_store._versions == full_store._versions
        assert delta_store._sorted_keys == full_store._sorted_keys
        assert delta_store.last_committed_block == full_store.last_committed_block
        assert (
            rec_delta.state_hash() == rec_full.state_hash() == node_full.state_hash()
        )
        # the delta-mode recovery reseeds its chain at the same boundary
        # the crashed replicas checkpointed (the full path keeps the seed's
        # empty-manager behaviour and re-checkpoints on replay intervals)
        assert (
            rec_delta.engine.checkpoints.latest().block_id
            == node_full.engine.checkpoints.latest().block_id
        )

    @_pytest.mark.parametrize("name", ["tpcc", "adv-skewshift"])
    def test_new_workloads_recover_bit_identical(self, name):
        """ISSUE 8: the differential extends to the new verification
        workloads — multi-warehouse TPC-C traffic and the migrating Zipf
        hotspot, both driven through their registered gate profiles."""
        node_full = _feed_workload(name, incremental=False)
        node_delta = _feed_workload(name, incremental=True)
        assert node_delta.state_hash() == node_full.state_hash()  # same runs

        rec_full = recover_node(node_full)
        rec_delta = recover_node(node_delta)
        assert rec_delta.engine.store._versions == rec_full.engine.store._versions
        assert (
            rec_delta.engine.store._sorted_keys == rec_full.engine.store._sorted_keys
        )
        assert (
            rec_delta.state_hash() == rec_full.state_hash() == node_full.state_hash()
        )
        assert rec_delta.ledger.verify_chain()
        assert rec_delta.ledger.height == node_full.ledger.height

    @_pytest.mark.parametrize("scheme", ["harmony", "rbc", "fabric"])
    def test_torn_chain_recovery_matches_torn_full(self, scheme):
        """With the newest recovery point torn on both sides (a delta tip
        here — base_interval exceeds the number of checkpoints, so the
        chain never compacted), the fallback prefix must also recover
        bit-identically to the full scheme's fallback."""
        node_full = _feed_scheme(scheme, incremental=False)
        node_delta = _feed_scheme(scheme, incremental=True, base_interval=99)
        for node in (node_full, node_delta):
            node.engine.checkpoints.torn_latest = True
        rec_full = recover_node(node_full)
        rec_delta = recover_node(node_delta)
        assert rec_delta.engine.store._versions == rec_full.engine.store._versions
        assert rec_delta.state_hash() == rec_full.state_hash() == node_full.state_hash()
