"""Tests for crash recovery by deterministic replay (Section 4)."""

from __future__ import annotations

from repro.chain.node import ReplicaNode
from repro.chain.ordering import OrderingService
from repro.chain.recovery import recover_node
from repro.core.harmony import HarmonyConfig, HarmonyExecutor
from repro.txn.transaction import TxnSpec

from tests.conftest import generic_registry, make_engine


def spec(ops) -> TxnSpec:
    return TxnSpec("ops", (("ops", tuple(ops)),))


def build_node(checkpoint_interval=3, inter_block=False) -> ReplicaNode:
    engine = make_engine()
    engine.checkpoints.interval_blocks = checkpoint_interval
    executor = HarmonyExecutor(
        engine,
        generic_registry(),
        HarmonyConfig(inter_block=inter_block),
    )
    return ReplicaNode("r0", executor, None)


def feed_blocks(node: ReplicaNode, num_blocks: int, ordering=None):
    ordering = ordering or OrderingService()
    for i in range(num_blocks):
        node.process_block(
            ordering.form_block(
                [
                    spec([("add", i % 4, 1)]),
                    spec([("r", i % 4), ("set", 10 + (i % 3), i)]),
                    spec([("mul", 5, 1)]),
                ]
            )
        )
    return ordering


class TestRecovery:
    def test_recover_from_checkpoint_reaches_same_state(self):
        node = build_node(checkpoint_interval=3)
        feed_blocks(node, 8)  # checkpoints at blocks 2 and 5
        recovered = recover_node(node)
        assert recovered.state_hash() == node.state_hash()

    def test_recover_without_checkpoint_replays_genesis(self):
        node = build_node(checkpoint_interval=100)
        feed_blocks(node, 4)
        assert node.engine.checkpoints.latest() is None
        recovered = recover_node(node)
        assert recovered.state_hash() == node.state_hash()

    def test_torn_checkpoint_falls_back_to_previous(self):
        node = build_node(checkpoint_interval=2)
        feed_blocks(node, 8)
        node.engine.checkpoints.torn_latest = True  # crash mid-checkpoint
        recovered = recover_node(node)
        assert recovered.state_hash() == node.state_hash()

    def test_recovery_with_inter_block_parallelism(self):
        """The replayed first block simulates against a lag-2 snapshot, so
        the checkpoint's prev_state and Rule-3 records must round-trip."""
        node = build_node(checkpoint_interval=3, inter_block=True)
        feed_blocks(node, 9)
        recovered = recover_node(node)
        assert recovered.state_hash() == node.state_hash()

    def test_recovered_node_continues_processing(self):
        node = build_node(checkpoint_interval=3)
        ordering = feed_blocks(node, 6)
        recovered = recover_node(node)
        block = ordering.form_block([spec([("add", 0, 100)])])
        node.process_block(block)
        recovered.process_block(block)
        assert recovered.state_hash() == node.state_hash()

    def test_recovered_ledger_verifies(self):
        node = build_node()
        feed_blocks(node, 6)
        recovered = recover_node(node)
        assert recovered.ledger.verify_chain()
        assert recovered.ledger.height == node.ledger.height

    def test_logical_log_smaller_than_physical(self):
        """Section 2.4: deterministic replay needs only input blocks."""
        node = build_node()
        feed_blocks(node, 6)
        from repro.storage.wal import LogMode

        assert node.engine.wal.mode is LogMode.LOGICAL
        assert node.engine.wal.stats.bytes < 6 * 3 * 640  # << physical rwsets
