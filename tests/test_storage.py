"""Tests for the disk, buffer pool, heap, WAL and checkpoint substrate."""

from __future__ import annotations

import pytest

from repro.sim.costs import CostModel, StorageProfile
from repro.storage.bufferpool import BufferPool
from repro.storage.checkpoint import BlockLog, CheckpointManager
from repro.storage.disk import SimulatedDisk
from repro.storage.engine import StorageEngine
from repro.storage.heap import HeapFile
from repro.storage.pages import Page
from repro.storage.wal import LogMode, WriteAheadLog

COSTS = CostModel()


def make_pool(capacity=4):
    disk = SimulatedDisk(COSTS)
    return BufferPool(capacity, disk, COSTS), disk


class TestPage:
    def test_allocation_fills_slots(self):
        page = Page(page_id=0, capacity=2)
        assert page.allocate_slot("a") == 0
        assert page.allocate_slot("b") == 1
        assert page.is_full

    def test_full_page_rejects(self):
        page = Page(page_id=0, capacity=1)
        page.allocate_slot("a")
        with pytest.raises(ValueError):
            page.allocate_slot("b")

    def test_free_slot_reusable(self):
        page = Page(page_id=0, capacity=1)
        slot = page.allocate_slot("a")
        page.free_slot(slot)
        assert page.allocate_slot("b") == slot


class TestBufferPool:
    def test_miss_then_hit(self):
        pool, disk = make_pool()
        miss_cost = pool.access(1)
        hit_cost = pool.access(1)
        assert disk.stats.page_reads == 1
        assert miss_cost > hit_cost
        assert pool.stats.hits == 1 and pool.stats.misses == 1

    def test_lru_eviction_order(self):
        pool, disk = make_pool(capacity=2)
        pool.access(1)
        pool.access(2)
        pool.access(1)  # 2 becomes LRU
        pool.access(3)  # evicts 2
        assert 1 in pool and 3 in pool and 2 not in pool

    def test_dirty_eviction_writes_back(self):
        pool, disk = make_pool(capacity=2)
        pool.access(1, dirty=True)
        pool.access(2)
        pool.access(3)  # evicts dirty page 1
        assert disk.stats.page_writes == 1
        assert pool.stats.dirty_writebacks == 1

    def test_clean_eviction_no_writeback(self):
        pool, disk = make_pool(capacity=2)
        pool.access(1)
        pool.access(2)
        pool.access(3)
        assert disk.stats.page_writes == 0

    def test_flush_all_cleans_dirty_frames(self):
        pool, disk = make_pool()
        pool.access(1, dirty=True)
        pool.access(2, dirty=True)
        cost = pool.flush_all()
        assert disk.stats.page_writes == 2
        assert cost == 2 * COSTS.page_write_us
        assert pool.flush_all() == 0.0  # now clean

    def test_redirty_via_access(self):
        pool, disk = make_pool()
        pool.access(1)
        pool.access(1, dirty=True)
        pool.flush_all()
        assert disk.stats.page_writes == 1


class TestHeapFile:
    def test_insert_and_access(self):
        pool, disk = make_pool(capacity=16)
        heap = HeapFile(pool, COSTS, records_per_page=4)
        for i in range(10):
            heap.insert(("k", i))
        assert len(heap) == 10
        assert heap.num_pages == 3  # ceil(10/4)
        assert ("k", 0) in heap

    def test_duplicate_insert_rejected(self):
        pool, _ = make_pool()
        heap = HeapFile(pool, COSTS)
        heap.insert("a")
        with pytest.raises(KeyError):
            heap.insert("a")

    def test_same_page_keys_share_frames(self):
        pool, disk = make_pool(capacity=16)
        heap = HeapFile(pool, COSTS, records_per_page=4)
        for i in range(4):
            heap.insert(("k", i))
        disk.stats.page_reads = 0
        for i in range(4):
            heap.access(("k", i))
        assert disk.stats.page_reads == 0  # one page, already resident

    def test_delete_frees_directory(self):
        pool, _ = make_pool()
        heap = HeapFile(pool, COSTS)
        heap.insert("a")
        heap.delete("a")
        assert "a" not in heap
        assert heap.page_of("a") is None

    def test_unknown_key_costs_probe_only(self):
        pool, _ = make_pool()
        heap = HeapFile(pool, COSTS)
        assert heap.access("ghost") == COSTS.index_lookup_us


class TestWal:
    def test_logical_records_are_small(self):
        disk = SimulatedDisk(COSTS)
        logical = WriteAheadLog(disk, COSTS, LogMode.LOGICAL)
        physical = WriteAheadLog(disk, COSTS, LogMode.PHYSICAL)
        assert logical.record_bytes < physical.record_bytes

    def test_group_commit_one_fsync(self):
        disk = SimulatedDisk(COSTS)
        wal = WriteAheadLog(disk, COSTS, LogMode.LOGICAL)
        for i in range(10):
            wal.append("block", i)
        wal.group_commit()
        assert disk.stats.fsyncs == 1
        assert len(wal.records("block")) == 10

    def test_unflushed_records_not_durable(self):
        disk = SimulatedDisk(COSTS)
        wal = WriteAheadLog(disk, COSTS, LogMode.LOGICAL)
        wal.append("block", 1)
        assert wal.records() == []
        wal.group_commit()
        assert len(wal.records()) == 1

    def test_truncate_drops_durable_records(self):
        disk = SimulatedDisk(COSTS)
        wal = WriteAheadLog(disk, COSTS, LogMode.LOGICAL)
        wal.append("block", 1)
        wal.group_commit()
        wal.truncate()
        assert wal.records() == []


class TestCheckpointManager:
    def test_interval_boundary(self):
        mgr = CheckpointManager(interval_blocks=5)
        assert not mgr.maybe_checkpoint(0, {})
        assert mgr.maybe_checkpoint(4, {"a": 1})
        assert mgr.latest().block_id == 4

    def test_keeps_last_two(self):
        mgr = CheckpointManager(interval_blocks=1)
        for b in range(5):
            mgr.maybe_checkpoint(b, {"b": b})
        assert mgr.count == 2
        assert mgr.latest().block_id == 4

    def test_torn_latest_falls_back(self):
        mgr = CheckpointManager(interval_blocks=1)
        mgr.maybe_checkpoint(0, {"b": 0})
        mgr.maybe_checkpoint(1, {"b": 1})
        mgr.torn_latest = True
        assert mgr.latest().block_id == 0

    def test_checkpoint_deep_copies_state(self):
        mgr = CheckpointManager(interval_blocks=1)
        state = {"a": [1]}
        mgr.maybe_checkpoint(0, state)
        state["a"].append(2)
        assert mgr.latest().state == {"a": [1]}


class TestBlockLog:
    def test_blocks_after(self):
        class FakeBlock:
            def __init__(self, block_id):
                self.block_id = block_id

        log = BlockLog()
        for i in range(5):
            log.append(FakeBlock(i))
        assert [b.block_id for b in log.blocks_after(2)] == [3, 4]
        assert len(log) == 5

    def test_blocks_after_bisect_matches_naive_scan(self):
        """The bisect cut point must agree with the seed's linear scan on
        every boundary, including gapped id sequences (sharded sub-block
        logs skip nothing, but the contract shouldn't depend on that)."""

        class FakeBlock:
            def __init__(self, block_id):
                self.block_id = block_id

        log = BlockLog()
        for block_id in (0, 1, 2, 5, 6, 9):
            log.append(FakeBlock(block_id))
        for cut in range(-2, 11):
            fast = log.blocks_after(cut)
            naive = log.blocks_after(cut, indexed=False)
            assert fast == naive, f"cut={cut}"

    def test_out_of_order_append_rejected(self):
        class FakeBlock:
            def __init__(self, block_id):
                self.block_id = block_id

        log = BlockLog()
        log.append(FakeBlock(3))
        with pytest.raises(ValueError):
            log.append(FakeBlock(3))
        with pytest.raises(ValueError):
            log.append(FakeBlock(1))


class TestStorageEngine:
    def test_profiles_change_costs(self):
        ssd = StorageEngine(profile=StorageProfile.SSD)
        ram = StorageEngine(profile=StorageProfile.RAMDISK)
        mem = StorageEngine(profile=StorageProfile.MEMORY)
        assert ssd.costs.page_read_us > ram.costs.page_read_us
        assert ram.costs.page_read_us > mem.costs.page_read_us
        # memory engine also drops the buffer-manager masking overhead
        assert mem.costs.buffer_admin_us < ssd.costs.buffer_admin_us

    def test_preload_resets_stats(self):
        engine = StorageEngine()
        engine.preload({("k", i): i for i in range(100)})
        assert engine.io_reads == 0 and engine.io_writes == 0

    def test_read_cost_varies_with_residency(self, ):
        engine = StorageEngine(pool_pages=2)
        engine.preload({("k", i): i for i in range(500)})
        cold = engine.read_cost(("k", 0))
        warm = engine.read_cost(("k", 0))
        assert cold > warm

    def test_apply_block_installs_and_fsyncs(self):
        engine = StorageEngine()
        engine.preload({"a": 1})
        before = engine.disk.stats.fsyncs
        engine.apply_block(0, [("a", 2)])
        assert engine.store.get_latest("a")[0] == 2
        assert engine.disk.stats.fsyncs == before + 1

    def test_checkpoint_if_due_respects_interval(self):
        engine = StorageEngine(checkpoint_interval=2)
        engine.preload({"a": 1})
        assert engine.checkpoint_if_due(0) == 0.0
        engine.apply_block(0, [("a", 2)])
        engine.apply_block(1, [("a", 3)])
        engine.checkpoint_if_due(1)
        cp = engine.checkpoints.latest()
        assert cp is not None and cp.block_id == 1
        assert cp.state["a"] == 3
        assert cp.prev_state["a"] == 2

    def test_incremental_checkpoint_covers_unbuffered_blocks(self):
        """Blocks applied behind the engine's back (directly on the store)
        never enter the delta buffer — the checkpoint must rescan them, or
        the folded state silently diverges from the full snapshot."""
        engine = StorageEngine(checkpoint_interval=2, incremental_checkpoints=True)
        engine.preload({"a": 1})
        engine.store.apply_block(0, [("a", 10)])  # bypasses the buffer
        engine.store.apply_block(1, [("b", 20)])
        engine.checkpoint_if_due(1)
        cp = engine.checkpoints.latest()
        assert cp.block_id == 1
        assert cp.state == engine.store.materialize()
        assert cp.prev_state == engine.store.materialize_at(0)
        # a buffered and an unbuffered block in one interval also folds right
        engine.apply_block(2, [("a", 30)])
        engine.store.apply_block(3, [("c", 40)])
        engine.checkpoint_if_due(3)
        cp = engine.checkpoints.latest()
        assert cp.state == engine.store.materialize()
        assert cp.prev_state == engine.store.materialize_at(2)
