"""Tests for the network, Kafka and HotStuff consensus models."""

from __future__ import annotations

import pytest

from repro.consensus.hotstuff import HotStuffConsensus
from repro.consensus.kafka import KafkaOrdering
from repro.consensus.network import NetworkModel, NetworkPreset
from repro.sim.costs import CostModel

COSTS = CostModel()


class TestNetworkModel:
    def test_presets_exist(self):
        for preset in NetworkPreset:
            model = NetworkModel.preset(preset)
            assert model.one_way_us > 0

    def test_transfer_scales_with_bytes(self):
        net = NetworkModel.preset(NetworkPreset.DEFAULT_1G)
        assert net.transfer_us(2000) == pytest.approx(2 * net.transfer_us(1000))

    def test_broadcast_scales_with_fanout(self):
        net = NetworkModel.preset(NetworkPreset.DEFAULT_1G)
        assert net.broadcast_us(1000, 10) == pytest.approx(10 * net.transfer_us(1000))

    def test_wan_latency_kicks_in_beyond_one_region(self):
        wan = NetworkModel.preset(NetworkPreset.CLOUD_WAN)
        assert wan.worst_one_way_us(20) == wan.one_way_us
        assert wan.worst_one_way_us(21) == wan.cross_region_one_way_us
        assert wan.worst_one_way_us(21) > 100 * wan.worst_one_way_us(20)

    def test_lan_flat_in_node_count(self):
        lan = NetworkModel.preset(NetworkPreset.CLOUD_LAN_5G)
        assert lan.worst_one_way_us(4) == lan.worst_one_way_us(80)


class TestKafka:
    def test_latency_grows_with_replicas(self):
        net = NetworkModel.preset(NetworkPreset.DEFAULT_1G)
        kafka = KafkaOrdering(net, COSTS)
        assert kafka.block_latency_us(10_000, 80) > kafka.block_latency_us(10_000, 4)

    def test_throughput_cap_shrinks_with_payload_and_fanout(self):
        net = NetworkModel.preset(NetworkPreset.CLOUD_LAN_5G)
        kafka = KafkaOrdering(net, COSTS)
        small = kafka.throughput_cap_tps(100, 100 * 128, 4)
        big_payload = kafka.throughput_cap_tps(100, 100 * 1500, 4)
        many_replicas = kafka.throughput_cap_tps(100, 100 * 1500, 80)
        assert small > big_payload > many_replicas

    def test_sov_uplink_saturates_at_scale(self):
        """The Figures 15/16 mechanism: 1.5KB endorsed rw-sets times 80
        replicas cap SOV throughput; 128B OE commands do not bind."""
        net = NetworkModel.preset(NetworkPreset.CLOUD_LAN_5G)
        kafka = KafkaOrdering(net, COSTS)
        sov_cap = kafka.throughput_cap_tps(100, 100 * 1500, 80)
        oe_cap = kafka.throughput_cap_tps(100, 100 * 128, 80)
        assert sov_cap < 8000
        assert oe_cap > 30_000


class TestHotStuff:
    def _consensus(self, nodes, preset=NetworkPreset.CLOUD_LAN_5G):
        return HotStuffConsensus(NetworkModel.preset(preset), COSTS, num_nodes=nodes)

    def test_quorum_size(self):
        assert self._consensus(4).quorum == 3
        assert self._consensus(80).quorum == 53

    def test_throughput_order_of_magnitude(self):
        """Figure 1/21: consensus sustains >100K tps at 80 nodes — an order
        of magnitude above the disk DB layer."""
        tps = self._consensus(80).throughput_tps()
        assert 80_000 < tps < 400_000

    def test_wan_hurts_latency_not_throughput(self):
        lan = self._consensus(80, NetworkPreset.CLOUD_LAN_5G)
        wan = self._consensus(80, NetworkPreset.CLOUD_WAN)
        assert wan.block_latency_us() > 5 * lan.block_latency_us()
        assert wan.throughput_tps() == pytest.approx(lan.throughput_tps(), rel=0.25)

    def test_latency_grows_with_nodes_in_wan(self):
        small = self._consensus(20, NetworkPreset.CLOUD_WAN)
        large = self._consensus(80, NetworkPreset.CLOUD_WAN)
        assert large.block_latency_us() > small.block_latency_us()

    def test_leader_cpu_grows_with_quorum(self):
        assert (
            self._consensus(80).leader_round_cpu_us()
            > self._consensus(4).leader_round_cpu_us()
        )
