"""The full chaos-drill matrix (ISSUE 6 acceptance; ``-m faults``).

Every standard fault plan — crash points, torn writes, double faults,
2PC message faults, partitions — crossed with every two-phase scheme
(harmony / aria / rbc) and shard count (1 / 2 / 4) must leave the
disturbed, supervised run **bit-identical** to an undisturbed reference:
per-block decisions, decision digest, per-shard state hashes, and the
certificate head hash. Deselected from tier-1 (like ``perf``); run with
``pytest -m faults`` or ``python -m repro.faults``.
"""

from __future__ import annotations

import pytest

from repro.faults.drill import (
    DRILL_SCHEMES,
    DRILL_SHARD_COUNTS,
    DRILL_WORKLOADS,
    SMOKE_PLAN_NAMES,
    SMOKE_WORKLOADS,
    drill_matrix,
    run_drill,
)
from repro.faults.plan import standard_plans

pytestmark = pytest.mark.faults

PLAN_NAMES = [p.name for p in standard_plans(num_blocks=8, num_shards=3)]


class TestDrillMatrix:
    @pytest.mark.parametrize("num_shards", DRILL_SHARD_COUNTS)
    @pytest.mark.parametrize("scheme", DRILL_SCHEMES)
    @pytest.mark.parametrize("plan_name", PLAN_NAMES)
    def test_drill_bit_identical_to_reference(self, plan_name, scheme, num_shards):
        plans = {p.name: p for p in standard_plans(num_blocks=8, num_shards=num_shards)}
        result = run_drill(scheme, num_shards, plans[plan_name])
        assert result.ok, (
            f"{result.label}: first divergent block "
            f"{result.first_divergent_block}; {result.failures}"
        )

    def test_matrix_covers_the_acceptance_floor(self):
        """>= 10 distinct plans, incl. crash-during-recovery and a
        partition exercised during 2PC."""
        assert len(PLAN_NAMES) >= 10
        assert "crash-during-recovery" in PLAN_NAMES
        assert "partition-2pc" in PLAN_NAMES

    def test_drills_reproducible_from_seed_alone(self):
        """Re-deriving the plan from its seed and re-running the drill
        reproduces the identical verdict and accounting."""
        plans = {p.name: p for p in standard_plans(num_blocks=8, num_shards=2)}
        plan = plans["chaos-61"]
        a = run_drill("harmony", 2, plan)
        b = run_drill("harmony", 2, plan)
        assert a.ok and b.ok
        assert a.stats == b.stats


class TestWorkloadBreadth:
    """TPC-C and the adversarial family ride the same drill matrix."""

    @pytest.mark.parametrize("num_shards", DRILL_SHARD_COUNTS)
    @pytest.mark.parametrize("scheme", DRILL_SCHEMES)
    @pytest.mark.parametrize(
        "workload", [w for w in DRILL_WORKLOADS if w != "smallbank"]
    )
    def test_new_workload_drills_bit_identical(self, workload, scheme, num_shards):
        plans = {
            p.name: p for p in standard_plans(num_blocks=8, num_shards=num_shards)
        }
        for name in sorted(SMOKE_PLAN_NAMES):
            result = run_drill(scheme, num_shards, plans[name], workload=workload)
            assert result.ok, (
                f"{result.label}: first divergent block "
                f"{result.first_divergent_block}; {result.failures}"
            )

    def test_smoke_matrix_includes_a_tpcc_drill(self):
        """The per-PR smoke gate drills TPC-C, not just smallbank."""
        assert "tpcc" in SMOKE_WORKLOADS
        labels = [r.label for r in drill_matrix(smoke=True)]
        assert any(" x tpcc" in label for label in labels)
        assert all("FAIL" not in label for label in labels)

    def test_full_matrix_covers_every_registered_drill_workload(self):
        from repro.workloads import REGISTRY

        assert set(DRILL_WORKLOADS) <= set(REGISTRY)
        assert {"tpcc", "adv-counter", "adv-scan", "adv-skewshift"} <= set(
            DRILL_WORKLOADS
        )
