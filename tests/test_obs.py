"""Tests for the deterministic tracing + metrics subsystem (repro.obs)."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    Histogram,
    MetricsRegistry,
    Span,
    Tracer,
    block_paths,
    det_digest,
    det_events,
    export_jsonl,
    load_trace,
    render_report,
    shard_skew,
    slowest_blocks,
    stage_breakdown,
    trace_drill,
    trace_run,
)


# --------------------------------------------------------------- histograms
class TestHistogram:
    def test_empty(self):
        hist = Histogram()
        assert hist.quantile(50) == 0.0
        assert hist.mean == 0.0

    def test_quantile_domain(self):
        hist = Histogram()
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.quantile(-0.1)
        with pytest.raises(ValueError):
            hist.quantile(100.1)

    def test_log_bucket_accuracy(self):
        """Quantile reads carry at most one bucket (~10%) of relative
        error; min/max/mean are exact."""
        hist = Histogram()
        for v in range(1, 1001):
            hist.observe(float(v))
        assert hist.min == 1.0 and hist.max == 1000.0
        assert hist.mean == pytest.approx(500.5)
        for q, exact in ((50, 500.0), (99, 990.0), (99.9, 999.0)):
            estimate = hist.quantile(q)
            assert exact * 0.9 <= estimate <= exact * 1.1 * Histogram.GROWTH

    def test_p999_never_exceeds_max(self):
        hist = Histogram()
        hist.observe(123.456)
        assert hist.p50 == hist.p99 == hist.p999 == 123.456

    def test_zeros_bucket(self):
        hist = Histogram()
        for _ in range(9):
            hist.observe(0.0)
        hist.observe(100.0)
        assert hist.p50 == 0.0
        assert hist.quantile(100) <= 100.0

    def test_round_trip(self):
        hist = Histogram()
        for v in (0.0, 0.5, 7.0, 7.1, 900.0):
            hist.observe(v)
        clone = Histogram.from_dict(json.loads(json.dumps(hist.to_dict())))
        assert clone.to_dict() == hist.to_dict()
        assert clone.p50 == hist.p50 and clone.p999 == hist.p999

    def test_registry_get_or_create_and_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        registry.counter("a").inc()
        registry.gauge("g").set(2.5)
        registry.histogram("h").observe(10.0)
        assert registry.counter("a").value == 4
        clone = MetricsRegistry.from_dict(
            json.loads(json.dumps(registry.to_dict()))
        )
        assert clone.to_dict() == registry.to_dict()


# ------------------------------------------------------------------- tracer
class TestTracer:
    def test_seq_and_kinds(self):
        tracer = Tracer()
        tracer.stage("prepare", block=0, shard=1, sim_us=5.0)
        tracer.event("certify", block=0)
        tracer.fault("crash", block=0, shard=1)
        tracer.anno("backend_submit", block=0, timing={"deltas": 3})
        assert [s.seq for s in tracer.spans] == [0, 1, 2, 3]
        assert [s.kind for s in tracer.spans] == [
            "stage", "event", "fault", "anno",
        ]

    def test_det_events_exclude_anno_and_timing(self):
        tracer = Tracer()
        tracer.stage("prepare", block=0, shard=0, timing={"sim_us": 99.0})
        tracer.anno("backend_submit", block=0)
        events = tracer.det_events()
        assert len(events) == 1
        assert "timing" not in events[0] and "seq" not in events[0]
        assert events[0]["name"] == "prepare"

    def test_digest_insensitive_to_annotations(self):
        """Different timing annotations and interleaved anno spans must not
        move the deterministic digest — that is what lets serial and
        process backends share one digest."""
        a, b = Tracer(), Tracer()
        a.stage("prepare", block=0, shard=0, timing={"sim_us": 1.0})
        a.stage("commit", block=0, shard=0)
        b.stage("prepare", block=0, shard=0, timing={"sim_us": 2.0})
        b.anno("backend_submit", block=0)
        b.stage("commit", block=0, shard=0)
        assert a.det_digest() == b.det_digest()
        c = Tracer()
        c.stage("prepare", block=0, shard=1)  # a det field differs
        c.stage("commit", block=0, shard=0)
        assert c.det_digest() != a.det_digest()

    def test_wall_annotations(self):
        tracer = Tracer(wall=True)
        tracer.event("order", block=0)
        assert "wall_ts" in tracer.spans[0].timing
        assert tracer.det_events()[0] == det_events(tracer.spans)[0]


# ----------------------------------------------------------------- analysis
def _spans(raw):
    return [
        Span(seq=i, name=n, kind=k, block=b, shard=s, sim_us=us)
        for i, (n, k, b, s, us) in enumerate(raw)
    ]


class TestAnalyze:
    def test_stage_breakdown_shares(self):
        spans = _spans([
            ("prepare", "stage", 0, 0, 30.0),
            ("commit", "stage", 0, 0, 60.0),
            ("order", "event", 0, None, 10.0),
            ("backend_submit", "anno", 0, None, 999.0),  # excluded
        ])
        breakdown = stage_breakdown(spans)
        assert set(breakdown) == {"prepare", "commit", "order"}
        assert sum(e["share"] for e in breakdown.values()) == pytest.approx(1.0)
        assert breakdown["commit"]["share"] == pytest.approx(0.6)

    def test_shard_skew(self):
        spans = _spans([
            ("prepare", "stage", 0, 0, 10.0),
            ("prepare", "stage", 0, 1, 30.0),
            ("order", "event", 0, None, 5.0),  # unsharded: not in skew
        ])
        skew = shard_skew(spans)
        assert skew[0]["skew"] == pytest.approx(0.5)
        assert skew[1]["skew"] == pytest.approx(1.5)

    def test_block_critical_path(self):
        spans = _spans([
            ("prepare", "stage", 0, 0, 10.0),
            ("prepare", "stage", 0, 1, 40.0),
            ("commit", "stage", 0, 0, 10.0),
            ("vote_exchange", "stage", 0, None, 7.0),  # serial add-on
            ("prepare", "stage", 1, 0, 100.0),
            ("crash", "fault", 1, 0, 0.0),
        ])
        paths = block_paths(spans)
        assert paths[0]["critical_shard"] == 1
        assert paths[0]["total_us"] == pytest.approx(47.0)
        assert paths[1]["faults"] == 1 and paths[1]["fault_names"] == ["crash"]
        ranked = slowest_blocks(spans, top=1)
        assert ranked[0][0] == 1

    def test_render_report_sections(self):
        spans = _spans([
            ("prepare", "stage", 0, 0, 10.0),
            ("crash", "fault", 0, 0, 0.0),
        ])
        report = render_report(spans, meta={"mode": "test"})
        assert "per-stage breakdown" in report
        assert "per-shard load skew" in report
        assert "FAULT(crash)" in report
        assert "injected fault events" in report


# ------------------------------------------------- determinism (the pin)
class TestDeterminism:
    @pytest.mark.parametrize("workload", ["smallbank", "adv-counter"])
    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_serial_vs_process_det_stream_identical(self, workload, num_shards):
        """The decision-relevant span stream is bit-identical whether
        prepares run in-process or on the worker pool."""
        kwargs = dict(
            workload=workload,
            num_shards=num_shards,
            num_blocks=4,
            block_size=10,
        )
        serial, serial_metrics = trace_run(backend="serial", **kwargs)
        process, process_metrics = trace_run(backend="process", **kwargs)
        assert process_metrics.extra["backend"] == "process"
        assert serial_metrics.extra["backend"] == "serial"
        assert serial.det_events() == process.det_events()
        assert serial.det_digest() == process.det_digest()

    def test_seeded_runs_reproduce_full_spans(self):
        """Same seed, same backend: the *entire* span stream (timing
        annotations included) reproduces bit-identically."""
        a, _ = trace_run(num_blocks=5, block_size=8)
        b, _ = trace_run(num_blocks=5, block_size=8)
        assert [s.to_dict() for s in a.spans] == [s.to_dict() for s in b.spans]
        assert a.metrics.to_dict() == b.metrics.to_dict()

    def test_different_seed_moves_digest(self):
        a, _ = trace_run(num_blocks=4, block_size=8, seed=61)
        b, _ = trace_run(num_blocks=4, block_size=8, seed=62)
        assert a.det_digest() != b.det_digest()

    def test_disabled_tracing_is_identity(self):
        """Hooks default to None and an untraced run decides identically
        to a traced one — tracing observes, never perturbs."""
        from repro.obs.capture import build_workload
        from repro.shard.system import ShardConfig, ShardedBlockchain

        config = ShardConfig(
            system="harmony", num_shards=2, block_size=8, num_blocks=4, seed=61
        )
        chain = ShardedBlockchain(config, build_workload("smallbank", 2))
        assert chain.tracer is None
        assert chain.cert_log.tracer is None
        assert chain.group.nodes[0].engine.checkpoints.tracer is None
        untraced = chain.run()
        traced_tracer, traced = trace_run(num_blocks=4, block_size=8)
        assert untraced.extra["decision_digest"] == traced.extra["decision_digest"]
        assert untraced.extra["state_hash"] == traced.extra["state_hash"]
        assert untraced.extra["cert_head"] == traced.extra["cert_head"]
        assert len(traced_tracer.spans) > 0


# ------------------------------------------------------------ export + CLI
class TestExport:
    def test_round_trip(self, tmp_path):
        tracer, _ = trace_run(num_blocks=4, block_size=8)
        path = tmp_path / "trace.jsonl"
        export_jsonl(tracer, str(path))
        loaded = load_trace(str(path))
        assert loaded.spans == tracer.spans
        assert loaded.meta == tracer.meta
        assert loaded.metrics.to_dict() == tracer.metrics.to_dict()
        assert loaded.verify_digest()
        assert det_digest(loaded.spans) == tracer.det_digest()

    def test_digest_detects_tampering(self, tmp_path):
        tracer, _ = trace_run(num_blocks=4, block_size=8)
        path = tmp_path / "trace.jsonl"
        export_jsonl(tracer, str(path))
        lines = path.read_text().splitlines()
        span = json.loads(lines[1])
        span["shard"] = 93  # tamper with a deterministic field
        lines[1] = json.dumps(span, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        assert not load_trace(str(path)).verify_digest()

    def test_unknown_record_type_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown trace record"):
            load_trace(str(path))

    def test_cli_trace_and_report(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        out = tmp_path / "t.jsonl"
        assert main(["trace", "--out", str(out), "--blocks", "4"]) == 0
        assert main(["report", str(out), "--top", "3"]) == 0
        captured = capsys.readouterr().out
        assert "per-stage breakdown" in captured
        assert "per-shard load skew" in captured
        assert "top-3 slowest blocks" in captured


# -------------------------------------------------------------- fault drills
class TestTracedDrills:
    def test_drill_trace_annotates_faults(self, tmp_path):
        tracer, result = trace_drill(plan_name="crash-before-prepare")
        assert result.ok  # the drill itself stays bit-identical
        assert tracer.meta["drill_ok"] is True
        fault_names = {s.name for s in tracer.spans if s.kind == "fault"}
        assert "crash" in fault_names
        assert tracer.metrics.counter("supervisor.recoveries").value >= 1
        path = tmp_path / "drill.jsonl"
        export_jsonl(tracer, str(path))
        report = render_report(load_trace(str(path)).spans, meta=tracer.meta)
        assert "FAULT" in report
        assert "injected fault events" in report
        assert "crash" in report

    def test_drill_trace_reproducible(self):
        a, _ = trace_drill(plan_name="crash-before-prepare")
        b, _ = trace_drill(plan_name="crash-before-prepare")
        assert a.det_digest() == b.det_digest()

    def test_unknown_plan_raises(self):
        with pytest.raises(ValueError, match="unknown fault plan"):
            trace_drill(plan_name="no-such-plan")
