"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.storage.engine import StorageEngine
from repro.txn.commands import AddValue, MulValue, SetValue
from repro.txn.procedures import ProcedureRegistry
from repro.txn.transaction import Txn, TxnSpec


def make_engine(num_keys: int = 64, pool_pages: int = 8, **engine_kwargs) -> StorageEngine:
    engine = StorageEngine(pool_pages=pool_pages, **engine_kwargs)
    engine.preload({("k", i): 100 for i in range(num_keys)})
    return engine


def generic_registry() -> ProcedureRegistry:
    """A procedure that executes a literal list of operations.

    ops entries: ("r", i) read | ("add", i, d) | ("mul", i, f) | ("set", i, v)
    | ("rmw", i, d) separated read-then-write | ("scan", lo, hi).
    Used by unit and property tests to build arbitrary conflict patterns.
    """
    registry = ProcedureRegistry()

    @registry.register("ops")
    def ops_proc(ctx, ops):
        out = []
        for op in ops:
            kind = op[0]
            if kind == "r":
                out.append(ctx.read(("k", op[1])))
            elif kind == "add":
                ctx.update(("k", op[1]), AddValue(op[2]))
            elif kind == "mul":
                ctx.update(("k", op[1]), MulValue(op[2]))
            elif kind == "set":
                ctx.update(("k", op[1]), SetValue(op[2]))
            elif kind == "rmw":
                value = ctx.read(("k", op[1])) or 0
                ctx.update(("k", op[1]), SetValue(value + op[2]))
            elif kind == "scan":
                out.append(tuple(ctx.scan(("k", op[1]), ("k", op[2]))))
        return tuple(out)

    return registry


def make_txns(op_lists, block_id: int = 0, first_tid: int = 0) -> list[Txn]:
    return [
        Txn(tid=first_tid + i, block_id=block_id, spec=TxnSpec("ops", (("ops", tuple(ops)),)))
        for i, ops in enumerate(op_lists)
    ]


@pytest.fixture
def engine() -> StorageEngine:
    return make_engine()


@pytest.fixture
def registry() -> ProcedureRegistry:
    return generic_registry()
