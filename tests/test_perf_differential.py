"""Differential tests: indexed fast paths vs the retained naive paths.

The perf PR's contract is that every optimized hot path — interval-indexed
rw-edge extraction, the Rule-3 inter-block fold, the bitset reachability
closure, Aria's reservation range check, the streamed overlay scan, the
batched ``MVStore.load`` and the incremental state hash — is *bit-identical*
in decision outputs to the seed's naive implementation. These tests run
randomized blocks through both and assert identical abort sets, counters,
rows and hashes.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dependencies import BlockDependencyIndex
from repro.core.reordering import KeyApply, apply_write_sets, derive_reservation
from repro.core.validation import HarmonyValidator
from repro.dcc.aria import AriaExecutor
from repro.dcc.oracle import HistoryOracle, SerializabilityOracle
from repro.execution import OverlayView
from repro.intervals import RangeIndex, SortedKeys, covers
from repro.storage.mvstore import MVStore, TOMBSTONE
from repro.txn.commands import AddValue, SetValue
from repro.txn.transaction import Txn, TxnSpec

from tests.conftest import generic_registry, make_engine, make_txns

NUM_KEYS = 24


def _key(i: int) -> tuple:
    return ("k", i)


@st.composite
def txn_block(draw, first_tid: int = 1, max_txns: int = 10):
    """Random transactions with point reads, range reads and writes."""
    n = draw(st.integers(min_value=2, max_value=max_txns))
    txns = []
    for tid in range(first_tid, first_tid + n):
        txn = Txn(tid=tid, block_id=0, spec=TxnSpec("ops"))
        for i in draw(st.lists(st.integers(0, NUM_KEYS - 1), max_size=3, unique=True)):
            txn.read_set[_key(i)] = None
        for _ in range(draw(st.integers(0, 2))):
            start = draw(st.integers(0, NUM_KEYS - 1))
            span = draw(st.integers(0, NUM_KEYS // 2))
            txn.read_ranges.append((_key(start), _key(start + span)))
        for i in draw(st.lists(st.integers(0, NUM_KEYS - 1), max_size=3, unique=True)):
            txn.record_update(_key(i), AddValue(1))
        txns.append(txn)
    return txns


def clone_block(txns):
    out = []
    for t in txns:
        c = Txn(tid=t.tid, block_id=t.block_id, spec=t.spec)
        c.read_set = dict(t.read_set)
        c.read_ranges = list(t.read_ranges)
        c.write_set = dict(t.write_set)
        c.updated_keys = list(t.updated_keys)
        out.append(c)
    return out


class TestDependencyIndex:
    @given(txn_block())
    @settings(max_examples=200, deadline=None)
    def test_readers_of_identical(self, txns):
        naive = BlockDependencyIndex(txns, indexed=False)
        fast = BlockDependencyIndex(txns, indexed=True)
        for i in range(NUM_KEYS + 2):
            assert naive.readers_of(_key(i)) == fast.readers_of(_key(i))

    @given(txn_block())
    @settings(max_examples=200, deadline=None)
    def test_rw_edges_identical(self, txns):
        naive = BlockDependencyIndex(txns, indexed=False)
        fast = BlockDependencyIndex(txns, indexed=True)
        assert list(naive.rw_edges()) == list(fast.rw_edges())


class TestValidation:
    @given(txn_block())
    @settings(max_examples=200, deadline=None)
    def test_intra_block_identical(self, txns):
        a, b = clone_block(txns), clone_block(txns)
        stats_naive = HarmonyValidator(indexed=False).validate(a)
        stats_fast = HarmonyValidator(indexed=True).validate(b)
        assert stats_naive.aborted_tids == stats_fast.aborted_tids
        for ta, tb in zip(a, b):
            assert (ta.min_out, ta.max_in, ta.status) == (tb.min_out, tb.max_in, tb.status)

    @given(txn_block(), st.data())
    @settings(max_examples=150, deadline=None)
    def test_inter_block_fold_identical(self, prev_txns, data):
        HarmonyValidator().validate(prev_txns)
        for t in prev_txns:
            if not t.aborted:
                t.mark_committed()
        records = HarmonyValidator.records_for(prev_txns)
        current = data.draw(txn_block(first_tid=len(prev_txns) + 1))

        a, b = clone_block(current), clone_block(current)
        stats_naive = HarmonyValidator(inter_block=True, indexed=False).validate(a, records)
        stats_fast = HarmonyValidator(inter_block=True, indexed=True).validate(b, records)
        assert stats_naive.aborted_tids == stats_fast.aborted_tids
        assert stats_naive.inter_block_aborts == stats_fast.inter_block_aborts
        for ta, tb in zip(a, b):
            assert (ta.min_out, ta.status, ta.abort_reason) == (
                tb.min_out,
                tb.status,
                tb.abort_reason,
            )

    @given(txn_block())
    @settings(max_examples=200, deadline=None)
    def test_reachability_identical(self, txns):
        HarmonyValidator().validate(txns)
        for t in txns:
            if not t.aborted:
                t.mark_committed()
        naive = HarmonyValidator.records_for(txns, indexed=False)
        fast = HarmonyValidator.records_for(txns, indexed=True)
        assert naive.reachable == fast.reachable
        assert naive.writers.keys() == fast.writers.keys()


@st.composite
def oracle_history(draw):
    """A randomized multi-block committed history for the history oracle:
    point reads carrying observed versions, range reads, per-key apply
    chains and a mix of committed/aborted transactions."""
    num_blocks = draw(st.integers(min_value=1, max_value=4))
    blocks = []
    tid = 0
    for block_id in range(num_blocks):
        n = draw(st.integers(min_value=1, max_value=6))
        txns = []
        for _ in range(n):
            txn = Txn(tid=tid, block_id=block_id, spec=TxnSpec("ops"))
            tid += 1
            for i in draw(
                st.lists(st.integers(0, NUM_KEYS - 1), max_size=3, unique=True)
            ):
                version = draw(
                    st.one_of(
                        st.none(),
                        st.tuples(st.integers(-1, block_id), st.integers(0, 2)),
                    )
                )
                txn.read_set[_key(i)] = version
            for _ in range(draw(st.integers(0, 2))):
                start = draw(st.integers(0, NUM_KEYS - 1))
                span = draw(st.integers(0, NUM_KEYS // 2))
                txn.read_ranges.append((_key(start), _key(start + span)))
            for i in draw(
                st.lists(st.integers(0, NUM_KEYS - 1), max_size=3, unique=True)
            ):
                txn.record_update(_key(i), AddValue(1))
            if draw(st.booleans()):
                txn.mark_committed()
            else:
                from repro.txn.transaction import AbortReason

                txn.mark_aborted(AbortReason.WAW)
            txns.append(txn)
        chains: dict = {}
        for txn in txns:  # apply chains in block (TID) order
            for key in txn.write_set:
                chains.setdefault(key, []).append(txn.tid)
        applies = [
            KeyApply(key=key, updater_tids=tids, handler_tid=tids[0])
            for key, tids in chains.items()
        ]
        snap = block_id - draw(st.integers(1, 2))
        blocks.append((block_id, txns, applies, snap))
    return blocks


class TestHistoryOracleDifferential:
    @given(oracle_history())
    @settings(max_examples=150, deadline=None)
    def test_build_graph_identical(self, blocks):
        naive = HistoryOracle(indexed=False)
        fast = HistoryOracle(indexed=True)
        for block_id, txns, applies, snap in blocks:
            for oracle in (naive, fast):
                oracle.record_block(block_id, txns, applies, snapshot_block_id=snap)
        assert naive.build_graph() == fast.build_graph()
        assert naive.is_serializable() == fast.is_serializable()

    @given(oracle_history())
    @settings(max_examples=100, deadline=None)
    def test_incremental_checks_match_one_shot(self, blocks):
        """Checking after every block (the memoized usage pattern) must give
        the same verdicts as a naive oracle rebuilt from scratch each time."""
        naive = HistoryOracle(indexed=False)
        fast = HistoryOracle(indexed=True)
        for block_id, txns, applies, snap in blocks:
            for oracle in (naive, fast):
                oracle.record_block(block_id, txns, applies, snapshot_block_id=snap)
            assert naive.build_graph() == fast.build_graph()
            assert naive.is_serializable() == fast.is_serializable()
        # a repeated fully-memoized call is idempotent
        assert fast.build_graph() == fast.build_graph()

class TestFalseAbortDifferential:
    """Indexed false-abort counting vs the per-abortee graph rebuild."""

    @given(txn_block(max_txns=14))
    @settings(max_examples=150, deadline=None)
    def test_counts_identical_after_validation(self, txns):
        HarmonyValidator().validate(txns)
        for txn in txns:
            if not txn.aborted:
                txn.mark_committed()
        naive = SerializabilityOracle.count_false_aborts(txns, indexed=False)
        fast = SerializabilityOracle.count_false_aborts(txns, indexed=True)
        assert naive == fast

    @given(txn_block(max_txns=12), st.data())
    @settings(max_examples=150, deadline=None)
    def test_counts_identical_under_arbitrary_statuses(self, txns, data):
        """Any committed/aborted split and any chain order (the value-based
        schemes use TID order) must agree between the two paths."""
        from repro.txn.transaction import AbortReason

        for txn in txns:
            if data.draw(st.booleans()):
                txn.mark_committed()
            else:
                txn.mark_aborted(AbortReason.WAW)
        for chain_order in (None, lambda t: t.tid):
            naive = SerializabilityOracle.count_false_aborts(
                txns, chain_order=chain_order, indexed=False
            )
            fast = SerializabilityOracle.count_false_aborts(
                txns, chain_order=chain_order, indexed=True
            )
            assert naive == fast


class TestGcDifferential:
    """Watermarked gc vs the seed's every-chain walk."""

    @given(
        st.lists(
            st.lists(
                st.tuples(st.integers(0, NUM_KEYS - 1), st.integers(0, 5)),
                max_size=8,
            ),
            min_size=1,
            max_size=6,
        ),
        st.data(),
    )
    @settings(max_examples=120, deadline=None)
    def test_gc_identical_and_watermark_sound(self, blocks, data):
        def build() -> MVStore:
            store = MVStore()
            store.load({_key(i): i for i in range(NUM_KEYS)})
            for block_id, writes in enumerate(blocks):
                batch = [
                    (_key(i), TOMBSTONE if v == 0 else v) for i, v in writes
                ]
                store.apply_block(block_id, batch)
            return store

        naive, fast = build(), build()
        horizons = sorted(
            data.draw(st.lists(st.integers(-1, len(blocks)), max_size=3))
        )
        for horizon in horizons:
            assert naive.gc(horizon, indexed=False) == fast.gc(horizon, indexed=True)
            assert naive._versions == fast._versions
        # the watermark must still cover every multi-version chain
        multi = {k for k, chain in fast._versions.items() if len(chain) > 1}
        assert multi <= fast._gc_pending


class TestHistoryOracleFallbacks:
    def test_heterogeneous_chain_keys_fall_back(self):
        """Unsortable chain-key populations degrade to the linear scan."""
        reader = Txn(tid=0, block_id=1, spec=TxnSpec("ops"))
        reader.read_ranges.append((0, 10))
        reader.mark_committed()
        writers = []
        for tid, key in ((1, 5), (2, "s"), (3, (9, 9))):
            txn = Txn(tid=tid, block_id=0, spec=TxnSpec("ops"))
            txn.record_update(key, AddValue(1))
            txn.mark_committed()
            writers.append(txn)
        applies = [
            KeyApply(key=key, updater_tids=[tid], handler_tid=tid)
            for tid, key in ((1, 5), (2, "s"), (3, (9, 9)))
        ]
        naive = HistoryOracle(indexed=False)
        fast = HistoryOracle(indexed=True)
        for oracle in (naive, fast):
            oracle.record_block(0, writers, applies, snapshot_block_id=-1)
            oracle.record_block(1, [reader], [], snapshot_block_id=0)
        graph = fast.build_graph()
        assert graph == naive.build_graph()
        # the range read stabbed the int key's chain: its block-0 write is
        # visible at the reader's snapshot, a wr edge writer -> reader
        assert 0 in graph[1]


class TestReorderReuse:
    @given(txn_block(), st.booleans(), st.booleans())
    @settings(max_examples=150, deadline=None)
    def test_apply_write_sets_identical(self, txns, inter_block, do_coalesce):
        validator = HarmonyValidator(inter_block=inter_block)
        stats = validator.validate(txns)
        base = {_key(i): i * 10 for i in range(NUM_KEYS)}

        def run(dep_index):
            return apply_write_sets(
                txns,
                read_base=lambda key: base.get(key),
                write_cost=lambda key: 1.0,
                do_coalesce=do_coalesce,
                dep_index=dep_index,
            )

        naive, reuse = run(None), run(stats.dep_index)
        assert derive_reservation(txns, None) == derive_reservation(
            txns, stats.dep_index
        )
        # an index built without collect_writer_txns lazily derives the
        # same chains on first use
        lazy_index = BlockDependencyIndex(txns)
        assert derive_reservation(txns, None) == derive_reservation(
            txns, lazy_index
        )
        assert naive.ordered_writes == reuse.ordered_writes
        assert naive.key_applies == reuse.key_applies
        assert naive.txn_commit_cpu_us == reuse.txn_commit_cpu_us

    @given(txn_block(max_txns=8), st.data())
    @settings(max_examples=100, deadline=None)
    def test_reservation_identical_at_any_abort_rate(self, txns, data):
        """The adaptive strategies (share / subtract / rebuild) must agree
        with the naive derivation whatever fraction of the block aborted."""
        from repro.txn.transaction import AbortReason

        doomed = data.draw(
            st.lists(st.sampled_from([t.tid for t in txns]), unique=True)
        )
        index = BlockDependencyIndex(txns)
        for txn in txns:
            if txn.tid in doomed:
                txn.mark_aborted(AbortReason.WAW)
        assert derive_reservation(txns, None) == derive_reservation(txns, index)


def _ops_strategy():
    point = st.tuples(st.just("r"), st.integers(0, 31))
    add = st.tuples(st.just("add"), st.integers(0, 31), st.integers(1, 5))
    setv = st.tuples(st.just("set"), st.integers(0, 31), st.integers(0, 99))
    rmw = st.tuples(st.just("rmw"), st.integers(0, 31), st.integers(1, 5))
    scan = st.tuples(st.just("scan"), st.integers(0, 20), st.integers(21, 32))
    op = st.one_of(point, add, setv, rmw, scan)
    return st.lists(st.lists(op, min_size=1, max_size=4), min_size=2, max_size=8)


class TestAriaRangeCheck:
    @given(_ops_strategy())
    @settings(max_examples=40, deadline=None)
    def test_decisions_and_state_identical(self, op_lists):
        outcomes = []
        for indexed in (False, True):
            engine = make_engine(num_keys=32)
            executor = AriaExecutor(engine, generic_registry(), indexed=indexed)
            txns = make_txns(op_lists)
            executor.execute_block(0, txns)
            outcomes.append(
                (
                    [(t.status, t.abort_reason) for t in txns],
                    engine.state_hash(),
                )
            )
        assert outcomes[0] == outcomes[1]


class TestOverlayScan:
    @given(
        st.lists(st.tuples(st.integers(0, 40), st.integers(0, 99)), max_size=12),
        st.lists(st.integers(0, 40), max_size=6, unique=True),
        st.integers(0, 20),
        st.integers(0, 30),
    )
    @settings(max_examples=150, deadline=None)
    def test_stream_merge_matches_dict_merge(self, writes, deletes, lo, span):
        store = MVStore()
        store.load({_key(i): i * 10 for i in range(0, 40, 2)})
        overlay = OverlayView(store.latest_snapshot(), block_id=0)
        for i, value in writes:
            overlay.put(_key(i), value)
        for i in deletes:
            overlay.put(_key(i), TOMBSTONE)
        start, end = _key(lo), _key(lo + span)
        assert list(overlay.scan(start, end)) == list(
            overlay._scan_dict_merge(start, end)
        )


class TestMVStoreFastPaths:
    @given(st.lists(st.integers(0, 500), min_size=1, max_size=80, unique=True))
    @settings(max_examples=100, deadline=None)
    def test_load_matches_insort_reference(self, key_ids):
        rng = random.Random(7)
        rng.shuffle(key_ids)
        items = {_key(i): i for i in key_ids}

        from repro.bench.perf import naive_load

        fast, reference = MVStore(), MVStore()
        fast.load(items)
        naive_load(reference, items)
        assert fast._sorted_keys == reference._sorted_keys
        assert len(fast) == len(reference)
        assert fast.keys() == reference.keys()
        assert fast.state_hash() == reference.state_hash_full()

    @given(
        st.lists(
            st.lists(
                st.tuples(st.integers(0, 30), st.integers(-1, 99)),
                min_size=1,
                max_size=6,
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_incremental_state_hash_matches_full(self, blocks):
        store = MVStore()
        store.load({_key(i): i for i in range(0, 30, 3)})
        assert store.state_hash() == store.state_hash_full()
        for block_id, writes in enumerate(blocks):
            ordered = [
                (_key(i), TOMBSTONE if value < 0 else value) for i, value in writes
            ]
            store.apply_block(block_id, ordered)
            assert store.state_hash() == store.state_hash_full()

    def test_load_rejects_out_of_order_chain_append(self):
        """Re-loading an existing key after later blocks committed would
        break the block-sorted chain invariant both get() and scan()
        binary-search on — it must raise, not silently diverge."""
        store = MVStore()
        store.load({_key(1): "genesis"})
        store.apply_block(0, [(_key(1), "b0")])
        store.apply_block(5, [(_key(1), "b5")])
        with pytest.raises(ValueError):
            store.load({_key(1): "late"})
        # Fresh keys are still fine: their one-version chains are sorted.
        store.load({_key(2): "new"})
        view = store.snapshot(4)
        assert view.get(_key(1))[0] == "b0"
        assert dict(view.scan(_key(0), _key(9))).get(_key(1)) == "b0"

    @given(st.integers(0, 35), st.integers(0, 35))
    @settings(max_examples=100, deadline=None)
    def test_snapshot_scan_matches_reference(self, lo, hi):
        store = MVStore()
        store.load({_key(i): i for i in range(0, 30, 2)})
        store.apply_block(0, [(_key(5), 50), (_key(6), TOMBSTONE)])
        store.apply_block(1, [(_key(6), 66), (_key(31), 310)])

        from repro.bench.perf import naive_scan

        for block_id in (-1, 0, 1, 5):
            view = store.snapshot(block_id)
            assert list(view.scan(_key(lo), _key(hi))) == naive_scan(
                view, _key(lo), _key(hi)
            )


class TestIntervalPrimitives:
    @given(
        st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=10),
        st.integers(-2, 32),
    )
    @settings(max_examples=200, deadline=None)
    def test_range_index_stab_matches_linear(self, ranges, probe):
        index = RangeIndex()
        for i, (start, span) in enumerate(ranges):
            index.add(start, start + span, i)
        expected = [
            i for i, (start, span) in enumerate(ranges) if covers(start, start + span, probe)
        ]
        assert list(index.stab(probe)) == expected

    @given(
        st.lists(st.integers(0, 50), max_size=20),
        st.integers(-2, 52),
        st.integers(0, 20),
    )
    @settings(max_examples=200, deadline=None)
    def test_sorted_keys_slice_matches_linear(self, keys, start, span):
        index = SortedKeys(keys)
        end = start + span
        assert sorted(index.in_range(start, end)) == sorted(
            {k for k in keys if covers(start, end, k)}
        )

    def test_unsortable_population_falls_back(self):
        index = RangeIndex([(0, 10, "ints"), ("a", "z", "strs")])
        assert list(index.stab(5)) == ["ints"]
        assert list(index.stab("m")) == ["strs"]
        keys = SortedKeys([1, "b", 3])
        assert set(keys.in_range(0, 5)) == {1, 3}

    def test_extend_deduplicates_on_both_paths(self):
        """Re-adding known keys never yields duplicate slice hits, even
        after an unsortable addition degrades to the linear fallback."""
        keys = SortedKeys([1, 2])
        keys.extend([2, 3, 3])
        assert keys.in_range(0, 5) == [1, 2, 3]
        keys.extend(["b", 2])  # degrade to linear fallback
        assert keys.in_range(0, 5) == [1, 2, 3]
        assert set(keys.in_range("a", "z")) == {"b"}

    def test_inverted_and_empty_ranges_cover_nothing(self):
        index = RangeIndex([(5, 5, "empty"), (9, 2, "inverted"), (0, 3, "ok")])
        assert list(index.stab(5)) == []
        assert list(index.stab(1)) == ["ok"]

    def test_dense_overlap_falls_back_without_blowup(self):
        """A staircase of mutually-overlapping ranges must not materialize
        O(n²) segment slots — the build bails to linear stabs instead."""
        n = 600
        index = RangeIndex([(i, i + n, i) for i in range(n)])
        assert list(index.stab(n)) == list(range(1, n))
        assert not index._segmented
        assert index._segments == []


@pytest.mark.perf
def test_perf_smoke_trajectory(tmp_path):
    """End-to-end perf harness smoke: runs in seconds, all checks pass,
    and the trajectory file accumulates runs."""
    from repro.bench.perf import run_perf

    out = tmp_path / "BENCH_perf.json"
    run = run_perf(smoke=True, out_path=str(out))
    assert run["all_checks_pass"]
    assert all(case["indexed_s"] >= 0 for case in run["cases"])
    run_perf(smoke=True, out_path=str(out))
    import json

    trajectory = json.loads(out.read_text())
    assert len(trajectory["runs"]) == 2


class TestProcessBackendDifferential:
    """Hypothesis differential: ``backend="process"`` is bit-identical to
    ``backend="serial"`` across schemes, shard counts and seeds —
    decisions, state hashes and the certificate chain alike. Few examples:
    every draw spins up real worker processes."""

    @given(
        system=st.sampled_from(["harmony", "aria", "rbc"]),
        num_shards=st.sampled_from([1, 2, 4]),
        seed=st.integers(min_value=0, max_value=2**16),
        block_size=st.integers(min_value=8, max_value=20),
    )
    @settings(max_examples=6, deadline=None)
    def test_process_backend_matches_serial(
        self, system, num_shards, seed, block_size
    ):
        from repro.shard.system import ShardConfig, ShardedBlockchain
        from repro.workloads.base import ShardAffinity
        from repro.workloads.smallbank import SmallbankWorkload

        def run(backend):
            affinity = (
                ShardAffinity(num_shards, 0.3) if num_shards > 1 else None
            )
            config = ShardConfig(
                system=system,
                num_shards=num_shards,
                num_blocks=4,
                block_size=block_size,
                seed=seed,
                backend=backend,
            )
            chain = ShardedBlockchain(
                config, SmallbankWorkload(num_accounts=120, affinity=affinity)
            )
            metrics = chain.run()
            certs = [(c.block_id, c.abort_tids, c.hash) for c in chain.cert_log.certificates()]
            chain.close_backend()
            return metrics, certs

        serial, serial_certs = run("serial")
        process, process_certs = run("process")
        assert serial.extra["decision_digest"] == process.extra["decision_digest"]
        assert serial.extra["state_hash"] == process.extra["state_hash"]
        assert serial.extra["cert_head"] == process.extra["cert_head"]
        assert serial_certs == process_certs
