"""Adaptive sharding: ownership epochs, rebalance policy, live re-keying.

Pins ISSUE 10's contracts:

- **ownership epochs** — the versioned overlay is append-only, cumulative,
  and height-indexed; migration records are hash-covered and split into
  per-shard store deltas deterministically;
- **policy determinism** — identical telemetry produces identical
  proposals (sorted moves, canonical tie-breaks), and warmup/cooldown
  gates fire exactly where configured;
- **static differential** — ``rebalance="off"`` and a never-firing
  adaptive policy are bit-identical to the static router on every
  registered workload (hypothesis-sampled);
- **migrated-run identities** — a run that actually re-keys replays
  bit-identically on a fresh replica from (sub-blocks + certificates)
  alone, every shard recovers to the live state, and the serial and
  process prepare backends agree;
- **migration fence** — transactions touching an in-flight key at the
  re-key boundary abort deterministically with ``MIGRATION_FENCE``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.harmony import fence_migrated_keys
from repro.obs.analyze import shard_skew
from repro.obs.trace import KIND_STAGE, Span
from repro.parallel.backend import available_cores
from repro.parallel.replay import replay_group_serial
from repro.shard.rebalance import (
    MigrationRecord,
    OwnershipTable,
    RebalancePolicy,
    migration_store_deltas,
)
from repro.shard.recovery import recover_shard_node
from repro.shard.router import ShardRouter
from repro.shard.system import ShardConfig, ShardedBlockchain
from repro.storage.mvstore import MIGRATION_SEQ_BASE, MVStore, TOMBSTONE
from repro.txn.transaction import AbortReason, Txn, TxnSpec
from repro.workloads import make_workload, workload_names
from repro.workloads.base import ShardAffinity

#: fires early and often — migrations within a handful of blocks
AGGRESSIVE = dict(
    rebalance="adaptive",
    rebalance_check_interval=2,
    rebalance_warmup_blocks=2,
    rebalance_cooldown_blocks=2,
    rebalance_skew_threshold=1.0,
    rebalance_cross_threshold=0.0,
    rebalance_max_keys=8,
)

#: armed but unreachable thresholds — the policy must never fire
NEVER_FIRING = dict(
    rebalance="adaptive",
    rebalance_check_interval=2,
    rebalance_warmup_blocks=2,
    rebalance_cooldown_blocks=2,
    rebalance_skew_threshold=1e9,
    rebalance_cross_threshold=1.1,
    rebalance_max_keys=8,
)


def run_chain(workload, num_shards=2, num_blocks=6, block_size=16, seed=11, **cfg):
    config = ShardConfig(
        system="harmony",
        block_size=block_size,
        num_blocks=num_blocks,
        seed=seed,
        num_shards=num_shards,
        **cfg,
    )
    chain = ShardedBlockchain(config, workload)
    metrics = chain.run()
    return chain, metrics


def skewshift(num_shards=2):
    return make_workload(
        "adv-skewshift",
        num_keys=96,
        theta=1.1,
        shift_period=48,
        affinity=ShardAffinity(num_shards, 0.4),
    )


# ------------------------------------------------------------- ownership
class TestOwnershipTable:
    def test_epoch_zero_is_static(self):
        table = OwnershipTable()
        assert table.epoch == 0
        assert table.overrides_at(0) == {}
        assert table.overrides_at(10**9) == {}

    def test_epochs_are_cumulative_and_height_indexed(self):
        table = OwnershipTable()
        table.append(4, {"a": 1})
        table.append(8, {"b": 2})
        table.append(8, {"a": 3})  # same height: later epoch wins lookups
        assert table.epoch == 3
        assert table.overrides_at(3) == {}
        assert table.overrides_at(4) == {"a": 1}
        assert table.overrides_at(7) == {"a": 1}
        assert table.overrides_at(8) == {"a": 3, "b": 2}
        assert table.epoch_at(0) == 0
        assert table.epoch_at(8) == 3

    def test_height_must_not_regress(self):
        table = OwnershipTable()
        table.append(6, {"a": 1})
        with pytest.raises(ValueError):
            table.append(5, {"b": 0})

    def test_router_epoch_gap_fails_loudly(self):
        router = ShardRouter(2, policy="hash")
        record = MigrationRecord(block_id=4, epoch=2, moves=(("k", 1),))
        with pytest.raises(ValueError):
            router.apply_migration(record)

    def test_router_cursor_resolves_overrides_by_height(self):
        router = ShardRouter(2, policy="hash")
        key = ("adv", 7)
        src = router.shard_of(key)
        dst = 1 - src
        record = MigrationRecord(
            block_id=4, epoch=1, moves=((key, dst),), deltas=((key, 5),)
        )
        router.apply_migration(record)
        assert router.cursor_height == 4
        assert router.shard_of(key) == dst
        assert router.shard_of_at(key, 3) == src
        assert router.shard_of_at(key, 4) == dst
        router.advance_to(0)
        assert router.shard_of(key) == src
        router.advance_to(4)
        assert router.shard_of(key) == dst


class TestMigrationRecord:
    def test_payload_text_covers_every_field(self):
        base = MigrationRecord(
            block_id=4, epoch=1, moves=(("k", 1),), deltas=(("k", 7),), reason="r"
        )
        texts = {base.payload_text()}
        for variant in (
            MigrationRecord(block_id=5, epoch=1, moves=(("k", 1),), deltas=(("k", 7),), reason="r"),
            MigrationRecord(block_id=4, epoch=2, moves=(("k", 1),), deltas=(("k", 7),), reason="r"),
            MigrationRecord(block_id=4, epoch=1, moves=(("k", 0),), deltas=(("k", 7),), reason="r"),
            MigrationRecord(block_id=4, epoch=1, moves=(("k", 1),), deltas=(("k", 8),), reason="r"),
            MigrationRecord(block_id=4, epoch=1, moves=(("k", 1),), deltas=(("k", 7),), reason="x"),
        ):
            texts.add(variant.payload_text())
        assert len(texts) == 6  # any field change changes the certified text

    def test_store_deltas_ship_value_in_and_tombstone_out(self):
        router = ShardRouter(4, policy="hash")
        key_a, key_b = ("adv", 1), ("adv", 2)
        src_a, src_b = router.shard_of(key_a), router.shard_of(key_b)
        dst = (src_a + 1) % 4
        record = MigrationRecord(
            block_id=4,
            epoch=1,
            moves=((key_a, dst), (key_b, src_b)),
            deltas=((key_a, 10), (key_b, 20)),
        )
        incoming, outgoing = migration_store_deltas(record, router)
        assert incoming[dst] == {key_a: 10}
        assert outgoing[src_a] == {key_a: TOMBSTONE}
        # key_b "moves" to its current owner: no shipment either way
        assert src_b not in incoming or key_b not in incoming.get(src_b, {})
        assert all(key_b not in m for m in outgoing.values())


class TestMigrationStoreLoad:
    def test_migration_versions_sort_after_block_writes(self):
        store = MVStore()
        store.load({("k", 1): 100})
        store.apply_block(3, [(("k", 1), 200)])
        # boundary shipment lands inside block 3, after its real writes
        store.load({("k", 1): 999}, block_id=3, seq_start=MIGRATION_SEQ_BASE)
        assert store.snapshot(2).get(("k", 1))[0] == 100
        assert store.snapshot(3).get(("k", 1))[0] == 999


# ---------------------------------------------------------------- policy
class TestRebalancePolicy:
    def make(self, **kw):
        defaults = dict(
            check_interval=2,
            warmup_blocks=2,
            cooldown_blocks=2,
            skew_threshold=2.0,
            cross_threshold=0.5,
            max_keys=4,
        )
        defaults.update(kw)
        return RebalancePolicy(2, **defaults)

    def feed(self, policy, router, pairs):
        for keys in pairs:
            routed = [(k, router.shard_of(k)) for k in keys]
            policy.observe_txn(routed, frozenset(s for _k, s in routed))

    def test_warmup_and_off_boundary_suppress(self):
        router = ShardRouter(2, policy="hash")
        policy = self.make()
        self.feed(policy, router, [[("k", i), ("k", i + 50)] for i in range(20)])
        assert policy.propose(1, router) is None  # under warmup
        assert policy.propose(3, router) is None  # off the check boundary

    def test_colocate_fires_on_cross_ratio_and_is_deterministic(self):
        router = ShardRouter(2, policy="hash")
        policy_a, policy_b = self.make(), self.make()
        hot = [("k", 1), ("k", 2), ("k", 3)]
        pairs = [[hot[i % 3], hot[(i + 1) % 3]] for i in range(30)]
        self.feed(policy_a, router, pairs)
        self.feed(policy_b, router, pairs)
        got_a = policy_a.propose(4, router)
        got_b = policy_b.propose(4, router)
        assert got_a is not None and got_a == got_b
        assert got_a.reason.startswith("scatter:")
        assert list(got_a.moves) == sorted(got_a.moves, key=lambda kv: repr(kv[0]))
        dsts = {dst for _k, dst in got_a.moves}
        assert len(dsts) == 1  # colocation: one destination

    def test_offload_moves_hot_shard_keys_to_cold(self):
        router = ShardRouter(2, policy="hash")
        policy = self.make(cross_threshold=2.0, skew_threshold=1.5)
        hot_key = ("k", 1)
        hot_shard = router.shard_of(hot_key)
        self.feed(policy, router, [[hot_key]] * 40)
        proposal = policy.propose(4, router)
        assert proposal is not None
        assert proposal.reason.startswith("skew=")
        assert proposal.moves == ((hot_key, 1 - hot_shard),)

    def test_cooldown_suppresses_after_commit(self):
        router = ShardRouter(2, policy="hash")
        policy = self.make(cooldown_blocks=4)
        self.feed(policy, router, [[("k", 1), ("k", 2)]] * 30)
        assert policy.propose(4, router) is not None
        policy.committed(4)
        self.feed(policy, router, [[("k", 1), ("k", 2)]] * 30)
        assert policy.propose(6, router) is None  # inside cooldown
        self.feed(policy, router, [[("k", 1), ("k", 2)]] * 30)
        assert policy.propose(8, router) is not None


# ------------------------------------------------------------ shard skew
class TestShardSkewDegenerate:
    def span(self, shard, sim_us, seq=0, name="prepare"):
        return Span(seq=seq, name=name, kind=KIND_STAGE, shard=shard, sim_us=sim_us)

    def test_empty_trace(self):
        assert shard_skew([]) == {}

    def test_zero_busy_reports_balanced(self):
        spans = [self.span(0, 0.0), self.span(1, 0.0, seq=1)]
        skew = shard_skew(spans)
        assert skew[0]["skew"] == 1.0
        assert skew[1]["skew"] == 1.0

    def test_single_shard_reports_balanced(self):
        skew = shard_skew([self.span(0, 125.0)])
        assert skew[0]["skew"] == 1.0


# ----------------------------------------------------- static differential
class TestStaticDifferential:
    @given(
        name=st.sampled_from(workload_names()),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=8, deadline=None)
    def test_never_firing_policy_is_bit_identical_to_off(self, name, seed):
        """An armed adaptive policy with unreachable thresholds must leave
        the run bit-identical to ``rebalance="off"`` — the telemetry tap
        and the decision hook are observation-only until a record fires."""
        def build():
            return make_workload(
                name, profile="conformance", affinity=ShardAffinity(2, 0.3)
            )

        _chain_off, off = run_chain(
            build(), num_blocks=4, block_size=8, seed=seed, rebalance="off"
        )
        _chain_never, never = run_chain(
            build(), num_blocks=4, block_size=8, seed=seed, **NEVER_FIRING
        )
        assert never.extra["migrations"] == 0
        assert never.extra["ownership_epoch"] == 0
        assert never.extra["decision_digest"] == off.extra["decision_digest"]
        assert never.extra["state_hash"] == off.extra["state_hash"]
        assert never.extra["cert_head"] == off.extra["cert_head"]


# ------------------------------------------------- migrated-run identities
class TestMigratedRunIdentities:
    def test_adaptive_run_migrates_and_certifies(self):
        chain, metrics = run_chain(skewshift(), **AGGRESSIVE)
        assert metrics.extra["migrations"] >= 1
        assert metrics.extra["ownership_epoch"] >= 1
        assert metrics.extra["ledger_ok"]
        assert metrics.extra["certificates_ok"]
        # the records ride the certificate stream hash-covered
        migrated = [
            cert for cert in chain.cert_log.certificates() if cert.migration
        ]
        assert len(migrated) == metrics.extra["migrations"]

    def test_migrated_run_replays_bit_identically_on_fresh_replica(self):
        chain, metrics = run_chain(skewshift(), **AGGRESSIVE)
        assert metrics.extra["migrations"] >= 1
        replica = replay_group_serial(chain, name_prefix="test-replica")
        assert (
            replica.combined_state_hash() == chain.group.combined_state_hash()
        )
        assert replica.state_hashes() == chain.group.state_hashes()
        assert chain.consistency_check()

    @pytest.mark.parametrize("shard", [0, 1])
    def test_every_shard_recovers_across_a_migration(self, shard):
        chain, metrics = run_chain(skewshift(), **AGGRESSIVE)
        assert metrics.extra["migrations"] >= 1
        recovery = recover_shard_node(
            chain.group.nodes[shard],
            shard,
            [node.engine.store for node in chain.group.nodes],
            chain.router,
            chain.cert_log,
        )
        assert (
            recovery.node.state_hash() == chain.group.nodes[shard].state_hash()
        )
        assert recovery.node.ledger.verify_chain()

    @pytest.mark.skipif(
        available_cores() < 4, reason="needs >= 4 cores for the process pool"
    )
    def test_serial_and_process_backends_agree_across_migrations(self):
        serial_chain, serial = run_chain(skewshift(), **AGGRESSIVE)
        process_chain, process = run_chain(
            skewshift(), backend="process", **AGGRESSIVE
        )
        try:
            assert process.extra["migrations"] == serial.extra["migrations"]
            assert process.extra["migrations"] >= 1
            assert (
                process.extra["decision_digest"]
                == serial.extra["decision_digest"]
            )
            assert process.extra["state_hash"] == serial.extra["state_hash"]
            assert process.extra["cert_head"] == serial.extra["cert_head"]
        finally:
            process_chain.close_backend()


# --------------------------------------------------------- migration fence
class TestMigrationFence:
    def txn(self, tid):
        return Txn(tid=tid, block_id=4, spec=TxnSpec("ops", (("ops", ()),)))

    def test_fence_aborts_touching_txns_only(self):
        fenced_key = ("k", 3)
        reader, writer, ranger, bystander = (self.txn(i) for i in range(4))
        reader.read_set[fenced_key] = None
        writer.write_set[fenced_key] = object()
        ranger.read_ranges.append((("k", 0), ("k", 9)))
        bystander.read_set[("k", 100)] = None
        bystander.read_ranges.append((("z", 0), ("z", 9)))
        fence_migrated_keys(
            [reader, writer, ranger, bystander], frozenset({fenced_key})
        )
        for txn in (reader, writer, ranger):
            assert txn.aborted
            assert txn.abort_reason == AbortReason.MIGRATION_FENCE
        assert not bystander.aborted

    def test_fence_fires_in_an_adaptive_run(self):
        """End to end: certified vetoes in an aggressive adaptive run carry
        the fence reason — boundary blocks really do refuse in-flight keys
        (a hot-set migration under a Zipf stream always collides)."""
        chain, metrics = run_chain(skewshift(), **AGGRESSIVE)
        assert metrics.extra["migrations"] >= 1
        reasons = chain.cross_shard_abort_reasons()
        assert reasons.get(AbortReason.MIGRATION_FENCE.value, 0) >= 1
