"""Tests for the workload generators and their stored procedures."""

from __future__ import annotations

import pytest

from repro.chain.system import OEBlockchain, OEConfig
from repro.core.harmony import HarmonyConfig, HarmonyExecutor
from repro.sim.rng import SeededRng
from repro.storage.engine import StorageEngine
from repro.txn.transaction import Txn
from repro.workloads.adversarial import (
    ContentionWorkload,
    RangeScanWorkload,
    SkewShiftWorkload,
)
from repro.workloads.base import ShardAffinity
from repro.workloads.hotspot import HotspotWorkload
from repro.workloads.smallbank import SmallbankWorkload, checking, savings
from repro.workloads.tpcc import (
    CUSTOMERS_PER_DISTRICT,
    DISTRICTS_PER_WAREHOUSE,
    INITIAL_NEXT_O_ID,
    TPCCWorkload,
    customer,
    district,
    new_order_key,
    order_key,
    warehouse,
)
from repro.workloads.ycsb import YCSBWorkload, key_of
from repro.workloads.zipf import ZipfGenerator


def run_workload(workload, num_blocks=5, block_size=20, seed=3, inter_block=False):
    engine = StorageEngine()
    engine.preload(workload.initial_state())
    executor = HarmonyExecutor(
        engine, workload.build_registry(), HarmonyConfig(inter_block=inter_block)
    )
    rng = SeededRng(seed, workload.name)
    tid = 0
    txns_all = []
    for block_id in range(num_blocks):
        specs = workload.generate_block(block_size, rng)
        txns = [Txn(tid + i, block_id, s) for i, s in enumerate(specs)]
        tid += len(txns)
        executor.execute_block(block_id, txns)
        txns_all.extend(txns)
    return engine, txns_all


class TestZipf:
    def test_uniform_when_theta_zero(self):
        gen = ZipfGenerator(1000, 0.0)
        rng = SeededRng(1, "zipf")
        counts = [0] * 10
        for _ in range(5000):
            counts[gen.sample(rng) // 100] += 1
        assert max(counts) < 2 * min(counts)

    def test_skew_concentrates_on_low_ranks(self):
        gen = ZipfGenerator(1000, 0.99)
        rng = SeededRng(1, "zipf")
        hot = sum(1 for _ in range(5000) if gen.sample(rng) < 10)
        assert hot > 1000  # >20% of draws on the top-1% keys

    def test_sample_distinct(self):
        gen = ZipfGenerator(100, 0.8)
        rng = SeededRng(2, "zipf")
        ranks = gen.sample_distinct(rng, 10)
        assert len(set(ranks)) == 10

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0, 0.5)
        with pytest.raises(ValueError):
            ZipfGenerator(10, -1)
        with pytest.raises(ValueError):
            ZipfGenerator(5, 0.5).sample_distinct(SeededRng(1, "x"), 6)


class TestGeneratorDeterminism:
    @pytest.mark.parametrize(
        "workload_factory",
        [
            lambda: YCSBWorkload(num_keys=100),
            lambda: SmallbankWorkload(num_accounts=100),
            lambda: TPCCWorkload(2),
            lambda: TPCCWorkload(8, affinity=ShardAffinity(4, 0.5)),
            lambda: HotspotWorkload(num_keys=100),
            lambda: ContentionWorkload(num_keys=100, hot_keys=4),
            lambda: RangeScanWorkload(num_keys=120),
            lambda: SkewShiftWorkload(num_keys=100),
            lambda: ContentionWorkload(
                num_keys=100, hot_keys=4, affinity=ShardAffinity(2, 0.5)
            ),
            lambda: RangeScanWorkload(
                num_keys=120, affinity=ShardAffinity(4, 0.5)
            ),
            lambda: SkewShiftWorkload(
                num_keys=100, affinity=ShardAffinity(2, 0.5)
            ),
        ],
    )
    def test_same_seed_same_stream(self, workload_factory):
        a = workload_factory().generate_block(30, SeededRng(5, "w"))
        b = workload_factory().generate_block(30, SeededRng(5, "w"))
        assert a == b


class TestYCSB:
    def test_initial_state_size(self):
        wl = YCSBWorkload(num_keys=500)
        assert len(wl.initial_state()) == 500

    def test_ops_mix(self):
        wl = YCSBWorkload(num_keys=1000, theta=0.0)
        specs = wl.generate_block(100, SeededRng(1, "y"))
        reads = writes = 0
        for spec in specs:
            for op in spec.param_dict["ops"]:
                if op[0] == "r":
                    reads += 1
                else:
                    writes += 1
        assert reads + writes == 1000
        assert 350 < reads < 650  # ~50/50

    def test_execution_updates_state(self):
        wl = YCSBWorkload(num_keys=200, theta=0.0)
        engine, txns = run_workload(wl, num_blocks=3, block_size=10)
        committed_writes = {
            key
            for txn in txns
            if txn.committed
            for key in txn.write_set
        }
        changed = sum(
            1
            for key in committed_writes
            if engine.store.get_latest(key)[0] != wl.initial_state()[key]
        )
        assert changed > 0


class TestSmallbank:
    def test_money_conservation_under_send_payment(self):
        """send_payment moves money; the total balance is conserved."""
        wl = SmallbankWorkload(num_accounts=50)

        class OnlyPayments(SmallbankWorkload):
            def _pick_proc(self, rng):
                return "sb_send_payment"

        only = OnlyPayments(num_accounts=50)
        engine, txns = run_workload(only, num_blocks=4, block_size=15)
        total = sum(
            engine.store.get_latest(checking(c))[0]
            + engine.store.get_latest(savings(c))[0]
            for c in range(50)
        )
        assert total == pytest.approx(50 * 2 * 10_000.0)

    def test_amalgamate_zeroes_source(self):
        wl = SmallbankWorkload(num_accounts=10)
        engine = StorageEngine()
        engine.preload(wl.initial_state())
        executor = HarmonyExecutor(
            engine, wl.build_registry(), HarmonyConfig(inter_block=False)
        )
        from repro.txn.transaction import TxnSpec
        from repro.workloads.base import params

        txn = Txn(0, 0, TxnSpec("sb_amalgamate", params(cid_from=1, cid_to=2)))
        executor.execute_block(0, [txn])
        assert txn.committed
        assert engine.store.get_latest(checking(1))[0] == 0.0
        assert engine.store.get_latest(savings(1))[0] == 0.0
        assert engine.store.get_latest(checking(2))[0] == 30_000.0

    def test_transact_savings_insufficient_is_logical_noop(self):
        wl = SmallbankWorkload(num_accounts=10, initial_balance=10.0)
        engine = StorageEngine()
        engine.preload(wl.initial_state())
        executor = HarmonyExecutor(
            engine, wl.build_registry(), HarmonyConfig(inter_block=False)
        )
        from repro.txn.transaction import TxnSpec
        from repro.workloads.base import params

        txn = Txn(0, 0, TxnSpec("sb_transact_savings", params(cid=1, amount=-100.0)))
        executor.execute_block(0, [txn])
        assert txn.output == "insufficient"
        assert engine.store.get_latest(savings(1))[0] == 10.0


class TestTPCC:
    def test_initial_state_scales_with_warehouses(self):
        small = len(TPCCWorkload(1).initial_state())
        large = len(TPCCWorkload(3).initial_state())
        assert large > 2 * small

    def test_new_order_increments_district_and_inserts(self):
        wl = TPCCWorkload(1)
        engine = StorageEngine(pool_pages=256)
        engine.preload(wl.initial_state())
        executor = HarmonyExecutor(
            engine, wl.build_registry(), HarmonyConfig(inter_block=False)
        )
        from repro.txn.transaction import TxnSpec
        from repro.workloads.base import params

        txn = Txn(
            0,
            0,
            TxnSpec(
                "tpcc_new_order",
                params(w=0, d=0, c=0, lines=((1, 2), (2, 3))),
            ),
        )
        executor.execute_block(0, [txn])
        assert txn.committed
        assert engine.store.get_latest(district(0, 0))[0]["next_o_id"] == 2
        assert engine.store.get_latest(order_key(0, 0, 1))[0]["ol_cnt"] == 2
        assert engine.store.get_latest(new_order_key(0, 0, 1))[0] is not None

    def test_payment_updates_ytd(self):
        wl = TPCCWorkload(1)
        engine = StorageEngine(pool_pages=256)
        engine.preload(wl.initial_state())
        executor = HarmonyExecutor(
            engine, wl.build_registry(), HarmonyConfig(inter_block=False)
        )
        from repro.txn.transaction import TxnSpec
        from repro.workloads.base import params

        txns = [
            Txn(i, 0, TxnSpec("tpcc_payment", params(w=0, d=0, c=i, amount=10.0)))
            for i in range(3)
        ]
        executor.execute_block(0, txns)
        assert all(t.committed for t in txns)  # fused adds: no aborts
        assert engine.store.get_latest(warehouse(0))[0]["ytd"] == 30.0

    def test_concurrent_new_orders_same_district_conflict(self):
        wl = TPCCWorkload(1)
        engine = StorageEngine(pool_pages=256)
        engine.preload(wl.initial_state())
        executor = HarmonyExecutor(
            engine, wl.build_registry(), HarmonyConfig(inter_block=False)
        )
        from repro.txn.transaction import TxnSpec
        from repro.workloads.base import params

        txns = [
            Txn(
                i,
                0,
                TxnSpec("tpcc_new_order", params(w=0, d=0, c=i, lines=((1, 1),))),
            )
            for i in range(3)
        ]
        executor.execute_block(0, txns)
        committed = [t for t in txns if t.committed]
        assert len(committed) == 1  # next_o_id RMW: only one survives

    def test_delivery_consumes_new_order(self):
        wl = TPCCWorkload(1)
        engine = StorageEngine(pool_pages=256)
        engine.preload(wl.initial_state())
        executor = HarmonyExecutor(
            engine, wl.build_registry(), HarmonyConfig(inter_block=False)
        )
        from repro.txn.transaction import TxnSpec
        from repro.workloads.base import params

        executor.execute_block(
            0,
            [
                Txn(
                    0,
                    0,
                    TxnSpec(
                        "tpcc_new_order", params(w=0, d=0, c=0, lines=((1, 1),))
                    ),
                )
            ],
        )
        delivery = Txn(1, 1, TxnSpec("tpcc_delivery", params(w=0, carrier=5)))
        executor.execute_block(1, [delivery])
        assert delivery.committed
        assert delivery.output == 1  # one district had a pending order
        assert engine.store.get_latest(new_order_key(0, 0, 1))[0] is None
        assert engine.store.get_latest(order_key(0, 0, 1))[0]["carrier_id"] == 5

    def test_mixed_blocks_run_clean(self):
        wl = TPCCWorkload(2)
        engine, txns = run_workload(wl, num_blocks=4, block_size=15)
        assert any(t.committed for t in txns)
        # every committed new_order kept the district counter consistent
        for w in range(2):
            for d in range(DISTRICTS_PER_WAREHOUSE):
                row = engine.store.get_latest(district(w, d))[0]
                assert row["next_o_id"] >= 1


class TestHotspot:
    def test_fused_updates_have_no_read_set(self):
        wl = HotspotWorkload(num_keys=100, hotspot_probability=1.0, fused=True)
        engine, txns = run_workload(wl, num_blocks=2, block_size=10)
        assert all(not t.read_set for t in txns)
        assert all(t.committed for t in txns)  # pure ww: Harmony commits all

    def test_separated_form_aborts_under_contention(self):
        wl = HotspotWorkload(num_keys=100, hotspot_probability=1.0, fused=False)
        _, txns = run_workload(wl, num_blocks=2, block_size=10)
        assert any(t.aborted for t in txns)

    def test_hot_keys_come_from_hot_set(self):
        wl = HotspotWorkload(num_keys=1000, hotspot_probability=1.0)
        specs = wl.generate_block(20, SeededRng(1, "h"))
        for spec in specs:
            for op in spec.param_dict["ops"]:
                assert wl.is_hot(op[1])

    def test_cold_keys_avoid_hot_set(self):
        wl = HotspotWorkload(num_keys=1000, hotspot_probability=0.0)
        specs = wl.generate_block(20, SeededRng(1, "h"))
        for spec in specs:
            for op in spec.param_dict["ops"]:
                assert not wl.is_hot(op[1])


class TestTPCCInvariants:
    """TPC-C semantic invariants over the conformance sweep: whatever an
    OE scheme aborted, its committed history must leave a state that
    *some* serial TPC-C execution could have produced.

    The SOV family (fabric / fastfabric) is exercised separately: its
    endorsement step freezes fused ``ytd += x`` updates into stale value
    writes with no registered read, so concurrent payments lose updates —
    the Section 2.1.1 anomaly the OE pipeline exists to fix."""

    @pytest.mark.parametrize("scheme", ("serial", "harmony", "aria", "rbc"))
    def test_committed_state_satisfies_invariants(self, scheme):
        from tests.test_conformance import run_scheme

        outcomes = run_scheme(scheme, "tpcc")
        store = outcomes["engine"].store
        wl = outcomes["workload"]
        for w in range(wl.num_warehouses):
            # Payment adds the identical amount to the warehouse YTD and
            # the paying district's YTD, atomically
            wh_ytd = store.get_latest(warehouse(w))[0]["ytd"]
            dist_ytd = sum(
                store.get_latest(district(w, d))[0]["ytd"]
                for d in range(DISTRICTS_PER_WAREHOUSE)
            )
            assert wh_ytd == pytest.approx(dist_ytd), (scheme, w)

            delivered = 0
            for d in range(DISTRICTS_PER_WAREHOUSE):
                next_o = store.get_latest(district(w, d))[0]["next_o_id"]
                # order ids are dense and monotone: committed NewOrders
                # filled every id below the counter, none at or above it
                assert store.get_latest(order_key(w, d, next_o))[0] is None
                for o in range(INITIAL_NEXT_O_ID, next_o):
                    order_row = store.get_latest(order_key(w, d, o))[0]
                    assert order_row is not None, (scheme, w, d, o)
                    pending = store.get_latest(new_order_key(w, d, o))[0]
                    if order_row["carrier_id"] is None:
                        assert pending is not None, (scheme, w, d, o)
                    else:
                        # delivered exactly once: the new_order row is gone
                        assert pending is None, (scheme, w, d, o)
                        delivered += 1
            # every carrier assignment bumped exactly one customer's
            # delivery_cnt — delivered orders are never re-delivered
            delivery_cnts = sum(
                store.get_latest(customer(w, d, c))[0]["delivery_cnt"]
                for d in range(DISTRICTS_PER_WAREHOUSE)
                for c in range(CUSTOMERS_PER_DISTRICT)
            )
            assert delivered == delivery_cnts, (scheme, w)

    @pytest.mark.parametrize("scheme", ("fabric", "fastfabric"))
    def test_sov_endorsement_loses_fused_ytd_updates(self, scheme):
        """The documented SOV anomaly, pinned: endorsed value writes of
        fused adds carry no read to version-check, so contended payments
        silently overwrite each other and the warehouse YTD drifts from
        the district sum. OE schemes (above) keep them equal."""
        from tests.test_conformance import run_scheme

        outcomes = run_scheme(scheme, "tpcc")
        store = outcomes["engine"].store
        wl = outcomes["workload"]
        drifted = False
        for w in range(wl.num_warehouses):
            wh_ytd = store.get_latest(warehouse(w))[0]["ytd"]
            dist_ytd = sum(
                store.get_latest(district(w, d))[0]["ytd"]
                for d in range(DISTRICTS_PER_WAREHOUSE)
            )
            drifted = drifted or abs(wh_ytd - dist_ytd) > 1e-6
        assert drifted, f"{scheme}: expected lost fused updates on this stream"


class TestWorkloadRegistry:
    """The conformance sweep, fault drills and bench experiments must all
    build their workloads from the one shared registry."""

    def test_conformance_matrix_covers_the_registry(self):
        from repro.workloads import REGISTRY
        from tests.test_conformance import WORKLOADS

        assert sorted(WORKLOADS) == sorted(REGISTRY)

    def test_drill_workloads_are_registered(self):
        from repro.faults.drill import DRILL_WORKLOADS, SMOKE_WORKLOADS
        from repro.workloads import REGISTRY

        assert set(DRILL_WORKLOADS) <= set(REGISTRY)
        assert set(SMOKE_WORKLOADS) <= set(DRILL_WORKLOADS)

    def test_bench_experiments_build_from_the_registry(self):
        from repro.bench.experiments import make_workload as bench_make
        from repro.workloads import REGISTRY

        for name, entry in REGISTRY.items():
            wl = bench_make(name)
            assert isinstance(wl, entry.factory)
            assert wl.name == name

    def test_make_workload_layers_profiles_and_overrides(self):
        from repro.workloads import REGISTRY, make_workload

        gate = make_workload("adv-counter", profile="gate")
        assert gate.num_keys == REGISTRY["adv-counter"].gate["num_keys"]
        override = make_workload("adv-counter", profile="gate", num_keys=99)
        assert override.num_keys == 99
        sharded = make_workload(
            "tpcc", profile="gate", affinity=ShardAffinity(2, 0.5)
        )
        assert sharded.affinity is not None

    def test_make_workload_rejects_unknown_names(self):
        from repro.workloads import make_workload

        with pytest.raises(ValueError):
            make_workload("no-such-workload")
