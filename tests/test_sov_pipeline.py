"""Tests for the Simulate-Order-Validate pipeline internals."""

from __future__ import annotations

import pytest

from repro.chain.sov import SOVBlockchain, SOVConfig, endorsed_txn_bytes
from repro.sim.rng import SeededRng
from repro.txn.transaction import AbortReason, Txn, TxnSpec
from repro.workloads.ycsb import YCSBWorkload


def build_chain(**overrides) -> SOVBlockchain:
    defaults = dict(system="fabric", block_size=10, num_blocks=4)
    defaults.update(overrides)
    return SOVBlockchain(SOVConfig(**defaults), YCSBWorkload(num_keys=500, theta=0.4))


class TestEndorsement:
    def test_fresh_endorsers_agree(self):
        chain = build_chain(max_endorser_lag=0)
        spec = chain.workload.generate_block(1, SeededRng(1, "e"))[0]
        txn = Txn(0, 0, spec)
        chain._endorse(txn, SeededRng(2, "lag"))
        assert not txn.aborted
        assert txn.read_set or txn.write_set

    def test_endorsement_freezes_value_writes(self):
        chain = build_chain(max_endorser_lag=0)
        spec = chain.workload.generate_block(1, SeededRng(1, "e"))[0]
        txn = Txn(0, 0, spec)
        chain._endorse(txn, SeededRng(2, "lag"))
        from repro.txn.commands import SetValue

        for command in txn.write_set.values():
            assert isinstance(command, SetValue)  # SOV ships values

    def test_lagged_endorsers_can_mismatch(self):
        """With endorsers lagging differently and state moving, some
        transactions fail endorsement (the clients' reconciliation step)."""
        chain = build_chain(max_endorser_lag=3, num_blocks=6)
        metrics = chain.run()
        reasons = {
            t.abort_reason
            for block in chain.node.ledger.blocks()
            for t in block.endorsed_txns
            if t.aborted
        }
        assert metrics.committed > 0
        # staleness shows up as mismatches and/or stale reads
        assert reasons & {
            AbortReason.ENDORSEMENT_MISMATCH,
            AbortReason.STALE_READ,
        } or metrics.abort_rate == 0.0

    def test_endorsed_txn_bytes_scale_with_records(self):
        assert endorsed_txn_bytes(10) > endorsed_txn_bytes(2) > 0


class TestSOVSystemProperties:
    def test_blocks_carry_endorsed_txns(self):
        chain = build_chain()
        chain.run()
        for block in chain.node.ledger.blocks():
            assert block.endorsed_txns
            assert len(block.endorsed_txns) <= chain.config.block_size

    def test_physical_logging_used(self):
        from repro.storage.wal import LogMode

        chain = build_chain()
        chain.run()
        assert chain.node.engine.wal.mode is LogMode.PHYSICAL
        assert chain.node.engine.wal.stats.records > 0

    def test_fastfabric_orders_blocks_acyclically(self):
        chain = build_chain(system="fastfabric")
        metrics = chain.run()
        assert metrics.committed > 0
        # committed schedules must be serializable per block
        from repro.dcc.oracle import SerializabilityOracle

        for block in chain.node.ledger.blocks():
            assert SerializabilityOracle.committed_is_serializable(
                block.endorsed_txns, chain_order=lambda t: t.tid
            )

    def test_ledger_chain_verifies_after_run(self):
        chain = build_chain()
        chain.run()
        assert chain.node.ledger.verify_chain()


class TestSQLExpressionEvaluation:
    def test_evaluate_arithmetic(self):
        from repro.sql.ast_nodes import BinOp, Literal, Param
        from repro.sql.planner import evaluate

        expr = BinOp("+", Literal(2), BinOp("*", Param(0), Literal(3)))
        assert evaluate(expr, (4,)) == 14
        assert evaluate(BinOp("/", Literal(9), Literal(3)), ()) == 3

    def test_evaluate_missing_param(self):
        from repro.sql.ast_nodes import Param
        from repro.sql.planner import PlanningError, evaluate

        with pytest.raises(PlanningError):
            evaluate(Param(3), (1,))

    def test_columns_in_walks_tree(self):
        from repro.sql.ast_nodes import BinOp, ColumnRef, Literal
        from repro.sql.planner import columns_in

        expr = BinOp("+", ColumnRef("a"), BinOp("-", Literal(1), ColumnRef("b")))
        assert columns_in(expr) == {"a", "b"}

    def test_unary_minus(self):
        from repro.sql.parser import parse
        from repro.sql.planner import evaluate

        stmt = parse("SELECT * FROM t WHERE id = -5")
        assert evaluate(stmt.conditions[0].value, ()) == -5
