"""Tests for blocks, the ledger, replica nodes and the ordering service."""

from __future__ import annotations

import pytest

from repro.chain.block import GENESIS_HASH, Block
from repro.chain.ledger import Ledger, TamperError
from repro.chain.node import ReplicaNode
from repro.chain.ordering import OrderingService
from repro.consensus.crypto import KeyRegistry, Signer, sha256_hex
from repro.core.harmony import HarmonyConfig, HarmonyExecutor
from repro.txn.transaction import TxnSpec

from tests.conftest import generic_registry, make_engine


def spec(ops) -> TxnSpec:
    return TxnSpec("ops", (("ops", tuple(ops)),))


def make_node(name="replica-0", signer=None, config=None) -> ReplicaNode:
    engine = make_engine()
    executor = HarmonyExecutor(
        engine, generic_registry(), config or HarmonyConfig(inter_block=False)
    )
    return ReplicaNode(name, executor, signer)


class TestCrypto:
    def test_sha256_hex_stable(self):
        assert sha256_hex("abc") == sha256_hex(b"abc")
        assert len(sha256_hex("x")) == 64

    def test_sign_verify_roundtrip(self):
        signer = Signer("node-1")
        sig = signer.sign("payload")
        assert signer.verify("payload", sig)
        assert not signer.verify("tampered", sig)

    def test_distinct_identities_distinct_signatures(self):
        assert Signer("a").sign("m") != Signer("b").sign("m")

    def test_key_registry_authentication(self):
        registry = KeyRegistry()
        signer = registry.enroll("peer-1")
        sig = signer.sign("hello")
        assert registry.verify("peer-1", "hello", sig)
        assert not registry.verify("stranger", "hello", sig)
        with pytest.raises(ValueError):
            registry.enroll("peer-1")


class TestBlock:
    def test_hash_covers_content(self):
        a = Block(0, (spec([("r", 1)]),), GENESIS_HASH, first_tid=0)
        b = Block(0, (spec([("r", 2)]),), GENESIS_HASH, first_tid=0)
        assert a.hash != b.hash

    def test_integrity_checks_prev_hash(self):
        block = Block(0, (), GENESIS_HASH, first_tid=0)
        assert block.verify_integrity(GENESIS_HASH)
        assert not block.verify_integrity("f" * 64)

    def test_tampered_body_detected(self):
        block = Block(0, (spec([("r", 1)]),), GENESIS_HASH, first_tid=0)
        block.specs = (spec([("set", 1, 666)]),)
        assert not block.verify_integrity(GENESIS_HASH)


class TestLedger:
    def _chain(self, n=3):
        ordering = OrderingService()
        ledger = Ledger()
        for i in range(n):
            ledger.append(ordering.form_block([spec([("r", i)])]))
        return ledger

    def test_append_links_hashes(self):
        ledger = self._chain()
        assert ledger.height == 3
        assert ledger.verify_chain()
        assert ledger[1].prev_hash == ledger[0].hash

    def test_tampered_block_detected_by_backtrace(self):
        ledger = self._chain()
        ledger[1].specs = (spec([("set", 0, 1_000_000)]),)
        assert not ledger.verify_chain()

    def test_append_rejects_wrong_prev_hash(self):
        ledger = self._chain()
        rogue = Block(3, (), prev_hash="0" * 64, first_tid=99)
        with pytest.raises(TamperError):
            ledger.append(rogue)


class TestOrderingService:
    def test_tids_are_contiguous(self):
        ordering = OrderingService()
        b0 = ordering.form_block([spec([("r", 0)]), spec([("r", 1)])])
        b1 = ordering.form_block([spec([("r", 2)])])
        assert b0.first_tid == 0 and b1.first_tid == 2

    def test_blocks_signed(self):
        signer = Signer("ordering-service")
        ordering = OrderingService(signer)
        block = ordering.form_block([spec([("r", 0)])])
        assert signer.verify(block.header_bytes(), block.signature)


class TestReplicaNode:
    def test_processes_chain_and_updates_state(self):
        signer = Signer("ordering-service")
        ordering = OrderingService(signer)
        node = make_node(signer=signer)
        node.process_block(ordering.form_block([spec([("add", 0, 7)])]))
        node.process_block(ordering.form_block([spec([("add", 0, 3)])]))
        assert node.engine.store.get_latest(("k", 0))[0] == 110
        assert node.ledger.verify_chain()

    def test_rejects_bad_signature(self):
        ordering = OrderingService(Signer("evil-orderer"))
        node = make_node(signer=Signer("ordering-service"))
        block = ordering.form_block([spec([("r", 0)])])
        with pytest.raises(ValueError):
            node.process_block(block)

    def test_rejects_out_of_chain_block(self):
        signer = Signer("ordering-service")
        ordering = OrderingService(signer)
        node = make_node(signer=signer)
        _skipped = ordering.form_block([spec([("r", 0)])])
        second = ordering.form_block([spec([("r", 1)])])
        with pytest.raises(TamperError):
            node.process_block(second)

    def test_replica_consistency(self):
        """Two replicas fed the same chain reach the same state hash."""
        signer = Signer("ordering-service")
        ordering = OrderingService(signer)
        node_a = make_node("a", signer)
        node_b = make_node("b", signer)
        for i in range(5):
            block = ordering.form_block(
                [spec([("add", i % 3, 1)]), spec([("r", i % 3), ("set", 5, i)])]
            )
            node_a.process_block(block)
            node_b.process_block(block)
        assert node_a.state_hash() == node_b.state_hash()

    def test_block_inputs_logged_for_recovery(self):
        signer = Signer("ordering-service")
        ordering = OrderingService(signer)
        node = make_node(signer=signer)
        node.process_block(ordering.form_block([spec([("r", 0)])]))
        assert len(node.engine.block_log) == 1
