"""Tests for the serializability oracle, cross-checked against networkx."""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.dcc.oracle import (
    HistoryOracle,
    SerializabilityOracle,
    block_dependency_graph,
    has_cycle,
)
from repro.txn.commands import AddValue
from repro.txn.transaction import AbortReason, Txn, TxnSpec


def txn_with(tid, reads=(), writes=(), committed=True):
    txn = Txn(tid=tid, block_id=0, spec=TxnSpec("ops"))
    for key in reads:
        txn.read_set[key] = None
    for key in writes:
        txn.record_update(key, AddValue(1))
    if committed:
        txn.mark_committed()
    else:
        txn.mark_aborted(AbortReason.WAW)
    return txn


@st.composite
def adjacency(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    adj = {}
    for node in range(n):
        targets = draw(
            st.lists(st.integers(0, n - 1), max_size=4, unique=True)
        )
        adj[node] = {t for t in targets if t != node or draw(st.booleans())}
    return adj


class TestCycleDetection:
    def test_simple_cycle(self):
        assert has_cycle({1: {2}, 2: {3}, 3: {1}})

    def test_dag(self):
        assert not has_cycle({1: {2, 3}, 2: {3}, 3: set()})

    def test_self_loop(self):
        assert has_cycle({1: {1}})

    def test_empty(self):
        assert not has_cycle({})

    @given(adjacency())
    @settings(max_examples=200, deadline=None)
    def test_matches_networkx(self, adj):
        graph = nx.DiGraph()
        graph.add_nodes_from(adj)
        for node, targets in adj.items():
            for target in targets:
                graph.add_edge(node, target)
        expected = not nx.is_directed_acyclic_graph(graph)
        assert has_cycle(adj) == expected


class TestBlockGraph:
    def test_reader_precedes_writer(self):
        reader = txn_with(1, reads=["x"])
        writer = txn_with(2, writes=["x"])
        graph = block_dependency_graph([reader, writer])
        assert 2 in graph[1]
        assert 1 not in graph[2]

    def test_updater_chain_follows_order(self):
        a = txn_with(1, writes=["x"])
        b = txn_with(2, writes=["x"])
        a.min_out, b.min_out = 5, 3  # Rule-2 order puts b first
        graph = block_dependency_graph([a, b])
        assert 1 in graph[2] and 2 not in graph[1]

    def test_range_reader_gets_edges(self):
        reader = txn_with(1)
        reader.read_ranges.append((("k", 0), ("k", 9)))
        writer = txn_with(2, writes=[("k", 5)])
        graph = block_dependency_graph([reader, writer])
        assert 2 in graph[1]


class TestFalseAborts:
    def test_harmless_abort_is_false(self):
        committed = txn_with(1, writes=["x"])
        aborted = txn_with(2, reads=["y"], committed=False)
        assert SerializabilityOracle.count_false_aborts([committed, aborted]) == 1

    def test_cycle_closing_abort_is_real(self):
        t1 = txn_with(1, reads=["y"], writes=["x"])
        t2 = txn_with(2, reads=["x"], writes=["y"], committed=False)
        t1.min_out, t2.min_out = 2, 1
        assert SerializabilityOracle.count_false_aborts([t1, t2]) == 0

    def test_committed_only_blocks_have_no_false_aborts(self):
        txns = [txn_with(i, writes=[f"k{i}"]) for i in range(1, 4)]
        assert SerializabilityOracle.count_false_aborts(txns) == 0


class TestHistoryOracle:
    class _Apply:
        def __init__(self, key, tids):
            self.key = key
            self.updater_tids = tids

    def test_clean_history_serializable(self):
        oracle = HistoryOracle()
        t1 = txn_with(1, writes=["x"])
        oracle.record_block(0, [t1], [self._Apply("x", [1])], snapshot_block_id=-1)
        t2 = txn_with(2, reads=["x"])
        t2.read_set["x"] = (0, 0)  # observed block 0's write
        oracle.record_block(1, [t2], [], snapshot_block_id=0)
        assert oracle.is_serializable()

    def test_cross_block_cycle_detected(self):
        oracle = HistoryOracle()
        # T1 (block 0) reads k1 before-image; T2 (block 1) writes k1 and
        # reads k0's before-image of T1's write -> cycle
        t1 = txn_with(1, reads=["k1"], writes=["k0"])
        oracle.record_block(0, [t1], [self._Apply("k0", [1])], snapshot_block_id=-1)
        t2 = txn_with(2, reads=["k0"], writes=["k1"])
        t2.read_set["k0"] = None  # stale: lag-2 snapshot
        oracle.record_block(1, [t2], [self._Apply("k1", [2])], snapshot_block_id=-1)
        assert not oracle.is_serializable()

    def test_aborted_txns_ignored(self):
        oracle = HistoryOracle()
        t1 = txn_with(1, writes=["x"], committed=False)
        oracle.record_block(0, [t1], [self._Apply("x", [1])], snapshot_block_id=-1)
        assert oracle.is_serializable()
        assert oracle.build_graph() == {}
