"""End-to-end tests of the Harmony block executor.

The centrepiece is a serial-witness property: for arbitrary random blocks,
the committed transactions must be equivalent to a serial execution in
ascending (min_out, TID) order — every snapshot read must match the witness
state, and the replayed final state must equal the engine's state.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.harmony import HarmonyConfig, HarmonyExecutor
from repro.dcc.oracle import HistoryOracle, SerializabilityOracle
from repro.txn.commands import apply_safely
from repro.txn.transaction import AbortReason, TxnStatus

from tests.conftest import generic_registry, make_engine, make_txns

NO_IBP = HarmonyConfig(inter_block=False)


def run_block(op_lists, config=NO_IBP, engine=None, block_id=0, first_tid=0):
    engine = engine or make_engine()
    executor = HarmonyExecutor(engine, generic_registry(), config)
    txns = make_txns(op_lists, block_id=block_id, first_tid=first_tid)
    execution = executor.execute_block(block_id, txns)
    return engine, executor, execution


class TestBasicExecution:
    def test_all_commit_without_conflicts(self):
        _, _, execution = run_block([[("add", 0, 5)], [("add", 1, 7)], [("r", 2)]])
        assert all(t.committed for t in execution.txns)

    def test_ww_conflict_commits_both_with_reordering(self):
        engine, _, execution = run_block([[("add", 0, 10)], [("mul", 0, 3)]])
        assert all(t.committed for t in execution.txns)
        # add ordered before mul (both min_out = tid+1, tie by TID)
        assert engine.store.get_latest(("k", 0))[0] == (100 + 10) * 3

    def test_update_coalescence_single_page_write(self):
        engine, _, execution = run_block(
            [[("add", 0, 1)] for _ in range(6)],
        )
        hot_applies = [ka for ka in execution.key_applies if ka.key == ("k", 0)]
        assert len(hot_applies) == 1
        assert len(hot_applies[0].chain_durations_us) == 1  # one coalesced apply
        assert engine.store.get_latest(("k", 0))[0] == 106

    def test_no_coalescence_duplicates_applies(self):
        config = HarmonyConfig(inter_block=False, coalesce=False)
        engine, _, execution = run_block(
            [[("add", 0, 1)] for _ in range(6)], config=config
        )
        hot = [ka for ka in execution.key_applies if ka.key == ("k", 0)][0]
        assert len(hot.chain_durations_us) == 6  # one physical apply each
        assert engine.store.get_latest(("k", 0))[0] == 106

    def test_dangerous_structure_aborts_middle(self):
        # T0 writes a; T1 reads a writes b; T2 reads b  => T1 is the pivot
        _, _, execution = run_block(
            [[("set", 10, 1)], [("r", 10), ("set", 11, 2)], [("r", 11)]]
        )
        statuses = [t.status for t in execution.txns]
        assert statuses[1] is TxnStatus.ABORTED
        assert execution.txns[1].abort_reason is AbortReason.BACKWARD_DANGEROUS_STRUCTURE
        assert statuses[0] is TxnStatus.COMMITTED and statuses[2] is TxnStatus.COMMITTED

    def test_aborted_writes_not_applied(self):
        engine, _, execution = run_block(
            [[("set", 10, 1)], [("r", 10), ("set", 11, 222)], [("r", 11)]]
        )
        assert engine.store.get_latest(("k", 11))[0] == 100  # T1's write dropped

    def test_read_own_write_sees_pending_command(self):
        engine, _, execution = run_block([[("add", 0, 10), ("r", 0)]])
        txn = execution.txns[0]
        assert txn.committed
        assert txn.output == (110,)  # corner case (1): own update visible

    def test_double_update_same_key_coalesces_in_txn(self):
        engine, _, execution = run_block([[("add", 0, 1), ("add", 0, 2)]])
        txn = execution.txns[0]
        assert len(txn.updated_keys) == 1  # corner case (2)
        assert engine.store.get_latest(("k", 0))[0] == 103

    def test_execution_error_aborts_only_that_txn(self):
        registry = generic_registry()

        @registry.register("boom")
        def boom(ctx):
            raise ValueError("bad contract")

        engine = make_engine()
        executor = HarmonyExecutor(engine, registry, NO_IBP)
        from repro.txn.transaction import Txn, TxnSpec

        txns = [
            Txn(0, 0, TxnSpec("boom")),
            Txn(1, 0, TxnSpec("ops", (("ops", (("add", 0, 5),)),))),
        ]
        execution = executor.execute_block(0, txns)
        assert execution.txns[0].abort_reason is AbortReason.EXECUTION_ERROR
        assert execution.txns[1].committed


class TestInterBlock:
    def test_figure6_scenario_aborts_later_block_txn(self):
        """T1 <--intra-rw-- T2 (block i); T2 <--inter-rw-- T3 (block i+1):
        abort T3 deterministically (Rule 3 policy ii)."""
        engine = make_engine()
        config = HarmonyConfig(inter_block=True, snapshot_lag=2)
        executor = HarmonyExecutor(engine, generic_registry(), config)

        # block 0: T1 writes a; T2 reads a (edge T1 <- T2) and writes b
        block0 = make_txns(
            [[("set", 1, 11)], [("r", 1), ("set", 2, 22)]], block_id=0, first_tid=1
        )
        executor.execute_block(0, block0)
        assert all(t.committed for t in block0)
        assert block0[1].min_out == 1  # T2 is a structure middle candidate

        # block 1: T3 reads b (written by T2) from the lag-2 snapshot
        block1 = make_txns([[("r", 2)]], block_id=1, first_tid=3)
        executor.execute_block(1, block1)
        assert block1[0].aborted
        assert block1[0].abort_reason is AbortReason.INTER_BLOCK_STRUCTURE

    def test_reader_of_clean_writer_commits(self):
        engine = make_engine()
        config = HarmonyConfig(inter_block=True, snapshot_lag=2)
        executor = HarmonyExecutor(engine, generic_registry(), config)
        block0 = make_txns([[("set", 1, 11)]], block_id=0, first_tid=1)
        executor.execute_block(0, block0)
        block1 = make_txns([[("r", 1)]], block_id=1, first_tid=2)
        executor.execute_block(1, block1)
        assert block1[0].committed

    def test_lag2_snapshot_visibility(self):
        engine = make_engine()
        config = HarmonyConfig(inter_block=True, snapshot_lag=2)
        executor = HarmonyExecutor(engine, generic_registry(), config)
        executor.execute_block(0, make_txns([[("set", 0, 111)]], 0, 0))
        executor.execute_block(1, make_txns([[("set", 0, 222)]], 1, 1))
        # block 2 simulates against snapshot of block 0: sees 111
        block2 = make_txns([[("r", 0)]], 2, 2)
        execution = executor.execute_block(2, block2)
        assert block2[0].output == (111,)
        assert execution.snapshot_block_id == 0


def _ops_strategy():
    key = st.integers(min_value=0, max_value=7)
    return st.lists(
        st.one_of(
            st.tuples(st.just("r"), key),
            st.tuples(st.just("add"), key, st.integers(-9, 9)),
            st.tuples(st.just("mul"), key, st.integers(1, 3)),
            st.tuples(st.just("set"), key, st.integers(0, 99)),
            st.tuples(st.just("rmw"), key, st.integers(-9, 9)),
        ),
        min_size=1,
        max_size=5,
    )


@st.composite
def random_block_ops(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    return [draw(_ops_strategy()) for _ in range(n)]


class TestSerialWitness:
    @given(random_block_ops())
    @settings(max_examples=150, deadline=None)
    def test_committed_set_equals_serial_witness(self, op_lists):
        engine = make_engine(num_keys=8)
        base = {("k", i): 100 for i in range(8)}
        executor = HarmonyExecutor(engine, generic_registry(), NO_IBP)
        txns = make_txns(op_lists)
        executor.execute_block(0, txns)

        committed = [t for t in txns if t.committed]
        assert SerializabilityOracle.committed_is_serializable(txns)

        # serial witness: ascending (min_out, tid)
        witness_state = dict(base)
        for txn in sorted(committed, key=lambda t: (t.min_out, t.tid)):
            for key in txn.read_set:
                # every snapshot read must still be valid at this point
                assert witness_state.get(key) == base.get(key), (
                    f"txn {txn.tid} read {key} stale in serial witness"
                )
            for key in txn.updated_keys:
                witness_state[key] = apply_safely(txn.write_set[key], witness_state.get(key))

        for key, value in witness_state.items():
            stored, _ = engine.store.get_latest(key)
            assert stored == value

    @given(random_block_ops())
    @settings(max_examples=100, deadline=None)
    def test_replica_determinism(self, op_lists):
        outcomes = []
        for _replica in range(2):
            engine = make_engine(num_keys=8)
            executor = HarmonyExecutor(engine, generic_registry(), NO_IBP)
            txns = make_txns(op_lists)
            executor.execute_block(0, txns)
            outcomes.append(
                ([t.status for t in txns], engine.state_hash())
            )
        assert outcomes[0] == outcomes[1]


class TestMultiBlockHistory:
    @given(st.lists(random_block_ops(), min_size=2, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_inter_block_history_serializable(self, blocks_ops):
        """With inter-block parallelism on, the whole committed history
        (across blocks) must stay serializable (Rule 3 + Rule 2)."""
        engine = make_engine(num_keys=8)
        config = HarmonyConfig(inter_block=True, snapshot_lag=2)
        executor = HarmonyExecutor(engine, generic_registry(), config)
        oracle = HistoryOracle()
        tid = 0
        for block_id, op_lists in enumerate(blocks_ops):
            txns = make_txns(op_lists, block_id=block_id, first_tid=tid)
            tid += len(txns)
            execution = executor.execute_block(block_id, txns)
            oracle.record_block(
                block_id,
                txns,
                execution.key_applies,
                snapshot_block_id=execution.snapshot_block_id,
            )
        assert oracle.is_serializable()

    @given(st.lists(random_block_ops(), min_size=2, max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_multi_block_replica_determinism_with_ibp(self, blocks_ops):
        hashes = []
        for _replica in range(2):
            engine = make_engine(num_keys=8)
            executor = HarmonyExecutor(
                engine, generic_registry(), HarmonyConfig(inter_block=True)
            )
            tid = 0
            for block_id, op_lists in enumerate(blocks_ops):
                txns = make_txns(op_lists, block_id=block_id, first_tid=tid)
                tid += len(txns)
                executor.execute_block(block_id, txns)
            hashes.append(engine.state_hash())
        assert hashes[0] == hashes[1]
