"""Tests for the simulation context, procedure registry and RNG streams."""

from __future__ import annotations

import pytest

from repro.sim.rng import SeededRng
from repro.storage.engine import StorageEngine
from repro.txn.commands import AddValue, SetValue
from repro.txn.context import SimulationContext
from repro.txn.procedures import ProcedureRegistry
from repro.txn.transaction import Txn, TxnSpec, TxnStatus


def setup_ctx(num_keys=16):
    engine = StorageEngine()
    engine.preload({("k", i): 10 * i for i in range(num_keys)})
    txn = Txn(0, 0, TxnSpec("x"))
    ctx = SimulationContext(txn, engine.store.latest_snapshot(), engine)
    return engine, txn, ctx


class TestSimulationContext:
    def test_read_records_version(self):
        _, txn, ctx = setup_ctx()
        assert ctx.read(("k", 3)) == 30
        assert ("k", 3) in txn.read_set
        assert txn.read_set[("k", 3)][0] == -1  # genesis version

    def test_read_missing_key_records_none_version(self):
        _, txn, ctx = setup_ctx()
        assert ctx.read("ghost") is None
        assert txn.read_set["ghost"] is None

    def test_read_own_pending_write(self):
        _, txn, ctx = setup_ctx()
        ctx.add(("k", 1), 5)
        assert ctx.read(("k", 1)) == 15
        ctx.write(("k", 1), 99)
        assert ctx.read(("k", 1)) == 99

    def test_read_own_delete(self):
        _, txn, ctx = setup_ctx()
        ctx.delete(("k", 1))
        assert ctx.read(("k", 1)) is None

    def test_scan_registers_range_and_merges_own_writes(self):
        _, txn, ctx = setup_ctx()
        ctx.write(("k", 2), 222)
        ctx.insert(("k", 99), 999)
        rows = dict(ctx.scan(("k", 0), ("k", 100)))
        assert rows[("k", 2)] == 222
        assert rows[("k", 99)] == 999
        assert txn.read_ranges == [(("k", 0), ("k", 100))]

    def test_costs_accumulate(self):
        _, txn, ctx = setup_ctx()
        before = ctx.cost_us
        ctx.read(("k", 0))
        ctx.add(("k", 0), 1)
        assert ctx.cost_us > before

    def test_helper_methods_record_commands(self):
        _, txn, ctx = setup_ctx()
        ctx.set_fields(("k", 5), a=1)
        ctx.add_fields(("k", 6), b=2)
        ctx.mul(("k", 7), 2)
        assert len(txn.write_set) == 3

    def test_read_for_update_is_a_read(self):
        _, txn, ctx = setup_ctx()
        ctx.read_for_update(("k", 4))
        assert ("k", 4) in txn.read_set


class TestProcedureRegistry:
    def test_register_and_execute(self):
        registry = ProcedureRegistry()

        @registry.register("double")
        def double(ctx, x):
            return 2 * x

        engine, txn, ctx = setup_ctx()
        txn = Txn(0, 0, TxnSpec("double", (("x", 21),)))
        ctx = SimulationContext(txn, engine.store.latest_snapshot(), engine)
        assert registry.execute(ctx) == 42

    def test_duplicate_name_rejected(self):
        registry = ProcedureRegistry()
        registry.add("p", lambda ctx: None)
        with pytest.raises(ValueError):
            registry.add("p", lambda ctx: None)

    def test_unknown_name(self):
        registry = ProcedureRegistry()
        with pytest.raises(KeyError):
            registry.get("nope")

    def test_names_sorted(self):
        registry = ProcedureRegistry()
        registry.add("b", lambda ctx: None)
        registry.add("a", lambda ctx: None)
        assert registry.names() == ["a", "b"]
        assert "a" in registry


class TestTxnRecord:
    def test_status_transitions(self):
        txn = Txn(0, 0, TxnSpec("x"))
        assert txn.status is TxnStatus.PENDING
        txn.mark_committed()
        assert txn.committed and not txn.aborted
        from repro.txn.transaction import AbortReason

        txn.mark_aborted(AbortReason.WAW)
        assert txn.aborted and txn.abort_reason is AbortReason.WAW

    def test_record_update_coalesces_per_key(self):
        txn = Txn(0, 0, TxnSpec("x"))
        txn.record_update("k", AddValue(1))
        txn.record_update("k", AddValue(2))
        assert txn.updated_keys == ["k"]
        assert txn.write_set["k"].apply(0) == 3

    def test_reads_covers_ranges(self):
        txn = Txn(0, 0, TxnSpec("x"))
        txn.read_ranges.append((("k", 0), ("k", 10)))
        assert txn.reads(("k", 5))
        assert not txn.reads(("k", 10))

    def test_reset_for_retry(self):
        txn = Txn(0, 0, TxnSpec("x"))
        txn.read_set["a"] = None
        txn.record_update("b", SetValue(1))
        txn.mark_committed()
        txn.reset_for_retry()
        assert txn.read_set == {} and txn.write_set == {}
        assert txn.status is TxnStatus.PENDING


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = SeededRng(1, "s")
        b = SeededRng(1, "s")
        assert [a.randint(0, 100) for _ in range(10)] == [
            b.randint(0, 100) for _ in range(10)
        ]

    def test_different_streams_diverge(self):
        a = SeededRng(1, "s1")
        b = SeededRng(1, "s2")
        assert [a.randint(0, 10**9) for _ in range(4)] != [
            b.randint(0, 10**9) for _ in range(4)
        ]

    def test_derive_is_stable_and_independent(self):
        root = SeededRng(5, "root")
        child1 = root.derive("x")
        _burn = [root.random() for _ in range(100)]
        child2 = SeededRng(5, "root").derive("x")
        assert child1.randint(0, 10**9) == child2.randint(0, 10**9)

    def test_uniform_and_choice(self):
        rng = SeededRng(2, "u")
        value = rng.uniform(1.0, 2.0)
        assert 1.0 <= value <= 2.0
        assert rng.choice([7]) == 7
        items = [1, 2, 3, 4]
        assert sorted(rng.sample(items, 2))[0] in items
