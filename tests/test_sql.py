"""Tests for the SQL subset: lexer, parser, planner and executor."""

from __future__ import annotations

import pytest

from repro.core.harmony import HarmonyConfig, HarmonyExecutor
from repro.sql import Catalog, PlanningError, SQLExecutor, SQLSyntaxError, parse, tokenize
from repro.sql.ast_nodes import BinOp, ColumnRef, Param, SelectStmt, UpdateStmt
from repro.storage.engine import StorageEngine
from repro.txn.context import SimulationContext
from repro.txn.procedures import ProcedureRegistry
from repro.txn.transaction import Txn, TxnSpec


def bank_catalog() -> Catalog:
    catalog = Catalog()
    catalog.create_table("bank", key_columns=["id"], value_columns=["balance", "tier"])
    catalog.create_table(
        "orders", key_columns=["wid", "oid"], value_columns=["total"]
    )
    return catalog


def bank_engine(catalog) -> StorageEngine:
    engine = StorageEngine()
    rows = [{"id": i, "balance": 100 * (i + 1), "tier": "gold" if i == 0 else "base"} for i in range(5)]
    engine.preload(catalog.initial_rows("bank", rows))
    return engine


def fresh_ctx(engine, tid=0, block=0):
    txn = Txn(tid, block, TxnSpec("sql"))
    return txn, SimulationContext(txn, engine.store.latest_snapshot(), engine)


class TestLexer:
    def test_tokenizes_statement(self):
        kinds = [t.kind for t in tokenize("SELECT a FROM t WHERE id = 1")]
        assert kinds == ["KEYWORD", "IDENT", "KEYWORD", "IDENT", "KEYWORD", "IDENT", "PUNCT", "NUMBER", "EOF"]

    def test_strings_and_floats(self):
        tokens = tokenize("UPDATE t SET x = 1.5, n = 'alice'")
        values = [t.value for t in tokens if t.kind in ("NUMBER", "STRING")]
        assert values == [1.5, "alice"]

    def test_keywords_case_insensitive(self):
        assert tokenize("select")[0].value == "SELECT"

    def test_rejects_garbage(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT @ FROM t")

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT 'oops")


class TestParser:
    def test_select_ast(self):
        stmt = parse("SELECT balance FROM bank WHERE id = ?")
        assert isinstance(stmt, SelectStmt)
        assert stmt.columns == ("balance",)
        assert stmt.conditions[0].column == "id"
        assert isinstance(stmt.conditions[0].value, Param)

    def test_update_self_arithmetic_ast(self):
        stmt = parse("UPDATE bank SET balance = balance + 10 WHERE id = ?")
        assert isinstance(stmt, UpdateStmt)
        expr = stmt.assignments[0].expr
        assert isinstance(expr, BinOp) and expr.op == "+"
        assert isinstance(expr.left, ColumnRef)

    def test_between(self):
        stmt = parse("SELECT * FROM orders WHERE wid = 1 AND oid BETWEEN 2 AND 9")
        kinds = [c.kind for c in stmt.conditions]
        assert kinds == ["eq", "between"]

    def test_insert_count_mismatch(self):
        with pytest.raises(SQLSyntaxError):
            parse("INSERT INTO t (a, b) VALUES (1)")

    def test_params_numbered_left_to_right(self):
        stmt = parse("UPDATE bank SET balance = ? , tier = ? WHERE id = ?")
        indices = []

        def walk(expr):
            if isinstance(expr, Param):
                indices.append(expr.index)
            if isinstance(expr, BinOp):
                walk(expr.left)
                walk(expr.right)

        for assignment in stmt.assignments:
            walk(assignment.expr)
        walk(stmt.conditions[0].value)
        assert indices == [0, 1, 2]

    def test_operator_precedence(self):
        stmt = parse("SELECT * FROM bank WHERE id = 1 + 2 * 3")
        cond = stmt.conditions[0].value
        assert cond.op == "+"  # 1 + (2*3)


class TestPlannerAndExecutor:
    def setup_method(self):
        self.catalog = bank_catalog()
        self.engine = bank_engine(self.catalog)
        self.sql = SQLExecutor(self.catalog)

    def test_point_select(self):
        _txn, ctx = fresh_ctx(self.engine)
        rows = self.sql.execute(ctx, "SELECT balance FROM bank WHERE id = ?", (2,))
        assert rows == [{"balance": 300}]

    def test_select_star_includes_key(self):
        _txn, ctx = fresh_ctx(self.engine)
        rows = self.sql.execute(ctx, "SELECT * FROM bank WHERE id = 0")
        assert rows[0]["id"] == 0 and rows[0]["tier"] == "gold"

    def test_select_missing_row(self):
        _txn, ctx = fresh_ctx(self.engine)
        assert self.sql.execute(ctx, "SELECT * FROM bank WHERE id = 99") == []

    def test_fused_update_emits_command_without_read(self):
        """The Section 3.3.1 example: no read set, an add command."""
        txn, ctx = fresh_ctx(self.engine)
        count = self.sql.execute(
            ctx, "UPDATE bank SET balance = balance + 10 WHERE id = ?", (1,)
        )
        assert count == 1
        assert txn.read_set == {}  # no rw edge!
        command = txn.write_set[("bank", 1)]
        assert command.reads_value  # it is an arithmetic command
        assert command.apply({"balance": 200}) == {"balance": 210}

    def test_separated_update_reads_first(self):
        """Cross-column SET falls back to read-modify-write (3.3.2)."""
        txn, ctx = fresh_ctx(self.engine)
        self.sql.execute(
            ctx, "UPDATE bank SET balance = balance * balance WHERE id = 1"
        )
        assert ("bank", 1) in txn.read_set  # the read the rewrite avoids

    def test_blind_set_update(self):
        txn, ctx = fresh_ctx(self.engine)
        self.sql.execute(ctx, "UPDATE bank SET tier = 'vip' WHERE id = 1")
        assert txn.read_set == {}
        assert txn.write_set[("bank", 1)].apply({"tier": "base", "balance": 1}) == {
            "tier": "vip",
            "balance": 1,
        }

    def test_update_minus(self):
        txn, ctx = fresh_ctx(self.engine)
        self.sql.execute(
            ctx, "UPDATE bank SET balance = balance - 25 WHERE id = 0"
        )
        assert txn.write_set[("bank", 0)].apply({"balance": 100}) == {"balance": 75}

    def test_nonkey_filter_forces_read(self):
        txn, ctx = fresh_ctx(self.engine)
        n = self.sql.execute(
            ctx,
            "UPDATE bank SET balance = balance + 1 WHERE id = 1 AND tier = 'gold'",
        )
        assert n == 0  # row 1 is 'base': predicate fails after the read
        assert ("bank", 1) in txn.read_set

    def test_insert_and_delete(self):
        txn, ctx = fresh_ctx(self.engine)
        self.sql.execute(
            ctx,
            "INSERT INTO bank (id, balance, tier) VALUES (?, ?, ?)",
            (77, 5.0, "new"),
        )
        self.sql.execute(ctx, "DELETE FROM bank WHERE id = 0")
        assert ("bank", 77) in txn.write_set
        assert ("bank", 0) in txn.write_set

    def test_range_select_scans(self):
        catalog = self.catalog
        engine = StorageEngine()
        engine.preload(
            catalog.initial_rows(
                "orders", [{"wid": 1, "oid": i, "total": i * 1.0} for i in range(10)]
            )
        )
        sql = SQLExecutor(catalog)
        txn, ctx = fresh_ctx(engine)
        rows = sql.execute(
            ctx, "SELECT total FROM orders WHERE wid = 1 AND oid BETWEEN 2 AND 5"
        )
        assert [r["total"] for r in rows] == [2.0, 3.0, 4.0]
        assert txn.read_ranges  # phantom-guarded

    def test_unknown_table_and_column(self):
        _txn, ctx = fresh_ctx(self.engine)
        with pytest.raises(KeyError):
            self.sql.execute(ctx, "SELECT * FROM ghosts WHERE id = 1")
        with pytest.raises(PlanningError):
            self.sql.execute(ctx, "SELECT * FROM bank WHERE wrong = 1")

    def test_underconstrained_key_rejected(self):
        _txn, ctx = fresh_ctx(self.engine)
        with pytest.raises(PlanningError):
            self.sql.execute(ctx, "UPDATE orders SET total = 0 WHERE wid = 1")

    def test_plan_cache_reuse(self):
        _txn, ctx = fresh_ctx(self.engine)
        sql = "SELECT * FROM bank WHERE id = ?"
        first = self.sql.prepare(sql)
        self.sql.execute(ctx, sql, (1,))
        assert self.sql.prepare(sql) is first


class TestSQLUnderHarmony:
    def test_fused_sql_updates_all_commit_and_coalesce(self):
        """Three concurrent 'UPDATE ... SET balance = balance + ?' on the
        same row all commit — the paper's hotspot mechanism, via real SQL."""
        catalog = bank_catalog()
        engine = bank_engine(catalog)
        sql = SQLExecutor(catalog)
        registry = ProcedureRegistry()

        @registry.register("deposit")
        def deposit(ctx, amount):
            return sql.execute(
                ctx, "UPDATE bank SET balance = balance + ? WHERE id = 0", (amount,)
            )

        executor = HarmonyExecutor(engine, registry, HarmonyConfig(inter_block=False))
        txns = [
            Txn(i, 0, TxnSpec("deposit", (("amount", 10 * (i + 1)),))) for i in range(3)
        ]
        execution = executor.execute_block(0, txns)
        assert all(t.committed for t in txns)
        row, _ = engine.store.get_latest(("bank", 0))
        assert row["balance"] == 100 + 10 + 20 + 30
        hot = [ka for ka in execution.key_applies if ka.key == ("bank", 0)]
        assert len(hot[0].chain_durations_us) == 1  # coalesced to one apply

    def test_separated_sql_select_then_update_conflicts(self):
        """The same logic as three statements loses the opportunity: only
        one of the concurrent updaters survives validation."""
        catalog = bank_catalog()
        engine = bank_engine(catalog)
        sql = SQLExecutor(catalog)
        registry = ProcedureRegistry()

        @registry.register("deposit_slow")
        def deposit_slow(ctx, amount):
            rows = sql.execute(ctx, "SELECT balance FROM bank WHERE id = 0")
            new_balance = rows[0]["balance"] + amount
            return sql.execute(
                ctx, "UPDATE bank SET balance = ? WHERE id = 0", (new_balance,)
            )

        executor = HarmonyExecutor(engine, registry, HarmonyConfig(inter_block=False))
        txns = [
            Txn(i, 0, TxnSpec("deposit_slow", (("amount", 10),))) for i in range(3)
        ]
        executor.execute_block(0, txns)
        assert sum(1 for t in txns if t.committed) == 1
