"""Cross-shard recovery drills (ROADMAP follow-up, ISSUE 5).

The hard crash window of 2PC-over-blocks: a shard dies *between* casting
its prepare vote and the certificate landing. Votes are deterministic, so
the certificate still appends and the surviving shards commit — the
crashed shard must rebuild from its checkpoint chain + logged sub-blocks,
honouring the global certificate stream, and converge on the identical
decisions, ledger and state. Also pins the recovery differential at the
sharded level: delta-chain and full-deepcopy checkpoints recover every
shard bit-identically.
"""

from __future__ import annotations

import pytest

from repro.chain.system import decision_digest
from repro.shard.recovery import recover_shard_node
from repro.shard.system import ShardConfig, ShardedBlockchain
from repro.sim.rng import SeededRng
from repro.workloads import make_workload
from repro.workloads.base import ShardAffinity
from repro.workloads.smallbank import SmallbankWorkload
from repro.workloads.ycsb import YCSBWorkload

NUM_SHARDS = 3


def build_chain(
    workload=None, incremental=True, num_shards=NUM_SHARDS, **overrides
) -> ShardedBlockchain:
    config = ShardConfig(
        system="harmony",
        num_shards=num_shards,
        block_size=10,
        seed=13,
        checkpoint_interval=2,
        checkpoint_base_interval=2,
        checkpoint_incremental=incremental,
        **overrides,
    )
    workload = workload or SmallbankWorkload(
        num_accounts=90, theta=0.6, affinity=ShardAffinity(num_shards, 0.5)
    )
    return ShardedBlockchain(config, workload)


def drive(chain: ShardedBlockchain, num_blocks: int, crash_at=None, crash_shard=None):
    """Run the decision layer block-by-block; optionally crash one shard
    between its prepare vote and the certificate append of ``crash_at``."""
    rng = SeededRng(chain.config.seed, "shard-recovery-drill")
    outcomes = []
    for i in range(num_blocks):
        block = chain.ordering.form_block(
            chain.workload.generate_block(chain.config.block_size, rng)
        )
        crash = frozenset({crash_shard}) if i == crash_at else frozenset()
        outcomes.append(chain.process_global_block(block, crash_after_prepare=crash))
    return outcomes


def replay_reference(chain: ShardedBlockchain, shard: int, after: int):
    """An uncrashed replica of ``shard``: replay sub-blocks + certificates
    on a fresh group (the consistency-check path) and digest the decisions
    of blocks > ``after``."""
    from repro.shard.system import ShardGroup

    other = ShardGroup(
        chain.config,
        chain.workload,
        chain.router,
        chain.costs,
        chain.orderer_signer,
        name_prefix="reference",
    )
    height = len(chain.group.nodes[0].ledger)
    replayed = []
    for i in range(height):
        sub_blocks = {
            s: node.ledger[i] for s, node in enumerate(chain.group.nodes)
        }
        prepared = other.prepare(sub_blocks)
        executions = other.finish(prepared, chain.cert_log[i].abort_tids)
        if i > after:
            replayed.append((i, executions[shard].txns))
    return other, decision_digest(replayed)


class TestCrossShardRecoveryDrill:
    def test_crash_between_prepare_vote_and_certificate_append(self):
        """The drill itself: shard 1 votes on the final block, crashes
        before the certificate lands, and recovers to the state, ledger
        and decisions every uncrashed replica of it holds."""
        chain = build_chain()
        crash_shard = 1
        outcomes = drive(chain, 7, crash_at=6, crash_shard=crash_shard)
        assert crash_shard not in outcomes[-1].executions  # never committed
        # the certificate still landed — votes are deterministic
        assert len(chain.cert_log) == 7
        assert chain.cert_log.verify_chain()

        crashed = chain.group.nodes[crash_shard]
        behind = crashed.engine.store.last_committed_block
        assert behind == 5  # the in-flight block never applied...
        assert len(crashed.engine.block_log) == 7  # ...but was logged first

        recovery = recover_shard_node(
            crashed,
            crash_shard,
            [node.engine.store for node in chain.group.nodes],
            chain.router,
            chain.cert_log,
        )
        recovered = recovery.node
        # recovery resumed from the last durable checkpoint, not genesis
        assert recovery.replay_from >= 0

        reference, reference_digest = replay_reference(
            chain, crash_shard, after=recovery.replay_from
        )
        assert recovery.decision_digest == reference_digest
        assert recovered.state_hash() == reference.nodes[crash_shard].state_hash()
        assert recovered.engine.store.last_committed_block == 6
        # ledger: rebuilt from the logged sub-blocks, chained like a peer's
        assert recovered.ledger.verify_chain()
        assert len(recovered.ledger) == len(reference.nodes[crash_shard].ledger)
        assert (
            recovered.ledger[-1].hash == reference.nodes[crash_shard].ledger[-1].hash
        )

    def test_recovered_shard_votes_match_uncrashed_future(self):
        """After recovery the shard keeps processing: prepare the next
        block on the recovered replica and on an uncrashed reference —
        identical decisions (the recovered replica is a full peer again)."""
        chain = build_chain()
        drive(chain, 6, crash_at=5, crash_shard=2)
        recovery = recover_shard_node(
            chain.group.nodes[2],
            2,
            [node.engine.store for node in chain.group.nodes],
            chain.router,
            chain.cert_log,
        )
        reference, _ = replay_reference(chain, 2, after=-1)
        assert recovery.node.state_hash() == reference.nodes[2].state_hash()
        assert (
            recovery.node.engine.store._versions.keys()
            == reference.nodes[2].engine.store._versions.keys()
        )

    @pytest.mark.parametrize("crash_shard", range(NUM_SHARDS))
    def test_every_shard_recovers_from_the_drill(self, crash_shard):
        chain = build_chain(
            workload=YCSBWorkload(
                num_keys=120, theta=0.6, affinity=ShardAffinity(NUM_SHARDS, 0.6)
            )
        )
        drive(chain, 5, crash_at=4, crash_shard=crash_shard)
        recovery = recover_shard_node(
            chain.group.nodes[crash_shard],
            crash_shard,
            [node.engine.store for node in chain.group.nodes],
            chain.router,
            chain.cert_log,
        )
        reference, reference_digest = replay_reference(
            chain, crash_shard, after=recovery.replay_from
        )
        assert recovery.decision_digest == reference_digest
        assert (
            recovery.node.state_hash()
            == reference.nodes[crash_shard].state_hash()
        )


class TestNewWorkloadRecoveryDrill:
    """ISSUE 8: the vote-then-crash drill and the checkpoint differential
    hold on multi-warehouse TPC-C (cross-warehouse payments/new-orders
    spanning shards) and the migrating-hotspot adversarial stream."""

    @pytest.mark.parametrize("name", ["tpcc", "adv-skewshift"])
    def test_crashed_shard_recovers_on_new_workloads(self, name):
        chain = build_chain(
            workload=make_workload(
                name, profile="gate", affinity=ShardAffinity(NUM_SHARDS, 0.5)
            )
        )
        outcomes = drive(chain, 6, crash_at=5, crash_shard=1)
        # the drill must actually carry cross-shard transactions
        assert any(
            len(shards) > 1 for o in outcomes for shards in o.participants
        )
        recovery = recover_shard_node(
            chain.group.nodes[1],
            1,
            [node.engine.store for node in chain.group.nodes],
            chain.router,
            chain.cert_log,
        )
        reference, reference_digest = replay_reference(
            chain, 1, after=recovery.replay_from
        )
        assert recovery.decision_digest == reference_digest
        assert recovery.node.state_hash() == reference.nodes[1].state_hash()
        assert recovery.node.engine.store.last_committed_block == 5
        assert recovery.node.ledger.verify_chain()
        assert len(recovery.node.ledger) == len(reference.nodes[1].ledger)

    @pytest.mark.parametrize("name", ["tpcc", "adv-skewshift"])
    def test_delta_chain_recovery_matches_full_on_new_workloads(self, name):
        recovered = {}
        for incremental in (False, True):
            chain = build_chain(
                workload=make_workload(
                    name, profile="gate", affinity=ShardAffinity(NUM_SHARDS, 0.5)
                ),
                incremental=incremental,
            )
            drive(chain, 6)
            stores = [node.engine.store for node in chain.group.nodes]
            for shard in range(NUM_SHARDS):
                recovery = recover_shard_node(
                    chain.group.nodes[shard],
                    shard,
                    stores,
                    chain.router,
                    chain.cert_log,
                )
                assert (
                    recovery.node.state_hash()
                    == chain.group.nodes[shard].state_hash()
                )
                recovered[(incremental, shard)] = recovery.node.engine.store
        for shard in range(NUM_SHARDS):
            full_store = recovered[(False, shard)]
            delta_store = recovered[(True, shard)]
            assert delta_store._versions == full_store._versions
            assert delta_store._sorted_keys == full_store._sorted_keys
            assert delta_store.state_hash() == full_store.state_hash()


class TestShardedRecoveryDifferential:
    def test_delta_chain_recovers_every_shard_bit_identical_to_full(self):
        """ISSUE 5 acceptance, sharded half: per shard, recovery from the
        delta chain equals recovery from full checkpoints — version
        chains included — and matches the original run's shard states."""
        recovered_stores = {}
        for incremental in (False, True):
            chain = build_chain(incremental=incremental)
            drive(chain, 6)
            stores = [node.engine.store for node in chain.group.nodes]
            for shard in range(NUM_SHARDS):
                recovery = recover_shard_node(
                    chain.group.nodes[shard],
                    shard,
                    stores,
                    chain.router,
                    chain.cert_log,
                )
                assert (
                    recovery.node.state_hash()
                    == chain.group.nodes[shard].state_hash()
                )
                recovered_stores[(incremental, shard)] = recovery.node.engine.store
        for shard in range(NUM_SHARDS):
            full_store = recovered_stores[(False, shard)]
            delta_store = recovered_stores[(True, shard)]
            assert delta_store._versions == full_store._versions
            assert delta_store._sorted_keys == full_store._sorted_keys
            assert delta_store.state_hash() == full_store.state_hash()
