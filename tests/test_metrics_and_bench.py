"""Tests for metrics containers, the bench report and design-choice ablations."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.config import current_scale
from repro.bench.report import ExperimentResult, render
from repro.sim.metrics import BlockStats, RunMetrics, percentile


class TestPercentile:
    def test_empty(self):
        assert percentile([], 50) == 0.0

    def test_bounds(self):
        values = [1.0, 2.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 3.0

    def test_median(self):
        assert percentile([5.0, 1.0, 3.0], 50) == 3.0

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)
        with pytest.raises(ValueError):
            percentile([1.0], 100.1)

    def test_nearest_rank_is_a_sample(self):
        # p99 of 100 samples is the 99th order statistic, not an
        # interpolated value that never occurred
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 99) == 99.0
        assert percentile(values, 99.9) == 100.0
        assert percentile(values, 50) == 50.0


class TestPercentileDifferential:
    """Property tests pinning the nearest-rank definition, differentially
    against ``statistics.quantiles``."""

    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=60,
        ),
        q=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_membership_and_rank(self, values, q):
        import math

        result = percentile(values, q)
        assert result in values
        # rank-counting uniquely determines the rank-th order statistic
        # without re-sorting: at least `rank` samples are <= result, and
        # fewer than `rank` are strictly below it
        rank = max(1, math.ceil(q / 100.0 * len(values)))
        assert sum(1 for v in values if v <= result) >= rank
        assert sum(1 for v in values if v < result) <= rank - 1

    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=60,
        ),
        q=st.integers(min_value=1, max_value=99),
    )
    @settings(max_examples=200, deadline=None)
    def test_brackets_statistics_quantiles(self, values, q):
        """The nearest-rank sample and the stdlib's inclusive-interpolation
        cut point land in the same order-statistic bracket.

        With ``h = 1 + (N-1)q/100`` (the interpolation position) and
        ``r = ceil(Nq/100)`` (the nearest rank), ``|r - h| < 1`` for any
        q in (0, 100), so both estimates lie within the order statistics
        adjacent to ``h``.
        """
        import math
        import statistics

        result = percentile(values, q)
        cut = statistics.quantiles(values, n=100, method="inclusive")[q - 1]
        ordered = sorted(values)
        h = 1 + (len(ordered) - 1) * q / 100.0
        lo = ordered[max(0, math.floor(h) - 2)]
        hi = ordered[min(len(ordered) - 1, math.ceil(h) - 1)]
        assert lo <= result <= hi
        # the stdlib cut point is interpolated floating-point arithmetic,
        # so it can land an ulp outside the bracket when samples coincide
        assert (
            lo <= cut <= hi
            or math.isclose(cut, lo, rel_tol=1e-9, abs_tol=1e-9)
            or math.isclose(cut, hi, rel_tol=1e-9, abs_tol=1e-9)
        )


class TestRunMetrics:
    def test_rates(self):
        metrics = RunMetrics(system="s", workload="w")
        metrics.committed = 80
        metrics.aborted = 20
        metrics.false_aborts = 5
        metrics.sim_time_us = 1e6
        assert metrics.throughput_tps == pytest.approx(80.0)
        assert metrics.abort_rate == pytest.approx(0.2)
        assert metrics.false_abort_rate == pytest.approx(0.05)

    def test_zero_division_safety(self):
        metrics = RunMetrics(system="s", workload="w")
        assert metrics.throughput_tps == 0.0
        assert metrics.abort_rate == 0.0
        assert metrics.mean_latency_ms == 0.0

    def test_merge_block(self):
        metrics = RunMetrics(system="s", workload="w")
        metrics.merge_block(BlockStats(block_id=0, committed=3, aborted=1))
        metrics.merge_block(BlockStats(block_id=1, committed=2, aborted=2))
        assert metrics.committed == 5 and metrics.aborted == 3
        assert metrics.blocks == 2

    def test_merge_block_rejects_double_merge(self):
        metrics = RunMetrics(system="s", workload="w")
        metrics.merge_block(BlockStats(block_id=0, committed=3))
        with pytest.raises(ValueError, match="already merged"):
            metrics.merge_block(BlockStats(block_id=0, committed=3))
        assert metrics.committed == 3 and metrics.blocks == 1

    def test_merge_block_allow_remerge_is_explicit(self):
        metrics = RunMetrics(system="s", workload="w")
        metrics.merge_block(BlockStats(block_id=0, committed=3))
        metrics.merge_block(BlockStats(block_id=0, committed=3), allow_remerge=True)
        assert metrics.committed == 6 and metrics.blocks == 2

    def test_latency_percentile_properties(self):
        metrics = RunMetrics(system="s", workload="w")
        metrics.latencies_us = [float(v) * 1000.0 for v in range(1, 101)]
        assert metrics.p50_latency_ms == pytest.approx(50.0)
        assert metrics.p99_latency_ms == pytest.approx(99.0)
        assert metrics.p999_latency_ms == pytest.approx(100.0)

    def test_sharded_merge_path_counts_each_block_once(self):
        """Regression around merge_shard_results: a sharded run must fold
        each global block into RunMetrics exactly once — the seen-block
        guard would raise on any double merge."""
        from repro.shard.system import ShardConfig, ShardedBlockchain
        from repro.workloads import make_workload
        from repro.workloads.base import ShardAffinity

        config = ShardConfig(
            system="harmony", num_shards=2, block_size=8, num_blocks=5, seed=7
        )
        workload = make_workload(
            "smallbank", profile="gate", affinity=ShardAffinity(2, 0.5)
        )
        metrics = ShardedBlockchain(config, workload).run()
        assert metrics.blocks == config.num_blocks
        assert metrics.committed + metrics.aborted > 0


class TestReport:
    def make_result(self):
        result = ExperimentResult(
            name="Figure X", description="demo", headers=["system", "tput"]
        )
        result.add("harmony", 1234.5)
        result.add("aria", 567.8)
        return result

    def test_render_contains_rows(self):
        text = render(self.make_result())
        assert "Figure X" in text
        assert "harmony" in text and "1,234" in text

    def test_column_and_series(self):
        result = self.make_result()
        assert result.column("system") == ["harmony", "aria"]
        assert result.series("system", "aria", "tput") == [567.8]

    def test_notes_rendered(self):
        result = self.make_result()
        result.notes.append("something important")
        assert "something important" in render(result)

    def test_scale_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        quick = current_scale()
        monkeypatch.setenv("REPRO_FULL", "1")
        full = current_scale()
        assert full.num_blocks > quick.num_blocks


# ---------------------------------------------------------------------------
# Design-choice ablation: Rule 2's quick-sort order vs a full topological sort
# (DESIGN.md: "quick-sort reordering vs full topological sort equivalence").
# ---------------------------------------------------------------------------
from repro.core.validation import HarmonyValidator  # noqa: E402
from repro.txn.commands import AddValue  # noqa: E402
from repro.txn.transaction import Txn, TxnSpec  # noqa: E402


@st.composite
def validated_block(draw):
    n = draw(st.integers(min_value=2, max_value=9))
    keys = [f"key{i}" for i in range(5)]
    txns = []
    for tid in range(1, n + 1):
        txn = Txn(tid=tid, block_id=0, spec=TxnSpec("ops"))
        for key in draw(st.lists(st.sampled_from(keys), max_size=3, unique=True)):
            txn.read_set[key] = None
        for key in draw(st.lists(st.sampled_from(keys), max_size=3, unique=True)):
            txn.record_update(key, AddValue(1))
        txns.append(txn)
    HarmonyValidator().validate(txns)
    return [t for t in txns if not t.aborted]


def _committed_rw_edges(committed):
    edges = []
    for reader in committed:
        for writer in committed:
            if reader.tid != writer.tid and any(
                reader.reads(k) for k in writer.write_set
            ):
                edges.append((reader, writer))
    return edges


class TestRule2VsTopologicalSort:
    @given(validated_block())
    @settings(max_examples=150, deadline=None)
    def test_min_out_order_is_a_valid_topological_sort(self, committed):
        """Rule 2's O(n log n) quick-sort yields an order that any full
        (O(V+E)) topological sort of the committed rw-subgraph would also
        accept — the cheap order is never wrong."""
        order = {t.tid: i for i, t in enumerate(
            sorted(committed, key=lambda t: (t.min_out, t.tid))
        )}
        for reader, writer in _committed_rw_edges(committed):
            assert order[reader.tid] < order[writer.tid]

    @given(validated_block())
    @settings(max_examples=100, deadline=None)
    def test_per_key_sorting_is_globally_consistent(self, committed):
        """Rule 2 sorts each key's updaters independently; check that the
        per-key orders embed into the single global witness order (this is
        what makes parallel per-key sorting sound)."""
        global_order = {t.tid: i for i, t in enumerate(
            sorted(committed, key=lambda t: (t.min_out, t.tid))
        )}
        by_key: dict = {}
        for txn in committed:
            for key in txn.write_set:
                by_key.setdefault(key, []).append(txn)
        for key, updaters in by_key.items():
            ordered = sorted(updaters, key=lambda t: (t.min_out, t.tid))
            positions = [global_order[t.tid] for t in ordered]
            assert positions == sorted(positions)


class TestCompareTooling:
    """`python -m repro.bench --compare`: mechanical trajectory diffing."""

    @staticmethod
    def _run(mode, created, cases):
        return {
            "bench": "perf",
            "mode": mode,
            "created_utc": created,
            "cases": [
                {
                    "case": name,
                    "params": params,
                    "speedup": speedup,
                    "indexed_s": indexed_s,
                    "checks": {},
                }
                for name, params, speedup, indexed_s in cases
            ],
        }

    def test_detects_speedup_collapse(self):
        from repro.bench.perf import compare_last_runs

        history = [
            self._run("full", "t0", [("validation", {"n": 1}, 6.0, 0.010),
                                     ("mvstore_gc", {"n": 2}, 10.0, 0.008)]),
            self._run("full", "t1", [("validation", {"n": 1}, 5.9, 0.010),
                                     ("mvstore_gc", {"n": 2}, 4.0, 0.020)]),
        ]
        lines, regressions = compare_last_runs(history)
        assert len(regressions) == 1
        assert "mvstore_gc" in regressions[0]
        assert any("COLLAPSED" in line for line in lines)

    def test_within_threshold_passes(self):
        from repro.bench.perf import compare_last_runs

        history = [
            self._run("full", "t0", [("validation", {"n": 1}, 5.0, 0.010)]),
            self._run("full", "t1", [("validation", {"n": 1}, 4.2, 0.011)]),  # -16%
        ]
        _lines, regressions = compare_last_runs(history)
        assert regressions == []

    def test_faster_naive_reference_alone_is_noise_not_regression(self):
        """A speedup collapse caused purely by the naive denominator
        speeding up (micro-case timing noise) must not fail the diff —
        the gate protects the indexed path's wall time."""
        from repro.bench.perf import compare_last_runs

        history = [
            self._run("full", "t0", [("aria_range_check", {"n": 1}, 9.3, 0.000039)]),
            self._run("full", "t1", [("aria_range_check", {"n": 1}, 6.4, 0.000040)]),
        ]
        _lines, regressions = compare_last_runs(history)
        assert regressions == []

    def test_compares_same_mode_only_and_ignores_new_cases(self):
        from repro.bench.perf import compare_last_runs

        history = [
            self._run("full", "t0", [("validation", {"n": 1}, 8.0, 0.01)]),
            self._run("smoke", "t1", [("validation", {"n": 9}, 2.0, 0.01)]),
            self._run("full", "t2", [("validation", {"n": 1}, 7.8, 0.01),
                                     ("brand_new", {"n": 3}, 1.1, 0.01)]),
        ]
        lines, regressions = compare_last_runs(history)
        assert regressions == []
        assert any("t0" in line for line in lines)  # diffed against the full run
        assert any("NEW" in line for line in lines)

    def test_single_run_or_unmatched_mode_is_not_a_failure(self):
        from repro.bench.perf import compare_last_runs

        assert compare_last_runs([self._run("full", "t0", [])])[1] == []
        history = [
            self._run("smoke", "t0", [("validation", {"n": 1}, 2.0, 0.01)]),
            self._run("full", "t1", [("validation", {"n": 1}, 8.0, 0.01)]),
        ]
        assert compare_last_runs(history)[1] == []

    def test_cli_exit_codes(self, tmp_path):
        import json

        from repro.bench.__main__ import main

        path = tmp_path / "BENCH_perf.json"
        good = [
            self._run("full", "t0", [("validation", {"n": 1}, 6.0, 0.01)]),
            self._run("full", "t1", [("validation", {"n": 1}, 6.2, 0.01)]),
        ]
        path.write_text(json.dumps({"schema": 1, "runs": good}))
        assert main(["--compare", str(path)]) == 0

        bad = good[:1] + [
            self._run("full", "t1", [("validation", {"n": 1}, 1.5, 0.04)])
        ]
        path.write_text(json.dumps({"schema": 1, "runs": bad}))
        assert main(["--compare", str(path)]) == 1
        assert main(["--compare", str(tmp_path / "missing.json")]) == 2

    def test_one_noisy_run_in_a_window_is_not_a_collapse(self):
        """Wall-basis cases gate on trailing-window medians: one noisy
        newest run on a shared machine must not flag a collapse, while a
        regression that persists across the window still fails."""
        from repro.bench.perf import compare_last_runs

        steady = [("validation", {"n": 1}, 6.0, 0.010)]
        noisy = [("validation", {"n": 1}, 3.0, 0.022)]  # one bad sample
        history = [
            self._run("full", f"t{i}", steady) for i in range(5)
        ] + [self._run("full", "t5", noisy)]
        _lines, regressions = compare_last_runs(history)
        assert regressions == []  # median of the newest window is steady

        persistent = history[:3] + [
            self._run("full", f"t{i}", noisy) for i in range(3, 6)
        ]
        _lines, regressions = compare_last_runs(persistent)
        assert len(regressions) == 1
        assert "validation" in regressions[0]

    def test_simulated_basis_stays_strict_single_run(self):
        """A simulated-time case collapsing in just the newest run is a
        real behavioural change — no median smoothing, no noise guard."""
        from repro.bench.perf import compare_last_runs

        def sim_case(speedup):
            return {
                "case": "shard_scaling",
                "params": {"num_shards": 4},
                "speedup": speedup,
                "indexed_s": 0.01,
                "basis": "simulated",
                "checks": {},
            }

        history = [
            {"bench": "perf", "mode": "full", "created_utc": f"t{i}",
             "cases": [sim_case(7.5)]}
            for i in range(4)
        ] + [
            {"bench": "perf", "mode": "full", "created_utc": "t4",
             "cases": [sim_case(4.0)]}
        ]
        _lines, regressions = compare_last_runs(history)
        assert len(regressions) == 1
        assert "shard_scaling" in regressions[0]

    def test_case_younger_than_the_window_is_new_not_collapsed(self):
        from repro.bench.perf import compare_last_runs

        old_runs = [
            self._run("full", f"t{i}", [("validation", {"n": 1}, 6.0, 0.01)])
            for i in range(4)
        ]
        young = [("validation", {"n": 1}, 6.0, 0.01),
                 ("parallel_prepare", {"shards": 4}, 0.4, 0.9)]
        history = old_runs + [
            self._run("full", f"t{i}", young) for i in range(4, 6)
        ]
        lines, regressions = compare_last_runs(history)
        assert regressions == []
        assert any("NEW" in line and "parallel_prepare" in line for line in lines)

    def test_sub_millisecond_jitter_is_below_the_noise_floor(self):
        """A micro-case's indexed timing moving by tens of microseconds is
        scheduler jitter, not a regression — the absolute floor absorbs
        it; the same path regressing at a measurable size still fails."""
        from repro.bench.perf import compare_last_runs

        history = [
            self._run("full", "t0", [("aria_range_check", {"n": 25}, 9.3, 0.000039),
                                     ("aria_range_check", {"n": 400}, 12.5, 0.0010)]),
            self._run("full", "t1", [("aria_range_check", {"n": 25}, 5.9, 0.000050),
                                     ("aria_range_check", {"n": 400}, 8.0, 0.0019)]),
        ]
        _lines, regressions = compare_last_runs(history)
        assert len(regressions) == 1
        assert "n=400" in regressions[0]
