"""Tests for Harmony's abort-minimizing validation (Rule 1 / Algorithm 1).

Includes the paper's worked examples (Figures 2-4) and a property test
proving Algorithm 1 equivalent to a brute-force evaluation of Rule 1.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.validation import HarmonyValidator, NEG_INF
from repro.txn.commands import AddValue, SetValue
from repro.txn.transaction import AbortReason, Txn, TxnSpec


def txn_with(tid: int, reads=(), writes=(), block_id: int = 0) -> Txn:
    txn = Txn(tid=tid, block_id=block_id, spec=TxnSpec("ops"))
    for key in reads:
        txn.read_set[key] = None
    for key in writes:
        txn.record_update(key, AddValue(1))
    return txn


def validate(txns, **kwargs):
    validator = HarmonyValidator(**kwargs)
    return validator.validate(txns)


class TestPaperExamples:
    def test_figure2_no_abort_on_pure_ww(self):
        """Aria aborts T2 on T1 --ww--> T2; Harmony commits both."""
        t1 = txn_with(1, writes=["x"])
        t2 = txn_with(2, writes=["x"])
        stats = validate([t1, t2])
        assert stats.aborted_tids == set()

    def test_figure3a_two_transaction_structure(self):
        """Mutual rw edges: T1 <--rw-- T2 <--rw-- T1 (i == k == 1)."""
        t1 = txn_with(1, reads=["y"], writes=["x"])
        t2 = txn_with(2, reads=["x"], writes=["y"])
        stats = validate([t1, t2])
        assert stats.aborted_tids == {2}
        assert t2.abort_reason is AbortReason.BACKWARD_DANGEROUS_STRUCTURE
        assert t1.status.value != "aborted"

    def test_figure3b_three_transaction_structure(self):
        """T1 <--rw-- T4 <--rw-- T3: abort T4 (i=1 < j=4, i <= k=3)."""
        t1 = txn_with(1, writes=["a"])
        t3 = txn_with(3, reads=["b"], writes=[])
        t4 = txn_with(4, reads=["a"], writes=["b"])
        stats = validate([t1, t3, t4])
        assert stats.aborted_tids == {4}

    def test_figure4_no_structure_all_commit(self):
        """The Figure 4 graph has no backward dangerous structure."""
        # edges: T1 --rw--> T2 --rw--> T3, T4 --rw--> T1, T4 --rw--> T3
        t1 = txn_with(1, reads=["b"], writes=["a", "x"])
        t2 = txn_with(2, reads=["c"], writes=["b"])
        t3 = txn_with(3, reads=[], writes=["c", "d", "x"])
        t4 = txn_with(4, reads=["a", "d"], writes=["x"])
        stats = validate([t1, t2, t3, t4])
        assert stats.aborted_tids == set()
        assert t1.min_out == 2
        assert t2.min_out == 3
        assert t3.min_out == 4
        assert t4.min_out == 1  # min(1, 3)

    def test_single_backward_edge_is_not_dangerous(self):
        """Fabric aborts on one rw edge; Harmony needs the full structure."""
        t1 = txn_with(1, writes=["x"])
        t2 = txn_with(2, reads=["x"])
        stats = validate([t1, t2])
        assert stats.aborted_tids == set()
        assert t2.min_out == 1  # backward edge exists, but no incoming edge


class TestCounters:
    def test_min_out_initialised_to_tid_plus_one(self):
        t5 = txn_with(5)
        validate([t5])
        assert t5.min_out == 6
        assert t5.max_in == NEG_INF

    def test_forward_edge_does_not_lower_min_out(self):
        # T1 reads what T9 writes: forward edge, min(9, 2) = 2 unchanged
        t1 = txn_with(1, reads=["x"])
        t9 = txn_with(9, writes=["x"])
        validate([t1, t9])
        assert t1.min_out == 2
        assert t9.max_in == 1

    def test_phantom_range_read_creates_edge(self):
        t1 = txn_with(1, writes=[("k", 5)])
        t2 = txn_with(2)
        t2.read_ranges.append((("k", 0), ("k", 10)))
        t2.record_update(("q", 0), SetValue(1))
        t3 = txn_with(3)
        t3.read_set[("q", 0)] = None
        t3.record_update(("z", 0), SetValue(1))
        # T2 range-reads T1's write and is read by T3: T1 <- T2 <- T3
        stats = validate([t1, t2, t3])
        assert stats.aborted_tids == {2}

    def test_ww_abort_mode_for_ablation(self):
        """update_reorder=False falls back to Aria-style ww aborts."""
        t1 = txn_with(1, writes=["x"])
        t2 = txn_with(2, writes=["x"])
        stats = validate([t1, t2], update_reorder=False)
        assert stats.aborted_tids == {2}
        assert t2.abort_reason is AbortReason.WAW


def brute_force_rule1(txns) -> set[int]:
    """Direct evaluation of Rule 1 over all rw-edge pairs."""
    out_edges: dict[int, set[int]] = {t.tid: set() for t in txns}
    for reader in txns:
        for writer in txns:
            if reader.tid == writer.tid:
                continue
            if any(reader.reads(k) for k in writer.write_set):
                out_edges[reader.tid].add(writer.tid)
    aborted = set()
    for tj in txns:
        for ti_tid in out_edges[tj.tid]:
            if ti_tid >= tj.tid:
                continue
            for tk in txns:
                if tj.tid in out_edges[tk.tid] and ti_tid <= tk.tid:
                    aborted.add(tj.tid)
    return aborted


@st.composite
def random_block(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    keys = [f"key{i}" for i in range(6)]
    txns = []
    for tid in range(1, n + 1):
        reads = draw(st.lists(st.sampled_from(keys), max_size=3, unique=True))
        writes = draw(st.lists(st.sampled_from(keys), max_size=3, unique=True))
        txns.append(txn_with(tid, reads=reads, writes=writes))
    return txns


class TestAlgorithmEquivalence:
    @given(random_block())
    @settings(max_examples=200, deadline=None)
    def test_algorithm1_equals_rule1(self, txns):
        expected = brute_force_rule1(txns)
        stats = validate(txns)
        assert stats.aborted_tids == expected

    @given(random_block())
    @settings(max_examples=200, deadline=None)
    def test_validation_is_deterministic(self, txns):
        import copy

        first = validate(copy.deepcopy(txns))
        second = validate(copy.deepcopy(txns))
        assert first.aborted_tids == second.aborted_tids

    @given(random_block())
    @settings(max_examples=200, deadline=None)
    def test_min_out_order_is_topological(self, txns):
        """Theorem 2: ascending (min_out, tid) respects committed rw edges."""
        validate(txns)
        committed = [t for t in txns if not t.aborted]
        for reader in committed:
            for writer in committed:
                if reader.tid == writer.tid:
                    continue
                if any(reader.reads(k) for k in writer.write_set):
                    assert (reader.min_out, reader.tid) < (writer.min_out, writer.tid)
