"""Boundary regression tests for checkpoint materialization.

``MVStore.materialize`` / ``materialize_at`` are the checkpoint hot paths:
the indexed one-pass streams must be bit-identical to the retained naive
per-key probes on every boundary — empty stores, the first blocks under
snapshot lag 2, tombstoned keys — and must distinguish a TOMBSTONE
(deleted) from a stored ``None`` (a live entry whose version still
participates in version checks). A brute-force dict replay serves as the
independent model for both.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.storage.mvstore import MVStore, TOMBSTONE


def _key(i: int) -> tuple:
    return ("k", i)


def both(store: MVStore, block_id=None):
    """(indexed, naive) results for materialize or materialize_at."""
    if block_id is None:
        return store.materialize(indexed=True), store.materialize(indexed=False)
    return (
        store.materialize_at(block_id, indexed=True),
        store.materialize_at(block_id, indexed=False),
    )


class TestBoundaries:
    def test_empty_store(self):
        store = MVStore()
        assert both(store) == ({}, {})
        for block_id in (-2, -1, 0, 3):
            assert both(store, block_id) == ({}, {})

    def test_first_blocks_under_snapshot_lag_2(self):
        """Checkpoints capture state and prev_state; at blocks 0/1 the
        lag-2 prev snapshot reaches back to genesis or before it."""
        store = MVStore()
        store.load({_key(0): "g0", _key(1): "g1"})
        store.apply_block(0, [(_key(0), "b0"), (_key(2), "new")])
        store.apply_block(1, [(_key(1), TOMBSTONE)])

        for block_id, expected in (
            (-2, {}),  # before genesis: nothing visible
            (-1, {_key(0): "g0", _key(1): "g1"}),
            (0, {_key(0): "b0", _key(1): "g1", _key(2): "new"}),
            (1, {_key(0): "b0", _key(2): "new"}),
        ):
            fast, naive = both(store, block_id)
            assert fast == naive == expected

    def test_tombstoned_and_resurrected_keys(self):
        store = MVStore()
        store.load({_key(0): 1})
        store.apply_block(0, [(_key(0), TOMBSTONE)])
        store.apply_block(1, [(_key(0), 2)])
        store.apply_block(2, [(_key(0), TOMBSTONE)])
        expectations = {-1: {_key(0): 1}, 0: {}, 1: {_key(0): 2}, 2: {}}
        for block_id, expected in expectations.items():
            fast, naive = both(store, block_id)
            assert fast == naive == expected
        assert store.materialize() == {}

    def test_writes_in_block_round_trips_repeated_key_writes(self):
        """apply_block accepts several writes to one key in a block;
        writes_in_block must return every installed version (in seq
        order) so a checkpoint replay regenerates identical version
        tags, not just the last write per key."""
        store = MVStore()
        writes = [(_key(0), 1), (_key(1), 2), (_key(0), 3), (_key(1), TOMBSTONE)]
        store.apply_block(0, writes)
        assert store.writes_in_block(0) == writes

        replayed = MVStore()
        replayed.apply_block(0, store.writes_in_block(0))
        assert replayed._versions == store._versions

    def test_materialize_at_latest_equals_materialize(self):
        store = MVStore()
        store.load({_key(i): i for i in range(8)})
        for block_id in range(3):
            store.apply_block(
                block_id, [(_key(block_id), 100 + block_id), (_key(7), TOMBSTONE)]
            )
        latest = store.last_committed_block
        fast, naive = both(store, latest)
        assert fast == naive == store.materialize() == store.materialize(indexed=False)


class TestFalsyButLive:
    """The latent bug the boundaries surfaced: a live entry whose value is
    ``None`` was conflated with a deletion and dropped from checkpoints,
    losing the version a recovered replica's version checks rely on."""

    def test_stored_none_is_preserved(self):
        store = MVStore()
        store.load({_key(0): 5})
        store.apply_block(0, [(_key(0), None), (_key(1), None)])
        fast, naive = both(store)
        assert fast == naive == {_key(0): None, _key(1): None}
        # ... while a TOMBSTONE is a real deletion:
        store.apply_block(1, [(_key(1), TOMBSTONE)])
        assert store.materialize() == {_key(0): None}

    def test_falsy_values_survive(self):
        store = MVStore()
        store.load({_key(0): 0, _key(1): "", _key(2): {}, _key(3): None})
        fast, naive = both(store)
        assert fast == naive == {_key(0): 0, _key(1): "", _key(2): {}, _key(3): None}

    def test_checkpoint_roundtrip_keeps_the_version(self):
        """Reloading a checkpoint that contains a stored ``None`` recreates
        a versioned entry — readers still see "absent", but the version
        exists, exactly like on a replica that never crashed."""
        store = MVStore()
        store.load({_key(0): 5})
        store.apply_block(0, [(_key(0), None)])

        restored = MVStore()
        restored.load(store.materialize())
        value, version = restored.get_latest(_key(0))
        assert value is None and version is not None
        # readers keep treating it as absent
        assert _key(0) not in restored
        assert restored.keys() == []
        assert restored.state_hash() == restored.state_hash_full()


class TestMaterializeDifferential:
    @given(
        st.lists(
            st.lists(
                st.tuples(st.integers(0, 20), st.integers(-2, 50)),
                min_size=1,
                max_size=6,
            ),
            min_size=0,
            max_size=6,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_naive_and_dict_replay(self, blocks):
        """-2 encodes a TOMBSTONE, -1 a stored None, >= 0 a plain value."""

        def decode(value):
            return TOMBSTONE if value == -2 else (None if value == -1 else value)

        store = MVStore()
        genesis = {_key(i): i for i in range(0, 20, 3)}
        store.load(genesis)
        model = dict(genesis)  # independent reference: plain dict replay
        models = {-1: dict(model)}
        for block_id, writes in enumerate(blocks):
            ordered = [(_key(i), decode(v)) for i, v in writes]
            store.apply_block(block_id, ordered)
            for key, value in ordered:
                if value is TOMBSTONE:
                    model.pop(key, None)
                else:
                    model[key] = value
            models[block_id] = dict(model)

        assert store.materialize() == store.materialize(indexed=False) == model
        for block_id, expected in models.items():
            fast, naive = both(store, block_id)
            assert fast == naive == expected
