"""Boundary regression tests for checkpoint materialization and the chain.

``MVStore.materialize`` / ``materialize_at`` are the checkpoint hot paths:
the indexed one-pass streams must be bit-identical to the retained naive
per-key probes on every boundary — empty stores, the first blocks under
snapshot lag 2, tombstoned keys — and must distinguish a TOMBSTONE
(deleted) from a stored ``None`` (a live entry whose version still
participates in version checks). A brute-force dict replay serves as the
independent model for both.

The delta-checkpoint chain rides the same contract: every recovery point
a base+delta chain reconstructs must be bit-identical (content *and* key
order — recovery derives version tags from dict order) to the full
deep-copy checkpoint the seed took at the same block, and a chain whose
tip tears — mid-delta or mid-base-compaction — must recover from the
prior usable prefix.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.storage.checkpoint import Checkpoint, CheckpointManager, DeltaCheckpoint
from repro.storage.mvstore import MVStore, TOMBSTONE


def _key(i: int) -> tuple:
    return ("k", i)


def both(store: MVStore, block_id=None):
    """(indexed, naive) results for materialize or materialize_at."""
    if block_id is None:
        return store.materialize(indexed=True), store.materialize(indexed=False)
    return (
        store.materialize_at(block_id, indexed=True),
        store.materialize_at(block_id, indexed=False),
    )


class TestBoundaries:
    def test_empty_store(self):
        store = MVStore()
        assert both(store) == ({}, {})
        for block_id in (-2, -1, 0, 3):
            assert both(store, block_id) == ({}, {})

    def test_first_blocks_under_snapshot_lag_2(self):
        """Checkpoints capture state and prev_state; at blocks 0/1 the
        lag-2 prev snapshot reaches back to genesis or before it."""
        store = MVStore()
        store.load({_key(0): "g0", _key(1): "g1"})
        store.apply_block(0, [(_key(0), "b0"), (_key(2), "new")])
        store.apply_block(1, [(_key(1), TOMBSTONE)])

        for block_id, expected in (
            (-2, {}),  # before genesis: nothing visible
            (-1, {_key(0): "g0", _key(1): "g1"}),
            (0, {_key(0): "b0", _key(1): "g1", _key(2): "new"}),
            (1, {_key(0): "b0", _key(2): "new"}),
        ):
            fast, naive = both(store, block_id)
            assert fast == naive == expected

    def test_tombstoned_and_resurrected_keys(self):
        store = MVStore()
        store.load({_key(0): 1})
        store.apply_block(0, [(_key(0), TOMBSTONE)])
        store.apply_block(1, [(_key(0), 2)])
        store.apply_block(2, [(_key(0), TOMBSTONE)])
        expectations = {-1: {_key(0): 1}, 0: {}, 1: {_key(0): 2}, 2: {}}
        for block_id, expected in expectations.items():
            fast, naive = both(store, block_id)
            assert fast == naive == expected
        assert store.materialize() == {}

    def test_writes_in_block_round_trips_repeated_key_writes(self):
        """apply_block accepts several writes to one key in a block;
        writes_in_block must return every installed version (in seq
        order) so a checkpoint replay regenerates identical version
        tags, not just the last write per key."""
        store = MVStore()
        writes = [(_key(0), 1), (_key(1), 2), (_key(0), 3), (_key(1), TOMBSTONE)]
        store.apply_block(0, writes)
        assert store.writes_in_block(0) == writes

        replayed = MVStore()
        replayed.apply_block(0, store.writes_in_block(0))
        assert replayed._versions == store._versions

    def test_materialize_at_latest_equals_materialize(self):
        store = MVStore()
        store.load({_key(i): i for i in range(8)})
        for block_id in range(3):
            store.apply_block(
                block_id, [(_key(block_id), 100 + block_id), (_key(7), TOMBSTONE)]
            )
        latest = store.last_committed_block
        fast, naive = both(store, latest)
        assert fast == naive == store.materialize() == store.materialize(indexed=False)


class TestFalsyButLive:
    """The latent bug the boundaries surfaced: a live entry whose value is
    ``None`` was conflated with a deletion and dropped from checkpoints,
    losing the version a recovered replica's version checks rely on."""

    def test_stored_none_is_preserved(self):
        store = MVStore()
        store.load({_key(0): 5})
        store.apply_block(0, [(_key(0), None), (_key(1), None)])
        fast, naive = both(store)
        assert fast == naive == {_key(0): None, _key(1): None}
        # ... while a TOMBSTONE is a real deletion:
        store.apply_block(1, [(_key(1), TOMBSTONE)])
        assert store.materialize() == {_key(0): None}

    def test_falsy_values_survive(self):
        store = MVStore()
        store.load({_key(0): 0, _key(1): "", _key(2): {}, _key(3): None})
        fast, naive = both(store)
        assert fast == naive == {_key(0): 0, _key(1): "", _key(2): {}, _key(3): None}

    def test_checkpoint_roundtrip_keeps_the_version(self):
        """Reloading a checkpoint that contains a stored ``None`` recreates
        a versioned entry — readers still see "absent", but the version
        exists, exactly like on a replica that never crashed."""
        store = MVStore()
        store.load({_key(0): 5})
        store.apply_block(0, [(_key(0), None)])

        restored = MVStore()
        restored.load(store.materialize())
        value, version = restored.get_latest(_key(0))
        assert value is None and version is not None
        # readers keep treating it as absent
        assert _key(0) not in restored
        assert restored.keys() == []
        assert restored.state_hash() == restored.state_hash_full()


def _decode(value: int):
    """-2 encodes a TOMBSTONE, -1 a stored None, >= 0 a plain value."""
    return TOMBSTONE if value == -2 else (None if value == -1 else value)


def _drive_managers(blocks, interval, base_interval, genesis):
    """Feed identical blocks through a store + both checkpoint flavours.

    Mirrors ``StorageEngine.checkpoint_if_due``: the full manager deep-
    copies materialized snapshots every interval; the delta manager gets
    the interval's buffered ``(block_id, writes)``. Returns
    ``(full_mgr, delta_mgr, store, history)`` where ``history`` records
    every full checkpoint ever taken (the pruned manager forgets old ones).
    """
    store = MVStore()
    store.load(genesis)
    full = CheckpointManager(interval, incremental=False)
    delta = CheckpointManager(interval, incremental=True, base_interval=base_interval)
    delta.genesis = dict(genesis)
    buffered: list = []
    history: list[Checkpoint] = []
    for block_id, writes in enumerate(blocks):
        store.apply_block(block_id, writes)
        buffered.append((block_id, writes))
        if (block_id + 1) % interval == 0:
            full.force_checkpoint(
                block_id,
                store.materialize(),
                prev_state=store.materialize_at(block_id - 1),
                meta={"mark": block_id},
                block_writes=writes,
            )
            history.append(full.latest())
            delta.delta_checkpoint(block_id, buffered, meta={"mark": block_id})
            buffered = []
    return full, delta, store, history


def _assert_checkpoints_identical(folded: Checkpoint, ref: Checkpoint):
    assert folded.block_id == ref.block_id
    assert folded.state == ref.state
    assert list(folded.state) == list(ref.state)  # same key order
    assert folded.prev_state == ref.prev_state
    assert list(folded.prev_state) == list(ref.prev_state)
    assert folded.block_writes == ref.block_writes
    assert folded.meta == ref.meta


class TestCheckpointChain:
    def _blocks(self, num_blocks, num_keys=24, writes_per_block=6, seed=5):
        rng = random.Random(seed)
        return [
            [
                (_key(rng.randrange(num_keys)), _decode(rng.randint(-2, 50)))
                for _ in range(writes_per_block)
            ]
            for _ in range(num_blocks)
        ]

    def test_chain_reconstructs_full_checkpoint_at_every_boundary(self):
        genesis = {_key(i): i for i in range(0, 24, 2)}
        blocks = self._blocks(12)
        for upto in range(2, 13, 2):  # every checkpoint boundary
            full, delta, _, _ = _drive_managers(
                blocks[:upto], interval=2, base_interval=3, genesis=genesis
            )
            _assert_checkpoints_identical(delta.latest(), full.latest())

    def test_torn_delta_recovers_prior_chain_prefix(self):
        genesis = {_key(i): i for i in range(8)}
        blocks = self._blocks(8)
        full, delta, _, _ = _drive_managers(
            blocks, interval=2, base_interval=10, genesis=genesis
        )
        # crash mid-delta: the newest chain entry is a torn delta
        assert isinstance(delta._entries[-1], DeltaCheckpoint)
        full.torn_latest = True
        delta.torn_latest = True
        _assert_checkpoints_identical(delta.latest(), full.latest())
        assert delta.latest().block_id == 5  # one interval back

    def test_torn_base_compaction_recovers_same_block(self):
        genesis = {_key(i): i for i in range(8)}
        blocks = self._blocks(8)
        # base_interval=4 → the 4th delta (block 7) compacts: tip is a base
        full, delta, _, _ = _drive_managers(
            blocks, interval=2, base_interval=4, genesis=genesis
        )
        assert isinstance(delta._entries[-1], Checkpoint)
        reference = delta.latest()
        delta.torn_latest = True  # crash mid-compaction
        recovered = delta.latest()
        # the prefix through the compaction's own delta reconstructs the
        # *same* recovery point: a torn compaction loses nothing
        _assert_checkpoints_identical(recovered, reference)
        _assert_checkpoints_identical(recovered, full.latest())

    def test_prune_keeps_two_recovery_points_at_chain_level(self):
        genesis = {_key(i): i for i in range(8)}
        blocks = self._blocks(20)
        _, delta, _, _ = _drive_managers(
            blocks, interval=2, base_interval=3, genesis=genesis
        )
        # chain stays bounded: at most one stale base + base_interval
        # deltas + the fresh base
        assert delta.count <= delta.base_interval + 3
        # and the torn-tip fallback always has a usable prefix
        delta.torn_latest = True
        assert delta.latest() is not None

    def test_seed_base_restarts_chain_from_recovery_point(self):
        genesis = {_key(i): i for i in range(8)}
        blocks = self._blocks(8)
        full, delta, store, _ = _drive_managers(
            blocks, interval=2, base_interval=10, genesis=genesis
        )
        recovered = CheckpointManager(2, incremental=True, base_interval=10)
        recovered.seed_base(delta.latest())
        # post-recovery deltas fold onto the seeded base, not genesis
        extra = [(_key(1), 999), (_key(30), 7)]
        store.apply_block(8, [])
        store.apply_block(9, extra)
        recovered.delta_checkpoint(9, [(8, []), (9, extra)], meta=None)
        delta.delta_checkpoint(9, [(8, []), (9, extra)], meta=None)
        full.force_checkpoint(
            9,
            store.materialize(),
            prev_state=store.materialize_at(8),
            block_writes=extra,
        )
        _assert_checkpoints_identical(recovered.latest(), full.latest())
        _assert_checkpoints_identical(delta.latest(), full.latest())


class TestCheckpointChainDifferential:
    @given(
        st.lists(  # blocks of (key index, encoded value) writes
            st.lists(
                st.tuples(st.integers(0, 20), st.integers(-2, 50)),
                min_size=0,
                max_size=5,
            ),
            min_size=2,
            max_size=14,
        ),
        st.integers(1, 3),  # checkpoint interval
        st.integers(1, 4),  # base-compaction cadence
        st.booleans(),  # torn chain tip
    )
    @settings(max_examples=120, deadline=None)
    def test_chain_matches_full_checkpoints(self, blocks, interval, base, torn):
        genesis = {_key(i): i for i in range(0, 20, 3)}
        ordered = [[(_key(i), _decode(v)) for i, v in writes] for writes in blocks]
        full, delta, _, history = _drive_managers(
            ordered, interval=interval, base_interval=base, genesis=genesis
        )
        if not history:
            assert delta.latest() is None
            return
        delta.torn_latest = torn
        folded = delta.latest()
        if not torn:
            expected = history[-1]
        elif isinstance(delta._entries[-1], Checkpoint):
            # a torn base-compaction loses nothing: the chain prefix
            # through the compaction's own delta reconstructs the same
            # recovery point — unlike a torn full checkpoint, which steps
            # a whole interval back
            expected = history[-1]
        else:
            expected = history[-2] if len(history) >= 2 else None
        if expected is None:
            assert folded is None
            return
        _assert_checkpoints_identical(folded, expected)


class TestMaterializeDifferential:
    @given(
        st.lists(
            st.lists(
                st.tuples(st.integers(0, 20), st.integers(-2, 50)),
                min_size=1,
                max_size=6,
            ),
            min_size=0,
            max_size=6,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_naive_and_dict_replay(self, blocks):
        """-2 encodes a TOMBSTONE, -1 a stored None, >= 0 a plain value."""

        def decode(value):
            return TOMBSTONE if value == -2 else (None if value == -1 else value)

        store = MVStore()
        genesis = {_key(i): i for i in range(0, 20, 3)}
        store.load(genesis)
        model = dict(genesis)  # independent reference: plain dict replay
        models = {-1: dict(model)}
        for block_id, writes in enumerate(blocks):
            ordered = [(_key(i), decode(v)) for i, v in writes]
            store.apply_block(block_id, ordered)
            for key, value in ordered:
                if value is TOMBSTONE:
                    model.pop(key, None)
                else:
                    model[key] = value
            models[block_id] = dict(model)

        assert store.materialize() == store.materialize(indexed=False) == model
        for block_id, expected in models.items():
            fast, naive = both(store, block_id)
            assert fast == naive == expected
