"""Cross-scheme conformance: every DCC's committed history is serializable.

Seeded YCSB / SmallBank / hotspot runs are pushed through every scheme
(serial, harmony, aria, rbc, fabric, fastfabric) and the committed history
is fed to :class:`~repro.dcc.oracle.HistoryOracle` — on both the indexed
and the retained naive path, which must agree bit-for-bit. Per-scheme
recording honours each protocol's read/apply semantics:

- **harmony** hands over its own per-key apply chains (Rule-2 order) and
  lag-2 snapshot ids; reads carry observed snapshot versions.
- **aria / rbc / fabric / fastfabric** read from a pre-block snapshot, so
  blocks are recorded wholesale with chains in apply order (TID order;
  the orderer's topological order for fastfabric).
- **serial** reads *inside* the block (each transaction observes its
  predecessors), so each committed transaction is its own micro-block at
  snapshot lag 1 — the serialization order is the execution order.

``count_false_aborts`` must stay consistent with each scheme's claims:
serial never aborts, Harmony never aborts on ww conflicts (it reorders
them), and no scheme reports more false aborts than aborts.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.harmony import HarmonyConfig, HarmonyExecutor
from repro.core.reordering import KeyApply
from repro.dcc.aria import AriaExecutor
from repro.dcc.fabric import FabricValidator, endorsed_value_writes
from repro.dcc.fastfabric import FastFabricOrderer, FastFabricValidator
from repro.dcc.oracle import HistoryOracle, SerializabilityOracle
from repro.dcc.rbc import RBCExecutor
from repro.dcc.serial import SerialExecutor
from repro.sim.rng import SeededRng
from repro.storage.engine import StorageEngine
from repro.txn.transaction import AbortReason, Txn
from repro.workloads import REGISTRY, make_workload

NUM_BLOCKS = 5
BLOCK_SIZE = 10

SCHEMES = ("serial", "harmony", "aria", "rbc", "fabric", "fastfabric")

#: abort reasons each scheme is allowed to produce (its "claims")
ALLOWED_ABORTS = {
    "serial": set(),
    "harmony": {
        AbortReason.BACKWARD_DANGEROUS_STRUCTURE,
        AbortReason.INTER_BLOCK_STRUCTURE,
    },
    "aria": {AbortReason.WAW, AbortReason.RAW},
    "rbc": {AbortReason.WAW, AbortReason.SSI_DANGEROUS_STRUCTURE},
    "fabric": {AbortReason.STALE_READ},
    "fastfabric": {
        AbortReason.STALE_READ,
        AbortReason.GRAPH_CYCLE,
        AbortReason.GRAPH_OVERFLOW,
    },
}

#: every registered workload at its conformance scale — the sweep grows
#: automatically with the shared registry
WORKLOADS = {
    name: (lambda name=name: make_workload(name, profile="conformance"))
    for name in sorted(REGISTRY)
}


def applies_in_order(txns) -> list[KeyApply]:
    """Per-key apply chains for committed transactions, in list order."""
    chains: dict = {}
    for txn in txns:
        if txn.committed:
            for key in txn.write_set:
                chains.setdefault(key, []).append(txn.tid)
    return [
        KeyApply(key=key, updater_tids=tids, handler_tid=tids[0])
        for key, tids in chains.items()
    ]


def build_scheme(scheme: str, engine, registry):
    if scheme == "serial":
        return SerialExecutor(engine, registry)
    if scheme == "harmony":
        return HarmonyExecutor(engine, registry, HarmonyConfig(inter_block=True))
    if scheme == "aria":
        return AriaExecutor(engine, registry)
    if scheme == "rbc":
        return RBCExecutor(engine, registry)
    if scheme == "fabric":
        return FabricValidator(engine, registry)
    return FastFabricValidator(engine, registry)


def endorse(txns, engine, registry):
    """SOV endorsement against the replica's latest state (lag 0): freeze
    read versions and evaluate commands into value writes."""
    from repro.txn.context import SimulationContext

    snapshot = engine.store.latest_snapshot()
    for txn in txns:
        ctx = SimulationContext(txn, snapshot, engine)
        try:
            txn.output = registry.execute(ctx)
        except (KeyError, TypeError, ValueError):
            txn.mark_aborted(AbortReason.EXECUTION_ERROR)
            continue
        endorsed_value_writes(txn, snapshot)


def run_scheme(scheme: str, workload_name: str):
    workload = WORKLOADS[workload_name]()
    engine = StorageEngine(pool_pages=16)
    engine.preload(workload.initial_state())
    registry = workload.build_registry()
    executor = build_scheme(scheme, engine, registry)
    orderer = FastFabricOrderer(max_graph_txns=150) if scheme == "fastfabric" else None

    rng = SeededRng(11, f"conformance/{scheme}/{workload.name}")
    oracles = [HistoryOracle(indexed=True), HistoryOracle(indexed=False)]
    micro = itertools.count()
    next_tid = 0
    outcomes = {"committed": 0, "aborted": 0, "false_aborts": 0, "reasons": set()}

    for block_id in range(NUM_BLOCKS):
        specs = workload.generate_block(BLOCK_SIZE, rng)
        txns = [
            Txn(tid=next_tid + i, block_id=block_id, spec=spec)
            for i, spec in enumerate(specs)
        ]
        next_tid += len(txns)

        if scheme in ("fabric", "fastfabric"):
            endorse(txns, engine, registry)
        if orderer is not None:
            outcome = orderer.process(
                txns, state_view=engine.store.latest_snapshot()
            )
            ordered = outcome.ordered_txns + [t for t in txns if t.aborted]
        else:
            ordered = txns

        execution = executor.execute_block(block_id, ordered)

        chain_order = (lambda t: t.tid) if scheme in ("fabric", "fastfabric") else None
        false_aborts = SerializabilityOracle.count_false_aborts(
            execution.txns, chain_order=chain_order
        )
        outcomes["committed"] += sum(1 for t in txns if t.committed)
        outcomes["aborted"] += sum(1 for t in txns if t.aborted)
        outcomes["false_aborts"] += false_aborts
        outcomes["reasons"].update(
            t.abort_reason for t in txns if t.aborted
        )
        assert 0 <= false_aborts <= sum(1 for t in txns if t.aborted)

        if scheme == "harmony":
            for oracle in oracles:
                oracle.record_block(
                    block_id,
                    execution.txns,
                    execution.key_applies,
                    snapshot_block_id=execution.snapshot_block_id,
                )
        elif scheme == "serial":
            # serial reads see in-block predecessors: record the execution
            # order itself as micro-blocks at snapshot lag 1
            for txn in sorted(execution.txns, key=lambda t: t.tid):
                if not txn.committed:
                    continue
                mid = next(micro)
                txn.read_set = {key: None for key in txn.read_set}
                for oracle in oracles:
                    oracle.record_block(
                        mid,
                        [txn],
                        applies_in_order([txn]),
                        snapshot_block_id=mid - 1,
                    )
        else:
            # pre-block snapshot readers: block granularity, chains in the
            # scheme's apply order (execution.txns order)
            for oracle in oracles:
                oracle.record_block(
                    block_id,
                    execution.txns,
                    applies_in_order(execution.txns),
                    snapshot_block_id=block_id - 1,
                )

    indexed, naive = oracles
    assert indexed.build_graph() == naive.build_graph()
    assert indexed.is_serializable() and naive.is_serializable()
    outcomes["engine"] = engine
    outcomes["workload"] = workload
    return outcomes


class TestCrossSchemeConformance:
    @pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_committed_history_serializable(self, scheme, workload_name):
        outcomes = run_scheme(scheme, workload_name)
        assert outcomes["committed"] > 0
        assert outcomes["reasons"] <= ALLOWED_ABORTS[scheme]
        assert 0 <= outcomes["false_aborts"] <= outcomes["aborted"]
        if scheme == "serial":
            assert outcomes["aborted"] == 0 and outcomes["false_aborts"] == 0
        if scheme == "harmony":
            # the paper's core claim: ww conflicts are reordered, not aborted
            assert AbortReason.WAW not in outcomes["reasons"]

    def test_contended_schemes_abort_where_serial_does_not(self):
        """Sanity that the sweep exercises real contention: at this skew the
        abort-prone value-based baselines do abort, serial never does."""
        aria = run_scheme("aria", "ycsb-hotspot")
        serial = run_scheme("serial", "ycsb-hotspot")
        assert serial["aborted"] == 0
        assert aria["aborted"] > 0


def run_sharded_scheme(
    scheme: str, workload_name: str, num_shards: int = 2, cross: float = 0.5
):
    """A sharded run of ``scheme``; returns (chain, outcomes) with the
    committed history certified by both oracle paths."""
    from repro.shard.system import ShardConfig, ShardedBlockchain
    from repro.workloads.base import ShardAffinity

    # the gate profile is moderately contended: the affinity fold
    # concentrates each partition's traffic, so the unsharded sweep's
    # extreme skew would starve the abort-happy baselines of any commit
    workload = make_workload(
        workload_name, profile="gate", affinity=ShardAffinity(num_shards, cross)
    )
    config = ShardConfig(
        system=scheme,
        block_size=BLOCK_SIZE,
        num_blocks=NUM_BLOCKS,
        seed=11,
        num_shards=num_shards,
        keep_history=True,
    )
    chain = ShardedBlockchain(config, workload)
    metrics = chain.run()

    oracles = [HistoryOracle(indexed=True), HistoryOracle(indexed=False)]
    for record in chain.history:
        if scheme == "harmony":
            key_applies = [
                item
                for shard in sorted(record.executions)
                for item in record.executions[shard].key_applies
            ]
            snapshot_id = record.executions[0].snapshot_block_id
        else:
            # pre-block snapshot readers; per-key apply order is TID order
            key_applies = applies_in_order(record.merged_txns)
            snapshot_id = record.block_id - 1
        for oracle in oracles:
            oracle.record_block(
                record.block_id,
                record.merged_txns,
                key_applies,
                snapshot_block_id=snapshot_id,
            )
    indexed, naive = oracles
    assert indexed.build_graph() == naive.build_graph()
    assert indexed.is_serializable() and naive.is_serializable()

    reasons = {
        t.abort_reason
        for record in chain.history
        for t in record.merged_txns
        if t.aborted
    }
    return chain, metrics, reasons


class TestShardedConformance:
    """The sharded pipeline upholds every scheme's conformance claims."""

    @pytest.mark.parametrize(
        "num_shards", (2, pytest.param(4, marks=pytest.mark.tpcc))
    )
    @pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
    @pytest.mark.parametrize("scheme", ("harmony", "aria", "rbc"))
    def test_sharded_history_serializable(self, scheme, workload_name, num_shards):
        chain, metrics, reasons = run_sharded_scheme(
            scheme, workload_name, num_shards=num_shards
        )
        assert metrics.committed > 0
        # a shard's veto surfaces as CROSS_SHARD_ABORT on the other
        # participants; every other reason must be one the scheme claims
        assert reasons <= ALLOWED_ABORTS[scheme] | {AbortReason.CROSS_SHARD_ABORT}
        assert metrics.extra["ledger_ok"]
        assert metrics.extra["certificates_ok"]
        if scheme == "harmony":
            assert AbortReason.WAW not in reasons

    def test_sharded_false_abort_accounting_sane(self):
        _chain, metrics, _reasons = run_sharded_scheme("harmony", "ycsb")
        assert 0 <= metrics.false_aborts <= metrics.aborted


@pytest.mark.tpcc
class TestTPCCExtendedMatrix:
    """The heavier TPC-C sweep: the cross-shard knob end to end.

    Deselected by default (like ``perf``/``faults``); ``make conformance``
    or ``pytest -m tpcc`` runs it.
    """

    @pytest.mark.parametrize("cross", (0.0, 0.5, 0.9))
    @pytest.mark.parametrize("num_shards", (2, 4))
    @pytest.mark.parametrize("scheme", ("harmony", "aria", "rbc"))
    def test_cross_ratio_sweep_serializable(self, scheme, num_shards, cross):
        chain, metrics, reasons = run_sharded_scheme(
            scheme, "tpcc", num_shards=num_shards, cross=cross
        )
        assert metrics.committed > 0
        assert reasons <= ALLOWED_ABORTS[scheme] | {AbortReason.CROSS_SHARD_ABORT}
        assert metrics.extra["ledger_ok"]
        assert metrics.extra["certificates_ok"]
        if cross > 0.0:
            # remote Payments/NewOrders really leave their home shard
            assert metrics.extra["cross_shard_txns"] > 0
        else:
            assert metrics.extra["cross_shard_txns"] == 0
