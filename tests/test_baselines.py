"""Tests for the baseline DCC protocols (Aria, RBC, Fabric, FastFabric#, serial)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.dcc.aria import AriaExecutor
from repro.dcc.fabric import FabricValidator, endorsed_value_writes
from repro.dcc.fastfabric import FastFabricOrderer, find_cycle
from repro.dcc.oracle import SerializabilityOracle
from repro.dcc.rbc import RBCExecutor
from repro.dcc.serial import SerialExecutor
from repro.txn.commands import SetValue
from repro.txn.transaction import AbortReason, Txn, TxnSpec

from tests.conftest import generic_registry, make_engine, make_txns


def run_with(executor_cls, op_lists, **kwargs):
    engine = make_engine()
    executor = executor_cls(engine, generic_registry(), **kwargs)
    txns = make_txns(op_lists)
    execution = executor.execute_block(0, txns)
    return engine, execution


class TestSerial:
    def test_reads_see_earlier_writes(self):
        engine, execution = run_with(
            SerialExecutor, [[("set", 0, 555)], [("r", 0)]]
        )
        assert execution.txns[1].output == (555,)
        assert all(t.committed for t in execution.txns)

    def test_serial_commit_flag(self):
        _, execution = run_with(SerialExecutor, [[("add", 0, 1)]])
        assert execution.serial_commit is True

    def test_final_state_is_sequential(self):
        engine, _ = run_with(
            SerialExecutor, [[("add", 0, 10)], [("mul", 0, 2)], [("add", 0, 1)]]
        )
        assert engine.store.get_latest(("k", 0))[0] == (100 + 10) * 2 + 1


class TestAria:
    def test_figure2_ww_abort(self):
        """Aria aborts the larger TID on a ww-dependency (Figure 2)."""
        _, execution = run_with(AriaExecutor, [[("add", 0, 1)], [("add", 0, 2)]])
        assert execution.txns[0].committed
        assert execution.txns[1].aborted
        assert execution.txns[1].abort_reason is AbortReason.WAW

    def test_raw_alone_survives_with_reordering(self):
        # T1 writes x; T0... rather: T(big) reads key written by T(small):
        # RAW without WAR commits under Aria's deterministic reordering.
        _, execution = run_with(AriaExecutor, [[("set", 0, 5)], [("r", 0)]])
        assert all(t.committed for t in execution.txns)

    def test_raw_aborts_without_reordering(self):
        _, execution = run_with(
            AriaExecutor, [[("set", 0, 5)], [("r", 0)]], deterministic_reordering=False
        )
        assert execution.txns[1].aborted
        assert execution.txns[1].abort_reason is AbortReason.RAW

    def test_raw_and_war_aborts_with_reordering(self):
        # T1 reads k0 (written by T0) and writes k1 (read by T0)
        _, execution = run_with(
            AriaExecutor, [[("set", 0, 5), ("r", 1)], [("r", 0), ("set", 1, 6)]]
        )
        assert execution.txns[1].aborted

    def test_committed_writes_disjoint(self):
        _, execution = run_with(
            AriaExecutor,
            [[("add", 0, 1)], [("add", 0, 2)], [("add", 1, 3)], [("add", 1, 4)]],
        )
        keys_written = []
        for txn in execution.txns:
            if txn.committed:
                keys_written.extend(txn.write_set)
        assert len(keys_written) == len(set(keys_written))

    def test_values_evaluated_against_snapshot(self):
        engine, execution = run_with(AriaExecutor, [[("add", 0, 10)]])
        assert engine.store.get_latest(("k", 0))[0] == 110


class TestRBC:
    def test_ww_first_committer_wins(self):
        _, execution = run_with(RBCExecutor, [[("add", 0, 1)], [("add", 0, 2)]])
        assert execution.txns[0].committed
        assert execution.txns[1].aborted
        assert execution.txns[1].abort_reason is AbortReason.WAW

    def test_ssi_pivot_aborts(self):
        # T1 reads k0 and writes k1; T0 writes k0; T2 reads k1 => T1 pivot
        _, execution = run_with(
            RBCExecutor,
            [[("set", 0, 1)], [("r", 0), ("set", 1, 2)], [("r", 1)]],
        )
        assert execution.txns[1].aborted
        assert execution.txns[1].abort_reason is AbortReason.SSI_DANGEROUS_STRUCTURE

    def test_serial_commit_flag(self):
        _, execution = run_with(RBCExecutor, [[("add", 0, 1)]])
        assert execution.serial_commit is True

    def test_rbc_aborts_at_least_as_much_as_harmony(self):
        """RBC's pivot rule has no TID refinement: it is a superset of
        Harmony's backward dangerous structure on the same block."""
        from repro.core.harmony import HarmonyConfig, HarmonyExecutor

        op_lists = [
            [("r", 1), ("set", 0, 1)],
            [("r", 0), ("set", 1, 2)],
            [("r", 2), ("set", 3, 3)],
        ]
        _, rbc_exec = run_with(RBCExecutor, op_lists)
        engine = make_engine()
        harmony = HarmonyExecutor(
            engine, generic_registry(), HarmonyConfig(inter_block=False)
        )
        h_txns = make_txns(op_lists)
        harmony.execute_block(0, h_txns)
        rbc_aborts = sum(1 for t in rbc_exec.txns if t.aborted)
        harmony_aborts = sum(1 for t in h_txns if t.aborted)
        assert harmony_aborts <= rbc_aborts


def endorsed_txns(op_lists, engine, lag_block=-1):
    """Build SOV-endorsed transactions against a (possibly stale) snapshot."""
    from repro.txn.context import SimulationContext

    registry = generic_registry()
    txns = make_txns(op_lists)
    snapshot = engine.store.snapshot(lag_block)
    for txn in txns:
        ctx = SimulationContext(txn, snapshot, engine)
        txn.output = registry.execute(ctx)
        endorsed_value_writes(txn, snapshot)
    return txns


class TestFabric:
    def test_fresh_reads_commit(self):
        engine = make_engine()
        txns = endorsed_txns([[("r", 0), ("set", 1, 9)]], engine)
        validator = FabricValidator(engine, generic_registry())
        execution = validator.execute_block(0, txns)
        assert execution.txns[0].committed

    def test_stale_read_aborts(self):
        engine = make_engine()
        engine.store.apply_block(0, [(("k", 0), 777)])  # state moved on
        txns = endorsed_txns([[("r", 0), ("set", 1, 9)]], engine, lag_block=-1)
        validator = FabricValidator(engine, generic_registry())
        execution = validator.execute_block(1, txns)
        assert execution.txns[0].aborted
        assert execution.txns[0].abort_reason is AbortReason.STALE_READ

    def test_intra_block_stale_read_aborts(self):
        """Fabric's over-conservative rule: T2's read of a key T1 just wrote
        is stale even though T2 -> T1 would be serializable (Section 2.2)."""
        engine = make_engine()
        txns = endorsed_txns([[("set", 0, 5)], [("r", 0)]], engine)
        validator = FabricValidator(engine, generic_registry())
        execution = validator.execute_block(0, txns)
        assert execution.txns[0].committed
        assert execution.txns[1].aborted


class TestFastFabricOrderer:
    def test_find_cycle_detects(self):
        assert find_cycle({1: {2}, 2: {1}}) is not None
        assert find_cycle({1: {2}, 2: set()}) is None

    def test_cycle_broken_by_dropping_txn(self):
        engine = make_engine()
        # mutual rw: T0 reads k1 writes k0; T1 reads k0 writes k1
        txns = endorsed_txns(
            [[("r", 1), ("set", 0, 1)], [("r", 0), ("set", 1, 2)]], engine
        )
        outcome = FastFabricOrderer().process(txns)
        aborted = [t for t in txns if t.aborted]
        assert len(aborted) == 1
        assert aborted[0].abort_reason is AbortReason.GRAPH_CYCLE
        assert outcome.cycles_broken >= 1

    def test_no_cycle_no_aborts_and_reordered(self):
        engine = make_engine()
        txns = endorsed_txns([[("r", 0)], [("set", 0, 1)]], engine)
        outcome = FastFabricOrderer().process(txns)
        assert [t.aborted for t in txns] == [False, False]
        # reader must be ordered before writer (rw edge)
        order = [t.tid for t in outcome.ordered_txns]
        assert order.index(0) < order.index(1)

    def test_graph_cap_drops_excess(self):
        engine = make_engine()
        txns = endorsed_txns([[("set", i, 1)] for i in range(6)], engine)
        outcome = FastFabricOrderer(max_graph_txns=4).process(txns)
        assert outcome.dropped == 2
        dropped = [t for t in txns if t.abort_reason is AbortReason.GRAPH_OVERFLOW]
        assert len(dropped) == 2

    def test_traversal_cost_grows_with_density(self):
        engine = make_engine()
        sparse = endorsed_txns([[("set", i, 1)] for i in range(6)], engine)
        dense = endorsed_txns(
            [[("r", j, ) for j in range(4)] + [("set", i, 1)] for i in range(6)],
            engine,
        )
        orderer = FastFabricOrderer()
        assert (
            orderer.process(dense).traversal_cost_us
            > orderer.process(sparse).traversal_cost_us
        )


def _ops():
    key = st.integers(min_value=0, max_value=6)
    return st.lists(
        st.one_of(
            st.tuples(st.just("r"), key),
            st.tuples(st.just("add"), key, st.integers(-5, 5)),
            st.tuples(st.just("set"), key, st.integers(0, 50)),
        ),
        min_size=1,
        max_size=4,
    )


@st.composite
def blocks(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    return [draw(_ops()) for _ in range(n)]


class TestAllProtocolsSerializable:
    @given(blocks())
    @settings(max_examples=80, deadline=None)
    def test_aria_committed_serializable(self, op_lists):
        _, execution = run_with(AriaExecutor, op_lists)
        assert SerializabilityOracle.committed_is_serializable(
            execution.txns, chain_order=lambda t: t.tid
        )

    @given(blocks())
    @settings(max_examples=80, deadline=None)
    def test_rbc_committed_serializable(self, op_lists):
        _, execution = run_with(RBCExecutor, op_lists)
        assert SerializabilityOracle.committed_is_serializable(
            execution.txns, chain_order=lambda t: t.tid
        )

    @given(blocks())
    @settings(max_examples=60, deadline=None)
    def test_protocol_abort_ordering(self, op_lists):
        """Harmony never aborts more than Aria-without-reordering on
        ww-dominated blocks... weaker: Harmony commits at least as many
        transactions as RBC on identical input."""
        from repro.core.harmony import HarmonyConfig, HarmonyExecutor

        engine = make_engine()
        harmony = HarmonyExecutor(
            engine, generic_registry(), HarmonyConfig(inter_block=False)
        )
        h_txns = make_txns(op_lists)
        harmony.execute_block(0, h_txns)
        _, rbc_execution = run_with(RBCExecutor, op_lists)
        committed_h = sum(1 for t in h_txns if t.committed)
        committed_rbc = sum(1 for t in rbc_execution.txns if t.committed)
        assert committed_h >= committed_rbc
