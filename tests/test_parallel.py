"""Tests for true parallel execution: the process-pool prepare backend,
the inter-block pipelined drivers, and pipelined recovery replay.

The contract under test is differential: ``backend="process"`` (with or
without ``pipelined``) must be *bit-identical* to the serial reference in
decisions, state hashes and certificate chains — only wall-clock may
differ. Wall-clock itself is asserted only in the ``perf``-marked tests,
which skip (with the reason) on machines without real parallelism.
"""

from __future__ import annotations

import pytest

from repro.chain.system import OEBlockchain, OEConfig
from repro.parallel.backend import (
    StalePrepareError,
    available_cores,
    make_prepare_backend,
)
from repro.parallel.replay import replay_group, replay_group_serial
from repro.shard.recovery import recover_shard_node
from repro.shard.system import ShardConfig, ShardedBlockchain
from repro.sim.rng import SeededRng
from repro.workloads import make_workload
from repro.workloads.base import ShardAffinity
from repro.workloads.smallbank import SmallbankWorkload

IDENTITY_KEYS = ("decision_digest", "state_hash", "cert_head")


def _workload(num_shards: int, cross: float = 0.3) -> SmallbankWorkload:
    affinity = ShardAffinity(num_shards, cross) if num_shards > 1 else None
    return SmallbankWorkload(num_accounts=150, affinity=affinity)


def _run_sharded(
    system: str,
    backend: str,
    num_shards: int,
    pipelined: bool = False,
    seed: int = 3,
    num_blocks: int = 5,
    block_size: int = 16,
    workload_name: str | None = None,
):
    config = ShardConfig(
        system=system,
        num_shards=num_shards,
        num_blocks=num_blocks,
        block_size=block_size,
        seed=seed,
        backend=backend,
        pipelined=pipelined,
    )
    if workload_name is None:
        workload = _workload(num_shards)
    else:
        affinity = ShardAffinity(num_shards, 0.3) if num_shards > 1 else None
        workload = make_workload(workload_name, profile="gate", affinity=affinity)
    chain = ShardedBlockchain(config, workload)
    metrics = chain.run()
    chain.close_backend()
    return metrics, chain


@pytest.mark.parametrize("system", ["harmony", "aria", "rbc"])
@pytest.mark.parametrize("num_shards", [1, 2, 4])
def test_process_backend_bit_identical(system, num_shards):
    serial, _ = _run_sharded(system, "serial", num_shards)
    process, chain = _run_sharded(system, "process", num_shards)
    for key in IDENTITY_KEYS:
        assert serial.extra[key] == process.extra[key], key
    assert serial.committed == process.committed
    assert serial.aborted == process.aborted
    assert process.extra["certificates_ok"]
    # the whole certificate chain, not just the head
    assert [c.abort_tids for c in chain.cert_log.certificates()] is not None


@pytest.mark.parametrize(
    "workload_name", ["tpcc", "adv-counter", "adv-scan", "adv-skewshift"]
)
@pytest.mark.parametrize("num_shards", [2, 4])
def test_process_backend_bit_identical_new_workloads(workload_name, num_shards):
    """TPC-C and the adversarial family pickle into the worker pools and
    stay bit-identical to the serial reference."""
    serial, _ = _run_sharded(
        "harmony", "serial", num_shards, workload_name=workload_name
    )
    process, _ = _run_sharded(
        "harmony", "process", num_shards, workload_name=workload_name
    )
    for key in IDENTITY_KEYS:
        assert serial.extra[key] == process.extra[key], key
    assert serial.committed == process.committed
    assert process.extra["certificates_ok"]


def test_certificate_chains_identical_per_block():
    _, serial_chain = _run_sharded("harmony", "serial", 2, seed=17)
    _, process_chain = _run_sharded("harmony", "process", 2, seed=17)
    serial_certs = list(serial_chain.cert_log.certificates())
    process_certs = list(process_chain.cert_log.certificates())
    assert len(serial_certs) == len(process_certs)
    for a, b in zip(serial_certs, process_certs):
        assert a.block_id == b.block_id
        assert a.abort_tids == b.abort_tids
        assert a.hash == b.hash


def test_pipelined_sharded_bit_identical():
    serial, _ = _run_sharded("harmony", "serial", 2, num_blocks=8, seed=11)
    piped, _ = _run_sharded(
        "harmony", "process", 2, pipelined=True, num_blocks=8, seed=11
    )
    for key in IDENTITY_KEYS:
        assert serial.extra[key] == piped.extra[key], key
    assert piped.extra["pipelined"] is True
    assert piped.extra["backend"] == "process"


def test_pipelined_oe_bit_identical():
    def run(backend, pipelined):
        config = OEConfig(
            system="harmony",
            num_blocks=6,
            block_size=20,
            seed=9,
            backend=backend,
            pipelined=pipelined,
        )
        return OEBlockchain(config, SmallbankWorkload(num_accounts=150)).run()

    serial = run("serial", False)
    piped = run("process", True)
    assert serial.extra["decision_digest"] == piped.extra["decision_digest"]
    assert serial.extra["state_hash"] == piped.extra["state_hash"]
    assert piped.extra["ledger_ok"]
    assert piped.extra["pipelined"] is True


def test_pipelined_requires_inter_block_lag():
    # aria (lag 1) must quietly use the sequential driver even when
    # pipelined is requested — decisions unchanged, no pipelined marker
    config = ShardConfig(
        system="aria",
        num_shards=2,
        num_blocks=4,
        block_size=12,
        seed=5,
        backend="process",
        pipelined=True,
    )
    chain = ShardedBlockchain(config, _workload(2))
    assert not chain._pipelined_ready()
    metrics = chain.run()
    chain.close_backend()
    assert "pipelined" not in metrics.extra


def _drive_with_crash(backend: str, pipelined_recovery: bool = True):
    """10 blocks; shard 1 crashes after its block-4 vote, recovers, rejoins."""
    config = ShardConfig(
        system="harmony",
        num_shards=2,
        num_blocks=10,
        block_size=16,
        seed=21,
        backend=backend,
        checkpoint_interval=3,
    )
    chain = ShardedBlockchain(config, _workload(2))
    rng = SeededRng(config.seed, f"oe/{config.system}/{chain.workload.name}")
    for i in range(10):
        specs = chain.workload.generate_block(config.block_size, rng)
        block = chain.ordering.form_block(specs)
        if i == 4:
            chain.process_global_block(block, crash_after_prepare=frozenset({1}))
            recovery = recover_shard_node(
                chain.group.nodes[1],
                1,
                [n.engine.store for n in chain.group.nodes],
                chain.router,
                chain.cert_log,
                pipelined=pipelined_recovery,
            )
            chain.group.rejoin(1, recovery.node)
        else:
            chain.process_global_block(block)
    return chain


def test_rejoin_invalidates_worker_caches():
    """The bugfix satellite: after crash/recover/rejoin the process backend
    resyncs every worker store and resumes — and the continued run stays
    bit-identical to the serial reference under the same fault."""
    serial_chain = _drive_with_crash("serial")
    process_chain = _drive_with_crash("process")
    # the fault suspended the backend; rejoin resynced and lifted it
    assert not process_chain._backend_suspended
    assert process_chain._ensure_backend() is not None
    assert (
        serial_chain.group.combined_state_hash()
        == process_chain.group.combined_state_hash()
    )
    assert serial_chain.cert_log.head_hash == process_chain.cert_log.head_hash
    serial_chain.close_backend()
    process_chain.close_backend()


def test_rejoin_resync_is_incremental():
    """The suspended fault window records per-block deltas, so rejoin
    re-ships only the crashed shard's store — one reset, not one per
    worker cache."""
    chain = _drive_with_crash("process")
    backend = chain._prepare_backend
    assert backend is not None
    assert backend.resets_shipped == 1
    assert not backend._gapped
    assert not chain._backend_suspended
    chain.close_backend()


def test_incremental_rejoin_matches_full_resync(monkeypatch):
    """Differential: the incremental rejoin path ends in the same state
    and certificate stream as re-seeding every worker store wholesale."""
    incremental = _drive_with_crash("process")

    def full_resync_on_rejoin(self, shard, node):
        backend = self._prepare_backend
        if backend is None:
            return
        backend.resync(
            [n.engine.store for n in self.group.nodes], lag=self._backend_lag()
        )
        if self.fault_hook is None and self.vote_channel is None:
            self._backend_suspended = False

    monkeypatch.setattr(ShardedBlockchain, "_on_rejoin", full_resync_on_rejoin)
    full = _drive_with_crash("process")
    # the sledgehammer reset every shard; incremental shipped just one
    assert full._prepare_backend.resets_shipped == 2
    assert incremental._prepare_backend.resets_shipped == 1
    assert (
        incremental.group.combined_state_hash()
        == full.group.combined_state_hash()
    )
    assert incremental.cert_log.head_hash == full.cert_log.head_hash
    incremental.close_backend()
    full.close_backend()


def test_advance_partial_gap_falls_back_to_full_resync():
    """A hole in the suspended-window delta log poisons the incremental
    path for every shard; rejoin then degrades to the full resync."""
    config = ShardConfig(system="harmony", num_shards=2, backend="process")
    backend = make_prepare_backend(config, _workload(2), 2)
    backend.advance(0, [[], []])
    backend.advance_partial(2, [[], []])  # block 1 never recorded
    assert backend._gapped == {0, 1}
    backend.close()


def test_missed_invalidation_raises_stale_prepare():
    """A worker whose store missed a rejoin invalidation must refuse to
    prepare — stale snapshots fail loudly, never silently diverge."""
    config = ShardConfig(
        system="harmony",
        num_shards=2,
        num_blocks=4,
        block_size=12,
        seed=7,
        backend="process",
    )
    chain = ShardedBlockchain(config, _workload(2))
    rng = SeededRng(config.seed, f"oe/{config.system}/{chain.workload.name}")
    for _ in range(3):
        specs = chain.workload.generate_block(config.block_size, rng)
        chain.process_global_block(chain.ordering.form_block(specs))
    backend = chain._prepare_backend
    assert backend is not None
    # simulate the bug the assertion guards against: an epoch bump whose
    # reset payload never reaches the worker
    backend._pending_resets = [[] for _ in backend._pending_resets]
    backend._epochs = [epoch + 1 for epoch in backend._epochs]
    specs = chain.workload.generate_block(config.block_size, rng)
    with pytest.raises(StalePrepareError):
        chain.process_global_block(chain.ordering.form_block(specs))
    chain.close_backend()


def test_fault_armed_chain_falls_back_to_serial():
    """A chain with hooks armed never builds worker pools: injected faults
    must fire in-process."""
    config = ShardConfig(
        system="harmony",
        num_shards=2,
        num_blocks=4,
        block_size=12,
        seed=13,
        backend="process",
    )
    chain = ShardedBlockchain(config, _workload(2))
    chain.fault_hook = lambda block_id: None  # armed, never fires
    metrics = chain.run()
    assert chain._prepare_backend is None
    assert metrics.extra["backend"] == "serial"
    # and identical to the serial-backend run of the same stream
    reference, _ = _run_sharded(
        "harmony", "serial", 2, seed=13, num_blocks=4, block_size=12
    )
    for key in IDENTITY_KEYS:
        assert metrics.extra[key] == reference.extra[key], key


def test_unsupported_scheme_gets_no_backend():
    config = ShardConfig(system="serial", num_shards=1, backend="process")
    backend = make_prepare_backend(config, _workload(1), 1)
    assert backend is None


def test_pipelined_recovery_replay_bit_identical():
    serial_chain = _drive_with_crash("serial", pipelined_recovery=False)
    piped_chain = _drive_with_crash("serial", pipelined_recovery=True)
    assert (
        serial_chain.group.combined_state_hash()
        == piped_chain.group.combined_state_hash()
    )


def test_recovery_reports_replay_model():
    chain = _drive_with_crash("serial")
    # recover once more at the end to inspect the modeled replay timings
    recovery = recover_shard_node(
        chain.group.nodes[1],
        1,
        [n.engine.store for n in chain.group.nodes],
        chain.router,
        chain.cert_log,
    )
    if recovery.replayed_blocks:
        assert recovery.replay_sim is not None
        assert recovery.replay_sim["pipelined_us"] <= recovery.replay_sim["serial_us"]
        assert recovery.replay_sim["speedup"] >= 1.0


@pytest.mark.parametrize("system", ["harmony", "aria"])
def test_replay_group_matches_serial_replay(system):
    config = ShardConfig(
        system=system,
        num_shards=2,
        num_blocks=6,
        block_size=16,
        seed=5,
        backend="process",
    )
    chain = ShardedBlockchain(config, _workload(2))
    chain.run()
    chain.close_backend()
    live_hash = chain.group.combined_state_hash()
    assert replay_group_serial(chain).combined_state_hash() == live_hash
    assert replay_group(chain, pipelined=True).combined_state_hash() == live_hash


def test_backend_rejects_out_of_order_advance():
    config = ShardConfig(system="harmony", num_shards=2, backend="process")
    backend = make_prepare_backend(config, _workload(2), 2)
    with pytest.raises(ValueError):
        backend.advance(5, [[], []])
    backend.close()


# ----------------------------------------------------------------- perf
_CORES = available_cores()
needs_cores = pytest.mark.skipif(
    _CORES < 4,
    reason=f"wall-clock gates need >= 4 usable cores, this machine has {_CORES}",
)


@pytest.mark.perf
@needs_cores
def test_parallel_prepare_wall_speedup():
    from repro.bench.perf import bench_parallel_prepare

    case = bench_parallel_prepare(smoke=True, seed=20230619)
    assert case["checks"]["wall_speedup_2x"], case
    assert all(case["checks"].values()), case


@pytest.mark.perf
@needs_cores
def test_pipelined_replay_wall_speedup():
    from repro.bench.perf import bench_pipelined_replay

    case = bench_pipelined_replay(smoke=True, seed=20230620)
    assert case["checks"]["wall_speedup"], case
    assert all(case["checks"].values()), case
