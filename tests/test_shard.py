"""Sharded execution subsystem: routing, sub-blocks, deterministic 2PC.

Pins the three contracts ISSUE 4 names:

- **router determinism** — the key->shard mapping is a pure function of
  (key, num_shards), stable under re-keying, fresh instances and query
  order, and the workload policy agrees with the affinity generator's
  partition layout;
- **single-shard identity** — ``ShardedBlockchain(num_shards=1)`` is
  decision- and state-identical to ``OEBlockchain`` on all three
  workloads (and for every two-phase system);
- **cross-shard commit** — vetoed transactions abort on *every*
  participant, certificates chain and replay to the same state on a fresh
  replica, and the committed cross-shard history is serializable per the
  oracle.
"""

from __future__ import annotations

import random

import pytest

from repro.chain.ordering import OrderingService, ShardSequencer
from repro.chain.system import OEBlockchain, OEConfig
from repro.consensus.crypto import Signer
from repro.dcc.oracle import HistoryOracle
from repro.shard.router import ShardRouter
from repro.shard.system import ShardConfig, ShardedBlockchain
from repro.shard.twopc import CertificateLog, ShardVote, decide, make_certificate
from repro.txn.transaction import AbortReason, TxnSpec
from repro.workloads.base import ShardAffinity, Workload, partition_of_index
from repro.workloads.hotspot import HotspotWorkload
from repro.workloads.smallbank import SmallbankWorkload
from repro.workloads.ycsb import YCSBWorkload, key_of

WORKLOADS = {
    "ycsb": lambda affinity=None: YCSBWorkload(num_keys=160, theta=0.6, affinity=affinity),
    "smallbank": lambda affinity=None: SmallbankWorkload(
        num_accounts=80, theta=0.6, affinity=affinity
    ),
    "hotspot": lambda affinity=None: HotspotWorkload(
        num_keys=200, hotspot_probability=0.5, affinity=affinity
    ),
}


def shard_config(system="harmony", num_shards=1, **overrides) -> ShardConfig:
    defaults = dict(block_size=10, num_blocks=5, seed=13)
    defaults.update(overrides)
    return ShardConfig(system=system, num_shards=num_shards, **defaults)


def oe_config(system="harmony", **overrides) -> OEConfig:
    defaults = dict(block_size=10, num_blocks=5, seed=13)
    defaults.update(overrides)
    return OEConfig(system=system, **defaults)


# --------------------------------------------------------------------- router
class TestShardRouter:
    def test_hash_policy_stable_under_rekeying(self):
        keys = [("usertable", i) for i in range(200)] + [("checking", i) for i in range(50)]
        router_a = ShardRouter(4, policy="hash")
        router_b = ShardRouter(4, policy="hash")
        shuffled = list(keys)
        random.Random(3).shuffle(shuffled)
        mapping_a = {key: router_a.shard_of(key) for key in keys}
        mapping_b = {key: router_b.shard_of(key) for key in shuffled}
        assert mapping_a == mapping_b
        assert set(mapping_a.values()) == set(range(4))  # all shards populated

    def test_range_policy_owns_contiguous_ranges(self):
        router = ShardRouter(
            3, policy="range", boundaries=[("usertable", 50), ("usertable", 120)]
        )
        assert router.shard_of(("usertable", 0)) == 0
        assert router.shard_of(("usertable", 49)) == 0
        assert router.shard_of(("usertable", 50)) == 1
        assert router.shard_of(("usertable", 119)) == 1
        assert router.shard_of(("usertable", 500)) == 2

    def test_range_policy_validates_boundaries(self):
        with pytest.raises(ValueError):
            ShardRouter(3, policy="range", boundaries=[1])
        with pytest.raises(ValueError):
            ShardRouter(2, policy="range", boundaries=[("b"), ("a")])

    def test_workload_policy_matches_affinity_partitions(self):
        """A partition-local generated key must route to that partition."""
        workload = WORKLOADS["ycsb"](ShardAffinity(4, 0.0))
        router = ShardRouter.for_workload(workload, 4)
        affinity = workload.affinity
        for partition in range(4):
            for rank in (0, 7, 93):
                index = affinity.map_index(rank, partition, workload.num_keys)
                assert router.shard_of(key_of(index)) == partition

    def test_partition_of_index_inverts_bounds(self):
        affinity = ShardAffinity(3, 0.0)
        for space in (10, 11, 1000):
            for index in range(space):
                partition = partition_of_index(index, space, 3)
                lo, hi = affinity.partition_bounds(space, partition)
                assert lo <= index < hi

    def test_participants_from_static_footprints(self):
        workload = SmallbankWorkload(num_accounts=100)
        router = ShardRouter.for_workload(workload, 4)
        spec = workload.generate_block(1, _rng())[0]
        participants = router.participants_of(workload, spec)
        assert participants == router.shards_for(workload.spec_keys(spec))

    def test_unknown_footprint_routes_everywhere(self):
        class Opaque(Workload):
            name = "opaque"

        router = ShardRouter(4, policy="hash")
        assert router.participants_of(Opaque(), TxnSpec("anything")) == frozenset(
            range(4)
        )

    def test_empty_footprint_routes_everywhere(self):
        """A transaction with a (valid) empty static footprint must still
        land in at least one sub-block; it gets the conservative route."""

        class NoOp(Workload):
            name = "noop"

            def spec_keys(self, spec):
                return []

        router = ShardRouter(4, policy="hash")
        assert router.participants_of(NoOp(), TxnSpec("noop")) == frozenset(range(4))

    def test_split_state_partitions_exactly(self):
        workload = WORKLOADS["ycsb"]()
        router = ShardRouter.for_workload(workload, 4)
        state = workload.initial_state()
        parts = router.split_state(state)
        merged = {}
        for shard, part in enumerate(parts):
            assert all(router.shard_of(key) == shard for key in part)
            merged.update(part)
        assert merged == state


def _rng():
    from repro.sim.rng import SeededRng

    return SeededRng(5, "shard-tests")


# ---------------------------------------------------------------- federated
class TestFederatedScan:
    def _snapshot(self, num_keys=300, num_shards=4):
        from repro.shard.federated import FederatedSnapshot
        from repro.storage.mvstore import MVStore

        router = ShardRouter(num_shards, policy="hash")
        parts = [{} for _ in range(num_shards)]
        for i in range(num_keys):
            key = ("usertable", i)
            parts[router.shard_of(key)][key] = i
        stores = []
        for part in parts:
            store = MVStore()
            store.load(part)
            stores.append(store)
        return FederatedSnapshot(router, stores, block_id=-1)

    def test_stream_merge_matches_materialized_union(self):
        snap = self._snapshot()
        lo, hi = ("usertable", 0), ("usertable", 300)
        assert list(snap.scan(lo, hi)) == list(snap.scan(lo, hi, indexed=False))
        # sub-ranges and empty ranges too
        for bounds in ((50, 120), (0, 1), (299, 300), (120, 120), (500, 600)):
            lo, hi = ("usertable", bounds[0]), ("usertable", bounds[1])
            assert list(snap.scan(lo, hi)) == list(snap.scan(lo, hi, indexed=False))

    def test_scan_is_lazy(self):
        """The merged scan must not materialize the union: consuming one
        row from a large range leaves the per-shard generators unread."""
        snap = self._snapshot(num_keys=300)
        rows = snap.scan(("usertable", 0), ("usertable", 300))
        assert not isinstance(rows, (list, tuple))
        first = next(iter(rows))
        assert first == (("usertable", 0), 0)

    def test_mixed_type_keys_fall_back_to_repr_order(self):
        """Shards owning keys of incomparable types (one holds strings,
        another tuples) still scan deterministically: both paths fall back
        to the ``repr``-keyed total order and must agree."""
        from repro.shard.federated import FederatedSnapshot
        from repro.storage.mvstore import MVStore

        class SplitRouter(ShardRouter):
            def shard_of(self, key):
                return 0 if isinstance(key, str) else 1

        strings, tuples = MVStore(), MVStore()
        strings.load({f"s{i}": i for i in range(3)})
        tuples.load({(9, i): i * 10 for i in range(3)})
        snap = FederatedSnapshot(
            SplitRouter(2, policy="hash"), [strings, tuples], block_id=-1
        )

        class AnyLow:  # below every key, regardless of its type
            def __gt__(self, other):
                return False

        class AnyHigh:  # above every key, regardless of its type
            def __gt__(self, other):
                return True

        # each shard's bisect resolves against these bounds; the merge
        # then meets a str head and a tuple head — incomparable
        lo, hi = AnyLow(), AnyHigh()
        lazy_rows = list(snap.scan(lo, hi))
        eager_rows = list(snap.scan(lo, hi, indexed=False))
        assert lazy_rows == eager_rows
        assert lazy_rows == sorted(lazy_rows, key=lambda kv: repr(kv[0]))
        assert len(lazy_rows) == 6

    def test_deep_mixed_type_clash_stays_deterministic_and_complete(self):
        """Comparable heads but a type clash deeper in the merge: the lazy
        scan must not blow up at the consumer — it finishes in repr order
        for the unemitted tail, deterministically, losing no row."""
        from repro.shard.federated import FederatedSnapshot
        from repro.storage.mvstore import MVStore

        class ParityRouter(ShardRouter):
            def shard_of(self, key):
                return 0 if key[0] % 2 == 0 else 1

        # each shard sorts internally (first tuple elements all differ);
        # the merge compares (2, "x") with (3, 7) fine but eventually
        # meets (6, "x") vs (6, 7)-style clashes via the shared prefix
        evens, odds = MVStore(), MVStore()
        evens.load({(0, 1): "a", (2, "x"): "b", (6, "x"): "c"})
        odds.load({(1, 5): "d", (3, 7): "e", (6, 7): "f"})
        snap = FederatedSnapshot(ParityRouter(2, policy="hash"), [evens, odds], -1)

        lo, hi = (0, 0), (99, 0)
        first = list(snap.scan(lo, hi))
        second = list(snap.scan(lo, hi))
        assert first == second  # deterministic
        assert sorted(map(repr, (k for k, _ in first))) == sorted(
            map(repr, (k for k, _ in snap.scan(lo, hi, indexed=False)))
        )  # complete: same row set as the eager fallback
        assert len(first) == 6


# ------------------------------------------------------------------ sequencer
class TestShardSequencer:
    def _global_block(self, size=8):
        ordering = OrderingService(Signer("ordering-service"))
        specs = [TxnSpec("noop", (("i", i),)) for i in range(size)]
        return ordering.form_block(specs)

    def test_split_preserves_global_tids_and_chains(self):
        signer = Signer("ordering-service")
        sequencer = ShardSequencer(3, signer)
        ordering = OrderingService(signer)
        prev = {shard: None for shard in range(3)}
        for round_ in range(3):
            block = ordering.form_block(
                [TxnSpec("noop", (("i", i),)) for i in range(6)]
            )
            participants = [frozenset({i % 3}) if i % 2 else frozenset({i % 3, (i + 1) % 3}) for i in range(6)]
            subs = sequencer.split(block, participants)
            for shard, sub in subs.items():
                assert sub.block_id == block.block_id
                expected = [
                    block.first_tid + i
                    for i in range(6)
                    if shard in participants[i]
                ]
                assert list(sub.tids) == expected
                assert signer.verify(sub.header_bytes(), sub.signature)
                if prev[shard] is not None:
                    assert sub.prev_hash == prev[shard]
                prev[shard] = sub.hash

    def test_cross_shard_txn_appears_on_every_participant(self):
        block = self._global_block(4)
        sequencer = ShardSequencer(2)
        subs = sequencer.split(
            block, [frozenset({0}), frozenset({0, 1}), frozenset({1}), frozenset({0, 1})]
        )
        assert list(subs[0].tids) == [block.first_tid, block.first_tid + 1, block.first_tid + 3]
        assert list(subs[1].tids) == [block.first_tid + 1, block.first_tid + 2, block.first_tid + 3]

    def test_empty_sub_blocks_still_chain(self):
        block = self._global_block(2)
        sequencer = ShardSequencer(2)
        subs = sequencer.split(block, [frozenset({0}), frozenset({0})])
        assert subs[1].size == 0 and subs[1].tids == ()

    def test_assignment_length_mismatch_rejected(self):
        block = self._global_block(3)
        with pytest.raises(ValueError):
            ShardSequencer(2).split(block, [frozenset({0})])


# ----------------------------------------------------------------------- 2pc
class TestTwoPhaseCommit:
    def test_decide_is_all_yes(self):
        votes = [
            ShardVote(7, 0, True),
            ShardVote(7, 1, False, reason="waw"),
            ShardVote(8, 0, True),
            ShardVote(8, 2, True),
        ]
        assert decide(votes) == frozenset({7})

    def test_certificate_chain_verifies_and_detects_tampering(self):
        log = CertificateLog()
        log.append([ShardVote(1, 0, True), ShardVote(1, 1, False)], block_id=0)
        log.append([ShardVote(5, 0, True)], block_id=1)
        assert log.verify_chain()
        tampered = make_certificate(2, [ShardVote(9, 0, False)], log.head_hash)
        tampered.abort_tids = frozenset()  # decision no longer matches votes
        log._certs.append(tampered)
        assert not log.verify_chain()


# ----------------------------------------------------- single-shard identity
class TestSingleShardIdentity:
    @pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
    @pytest.mark.parametrize("system", ("harmony", "aria", "rbc", "serial"))
    def test_decision_identical_to_unsharded(self, system, workload_name):
        oe = OEBlockchain(oe_config(system), WORKLOADS[workload_name]())
        oe_metrics = oe.run()
        sharded = ShardedBlockchain(
            shard_config(system, num_shards=1), WORKLOADS[workload_name]()
        )
        shard_metrics = sharded.run()
        assert (
            shard_metrics.extra["decision_digest"]
            == oe_metrics.extra["decision_digest"]
        )
        assert shard_metrics.extra["state_hash"] == oe_metrics.extra["state_hash"]
        assert shard_metrics.committed == oe_metrics.committed
        assert shard_metrics.aborted == oe_metrics.aborted
        assert shard_metrics.false_aborts == oe_metrics.false_aborts
        assert shard_metrics.extra["cross_shard_txns"] == 0


# --------------------------------------------------------- cross-shard commit
def run_sharded(
    system="harmony",
    workload_name="smallbank",
    num_shards=4,
    cross=0.4,
    **overrides,
):
    workload = WORKLOADS[workload_name](ShardAffinity(num_shards, cross))
    config = shard_config(
        system, num_shards=num_shards, keep_history=True, **overrides
    )
    chain = ShardedBlockchain(config, workload)
    metrics = chain.run()
    return chain, metrics


class TestCrossShardCommit:
    def test_zero_cross_ratio_yields_single_shard_txns(self):
        chain, metrics = run_sharded(cross=0.0)
        assert metrics.extra["cross_shard_txns"] == 0
        assert metrics.extra["ledger_ok"] and metrics.extra["certificates_ok"]

    def test_cross_ratio_generates_cross_shard_txns(self):
        _chain, metrics = run_sharded(cross=0.8)
        assert metrics.extra["cross_shard_txns"] > 0

    def test_statuses_consistent_across_participants(self):
        """2PC atomicity: every copy of a cross-shard transaction reaches
        the same commit/abort decision, and a veto is visible as a
        CROSS_SHARD_ABORT on shards whose local vote was commit."""
        chain, metrics = run_sharded(cross=0.8, num_blocks=6)
        saw_cross = saw_veto = 0
        for record in chain.history:
            for j, participants in enumerate(record.participants):
                if len(participants) <= 1:
                    continue
                saw_cross += 1
                tid = record.merged_txns[j].tid
                copies = [
                    next(t for t in record.executions[s].txns if t.tid == tid)
                    for s in sorted(participants)
                ]
                statuses = {t.status for t in copies}
                assert len(statuses) == 1, f"tid {tid} diverged: {statuses}"
                if any(
                    t.abort_reason is AbortReason.CROSS_SHARD_ABORT for t in copies
                ):
                    saw_veto += 1
                    assert all(t.aborted for t in copies)
        assert saw_cross > 0
        assert metrics.extra["certificates_ok"]

    def test_vetoed_writes_never_reach_any_store(self):
        """A globally aborted transaction's writes are absent everywhere:
        replaying only the committed decisions reproduces each shard's
        state (the consistency check replays blocks + certificates)."""
        chain, _metrics = run_sharded(cross=0.8, num_blocks=6)
        assert any(cert.abort_tids for cert in chain.cert_log.certificates())
        assert chain.consistency_check()

    @pytest.mark.parametrize("system", ("harmony", "aria", "rbc"))
    def test_replica_replay_matches_for_every_system(self, system):
        chain, metrics = run_sharded(system=system, cross=0.5)
        assert metrics.extra["ledger_ok"] and metrics.extra["certificates_ok"]
        assert chain.consistency_check()

    def test_serial_rejects_multi_shard(self):
        with pytest.raises(ValueError):
            ShardedBlockchain(
                shard_config("serial", num_shards=2), WORKLOADS["ycsb"]()
            )

    def test_cross_shard_history_serializable_per_oracle(self):
        """Feed the merged committed history (chains from each owning
        shard) to the history oracle — indexed and naive must agree and
        both must certify serializability."""
        for workload_name in ("ycsb", "smallbank"):
            chain, _metrics = run_sharded(
                workload_name=workload_name, cross=0.6, num_blocks=6
            )
            oracles = [HistoryOracle(indexed=True), HistoryOracle(indexed=False)]
            for record in chain.history:
                key_applies = [
                    item
                    for shard in sorted(record.executions)
                    for item in record.executions[shard].key_applies
                ]
                snapshot_id = record.executions[0].snapshot_block_id
                for oracle in oracles:
                    oracle.record_block(
                        record.block_id,
                        record.merged_txns,
                        key_applies,
                        snapshot_block_id=snapshot_id,
                    )
            indexed, naive = oracles
            assert indexed.build_graph() == naive.build_graph()
            assert indexed.is_serializable() and naive.is_serializable()

    def test_throughput_scales_with_shards_at_low_contention(self):
        def run(num_shards):
            workload = YCSBWorkload(
                num_keys=4_000, theta=0.1, affinity=ShardAffinity(4, 0.05)
            )
            config = ShardConfig(
                system="harmony",
                block_size=60,
                num_blocks=6,
                seed=13,
                num_shards=num_shards,
            )
            return ShardedBlockchain(config, workload).run()

        one, four = run(1), run(4)
        assert four.throughput_tps >= 2.0 * one.throughput_tps
