"""Declarative, seeded fault plans: what breaks, where, and when.

A :class:`FaultPlan` is a frozen schedule of :class:`FaultEvent`\\ s pinned
to (global block, shard) coordinates — the declarative replacement for the
hand-rolled crash flags PRs 4–5 grew. Every event site in the pipeline is
covered:

- **crash points** — before the sub-block arrives (never logged, never
  voted), between the prepare vote and the certificate append (the classic
  2PC window), and after the commit but before/during the checkpoint write
  (``tear_checkpoint`` turns the skipped write into a torn one, covering
  the mid-base-compaction case when the block is a compaction boundary).
  ``recovery_failures`` layers the double fault on top: that many recovery
  attempts crash mid-replay before one completes.
- **torn writes** — ``tear_checkpoint`` (delta or base, by block choice)
  and ``tear_log`` (the sub-block's log-tail write never became durable,
  so recovery cannot see the block the shard voted on).
- **2PC message faults** — vote drop / duplicate / delay on the exchange
  wire, and partition windows: in-block (``blocks == 1``) partitions heal
  after ``attempts`` delivery rounds; multi-block windows cut the shard
  off from sub-block delivery entirely until the window closes.

Plans are pure data: the same plan drives the injector, the supervisor
and the drill runner, and :func:`generate_chaos_plan` derives arbitrary
plans from a seed alone — reproducing a drill never needs more than
``(plan name or seed, scheme, shard count)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.rng import SeededRng

# -- crash points -------------------------------------------------------
#: the shard dies before the sub-block is delivered: nothing logged, no
#: vote cast — the supervisor must recover it and re-deliver the block
CRASH_BEFORE_PREPARE = "crash-before-prepare"
#: the 2PC window: the shard logs + prepares + votes, then dies before
#: the certificate lands — recovery replays the block under the recorded
#: decisions, never re-running the vote exchange
CRASH_AFTER_PREPARE = "crash-after-prepare"
#: the shard commits, then dies between the commit and the checkpoint
#: write (the checkpoint is lost or, with ``tear_checkpoint``, torn)
CRASH_AFTER_COMMIT = "crash-after-commit"

# -- 2PC message faults -------------------------------------------------
#: the shard's votes are lost for the first ``attempts`` delivery rounds
VOTE_DROP = "vote-drop"
#: the shard's votes arrive twice each round (idempotence drill)
VOTE_DUPLICATE = "vote-duplicate"
#: the shard's votes arrive only from round ``attempts`` on (late, not lost)
VOTE_DELAY = "vote-delay"
#: the shard is unreachable: ``blocks == 1`` cuts only this block's vote
#: exchange (heals after ``attempts`` rounds); ``blocks > 1`` cuts
#: sub-block delivery for the whole window — unhealed votes degrade to
#: timeout vetoes and the shard catches up when the window closes
PARTITION = "partition"

# -- migration faults ---------------------------------------------------
#: the shard dies between the ownership-record append and the arrival of
#: its key-version shipment: the boundary load never happens ("skip"),
#: the shard is rebuilt from its durable artifacts and re-shipped
CRASH_DURING_MIGRATION = "crash-during-migration"
#: the shard dies mid-apply: half the boundary shipment landed ("torn") —
#: the corrupt store is discarded by recovery, never read by a peer
TORN_MIGRATION = "torn-migration-delta"

CRASH_KINDS = frozenset(
    {CRASH_BEFORE_PREPARE, CRASH_AFTER_PREPARE, CRASH_AFTER_COMMIT}
)
VOTE_KINDS = frozenset({VOTE_DROP, VOTE_DUPLICATE, VOTE_DELAY, PARTITION})
#: migration faults only fire on a rebalance-armed chain, so they live in
#: their own family — outside the chaos generator's kind pool (seeded
#: chaos streams predate them and must stay byte-stable)
MIGRATION_KINDS = frozenset({CRASH_DURING_MIGRATION, TORN_MIGRATION})
ALL_KINDS = CRASH_KINDS | VOTE_KINDS | MIGRATION_KINDS


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault, pinned to a (block, shard) coordinate."""

    kind: str
    block_id: int
    shard: int
    #: vote faults: delivery rounds affected before the fault clears;
    #: an in-block partition heals at round ``attempts``
    attempts: int = 1
    #: partition window length in global blocks (> 1 = multi-block lag)
    blocks: int = 1
    #: double fault: recovery attempts that crash mid-replay before one
    #: completes (crash kinds only)
    recovery_failures: int = 0
    #: crash-after-commit: the checkpoint write tears instead of being
    #: lost outright (exercises the torn-delta / torn-base fallback)
    tear_checkpoint: bool = False
    #: crash-after-prepare: the sub-block's log-tail write tears — the
    #: crashed replica's log never held the block it voted on
    tear_log: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.block_id < 0 or self.shard < 0:
            raise ValueError("fault coordinates must be non-negative")
        if self.blocks < 1:
            raise ValueError("partition windows span at least one block")


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded schedule of fault events (pure data)."""

    name: str
    seed: int
    events: tuple = ()

    # ---------------------------------------------------------- queries
    def crashes(self, block_id: int, kind: str) -> tuple:
        """Crash events of ``kind`` scheduled at ``block_id``."""
        return tuple(
            e for e in self.events if e.kind == kind and e.block_id == block_id
        )

    def crash_shards(self, block_id: int, kind: str) -> frozenset:
        return frozenset(e.shard for e in self.crashes(block_id, kind))

    def partition_windows(self) -> tuple:
        """Multi-block partition events (``blocks > 1``)."""
        return tuple(
            e for e in self.events if e.kind == PARTITION and e.blocks > 1
        )

    def lagging_shards(self, block_id: int) -> frozenset:
        """Shards cut off from sub-block delivery at ``block_id``."""
        return frozenset(
            e.shard
            for e in self.partition_windows()
            if e.block_id <= block_id < e.block_id + e.blocks
        )

    def vote_fate(self, shard: int, block_id: int, attempt: int) -> str | None:
        """What the wire does to ``shard``'s votes on delivery round
        ``attempt`` of ``block_id``: ``"drop"``, ``"dup"`` or ``None``."""
        for e in self.events:
            if e.shard != shard:
                continue
            if e.kind in (VOTE_DROP, VOTE_DELAY):
                if e.block_id == block_id and attempt < e.attempts:
                    return "drop"
            elif e.kind == PARTITION:
                if e.blocks > 1:
                    if e.block_id <= block_id < e.block_id + e.blocks:
                        return "drop"
                elif e.block_id == block_id and attempt < e.attempts:
                    return "drop"
            elif e.kind == VOTE_DUPLICATE and e.block_id == block_id:
                return "dup"
        return None

    def recovery_failures_at(self, shard: int, block_id: int) -> int:
        return sum(
            e.recovery_failures
            for e in self.events
            if e.shard == shard
            and e.block_id == block_id
            and (e.kind in CRASH_KINDS or e.kind in MIGRATION_KINDS)
        )

    def migration_fate(self, shard: int, block_id: int) -> str | None:
        """Boundary-shipment fate at a migration-crash site: ``"skip"``
        (died before the load), ``"torn"`` (died mid-apply) or ``None``."""
        for e in self.crashes(block_id, TORN_MIGRATION):
            if e.shard == shard:
                return "torn"
        for e in self.crashes(block_id, CRASH_DURING_MIGRATION):
            if e.shard == shard:
                return "skip"
        return None

    def checkpoint_fault(self, shard: int, block_id: int) -> str | None:
        """Checkpoint-write fate at a crash-after-commit site:
        ``"tear"``, ``"skip"`` or ``None``."""
        for e in self.crashes(block_id, CRASH_AFTER_COMMIT):
            if e.shard == shard:
                return "tear" if e.tear_checkpoint else "skip"
        return None

    def log_tear(self, shard: int, block_id: int) -> bool:
        """Whether the sub-block log write tears at this coordinate."""
        return any(
            e.tear_log
            for e in self.crashes(block_id, CRASH_AFTER_PREPARE)
            if e.shard == shard
        )

    def max_block(self) -> int:
        return max(
            (e.block_id + e.blocks - 1 for e in self.events), default=-1
        )


def generate_chaos_plan(
    seed: int, num_blocks: int, num_shards: int, num_events: int = 3
) -> FaultPlan:
    """Derive a healing chaos plan from a seed alone.

    Events land on distinct blocks (never block 0, and never the final
    block, so every fault has room to heal before the run ends) with
    seeded kinds and shards. Every generated event heals within the
    supervisor's default retry budget — chaos plans belong to the
    bit-identity matrix, not the degradation tests.
    """
    if num_blocks < 4:
        raise ValueError("chaos plans need at least four blocks of room")
    rng = SeededRng(seed, "faults/chaos")
    # migration kinds need a rebalance-armed chain, so chaos draws from the
    # original pool — existing seeded streams stay byte-stable
    kinds = sorted(ALL_KINDS - MIGRATION_KINDS)
    candidates = list(range(1, num_blocks - 1))
    blocks = sorted(rng.sample(candidates, min(num_events, len(candidates))))
    events = []
    for block_id in blocks:
        kind = rng.choice(kinds)
        shard = rng.randint(0, num_shards - 1)
        events.append(
            FaultEvent(
                kind=kind,
                block_id=block_id,
                shard=shard,
                attempts=rng.randint(1, 2) if kind in VOTE_KINDS else 1,
                recovery_failures=(
                    1 if kind in CRASH_KINDS and rng.random() < 0.25 else 0
                ),
                tear_checkpoint=(
                    kind == CRASH_AFTER_COMMIT and rng.random() < 0.5
                ),
                tear_log=(kind == CRASH_AFTER_PREPARE and rng.random() < 0.25),
            )
        )
    return FaultPlan(name=f"chaos-{seed}", seed=seed, events=tuple(events))


def standard_plans(
    num_blocks: int = 8, num_shards: int = 3, seed: int = 61
) -> list[FaultPlan]:
    """The named drill matrix: every fault family, all healing.

    Block choices assume the drill config (``checkpoint_interval=2``,
    ``base_interval=2``): checkpoints land at blocks 1, 3, 5, 7 and base
    compactions at 3 and 7 — so a torn checkpoint at block 5 tears a
    *delta* and one at block 3 tears the freshly compacted *base*.
    """
    if num_blocks < 8:
        raise ValueError("standard plans are laid out for >= 8 blocks")
    s = lambda k: k % num_shards  # noqa: E731 - shard coordinate fold

    def plan(name, *events):
        return FaultPlan(name=name, seed=seed, events=tuple(events))

    return [
        plan("baseline-no-fault"),
        plan(
            "crash-before-prepare",
            FaultEvent(CRASH_BEFORE_PREPARE, block_id=4, shard=s(1)),
        ),
        plan(
            "crash-after-prepare",
            FaultEvent(CRASH_AFTER_PREPARE, block_id=5, shard=s(0)),
        ),
        plan(
            "crash-after-commit",
            FaultEvent(CRASH_AFTER_COMMIT, block_id=5, shard=s(2)),
        ),
        plan(
            "torn-delta-checkpoint",
            FaultEvent(
                CRASH_AFTER_COMMIT, block_id=5, shard=s(1), tear_checkpoint=True
            ),
        ),
        plan(
            "torn-base-compaction",
            FaultEvent(
                CRASH_AFTER_COMMIT, block_id=3, shard=s(0), tear_checkpoint=True
            ),
        ),
        plan(
            "torn-log-tail",
            FaultEvent(
                CRASH_AFTER_PREPARE, block_id=6, shard=s(2), tear_log=True
            ),
        ),
        plan(
            "crash-during-recovery",
            FaultEvent(
                CRASH_AFTER_PREPARE, block_id=4, shard=s(1), recovery_failures=2
            ),
        ),
        plan(
            "vote-drop",
            FaultEvent(VOTE_DROP, block_id=3, shard=s(1), attempts=2),
        ),
        plan(
            "vote-duplicate",
            FaultEvent(VOTE_DUPLICATE, block_id=2, shard=s(0)),
        ),
        plan(
            "vote-delay",
            FaultEvent(VOTE_DELAY, block_id=6, shard=s(1), attempts=1),
        ),
        plan(
            "partition-2pc",
            FaultEvent(PARTITION, block_id=5, shard=s(2), attempts=2),
        ),
        # migration family: drills arm an aggressive rebalance policy for
        # these, so a re-key is actually due at the faulted block
        plan(
            "migration-crash",
            FaultEvent(CRASH_DURING_MIGRATION, block_id=4, shard=s(1)),
        ),
        plan(
            "torn-migration-delta",
            FaultEvent(TORN_MIGRATION, block_id=4, shard=s(0)),
        ),
        generate_chaos_plan(seed, num_blocks, num_shards),
    ]
