"""Arming fault plans into the pipeline's injection points.

The pipeline exposes four fault seams, each a ``None``-by-default hook
that costs one attribute check when no plan is armed:

- ``ShardedBlockchain.fault_hook`` — the crash-point callback consulted by
  :meth:`~repro.shard.system.ShardedBlockchain.process_global_block`
  (generalizes the deprecated ``crash_after_prepare=`` kwarg);
- ``ShardedBlockchain.vote_channel`` — the vote-exchange wire
  (:class:`FaultyVoteChannel` drops / duplicates / delays per plan);
- ``CheckpointManager.fault_hook`` — skips or tears checkpoint writes;
- ``BlockLog.fault_hook`` — tears the sub-block log tail.

:class:`FaultInjector` binds one :class:`~repro.faults.plan.FaultPlan` to
all four. Each durable-write fault fires **once** (the consumed-event set):
a recovered replica replaying the same block ids must not re-suffer the
fault, or recovery could never converge.
"""

from __future__ import annotations

from repro.faults.plan import (
    CRASH_AFTER_PREPARE,
    CRASH_BEFORE_PREPARE,
    FaultPlan,
)
from repro.shard.twopc import VoteChannel


class FaultyVoteChannel(VoteChannel):
    """A vote wire that misbehaves per the armed plan.

    Stateless across rounds: the fate of a vote is a pure function of
    ``(shard, block, attempt)``, so retransmitting the identical cast on
    every round is safe and deterministic.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    def deliver(self, votes, block_id: int, attempt: int = 0):
        out = []
        for vote in votes:
            fate = self.plan.vote_fate(vote.shard_id, block_id, attempt)
            if fate == "drop":
                continue
            out.append(vote)
            if fate == "dup":
                out.append(vote)
        return out


class FaultInjector:
    """Binds one fault plan to a :class:`ShardedBlockchain`'s seams."""

    def __init__(self, plan: FaultPlan, num_shards: int) -> None:
        self.plan = plan
        self.num_shards = num_shards
        #: durable-write faults already delivered, keyed
        #: ``(site, shard, block_id)`` — one-shot so recovery replay of the
        #: same block ids never re-fires them
        self._fired: set = set()
        #: remaining crash-mid-recovery failures per (shard, block)
        self._recovery_left: dict = {}

    # ------------------------------------------------------------- arming
    def arm(self, chain) -> None:
        """Arm every seam of ``chain``; idempotent."""
        chain.fault_hook = self.crash_directive
        chain.vote_channel = FaultyVoteChannel(self.plan)
        chain.migration_hook = self.migration_fates
        for shard, node in enumerate(chain.group.nodes):
            self.arm_node(shard, node)

    def arm_node(self, shard: int, node) -> None:
        """(Re-)arm one shard replica's durable-write seams.

        Called at start-up and again after a recovered node re-joins —
        recovered engines come up with clean hooks, and consumed events
        stay consumed.
        """
        node.engine.checkpoints.fault_hook = (
            lambda block_id, s=shard: self._checkpoint_fault(s, block_id)
        )
        node.engine.block_log.fault_hook = (
            lambda block, s=shard: self._log_fault(s, block)
        )

    # ----------------------------------------------------- site callbacks
    def crash_directive(self, block_id: int):
        """The chain-level fault point: ``(skip_prepare, skip_commit)``."""
        before = self.plan.crash_shards(block_id, CRASH_BEFORE_PREPARE)
        after = self.plan.crash_shards(block_id, CRASH_AFTER_PREPARE)
        if not before and not after:
            return None
        return before, after

    def migration_fates(self, block_id: int) -> dict | None:
        """The migration seam: per-shard boundary-shipment fates for a
        re-key at ``block_id`` (``{shard: "skip" | "torn"}``), one-shot —
        the supervisor's re-shipment to the rebuilt shard must land."""
        fates = {}
        for shard in range(self.num_shards):
            fate = self.plan.migration_fate(shard, block_id)
            if fate is None:
                continue
            key = ("migration", shard, block_id)
            if key in self._fired:
                continue
            self._fired.add(key)
            fates[shard] = fate
        return fates or None

    def _checkpoint_fault(self, shard: int, block_id: int) -> str | None:
        fault = self.plan.checkpoint_fault(shard, block_id)
        if fault is None:
            return None
        key = ("checkpoint", shard, block_id)
        if key in self._fired:
            return None
        self._fired.add(key)
        return fault

    def _log_fault(self, shard: int, block) -> bool:
        if not self.plan.log_tear(shard, block.block_id):
            return False
        key = ("log", shard, block.block_id)
        if key in self._fired:
            return False
        self._fired.add(key)
        return True

    # --------------------------------------------------------- supervision
    def recovery_fails(self, shard: int, block_id: int) -> bool:
        """Consume one crash-mid-recovery failure, if any remain."""
        key = (shard, block_id)
        if key not in self._recovery_left:
            self._recovery_left[key] = self.plan.recovery_failures_at(
                shard, block_id
            )
        if self._recovery_left[key] > 0:
            self._recovery_left[key] -= 1
            return True
        return False
