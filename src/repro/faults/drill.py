"""Chaos drills: a faulted run against an undisturbed reference.

:func:`run_drill` builds two :class:`ShardedBlockchain`\\ s from the same
config and feeds both the identical seeded spec stream. The *disturbed*
chain runs under a :class:`~repro.faults.supervisor.SupervisedShardGroup`
with a fault plan armed; the *reference* chain runs the plain decision
layer. A healing plan must leave the two **bit-identical**:

- per-block commit/abort decisions (the first divergent block is named),
- the decision digest over the whole run,
- per-shard and combined state hashes,
- both certificate chains verify and share the head hash,
- and the reference history is certified serializable by the
  :class:`~repro.dcc.oracle.HistoryOracle` — decision identity transfers
  the certificate to the disturbed run.

Every drill is reproducible from ``(plan, scheme, shard count)`` alone:
plans carry their seed, and all randomness flows through named
:class:`~repro.sim.rng.SeededRng` streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.system import decision_digest
from repro.core.reordering import KeyApply
from repro.dcc.oracle import HistoryOracle
from repro.faults.inject import FaultInjector
from repro.faults.plan import MIGRATION_KINDS, FaultPlan, standard_plans
from repro.faults.supervisor import RetryPolicy, SupervisedShardGroup
from repro.shard.system import ShardConfig, ShardedBlockchain
from repro.sim.rng import SeededRng
from repro.workloads import make_workload
from repro.workloads.base import ShardAffinity

DRILL_SCHEMES = ("harmony", "aria", "rbc")
DRILL_SHARD_COUNTS = (1, 2, 4)
#: every drilled workload; smallbank carries the full plan roster, the
#: rest run the smoke plans (one per fault family) to bound the matrix
DRILL_WORKLOADS = (
    "smallbank",
    "tpcc",
    "adv-counter",
    "adv-scan",
    "adv-skewshift",
)
#: the per-PR smoke gate always drills TPC-C and the skew-shift
#: adversary (the workload live re-keying exists for) next to smallbank
SMOKE_WORKLOADS = ("smallbank", "tpcc", "adv-skewshift")
#: the fast gate: one representative per fault family
SMOKE_PLAN_NAMES = frozenset(
    {
        "baseline-no-fault",
        "crash-before-prepare",
        "crash-after-prepare",
        "torn-base-compaction",
        "vote-drop",
        "partition-2pc",
        "migration-crash",
        "torn-migration-delta",
    }
)


@dataclass
class DrillResult:
    """One drill's verdict and supervision accounting."""

    plan: FaultPlan
    scheme: str
    num_shards: int
    workload: str = "smallbank"
    ok: bool = True
    failures: list = field(default_factory=list)
    #: first block whose decisions diverged from the reference (None = none)
    first_divergent_block: int | None = None
    stats: dict = field(default_factory=dict)

    @property
    def label(self) -> str:
        return (
            f"{self.plan.name} x {self.scheme} x {self.num_shards}shard"
            f" x {self.workload}"
        )


def _applies_in_order(txns) -> list[KeyApply]:
    """Per-key apply chains of committed transactions, in list order —
    the pre-block-snapshot recording recipe (aria / rbc)."""
    chains: dict = {}
    for txn in txns:
        if txn.committed:
            for key in txn.write_set:
                chains.setdefault(key, []).append(txn.tid)
    return [
        KeyApply(key=key, updater_tids=tids, handler_tid=tids[0])
        for key, tids in chains.items()
    ]


def _build_chain(
    scheme: str,
    num_shards: int,
    plan: FaultPlan,
    block_size: int,
    backend: str,
    workload_name: str = "smallbank",
    rebalance: bool = False,
):
    affinity = ShardAffinity(num_shards, 0.5) if num_shards > 1 else None
    if workload_name == "smallbank":
        # the original drill workload, kept at its historical scale so
        # every existing plan's streams stay reproducible
        workload = make_workload(
            "smallbank", num_accounts=90, theta=0.6, affinity=affinity
        )
    else:
        workload = make_workload(workload_name, profile="gate", affinity=affinity)
    # migration-family drills arm an aggressive adaptive policy (warmup 2,
    # check every 2 blocks) so a re-key is actually due at the faulted
    # block; every other plan keeps the historical static routing
    extra = (
        dict(
            rebalance="adaptive",
            rebalance_check_interval=2,
            rebalance_warmup_blocks=2,
            rebalance_cooldown_blocks=2,
            rebalance_skew_threshold=1.0,
            rebalance_cross_threshold=0.0,
            rebalance_max_keys=8,
        )
        if rebalance
        else {}
    )
    config = ShardConfig(
        system=scheme,
        num_shards=num_shards,
        block_size=block_size,
        seed=plan.seed,
        checkpoint_interval=2,
        checkpoint_base_interval=2,
        backend=backend,
        **extra,
    )
    return ShardedBlockchain(config, workload)


def _merged_txns(block, participants, executions) -> list:
    """The coordinator-merged per-transaction records (run()'s view)."""
    by_shard = {
        shard: {t.tid: t for t in execution.txns}
        for shard, execution in executions.items()
    }
    return [
        by_shard[min(participants[j])][block.first_tid + j]
        for j in range(block.size)
    ]


def run_drill(
    scheme: str,
    num_shards: int,
    plan: FaultPlan,
    num_blocks: int = 8,
    block_size: int = 8,
    policy: RetryPolicy | None = None,
    workload: str = "smallbank",
    tracer=None,
) -> DrillResult:
    """One drill: disturbed (supervised, plan armed) vs reference.

    ``tracer`` (a :class:`repro.obs.trace.Tracer`) rides the *disturbed*
    chain, so injected-fault and supervision events land in the span
    stream; the reference chain stays untraced.
    """
    result = DrillResult(
        plan=plan, scheme=scheme, num_shards=num_shards, workload=workload
    )
    # the disturbed chain *asks* for the process backend: fault hooks armed
    # by the supervisor force the serial fallback, which is exactly the
    # auto-fallback contract under drill — injected faults keep firing
    # in-process, and the run stays bit-comparable to the serial reference.
    rebalance = any(e.kind in MIGRATION_KINDS for e in plan.events)
    disturbed = _build_chain(
        scheme, num_shards, plan, block_size, "process", workload, rebalance
    )
    if tracer is not None:
        from repro.obs.trace import attach_tracer

        attach_tracer(disturbed, tracer)
    reference = _build_chain(
        scheme, num_shards, plan, block_size, "serial", workload, rebalance
    )
    supervisor = SupervisedShardGroup(
        disturbed, FaultInjector(plan, num_shards), policy
    )

    stream = f"faults/{plan.name}/{scheme}/{num_shards}"
    if workload != "smallbank":
        # smallbank keeps its historical stream name; new workloads get
        # their own so no two drills ever share a spec sequence
        stream = f"{stream}/{workload}"
    rng = SeededRng(plan.seed, stream)
    ref_records: list = []
    oracle = HistoryOracle(indexed=True)
    for _ in range(num_blocks):
        specs = disturbed.workload.generate_block(block_size, rng)
        supervisor.process_block(disturbed.ordering.form_block(specs))
        block = reference.ordering.form_block(specs)
        outcome = reference.process_global_block(block)
        merged = _merged_txns(block, outcome.participants, outcome.executions)
        ref_records.append((block.block_id, merged))
        if scheme == "harmony":
            key_applies = [
                item
                for shard in sorted(outcome.executions)
                for item in outcome.executions[shard].key_applies
            ]
            first = min(outcome.executions)
            snapshot_id = outcome.executions[first].snapshot_block_id
        else:
            key_applies = _applies_in_order(merged)
            snapshot_id = block.block_id - 1
        oracle.record_block(
            block.block_id, merged, key_applies, snapshot_block_id=snapshot_id
        )
    supervisor.finalize()

    def fail(message: str) -> None:
        result.ok = False
        result.failures.append(message)

    # --- per-block decision identity (names the first divergent block)
    drill_records = supervisor.decision_records()
    for (bid, drill_txns), (_, ref_txns) in zip(drill_records, ref_records):
        drill_decisions = {
            (t.tid, t.committed, t.aborted) for t in drill_txns
        }
        ref_decisions = {(t.tid, t.committed, t.aborted) for t in ref_txns}
        if drill_decisions != ref_decisions:
            result.first_divergent_block = bid
            fail(
                f"block {bid}: decisions diverged "
                f"(drill-only: {sorted(drill_decisions - ref_decisions)}, "
                f"reference-only: {sorted(ref_decisions - drill_decisions)})"
            )
            break

    if decision_digest(drill_records) != decision_digest(ref_records):
        fail("decision digests differ")

    # --- state identity, per shard and combined
    drill_hashes = disturbed.group.state_hashes()
    ref_hashes = reference.group.state_hashes()
    for shard, (got, want) in enumerate(zip(drill_hashes, ref_hashes)):
        if got != want:
            fail(f"shard {shard}: state hash {got[:12]} != {want[:12]}")
    if disturbed.group.combined_state_hash() != reference.group.combined_state_hash():
        fail("combined state hashes differ")

    # --- certificate chains intact and identical
    if not disturbed.cert_log.verify_chain():
        fail("disturbed certificate chain broken")
    if not reference.cert_log.verify_chain():
        fail("reference certificate chain broken")
    if len(disturbed.cert_log) != len(reference.cert_log):
        fail("certificate streams have different heights")
    if disturbed.cert_log.head_hash != reference.cert_log.head_hash:
        fail("certificate head hashes differ")

    # --- ledgers chained on every (recovered) shard
    if not disturbed.group.ledgers_ok():
        fail("disturbed ledger chain broken")

    # --- the reference history is serializable; decision identity
    # transfers the certificate to the disturbed run
    if not oracle.is_serializable():
        fail("reference history not serializable")

    result.stats = {
        "retry_rounds": supervisor.retry_rounds,
        "recoveries": supervisor.recoveries,
        "failed_recoveries": supervisor.failed_recoveries,
        "injected_delay_us": round(supervisor.injected_delay_us, 3),
        "degraded_blocks": list(supervisor.degraded_blocks),
    }
    return result


def drill_matrix(
    schemes=DRILL_SCHEMES,
    shard_counts=DRILL_SHARD_COUNTS,
    num_blocks: int = 8,
    block_size: int = 8,
    seed: int = 61,
    smoke: bool = False,
    workloads=None,
):
    """Enumerate plan x scheme x shard-count x workload drills.

    ``smoke=True`` gates the fast subset: one scheme, one shard count,
    one plan per fault family, smallbank + TPC-C — the per-PR robustness
    gate. The full matrix runs every plan on smallbank and the smoke
    plans on every other registered drill workload.
    """
    if smoke:
        schemes = (schemes[0],)
        shard_counts = (min(2, max(shard_counts)),)
        workloads = SMOKE_WORKLOADS if workloads is None else workloads
    elif workloads is None:
        workloads = DRILL_WORKLOADS
    for num_shards in shard_counts:
        plans = standard_plans(num_blocks, num_shards, seed)
        if smoke:
            plans = [p for p in plans if p.name in SMOKE_PLAN_NAMES]
        for scheme in schemes:
            for workload in workloads:
                if workload == "smallbank":
                    roster = plans
                else:
                    roster = [p for p in plans if p.name in SMOKE_PLAN_NAMES]
                for plan in roster:
                    yield run_drill(
                        scheme,
                        num_shards,
                        plan,
                        num_blocks,
                        block_size,
                        workload=workload,
                    )
