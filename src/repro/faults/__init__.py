"""Deterministic fault injection: plans, injection, supervision, drills.

The robustness subsystem (ISSUE 6). Declarative, seeded
:class:`~repro.faults.plan.FaultPlan` schedules replace the hand-rolled
crash flags; :class:`~repro.faults.inject.FaultInjector` arms them into
the pipeline's zero-cost hooks;
:class:`~repro.faults.supervisor.SupervisedShardGroup` detects failures,
replays recovery, re-joins shards and retries the vote exchange under a
deterministic :class:`~repro.faults.supervisor.RetryPolicy`; and
:func:`~repro.faults.drill.run_drill` proves each faulted run
bit-identical to an undisturbed reference. ``python -m repro.faults``
runs the drill matrix from the command line.
"""

from repro.faults.drill import (
    DRILL_SCHEMES,
    DRILL_SHARD_COUNTS,
    SMOKE_PLAN_NAMES,
    DrillResult,
    drill_matrix,
    run_drill,
)
from repro.faults.inject import FaultInjector, FaultyVoteChannel
from repro.faults.plan import (
    ALL_KINDS,
    CRASH_AFTER_COMMIT,
    CRASH_AFTER_PREPARE,
    CRASH_BEFORE_PREPARE,
    CRASH_KINDS,
    PARTITION,
    VOTE_DELAY,
    VOTE_DROP,
    VOTE_DUPLICATE,
    VOTE_KINDS,
    FaultEvent,
    FaultPlan,
    generate_chaos_plan,
    standard_plans,
)
from repro.faults.supervisor import RetryPolicy, SupervisedShardGroup

__all__ = [
    "ALL_KINDS",
    "CRASH_AFTER_COMMIT",
    "CRASH_AFTER_PREPARE",
    "CRASH_BEFORE_PREPARE",
    "CRASH_KINDS",
    "DRILL_SCHEMES",
    "DRILL_SHARD_COUNTS",
    "DrillResult",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultyVoteChannel",
    "PARTITION",
    "RetryPolicy",
    "SMOKE_PLAN_NAMES",
    "SupervisedShardGroup",
    "VOTE_DELAY",
    "VOTE_DROP",
    "VOTE_DUPLICATE",
    "VOTE_KINDS",
    "drill_matrix",
    "generate_chaos_plan",
    "run_drill",
    "standard_plans",
]
