"""Supervised sharded execution: detect, recover, re-join, retry.

:class:`SupervisedShardGroup` wraps a :class:`ShardedBlockchain` and
drives its decision layer one global block at a time, the way
``process_global_block`` does — but with a supervision loop around every
fault seam:

- **crashed shards** are rebuilt with
  :func:`~repro.shard.recovery.recover_shard_node` from their durable
  artifacts, re-joined to the fleet (the federation closures re-point at
  the recovered store in place), re-armed, and caught up on any sub-block
  their log never held;
- **vote exchange** runs under bounded retry with deterministic
  exponential backoff (:class:`RetryPolicy`): every round retransmits the
  cast votes through the (possibly faulty) wire, and between rounds the
  supervisor heals what it can — recovering a shard that died before it
  could vote buys its vote back within the same block;
- **exhausted retries** fall to the timeout→abort degradation: the
  certificate synthesizes vetoes for the votes that never arrived
  (:func:`~repro.shard.twopc.reconcile_votes`), so an unhealed partition
  aborts cross-shard transactions deterministically instead of guessing;
- **lagging shards** (multi-block partition windows) are caught up when
  the window closes, replaying the missed sub-blocks under their recorded
  certificates.

All supervision overhead (backoff waits, retry rounds, recovery
round-trips) accumulates into ``injected_delay_us``, priced through the
chain's :class:`~repro.consensus.network.NetworkModel` — fault handling
shows up as latency, never as nondeterminism.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.inject import FaultInjector, FaultyVoteChannel
from repro.faults.plan import (
    CRASH_AFTER_COMMIT,
    CRASH_AFTER_PREPARE,
    CRASH_BEFORE_PREPARE,
    MIGRATION_KINDS,
)
from repro.shard.rebalance import migration_store_deltas
from repro.shard.recovery import recover_shard_node
from repro.shard.twopc import ShardVote


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic bounded retry with exponential backoff.

    The schedule is a pure function of the policy — no clocks, no
    jitter — so every replica of the supervisor waits the same simulated
    microseconds and gives up after the same round.
    """

    max_attempts: int = 5
    base_backoff_us: float = 50.0
    multiplier: float = 2.0
    max_backoff_us: float = 5000.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("retry policy needs at least one attempt")
        if self.multiplier < 1.0:
            raise ValueError("backoff must be non-decreasing")

    def backoff_us(self, attempt: int) -> float:
        """Wait before retry round ``attempt`` (0-indexed), capped."""
        return min(
            self.base_backoff_us * self.multiplier**attempt,
            self.max_backoff_us,
        )

    def schedule(self) -> tuple:
        """The full backoff schedule, one entry per possible retry."""
        return tuple(
            self.backoff_us(a) for a in range(self.max_attempts - 1)
        )


class SupervisedShardGroup:
    """Drives a sharded chain block-by-block under fault supervision."""

    def __init__(
        self,
        chain,
        injector: FaultInjector,
        policy: RetryPolicy | None = None,
    ) -> None:
        self.chain = chain
        self.injector = injector
        self.policy = policy or RetryPolicy()
        self.channel = FaultyVoteChannel(injector.plan)
        injector.arm(chain)
        #: every global block's sub-block split, for catch-up delivery
        self.sub_block_log: list[dict] = []
        #: shards currently dead (corpse still holds the durable artifacts)
        self._crashed: set[int] = set()
        #: partition windows already caught up, keyed (shard, start block)
        self._healed_windows: set = set()
        #: (shard, block_id) -> {tid: txn} from live commits, recovery
        #: replay and catch-up — the decision records' single source
        self._shard_block_txns: dict = {}
        #: per block: (block_id, [(tid, coordinator shard), ...])
        self._rows: list = []
        # --- supervision accounting
        self.injected_delay_us = 0.0
        self.retry_rounds = 0
        self.recoveries = 0
        self.failed_recoveries = 0
        self.degraded_blocks: list[int] = []

    # ------------------------------------------------------------ driving
    def process_block(self, block) -> dict:
        """One global block under supervision; returns the live
        per-shard executions (crashed/lagging shards may be absent —
        their records arrive via recovery replay or catch-up)."""
        chain = self.chain
        plan = self.injector.plan
        bid = block.block_id

        self._heal_lagging(bid)

        def _migration_barrier() -> None:
            # a due re-key ships key versions as of bid-1, so every store
            # must reach the boundary first: stragglers (open partition
            # windows) are forced to sync — the shipment's source values
            # must match the reference chain's, or the hash-covered record
            # (and with it the certificate chain) would diverge
            for shard, node in enumerate(chain.group.nodes):
                if node.engine.store.last_committed_block < bid - 1:
                    self._catch_up(shard, node)

        migration, participants, cross_tids, sub_blocks = (
            chain.route_global_block(block, migration_barrier=_migration_barrier)
        )
        expected = {
            block.first_tid + j: shards
            for j, shards in enumerate(participants)
            if len(shards) > 1
        }
        self.sub_block_log.append(sub_blocks)

        tracer = getattr(chain, "tracer", None)
        lagging = plan.lagging_shards(bid)
        # migration-family faults: the shard died while the boundary
        # shipment was in flight (its store load was skipped or torn by the
        # armed hook). The shipment is a synchronous coordinated step, so
        # the supervisor detects the casualty immediately and rebuilds the
        # shard *before* any peer can read the corrupt boundary state. If
        # no migration was actually due, degrade to a plain before-prepare
        # crash — the fault still fires, just without a shipment to tear.
        mig_dead = {
            shard
            for kind in sorted(MIGRATION_KINDS)
            for shard in plan.crash_shards(bid, kind)
        }
        if migration is not None and mig_dead:
            self._recover_migration_casualties(mig_dead, migration, bid, tracer)
            mig_dead = set()
        dead_before = plan.crash_shards(bid, CRASH_BEFORE_PREPARE) | mig_dead
        self._crashed |= dead_before
        if tracer is not None:
            for shard in sorted(dead_before):
                tracer.fault(
                    "crash", block=bid, shard=shard,
                    attrs={"window": "before-prepare"},
                )
        prepared = chain.group.prepare(
            sub_blocks, skip=frozenset(self._crashed | lagging)
        )
        if tracer is not None:
            chain._trace_prepared(tracer, bid, prepared)
        cast = self._votes_from(prepared, cross_tids)

        # crash-after-prepare: the vote hit the wire, then the shard died
        # (with ``tear_log`` the log write behind the vote also tore).
        dead_after_prepare = plan.crash_shards(bid, CRASH_AFTER_PREPARE)
        self._crashed |= dead_after_prepare
        if tracer is not None:
            for shard in sorted(dead_after_prepare):
                tracer.fault(
                    "crash", block=bid, shard=shard,
                    attrs={"window": "after-prepare"},
                )

        # --- vote exchange under bounded deterministic retry ------------
        expected_pairs = {
            (tid, shard) for tid, shards in expected.items() for shard in shards
        }
        arrived: list[ShardVote] = []
        attempt = 0
        while True:
            arrived.extend(self.channel.deliver(cast, bid, attempt))
            missing = expected_pairs - {(v.tid, v.shard_id) for v in arrived}
            if not missing:
                break
            attempt += 1
            if attempt >= self.policy.max_attempts:
                # timeout→abort degradation: the certificate will
                # synthesize vetoes for every still-missing vote
                self.degraded_blocks.append(bid)
                if tracer is not None:
                    tracer.fault(
                        "degraded",
                        block=bid,
                        attempt=attempt,
                        attrs={"missing": len(missing)},
                    )
                break
            self.retry_rounds += 1
            backoff_us = self.policy.backoff_us(attempt - 1)
            round_rtt_us = chain.network.rtt_us(chain.config.num_shards)
            self.injected_delay_us += backoff_us
            self.injected_delay_us += round_rtt_us
            if tracer is not None:
                tracer.fault(
                    "vote_retry",
                    block=bid,
                    attempt=attempt,
                    sim_us=backoff_us + round_rtt_us,
                    attrs={"missing": len(missing)},
                )
                tracer.metrics.counter("supervisor.retries").inc()
                tracer.metrics.histogram("supervisor.backoff_us").observe(
                    backoff_us
                )
            # a shard that died before voting can be recovered mid-window:
            # its log holds only certified blocks, so replay is complete,
            # and re-delivering this sub-block buys the missing vote back
            for shard in sorted(
                {s for (_, s) in missing} & dead_before & self._crashed
            ):
                node = self._recover(shard, bid)
                if node is None:
                    continue  # crash-during-recovery: attempt consumed
                prep = node.prepare_block(sub_blocks[shard])
                prepared[shard] = prep
                if tracer is not None:
                    tracer.stage(
                        "prepare",
                        block=bid,
                        shard=shard,
                        attempt=attempt,
                        attrs={"txns": len(prep.txns)},
                        timing={"sim_us": sum(prep.sim_durations_us)},
                    )
                cast.extend(self._votes_from({shard: prep}, cross_tids))

        certificate = chain.cert_log.append(
            arrived, bid, expected=expected, migration=migration
        )

        # --- commit phase ----------------------------------------------
        executions = chain.group.finish(
            prepared, certificate.abort_tids, skip=frozenset(self._crashed)
        )
        if tracer is not None:
            chain._trace_commits(tracer, bid, executions)
        for shard, execution in executions.items():
            self._shard_block_txns.setdefault(
                (shard, bid), {t.tid: t for t in execution.txns}
            )

        # crash-after-commit: committed, then died before the checkpoint
        # write survived (the armed checkpoint hook already skipped/tore it)
        dead_after_commit = plan.crash_shards(bid, CRASH_AFTER_COMMIT)
        self._crashed |= dead_after_commit
        if tracer is not None:
            for shard in sorted(dead_after_commit):
                tracer.fault(
                    "crash", block=bid, shard=shard,
                    attrs={"window": "after-commit"},
                )

        # --- end-of-block supervision: every corpse recovers now that the
        # certificate landed, so replay covers this block too.
        for shard in sorted(self._crashed):
            node = None
            tries = 0
            while node is None:
                tries += 1
                if tries > self.policy.max_attempts:
                    raise RuntimeError(
                        f"shard {shard} recovery exceeded retry budget"
                    )
                node = self._recover(shard, bid)
            self._catch_up(shard, node)

        self._rows.append(
            (
                bid,
                [
                    (block.first_tid + j, min(participants[j]))
                    for j in range(block.size)
                ],
            )
        )
        return executions

    def finalize(self) -> None:
        """End of run: close every partition window and catch up."""
        self._heal_lagging(None)
        if self._crashed:
            raise RuntimeError(f"unrecovered shards at finalize: {self._crashed}")
        tracer = getattr(self.chain, "tracer", None)
        if tracer is not None:
            metrics = tracer.metrics
            metrics.gauge("supervisor.injected_delay_us").set(
                self.injected_delay_us
            )
            metrics.gauge("supervisor.degraded_blocks").set(
                float(len(self.degraded_blocks))
            )
            metrics.gauge("supervisor.retry_rounds").set(
                float(self.retry_rounds)
            )

    # ------------------------------------------------------------ healing
    def _recover(self, shard: int, block_id: int):
        """One recovery attempt for ``shard``; ``None`` = the attempt
        itself crashed (double fault) and the durable artifacts are
        untouched, ready for the next attempt."""
        chain = self.chain
        tracer = getattr(chain, "tracer", None)
        rtt_us = chain.network.rtt_us(chain.config.num_shards)
        corpse = chain.group.nodes[shard]
        stores = chain.group._stores or [corpse.engine.store]
        if self.injector.recovery_fails(shard, block_id):
            # the recovering process dies mid-replay: run it and discard —
            # recovery only reads the durable artifacts, so a half-done
            # attempt leaves nothing behind
            recover_shard_node(
                corpse, shard, stores, chain.router, chain.cert_log
            )
            self.failed_recoveries += 1
            self.injected_delay_us += rtt_us
            if tracer is not None:
                tracer.fault(
                    "recovery_failed", block=block_id, shard=shard,
                    sim_us=rtt_us,
                )
                tracer.metrics.counter("supervisor.failed_recoveries").inc()
            return None
        recovery = recover_shard_node(
            corpse, shard, stores, chain.router, chain.cert_log
        )
        chain.group.rejoin(shard, recovery.node)
        self.injector.arm_node(shard, recovery.node)
        self._crashed.discard(shard)
        self.recoveries += 1
        self.injected_delay_us += rtt_us
        if tracer is not None:
            tracer.fault(
                "recovery",
                block=block_id,
                shard=shard,
                sim_us=rtt_us,
                attrs={"replayed": len(recovery.replayed_blocks)},
            )
            tracer.metrics.counter("supervisor.recoveries").inc()
        for replayed_bid, txns in recovery.replayed_blocks:
            self._shard_block_txns.setdefault(
                (shard, replayed_bid), {t.tid: t for t in txns}
            )
        return recovery.node

    def _recover_migration_casualties(
        self, shards, migration, bid: int, tracer
    ) -> None:
        """Rebuild every shard whose migration shipment was fated.

        The certificate for ``bid`` does not exist yet (votes haven't been
        cast), so recovery replays only through ``bid - 1`` — the
        supervisor then re-ships this record's boundary deltas to the
        rebuilt store, and the shard prepares ``bid`` live like everyone
        else."""
        chain = self.chain
        for shard in sorted(shards):
            self._crashed.add(shard)
            if tracer is not None:
                tracer.fault(
                    "crash", block=bid, shard=shard,
                    attrs={"window": "during-migration"},
                )
            node = None
            tries = 0
            while node is None:
                tries += 1
                if tries > self.policy.max_attempts:
                    raise RuntimeError(
                        f"shard {shard} recovery exceeded retry budget"
                    )
                node = self._recover(shard, bid)
            node.executor.migration_fences[migration.block_id] = frozenset(
                dict(migration.moves)
            )
            incoming, outgoing = migration_store_deltas(migration, chain.router)
            items = dict(outgoing.get(shard, ()))
            items.update(incoming.get(shard, ()))
            if items:
                node.engine.apply_migration(migration.block_id - 1, items)
            chain._store_mig_epochs[shard] = migration.epoch

    def _catch_up(self, shard: int, node) -> None:
        """Deliver every logged-and-certified sub-block the replica's
        ledger doesn't cover yet (torn log tails, missed windows).

        Migration-aware: a certified re-key at block *b* re-applies its
        boundary shipment before block *b*'s replay iff the live shipment
        skipped this store (watermark below the record's epoch — the store
        was behind the boundary when it fired). The router cursor is
        pinned to each replayed height so key scopes and snapshot routing
        resolve under the historical epoch."""
        chain = self.chain
        router = chain.router
        from_block = len(node.ledger)
        caught_up = 0
        saved_height = router.cursor_height
        try:
            for b in range(from_block, len(self.sub_block_log)):
                router.advance_to(b)
                record = chain.cert_log[b].migration
                if record is not None:
                    node.executor.migration_fences[b] = frozenset(
                        dict(record.moves)
                    )
                if (
                    record is not None
                    and chain._store_mig_epochs[shard] < record.epoch
                    and node.engine.store.last_committed_block == b - 1
                ):
                    incoming, outgoing = migration_store_deltas(record, router)
                    items = dict(outgoing.get(shard, ()))
                    items.update(incoming.get(shard, ()))
                    if items:
                        node.engine.apply_migration(b - 1, items)
                    chain._store_mig_epochs[shard] = record.epoch
                prep = node.prepare_block(self.sub_block_log[b][shard])
                execution = node.finish_block(prep, chain.cert_log[b].abort_tids)
                self._shard_block_txns.setdefault(
                    (shard, b), {t.tid: t for t in execution.txns}
                )
                self.injected_delay_us += chain.network.rtt_us(
                    chain.config.num_shards
                )
                caught_up += 1
        finally:
            router.advance_to(saved_height)
        if caught_up:
            tracer = getattr(chain, "tracer", None)
            if tracer is not None:
                tracer.fault(
                    "catch_up",
                    shard=shard,
                    sim_us=caught_up
                    * chain.network.rtt_us(chain.config.num_shards),
                    attrs={"from_block": from_block, "blocks": caught_up},
                )

    def _heal_lagging(self, upto_block: int | None) -> None:
        """Catch up shards whose partition window closed before
        ``upto_block`` (``None`` = end of run, close everything)."""
        for event in self.injector.plan.partition_windows():
            end = event.block_id + event.blocks
            key = (event.shard, event.block_id)
            if key in self._healed_windows:
                continue
            if upto_block is None or end <= upto_block:
                self._healed_windows.add(key)
                self._catch_up(
                    event.shard, self.chain.group.nodes[event.shard]
                )

    # ------------------------------------------------------------ records
    @staticmethod
    def _votes_from(prepared: dict, cross_tids: set) -> list:
        votes = []
        for shard, prep in prepared.items():
            for txn in prep.txns:
                if txn.tid in cross_tids:
                    votes.append(
                        ShardVote(
                            tid=txn.tid,
                            shard_id=shard,
                            commit=not txn.aborted,
                            reason=(
                                txn.abort_reason.value if txn.aborted else None
                            ),
                        )
                    )
        return votes

    def decision_records(self) -> list:
        """``(block_id, [txn, ...])`` per global block, each transaction's
        record taken from its coordinator shard — the same merged view
        the unsupervised ``run()`` builds. Raises if a shard never healed
        (call :meth:`finalize` first)."""
        out = []
        for bid, pairs in self._rows:
            txns = []
            for tid, coordinator in pairs:
                block_txns = self._shard_block_txns.get((coordinator, bid))
                if block_txns is None or tid not in block_txns:
                    raise RuntimeError(
                        f"no decision record for tid {tid} "
                        f"(shard {coordinator}, block {bid})"
                    )
                txns.append(block_txns[tid])
            out.append((bid, txns))
        return out
