"""CLI: run the deterministic fault-drill matrix.

Usage::

    python -m repro.faults                 # full matrix (plans x schemes
                                           # x shard counts)
    python -m repro.faults --smoke         # fast per-PR robustness gate
    python -m repro.faults --seed 97       # re-derive every plan's seed
    python -m repro.faults --schemes harmony,aria --shards 2,4
    python -m repro.faults --list          # print the plan roster and exit

Exit status 0 iff every drill's disturbed run is bit-identical to its
undisturbed reference; failures print the first divergent block.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.faults.drill import (
    DRILL_SCHEMES,
    DRILL_SHARD_COUNTS,
    DRILL_WORKLOADS,
    drill_matrix,
)
from repro.faults.plan import standard_plans


def _csv(value: str) -> tuple:
    return tuple(part.strip() for part in value.split(",") if part.strip())


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="deterministic chaos drills against undisturbed references",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast subset: one scheme, one shard count, one plan per family",
    )
    parser.add_argument(
        "--seed", type=int, default=61, help="root seed for every plan"
    )
    parser.add_argument(
        "--schemes",
        type=_csv,
        default=DRILL_SCHEMES,
        help="comma-separated schemes (default: harmony,aria,rbc)",
    )
    parser.add_argument(
        "--shards",
        type=lambda v: tuple(int(p) for p in _csv(v)),
        default=DRILL_SHARD_COUNTS,
        help="comma-separated shard counts (default: 1,2,4)",
    )
    parser.add_argument(
        "--workloads",
        type=_csv,
        default=None,
        help=(
            "comma-separated workloads (default: smoke=smallbank,tpcc; "
            f"full={','.join(DRILL_WORKLOADS)})"
        ),
    )
    parser.add_argument(
        "--list", action="store_true", help="print the plan roster and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for plan in standard_plans(seed=args.seed):
            events = ", ".join(
                f"{e.kind}@b{e.block_id}/s{e.shard}" for e in plan.events
            )
            print(f"{plan.name:24s} seed={plan.seed}  {events or '(control)'}")
        return 0

    start = time.time()
    ran = failed = 0
    for result in drill_matrix(
        schemes=args.schemes,
        shard_counts=args.shards,
        seed=args.seed,
        smoke=args.smoke,
        workloads=args.workloads,
    ):
        ran += 1
        if result.ok:
            extras = []
            if result.stats.get("retry_rounds"):
                extras.append(f"retries={result.stats['retry_rounds']}")
            if result.stats.get("recoveries"):
                extras.append(f"recoveries={result.stats['recoveries']}")
            suffix = f"  ({', '.join(extras)})" if extras else ""
            print(f"ok   {result.label}{suffix}")
        else:
            failed += 1
            print(f"FAIL {result.label}")
            if result.first_divergent_block is not None:
                print(f"     first divergent block: {result.first_divergent_block}")
            for failure in result.failures:
                print(f"     {failure}")
    elapsed = time.time() - start
    print(
        f"{ran - failed}/{ran} drills bit-identical to reference "
        f"in {elapsed:.1f}s"
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
