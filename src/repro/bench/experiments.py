"""Experiment definitions: one function per table/figure of Section 5.

Conventions shared with the paper:

- "skewness" is YCSB/Smallbank Zipf theta; medium contention = 0.6;
- block sizes default to each system's optimum from Figures 9/10
  (HarmonyBC 25, RBC 10, AriaBC 50/75, SOV systems 50);
- OE systems (HarmonyBC, AriaBC, RBC, serial) and SOV systems (Fabric,
  FastFabric#) run on identical workload streams (same seeds).
"""

from __future__ import annotations

from repro.bench.config import BenchScale, current_scale
from repro.bench.report import ExperimentResult
from repro.chain.sov import SOVBlockchain, SOVConfig
from repro.chain.system import OEBlockchain, OEConfig
from repro.consensus.hotstuff import HotStuffConsensus
from repro.consensus.network import NetworkModel, NetworkPreset
from repro.core.harmony import HarmonyConfig
from repro.sim.costs import CostModel, StorageProfile
from repro.sim.metrics import RunMetrics
from repro.workloads import make_workload as _registry_make_workload

OE_SYSTEMS = ("harmony", "aria", "rbc")
SOV_SYSTEMS = ("fabric", "fastfabric")
ALL_SYSTEMS = OE_SYSTEMS + SOV_SYSTEMS

#: per-system optimal block sizes (Figures 9/10)
OPTIMAL_BLOCK = {
    "harmony": {"ycsb": 25, "smallbank": 25, "tpcc": 25, "ycsb-hotspot": 25},
    "aria": {"ycsb": 50, "smallbank": 75, "tpcc": 50, "ycsb-hotspot": 50},
    "rbc": {"ycsb": 10, "smallbank": 10, "tpcc": 10, "ycsb-hotspot": 10},
    "fabric": {"ycsb": 50, "smallbank": 50},
    "fastfabric": {"ycsb": 50, "smallbank": 50},
    "serial": {"ycsb": 25, "smallbank": 25, "tpcc": 25},
}

SKEWS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
BLOCK_SIZES = (5, 25, 50, 75, 100)
REPLICA_COUNTS = (4, 20, 40, 60, 80)
WAREHOUSES = (1, 20, 40, 60, 80)
HOTSPOT_PROBS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


def make_workload(name: str, skew: float = 0.6, **kwargs):
    """Paper-scale workload off the shared registry; ``skew`` maps onto
    Zipf theta for the workloads parameterized by it."""
    if name in ("ycsb", "smallbank"):
        kwargs.setdefault("theta", skew)
    return _registry_make_workload(name, profile="default", **kwargs)


def block_size_for(system: str, workload: str) -> int:
    return OPTIMAL_BLOCK.get(system, {}).get(workload, 25)


def run_oe(
    system: str,
    workload_name: str,
    scale: BenchScale | None = None,
    skew: float = 0.6,
    workload_kwargs: dict | None = None,
    **config_overrides,
) -> RunMetrics:
    scale = scale or current_scale()
    workload = make_workload(workload_name, skew=skew, **(workload_kwargs or {}))
    blocks = scale.tpcc_blocks if workload_name == "tpcc" else scale.num_blocks
    config = OEConfig(
        system=system,
        block_size=block_size_for(system, workload_name),
        num_blocks=blocks,
        seed=scale.seed,
    )
    for key, value in config_overrides.items():
        setattr(config, key, value)
    return OEBlockchain(config, workload).run()


def run_sov(
    system: str,
    workload_name: str,
    scale: BenchScale | None = None,
    skew: float = 0.6,
    workload_kwargs: dict | None = None,
    **config_overrides,
) -> RunMetrics:
    scale = scale or current_scale()
    workload = make_workload(workload_name, skew=skew, **(workload_kwargs or {}))
    config = SOVConfig(
        system=system,
        block_size=block_size_for(system, workload_name),
        num_blocks=scale.sov_blocks,
        seed=scale.seed,
    )
    for key, value in config_overrides.items():
        setattr(config, key, value)
    return SOVBlockchain(config, workload).run()


def run_any(system: str, workload_name: str, **kwargs) -> RunMetrics:
    if system in SOV_SYSTEMS:
        return run_sov(system, workload_name, **kwargs)
    return run_oe(system, workload_name, **kwargs)


# --------------------------------------------------------------------------
# Figure 1 — the database layer is the bottleneck
# --------------------------------------------------------------------------
def figure1(scale: BenchScale | None = None) -> ExperimentResult:
    """Disk DB-layer throughputs vs consensus throughput (Smallbank).

    "Throughputs of the database layers are measured by using only one
    ordering node to write off consensus" — i.e. our system runs, whose
    consensus model is never the binding constraint. The HotStuff rows are
    the consensus layer alone at 80 nodes, LAN and WAN.
    """
    result = ExperimentResult(
        name="Figure 1",
        description="disk DB layer vs consensus layer (Smallbank, Ktxns/s)",
        headers=["layer", "throughput_ktps"],
    )
    for system in ("fabric", "fastfabric"):
        metrics = run_sov(system, "smallbank", scale)
        result.add(f"{system} (disk DB layer)", metrics.throughput_tps / 1000.0)
    metrics = run_oe("rbc", "smallbank", scale)
    result.add("rbc (disk DB layer)", metrics.throughput_tps / 1000.0)
    metrics = run_oe("aria", "smallbank", scale, profile=StorageProfile.MEMORY)
    result.add("aria (memory DB layer)", metrics.throughput_tps / 1000.0)
    costs = CostModel()
    for preset, label in (
        (NetworkPreset.CLOUD_LAN_5G, "hotstuff 80 nodes (LAN)"),
        (NetworkPreset.CLOUD_WAN, "hotstuff 80 nodes (WAN)"),
    ):
        consensus = HotStuffConsensus(NetworkModel.preset(preset), costs, num_nodes=80)
        result.add(label, consensus.throughput_tps() / 1000.0)
    return result


# --------------------------------------------------------------------------
# Table 3 — hit rate of the backward dangerous structure
# --------------------------------------------------------------------------
def table3(scale: BenchScale | None = None) -> ExperimentResult:
    result = ExperimentResult(
        name="Table 3",
        description="hit rate of the backward dangerous structure",
        headers=["workload", "parameter", "hit_rate"],
    )
    config = HarmonyConfig(inter_block=False)  # pure Rule-1 hits
    for skew in SKEWS:
        metrics = run_oe("harmony", "ycsb", scale, skew=skew, harmony=config)
        result.add("ycsb", f"skew={skew}", metrics.dangerous_structure_rate)
    for skew in SKEWS:
        metrics = run_oe("harmony", "smallbank", scale, skew=skew, harmony=config)
        result.add("smallbank", f"skew={skew}", metrics.dangerous_structure_rate)
    for warehouses in WAREHOUSES:
        metrics = run_oe(
            "harmony",
            "tpcc",
            scale,
            workload_kwargs={"num_warehouses": warehouses},
            harmony=config,
        )
        result.add("tpcc", f"warehouses={warehouses}", metrics.dangerous_structure_rate)
    return result


# --------------------------------------------------------------------------
# Figures 7/8 — overall performance
# --------------------------------------------------------------------------
def _overall(workload_name: str, scale: BenchScale | None) -> ExperimentResult:
    figure = "Figure 7" if workload_name == "smallbank" else "Figure 8"
    result = ExperimentResult(
        name=figure,
        description=f"overall performance on {workload_name}",
        headers=["system", "throughput_tps", "latency_ms"],
    )
    for system in ("fabric", "fastfabric", "rbc", "aria", "harmony"):
        metrics = run_any(system, workload_name, scale=scale)
        result.add(system, metrics.throughput_tps, metrics.mean_latency_ms)
    return result


def figure7(scale: BenchScale | None = None) -> ExperimentResult:
    return _overall("smallbank", scale)


def figure8(scale: BenchScale | None = None) -> ExperimentResult:
    return _overall("ycsb", scale)


# --------------------------------------------------------------------------
# Figures 9/10 — block size sweep
# --------------------------------------------------------------------------
def _block_sweep(workload_name: str, scale: BenchScale | None) -> ExperimentResult:
    figure = "Figure 9" if workload_name == "smallbank" else "Figure 10"
    result = ExperimentResult(
        name=figure,
        description=f"impact of block size on {workload_name}",
        headers=["system", "block_size", "throughput_tps", "latency_ms"],
    )
    for system in ("fabric", "fastfabric", "rbc", "aria", "harmony"):
        for block_size in BLOCK_SIZES:
            metrics = run_any(
                system, workload_name, scale=scale, block_size=block_size
            )
            result.add(system, block_size, metrics.throughput_tps, metrics.mean_latency_ms)
    return result


def figure9(scale: BenchScale | None = None) -> ExperimentResult:
    return _block_sweep("smallbank", scale)


def figure10(scale: BenchScale | None = None) -> ExperimentResult:
    return _block_sweep("ycsb", scale)


# --------------------------------------------------------------------------
# Figures 11/12 — contention sweep
# --------------------------------------------------------------------------
def _contention(workload_name: str, scale: BenchScale | None) -> ExperimentResult:
    figure = "Figure 11" if workload_name == "smallbank" else "Figure 12"
    result = ExperimentResult(
        name=figure,
        description=f"impact of contention on {workload_name}",
        headers=["system", "skew", "throughput_tps", "abort_rate"],
    )
    for system in ("fabric", "fastfabric", "rbc", "aria", "harmony"):
        for skew in SKEWS:
            metrics = run_any(system, workload_name, scale=scale, skew=skew)
            result.add(system, skew, metrics.throughput_tps, metrics.abort_rate)
    return result


def figure11(scale: BenchScale | None = None) -> ExperimentResult:
    return _contention("smallbank", scale)


def figure12(scale: BenchScale | None = None) -> ExperimentResult:
    return _contention("ycsb", scale)


# --------------------------------------------------------------------------
# Figure 13 — false abort rate (FastFabric# excluded, as in the paper)
# --------------------------------------------------------------------------
def figure13(scale: BenchScale | None = None) -> ExperimentResult:
    result = ExperimentResult(
        name="Figure 13",
        description="false abort rate (aborts a perfect scheduler avoids)",
        headers=["workload", "system", "skew", "false_abort_rate"],
    )
    for workload_name in ("ycsb", "smallbank"):
        for system in ("fabric", "rbc", "aria", "harmony"):
            for skew in SKEWS:
                metrics = run_any(system, workload_name, scale=scale, skew=skew)
                result.add(workload_name, system, skew, metrics.false_abort_rate)
    result.notes.append(
        "FastFabric# excluded: its graph traversal eliminates false aborts"
        " at the orderer (paper, Figure 13 caption)."
    )
    return result


# --------------------------------------------------------------------------
# Figure 14 — hotspots
# --------------------------------------------------------------------------
def figure14(scale: BenchScale | None = None) -> ExperimentResult:
    result = ExperimentResult(
        name="Figure 14",
        description="impact of hotspots (1% hot keys, fused SELECT+UPDATE)",
        headers=["system", "hotspot_prob", "throughput_tps", "abort_rate"],
    )
    for system in OE_SYSTEMS:
        for prob in HOTSPOT_PROBS:
            metrics = run_oe(
                system,
                "ycsb-hotspot",
                scale,
                workload_kwargs={"hotspot_probability": prob},
            )
            result.add(system, prob, metrics.throughput_tps, metrics.abort_rate)
    return result


# --------------------------------------------------------------------------
# Figures 15/16 — replica scaling
# --------------------------------------------------------------------------
def _replicas(workload_name: str, scale: BenchScale | None) -> ExperimentResult:
    figure = "Figure 15" if workload_name == "smallbank" else "Figure 16"
    result = ExperimentResult(
        name=figure,
        description=f"impact of number of replicas on {workload_name} (cloud LAN)",
        headers=["system", "replicas", "throughput_tps", "latency_ms"],
    )
    for system in ("fabric", "fastfabric", "rbc", "aria", "harmony"):
        for replicas in REPLICA_COUNTS:
            metrics = run_any(
                system,
                workload_name,
                scale=scale,
                num_replicas=replicas,
                network=NetworkPreset.CLOUD_LAN_5G,
            )
            result.add(
                system, replicas, metrics.throughput_tps, metrics.mean_latency_ms
            )
    return result


def figure15(scale: BenchScale | None = None) -> ExperimentResult:
    return _replicas("smallbank", scale)


def figure16(scale: BenchScale | None = None) -> ExperimentResult:
    return _replicas("ycsb", scale)


# --------------------------------------------------------------------------
# Figures 17/18 — BFT consensus, geo-distributed
# --------------------------------------------------------------------------
def _bft(workload_name: str, scale: BenchScale | None) -> ExperimentResult:
    figure = "Figure 17" if workload_name == "smallbank" else "Figure 18"
    result = ExperimentResult(
        name=figure,
        description=f"HarmonyBC with BFT vs Kafka consensus on {workload_name}"
        " (>20 nodes => geo-distributed WAN)",
        headers=["consensus", "nodes", "throughput_tps", "latency_ms"],
    )
    for consensus in ("hotstuff", "kafka"):
        for nodes in REPLICA_COUNTS:
            preset = (
                NetworkPreset.CLOUD_WAN if nodes > 20 else NetworkPreset.CLOUD_LAN_5G
            )
            metrics = run_oe(
                "harmony",
                workload_name,
                scale,
                consensus=consensus,
                num_replicas=nodes,
                network=preset,
            )
            result.add(consensus, nodes, metrics.throughput_tps, metrics.mean_latency_ms)
    return result


def figure17(scale: BenchScale | None = None) -> ExperimentResult:
    return _bft("smallbank", scale)


def figure18(scale: BenchScale | None = None) -> ExperimentResult:
    return _bft("ycsb", scale)


# --------------------------------------------------------------------------
# Figure 19 — TPC-C
# --------------------------------------------------------------------------
def figure19(scale: BenchScale | None = None) -> ExperimentResult:
    result = ExperimentResult(
        name="Figure 19",
        description="TPC-C: throughput/latency vs warehouse count",
        headers=["system", "warehouses", "throughput_tps", "latency_ms"],
    )
    for system in OE_SYSTEMS:
        for warehouses in WAREHOUSES:
            metrics = run_oe(
                system,
                "tpcc",
                scale,
                workload_kwargs={"num_warehouses": warehouses},
            )
            result.add(
                system, warehouses, metrics.throughput_tps, metrics.mean_latency_ms
            )
    result.notes.append(
        "Fabric/FastFabric# excluded: no native relational model (paper §5.6)."
    )
    return result


# --------------------------------------------------------------------------
# Figure 20 — ablation study
# --------------------------------------------------------------------------
ABLATIONS = (
    ("raw-HarmonyBC", HarmonyConfig(update_reorder=False, coalesce=False, inter_block=False)),
    ("+update-reorder", HarmonyConfig(update_reorder=True, coalesce=False, inter_block=False)),
    ("+update-coalesce", HarmonyConfig(update_reorder=True, coalesce=True, inter_block=False)),
    ("HarmonyBC (+inter-block)", HarmonyConfig()),
)

CONTENTION_LEVELS = {
    "ycsb": {"low": {"skew": 0.0}, "high": {"skew": 1.0}},
    "smallbank": {"low": {"skew": 0.0}, "high": {"skew": 1.0}},
    "tpcc": {
        "low": {"workload_kwargs": {"num_warehouses": 80}},
        "high": {"workload_kwargs": {"num_warehouses": 1}},
    },
}


def figure20(scale: BenchScale | None = None) -> ExperimentResult:
    result = ExperimentResult(
        name="Figure 20",
        description="ablation: throughput / abort rate / CPU utilization",
        headers=[
            "workload",
            "contention",
            "variant",
            "throughput_tps",
            "abort_rate",
            "cpu_util",
        ],
    )
    for workload_name, levels in CONTENTION_LEVELS.items():
        for level, kwargs in levels.items():
            for label, config in ABLATIONS:
                metrics = run_oe(
                    "harmony", workload_name, scale, harmony=config, **kwargs
                )
                result.add(
                    workload_name,
                    level,
                    label,
                    metrics.throughput_tps,
                    metrics.abort_rate,
                    metrics.cpu_utilization,
                )
    return result


# --------------------------------------------------------------------------
# Figure 21 — is Harmony still useful without disk overheads?
# --------------------------------------------------------------------------
def figure21(scale: BenchScale | None = None) -> ExperimentResult:
    result = ExperimentResult(
        name="Figure 21",
        description="SSD vs RAMDisk vs memory engine (+ consensus ceiling)",
        headers=["workload", "engine", "system", "throughput_ktps"],
    )
    profiles = (
        ("PGSQL (SSD)", StorageProfile.SSD),
        ("PGSQL (RAMDisk)", StorageProfile.RAMDISK),
        ("memory engine", StorageProfile.MEMORY),
    )
    costs = CostModel()
    consensus = HotStuffConsensus(
        NetworkModel.preset(NetworkPreset.CLOUD_LAN_5G), costs, num_nodes=80
    )
    for workload_name in ("ycsb", "smallbank", "tpcc"):
        for label, profile in profiles:
            for system in ("aria", "harmony"):
                metrics = run_oe(system, workload_name, scale, profile=profile)
                result.add(
                    workload_name, label, system, metrics.throughput_tps / 1000.0
                )
        result.add(
            workload_name,
            "consensus ceiling",
            "hotstuff",
            consensus.throughput_tps() / 1000.0,
        )
    return result


#: registry used by the CLI and the bench files
EXPERIMENTS = {
    "figure1": figure1,
    "table3": table3,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
    "figure12": figure12,
    "figure13": figure13,
    "figure14": figure14,
    "figure15": figure15,
    "figure16": figure16,
    "figure17": figure17,
    "figure18": figure18,
    "figure19": figure19,
    "figure20": figure20,
    "figure21": figure21,
}
