"""Benchmark scale knobs."""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class BenchScale:
    """How much work each experiment performs."""

    num_blocks: int
    sov_blocks: int
    tpcc_blocks: int
    seed: int = 7


def current_scale() -> BenchScale:
    """Default: quick, shape-preserving runs; REPRO_FULL=1 for longer ones."""
    if os.environ.get("REPRO_FULL") == "1":
        return BenchScale(num_blocks=40, sov_blocks=30, tpcc_blocks=25)
    return BenchScale(num_blocks=14, sov_blocks=10, tpcc_blocks=8)
