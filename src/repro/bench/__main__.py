"""CLI: regenerate any table/figure of the paper, or run the perf harness.

Usage::

    python -m repro.bench figure7 figure8     # specific experiments
    python -m repro.bench all                 # the whole evaluation
    REPRO_FULL=1 python -m repro.bench all    # longer, steadier runs
    python -m repro.bench --perf [out.json]   # hot-path perf trajectory
    python -m repro.bench --perf-smoke        # same, seconds not minutes
    python -m repro.bench --perf-smoke --check  # also fail (exit 1) when
                                                # any case's speedup < 1.0
    python -m repro.bench --compare [out.json]  # diff the last two same-mode
                                                # runs; exit 1 on a >20%
                                                # per-case speedup collapse
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.bench.experiments import EXPERIMENTS
from repro.bench.report import render


def main(argv: list[str]) -> int:
    if argv and argv[0] == "--compare":
        from repro.bench.perf import DEFAULT_OUT, compare_last_runs

        path = (
            argv[1]
            if len(argv) > 1
            else os.environ.get("REPRO_BENCH_OUT") or DEFAULT_OUT
        )
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"cannot read trajectory {path!r}: {exc}")
            return 2
        if not isinstance(data, dict):
            print(f"cannot read trajectory {path!r}: not a trajectory object")
            return 2
        history = data.get("runs", [])
        lines, regressions = compare_last_runs(history)
        for line in lines:
            print(line)
        return 1 if regressions else 0

    if argv and argv[0] in {"--perf", "--perf-smoke"}:
        from repro.bench.perf import regressed_cases, render_perf, run_perf

        check = "--check" in argv[1:]
        paths = [a for a in argv[1:] if a != "--check"]
        start = time.time()
        run = run_perf(
            smoke=argv[0] == "--perf-smoke",
            out_path=paths[0] if paths else None,
        )
        print(render_perf(run))
        print(f"  ({time.time() - start:.1f}s)")
        status = 0 if run["all_checks_pass"] else 1
        if check:
            regressed = regressed_cases(run)
            for line in regressed:
                print(f"  REGRESSED: {line}")
            if regressed:
                status = 1
        return status

    names = argv or ["all"]
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {sorted(EXPERIMENTS)}")
        return 2
    for name in names:
        start = time.time()
        result = EXPERIMENTS[name]()
        print(render(result))
        print(f"  ({time.time() - start:.1f}s)\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
