"""CLI: regenerate any table/figure of the paper.

Usage::

    python -m repro.bench figure7 figure8     # specific experiments
    python -m repro.bench all                 # the whole evaluation
    REPRO_FULL=1 python -m repro.bench all    # longer, steadier runs
"""

from __future__ import annotations

import sys
import time

from repro.bench.experiments import EXPERIMENTS
from repro.bench.report import render


def main(argv: list[str]) -> int:
    names = argv or ["all"]
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {sorted(EXPERIMENTS)}")
        return 2
    for name in names:
        start = time.time()
        result = EXPERIMENTS[name]()
        print(render(result))
        print(f"  ({time.time() - start:.1f}s)\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
