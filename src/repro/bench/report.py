"""Result containers and table rendering for the bench harness."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentResult:
    """One regenerated table/figure: a header row plus data rows."""

    name: str
    description: str
    headers: list
    rows: list = field(default_factory=list)
    notes: list = field(default_factory=list)

    def add(self, *values) -> None:
        self.rows.append(list(values))

    def column(self, header: str) -> list:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def series(self, key_header: str, key_value, value_header: str):
        """All ``value_header`` values for rows whose key column matches."""
        ki = self.headers.index(key_header)
        vi = self.headers.index(value_header)
        return [row[vi] for row in self.rows if row[ki] == key_value]


def _format_cell(value) -> str:
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render(result: ExperimentResult) -> str:
    """Render an experiment as an aligned text table."""
    table = [[str(h) for h in result.headers]]
    for row in result.rows:
        table.append([_format_cell(v) for v in row])
    widths = [max(len(r[c]) for r in table) for c in range(len(result.headers))]
    lines = [f"== {result.name} — {result.description}"]
    header, *body = table
    lines.append("  " + " | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  " + "-+-".join("-" * w for w in widths))
    for row in body:
        lines.append("  " + " | ".join(c.rjust(w) for c, w in zip(row, widths)))
    for note in result.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)
