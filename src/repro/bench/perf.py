"""Micro-benchmark harness: perf trajectories for the block-pipeline hot paths.

How ``BENCH_*.json`` files are produced and compared
----------------------------------------------------
``python -m repro.bench --perf`` (full, ~a minute) or ``--perf-smoke``
(seconds) runs every case below twice on identical, seeded synthetic
inputs — once through the retained naive implementation (the seed's
quadratic scans: ``indexed=False`` paths, per-key ``insort`` loads,
full-recompute state hashes) and once through the indexed fast path —
*verifies both produce identical decisions / outputs*, and appends one run
record to ``BENCH_perf.json`` (path override: second CLI argument or
``$REPRO_BENCH_OUT``).

The file accumulates a **trajectory**: ``{"schema": 1, "runs": [...]}``
where each run carries its mode and per-case
``{params, naive_s, indexed_s, speedup, checks}``. Future PRs re-run the
harness and diff their run against the committed history — a case whose
``indexed_s`` drifts up or whose ``speedup`` collapses between entries is
a hot-path regression, caught without re-deriving absolute targets per
machine (compare ratios, not wall-clock).

Cases whose naive baseline is too quadratic to time at the largest size
(the 1M-key ``MVStore.load``) measure naive at the biggest feasible size
and extrapolate quadratically; those entries carry
``naive_extrapolated: true`` alongside an honestly-measured pair at the
feasible size.
"""

from __future__ import annotations

import json
import os
import random
import statistics
import sys
import time
from bisect import bisect_left, insort

from repro.core.dependencies import BlockDependencyIndex
from repro.core.validation import HarmonyValidator
from repro.execution import OverlayView
from repro.intervals import SortedKeys
from repro.storage.mvstore import MVStore
from repro.txn.commands import AddValue, SetValue
from repro.txn.transaction import Txn, TxnSpec

DEFAULT_OUT = "BENCH_perf.json"
#: largest size at which the O(n²) insort load is timed rather than
#: extrapolated (≈ seconds; 1M would take minutes)
NAIVE_LOAD_CAP = 100_000


# --------------------------------------------------------------- inputs
def _key(i: int) -> tuple:
    return ("k", i)


def make_block(
    num_txns: int,
    num_keys: int,
    rng: random.Random,
    first_tid: int = 0,
    block_id: int = 0,
    range_read_prob: float = 0.6,
    writes_per_txn: tuple[int, int] = (2, 4),
) -> list[Txn]:
    """A seeded synthetic block: skewed point reads/writes + range reads.

    Mirrors the paper's sweep shape (Zipf-skewed keys, scans registering
    half-open ranges) without dragging the storage engine into the timed
    region — validation decisions only consult TIDs and read/write sets.
    """
    span = max(4, num_keys // 50)
    txns = []
    for i in range(num_txns):
        txn = Txn(tid=first_tid + i, block_id=block_id, spec=TxnSpec("ops"))
        for _ in range(rng.randint(2, 4)):
            txn.read_set[_key(int(num_keys * rng.random() ** 2))] = None
        if rng.random() < range_read_prob:
            start = rng.randrange(num_keys)
            txn.read_ranges.append((_key(start), _key(start + span)))
        for _ in range(rng.randint(*writes_per_txn)):
            key = _key(int(num_keys * rng.random() ** 2))
            if rng.random() < 0.5:
                txn.record_update(key, AddValue(1))
            else:
                txn.record_update(key, SetValue(rng.randrange(1000)))
        txns.append(txn)
    return txns


def clone_txns(txns: list[Txn]) -> list[Txn]:
    """Fresh runtime records with identical read/write sets (validation
    mutates counters and statuses, so every timed run gets its own copy)."""
    out = []
    for t in txns:
        c = Txn(tid=t.tid, block_id=t.block_id, spec=t.spec)
        c.read_set = dict(t.read_set)
        c.read_ranges = list(t.read_ranges)
        c.write_set = dict(t.write_set)
        c.updated_keys = list(t.updated_keys)
        out.append(c)
    return out


def _commit_survivors(txns: list[Txn]) -> list[Txn]:
    for t in txns:
        if not t.aborted:
            t.mark_committed()
    return txns


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ---------------------------------------------------- retained naive refs
def naive_load(store: MVStore, items: dict, block_id: int = -1) -> None:
    """The seed's O(n²) bulk load: one ``insort`` per fresh key."""
    for seq, (key, value) in enumerate(items.items()):
        chain = store._versions.get(key)
        if chain is None:
            store._versions[key] = [((block_id, seq), value)]
            insort(store._sorted_keys, key)
        else:
            chain.append(((block_id, seq), value))
        store._stale_keys.add(key)


def naive_scan(view, start, end) -> list:
    """The seed's snapshot scan: per-key comparison + binary search."""
    keys = view._store._sorted_keys
    out = []
    i = bisect_left(keys, start)
    while i < len(keys) and keys[i] < end:
        value, _version = view.get(keys[i])
        if value is not None:
            out.append((keys[i], value))
        i += 1
    return out


def _aria_range_raw_flags(
    txns: list[Txn], write_reservations: dict, indexed: bool
) -> list[bool]:
    """Aria's range-read RAW check, lifted out of the executor so the two
    implementations are timed without engine noise (txns here carry only
    read ranges, matching the point-checks-already-passed call site)."""
    reserved = SortedKeys(write_reservations) if indexed else None
    flags = []
    for txn in txns:
        if indexed:
            raw = any(
                write_reservations[key] < txn.tid
                for start, end in txn.read_ranges
                for key in reserved.in_range(start, end)
            )
        else:
            raw = any(
                owner < txn.tid and txn.reads(key)
                for key, owner in write_reservations.items()
            )
        flags.append(raw)
    return flags


# --------------------------------------------------------------- cases
def bench_validation(block_size: int, num_keys: int, repeats: int, seed: int) -> dict:
    """Rule 1 + Rule 3 validation of one block against committed records."""
    rng = random.Random(seed)
    prev = make_block(block_size, num_keys, rng)
    HarmonyValidator().validate(prev)
    records = HarmonyValidator.records_for(_commit_survivors(prev))
    block = make_block(block_size, num_keys, rng, first_tid=block_size)

    results = {}
    for label, indexed in (("naive", False), ("indexed", True)):
        validator = HarmonyValidator(inter_block=True, indexed=indexed)
        clones = [clone_txns(block) for _ in range(repeats)]
        it = iter(clones)
        results[label] = (
            _time(lambda: validator.validate(next(it), records), repeats),
            validator.validate(clone_txns(block), records).aborted_tids,
        )
    (naive_s, naive_aborts), (indexed_s, indexed_aborts) = (
        results["naive"],
        results["indexed"],
    )
    return _case(
        "validation",
        {"block_size": block_size, "num_keys": num_keys},
        naive_s,
        indexed_s,
        checks={"aborts_equal": naive_aborts == indexed_aborts},
    )


def bench_rw_edges(block_size: int, num_keys: int, repeats: int, seed: int) -> dict:
    """Intra-block rw-edge extraction (shared by Harmony and RBC)."""
    block = make_block(block_size, num_keys, random.Random(seed))
    naive_index = BlockDependencyIndex(block, indexed=False)
    fast_index = BlockDependencyIndex(block, indexed=True)
    naive_s = _time(lambda: list(naive_index.rw_edges()), repeats)
    indexed_s = _time(lambda: list(fast_index.rw_edges()), repeats)
    equal = list(naive_index.rw_edges()) == list(fast_index.rw_edges())
    return _case(
        "rw_edges",
        {"block_size": block_size, "num_keys": num_keys},
        naive_s,
        indexed_s,
        checks={"edges_equal": equal},
    )


def bench_reachability(block_size: int, num_keys: int, repeats: int, seed: int) -> dict:
    """Committed-block records + transitive closure (Rule 3 inputs)."""
    block = make_block(block_size, num_keys, random.Random(seed))
    HarmonyValidator().validate(block)
    _commit_survivors(block)
    naive_s = _time(lambda: HarmonyValidator.records_for(block, indexed=False), repeats)
    indexed_s = _time(lambda: HarmonyValidator.records_for(block, indexed=True), repeats)
    equal = (
        HarmonyValidator.records_for(block, indexed=False).reachable
        == HarmonyValidator.records_for(block, indexed=True).reachable
    )
    return _case(
        "records_reachability",
        {"block_size": block_size, "num_keys": num_keys},
        naive_s,
        indexed_s,
        checks={"closures_equal": equal},
    )


def bench_mvstore_load(num_keys: int, repeats: int, seed: int) -> dict:
    """Bulk-load of the key directory (workload populate)."""
    rng = random.Random(seed)
    order = list(range(num_keys))
    rng.shuffle(order)
    items = {_key(i): i for i in order}

    stores = [MVStore() for _ in range(repeats)]
    it = iter(stores)
    indexed_s = _time(lambda: next(it).load(items), repeats)

    extrapolated = num_keys > NAIVE_LOAD_CAP
    if extrapolated:
        sample_n = NAIVE_LOAD_CAP
        sample_items = {k: items[k] for k in list(items)[:sample_n]}
        sampled = _time(lambda: naive_load(MVStore(), sample_items), 1)
        naive_s = sampled * (num_keys / sample_n) ** 2  # insort is O(n²)
    else:
        naive_stores = [MVStore() for _ in range(repeats)]
        nit = iter(naive_stores)
        naive_s = _time(lambda: naive_load(next(nit), items), repeats)

    reference = MVStore()
    naive_load(reference, items)
    checks = {
        "sorted_keys_equal": stores[0]._sorted_keys == reference._sorted_keys,
        "state_hash_equal": stores[0].state_hash() == reference.state_hash_full(),
    }
    case = _case(
        "mvstore_load", {"num_keys": num_keys}, naive_s, indexed_s, checks=checks
    )
    case["naive_extrapolated"] = extrapolated
    return case


def bench_snapshot_scan(num_keys: int, repeats: int, seed: int) -> dict:
    """Full-range snapshot scan over a multi-version store."""
    rng = random.Random(seed)
    store = MVStore()
    store.load({_key(i): i for i in range(num_keys)})
    for block_id in range(8):  # grow some chains so snapshots matter
        writes = [(_key(rng.randrange(num_keys)), rng.randrange(1000)) for _ in range(num_keys // 20)]
        store.apply_block(block_id, writes)
    view = store.snapshot(4)
    lo, hi = _key(0), _key(num_keys)
    naive_s = _time(lambda: naive_scan(view, lo, hi), repeats)
    indexed_s = _time(lambda: list(view.scan(lo, hi)), repeats)
    equal = naive_scan(view, lo, hi) == list(view.scan(lo, hi))
    return _case(
        "snapshot_scan",
        {"num_keys": num_keys},
        naive_s,
        indexed_s,
        checks={"rows_equal": equal},
    )


def bench_overlay_scan(num_keys: int, repeats: int, seed: int) -> dict:
    """Serial-execution overlay scan (base snapshot + in-block writes)."""
    rng = random.Random(seed)
    store = MVStore()
    store.load({_key(i): i for i in range(num_keys)})
    overlay = OverlayView(store.latest_snapshot(), block_id=0)
    for _ in range(max(16, num_keys // 100)):
        overlay.put(_key(rng.randrange(num_keys)), rng.randrange(1000))
    lo, hi = _key(0), _key(num_keys)
    naive_s = _time(lambda: list(overlay._scan_dict_merge(lo, hi)), repeats)
    indexed_s = _time(lambda: list(overlay.scan(lo, hi)), repeats)
    equal = list(overlay._scan_dict_merge(lo, hi)) == list(overlay.scan(lo, hi))
    return _case(
        "overlay_scan",
        {"num_keys": num_keys},
        naive_s,
        indexed_s,
        checks={"rows_equal": equal},
    )


def bench_aria_range_check(
    block_size: int, num_keys: int, repeats: int, seed: int
) -> dict:
    """Aria's range-read RAW probe against the write-reservation table."""
    rng = random.Random(seed)
    block = make_block(block_size, num_keys, rng, range_read_prob=1.0)
    for txn in block:
        txn.read_set.clear()  # the executor's point checks ran already
    reservations: dict = {}
    for txn in block:
        for key in txn.write_set:
            reservations.setdefault(key, txn.tid)
    naive_s = _time(lambda: _aria_range_raw_flags(block, reservations, False), repeats)
    indexed_s = _time(lambda: _aria_range_raw_flags(block, reservations, True), repeats)
    equal = _aria_range_raw_flags(block, reservations, False) == _aria_range_raw_flags(
        block, reservations, True
    )
    return _case(
        "aria_range_check",
        {"block_size": block_size, "num_keys": num_keys},
        naive_s,
        indexed_s,
        checks={"flags_equal": equal},
    )


def bench_state_hash(num_keys: int, num_blocks: int, repeats: int, seed: int) -> dict:
    """Per-block state-hash refresh (incremental vs full recompute)."""
    rng = random.Random(seed)
    store = MVStore()
    store.load({_key(i): i for i in range(num_keys)})
    store.state_hash()  # settle the accumulator before timing
    blocks = [
        [(_key(rng.randrange(num_keys)), rng.randrange(1000)) for _ in range(32)]
        for _ in range(num_blocks)
    ]

    def incremental():
        for block_id, writes in enumerate(blocks, store.last_committed_block + 1):
            store.apply_block(block_id, writes)
            store.state_hash()

    def full():
        for block_id, writes in enumerate(blocks, store.last_committed_block + 1):
            store.apply_block(block_id, writes)
            store.state_hash_full()

    naive_s = _time(full, 1)
    indexed_s = _time(incremental, 1)
    equal = store.state_hash() == store.state_hash_full()
    return _case(
        "state_hash",
        {"num_keys": num_keys, "num_blocks": num_blocks},
        naive_s,
        indexed_s,
        checks={"hashes_equal": equal},
    )


def bench_oracle_build_graph(
    num_blocks: int, block_size: int, num_keys: int, repeats: int, seed: int
) -> dict:
    """History-oracle graph build over a multi-block committed history.

    The naive path re-scans every write chain per range read on every
    ``build_graph`` call; the indexed path stabs a sorted chain-key
    directory and memoizes the per-key chain edges across calls (the
    per-block ``is_serializable`` usage pattern).
    """
    from repro.core.reordering import KeyApply
    from repro.dcc.oracle import HistoryOracle

    rng = random.Random(seed)
    oracles = {"naive": HistoryOracle(indexed=False), "indexed": HistoryOracle()}
    tid = 0
    for block_id in range(num_blocks):
        txns = make_block(block_size, num_keys, rng, first_tid=tid, block_id=block_id)
        tid += len(txns)
        HarmonyValidator().validate(txns)
        _commit_survivors(txns)
        chains: dict = {}
        for txn in sorted(txns, key=lambda t: (t.min_out, t.tid)):
            if txn.committed:
                for key in txn.write_set:
                    chains.setdefault(key, []).append(txn.tid)
        applies = [
            KeyApply(key=key, updater_tids=tids, handler_tid=tids[0])
            for key, tids in chains.items()
        ]
        for oracle in oracles.values():
            oracle.record_block(
                block_id, txns, applies, snapshot_block_id=block_id - 1
            )

    naive_s = _time(oracles["naive"].build_graph, repeats)
    indexed_s = _time(oracles["indexed"].build_graph, repeats)
    equal = oracles["naive"].build_graph() == oracles["indexed"].build_graph()
    return _case(
        "oracle_build_graph",
        {"num_blocks": num_blocks, "block_size": block_size, "num_keys": num_keys},
        naive_s,
        indexed_s,
        checks={"adjacency_equal": equal},
    )


def bench_materialize(num_keys: int, num_blocks: int, repeats: int, seed: int) -> dict:
    """Checkpoint materialization (latest and at-snapshot) of a large store."""
    rng = random.Random(seed)
    store = MVStore()
    store.load({_key(i): i for i in range(num_keys)})
    from repro.storage.mvstore import TOMBSTONE

    for block_id in range(num_blocks):
        writes = []
        for _ in range(num_keys // 20):
            roll = rng.random()
            value = TOMBSTONE if roll < 0.05 else (None if roll < 0.1 else rng.randrange(1000))
            writes.append((_key(rng.randrange(num_keys)), value))
        store.apply_block(block_id, writes)
    mid = num_blocks // 2

    def run(indexed: bool):
        return store.materialize(indexed=indexed), store.materialize_at(
            mid, indexed=indexed
        )

    naive_s = _time(lambda: run(False), repeats)
    indexed_s = _time(lambda: run(True), repeats)
    equal = run(False) == run(True)
    return _case(
        "materialize",
        {"num_keys": num_keys, "num_blocks": num_blocks},
        naive_s,
        indexed_s,
        checks={"states_equal": equal},
    )


def bench_reorder_reuse(block_size: int, num_keys: int, repeats: int, seed: int) -> dict:
    """Commit-step reservation-table derivation: rebuild from the block vs
    reuse the validator's per-key updater chains.

    Timed in isolation from the command evaluation / page-cost machinery
    (same lift as the Aria range check); the chains themselves are
    collected inside the validator's index-construction loop
    (``collect_writer_txns=True``), so every ``derive_reservation`` call
    here does the same work the per-block production call does — no
    cross-repeat memoization. Runs on the paper's hotspot shape:
    write-heavy ww contention with disjoint reads, where Harmony's
    reordering commits everything (Figure 14), so the table the naive
    path rebuilds is exactly the chains the validator already extracted.
    The checks also run both variants through the full
    ``apply_write_sets`` and require identical results.
    """
    from repro.core.reordering import apply_write_sets, derive_reservation

    block = make_block(
        block_size,
        num_keys,
        random.Random(seed),
        range_read_prob=0.0,
        writes_per_txn=(6, 10),
    )
    for txn in block:
        txn.read_set.clear()  # ww-only contention: reads don't conflict
    stats = HarmonyValidator().validate(block)
    for txn in block:
        if not txn.aborted:
            txn.mark_committed()

    naive_s = _time(lambda: derive_reservation(block, None), repeats)
    indexed_s = _time(lambda: derive_reservation(block, stats.dep_index), repeats)

    def run(dep_index):
        return apply_write_sets(
            block,
            read_base=lambda key: 0,
            write_cost=lambda key: 1.0,
            dep_index=dep_index,
        )

    naive_result, reuse_result = run(None), run(stats.dep_index)
    checks = {
        "reservations_equal": derive_reservation(block, None)
        == derive_reservation(block, stats.dep_index),
        "writes_equal": naive_result.ordered_writes == reuse_result.ordered_writes,
        "applies_equal": naive_result.key_applies == reuse_result.key_applies,
        "commit_cpu_equal": naive_result.txn_commit_cpu_us
        == reuse_result.txn_commit_cpu_us,
    }
    return _case(
        "reorder_reuse",
        {"block_size": block_size, "num_keys": num_keys},
        naive_s,
        indexed_s,
        checks=checks,
    )


def bench_false_aborts(block_size: int, num_keys: int, repeats: int, seed: int) -> dict:
    """Per-block false-abort accounting: rebuild-per-abortee vs the shared
    committed graph + per-abortee edge overlay."""
    from repro.dcc.oracle import SerializabilityOracle

    block = make_block(block_size, num_keys, random.Random(seed), writes_per_txn=(3, 6))
    HarmonyValidator().validate(block)
    _commit_survivors(block)
    naive_s = _time(
        lambda: SerializabilityOracle.count_false_aborts(block, indexed=False), repeats
    )
    indexed_s = _time(
        lambda: SerializabilityOracle.count_false_aborts(block, indexed=True), repeats
    )
    equal = SerializabilityOracle.count_false_aborts(
        block, indexed=False
    ) == SerializabilityOracle.count_false_aborts(block, indexed=True)
    aborted = sum(1 for t in block if t.aborted)
    return _case(
        "false_aborts",
        {"block_size": block_size, "num_keys": num_keys, "aborted": aborted},
        naive_s,
        indexed_s,
        checks={"counts_equal": equal, "has_aborts": aborted > 0},
    )


def bench_mvstore_gc(num_keys: int, repeats: int, seed: int) -> dict:
    """Version GC of a large, mostly single-version store: watermark walk
    vs the seed's every-chain walk."""
    rng = random.Random(seed)
    hot = [_key(rng.randrange(num_keys)) for _ in range(max(64, num_keys // 100))]

    def build() -> MVStore:
        store = MVStore()
        store.load({_key(i): i for i in range(num_keys)})
        for block_id in range(6):
            store.apply_block(block_id, [(key, block_id) for key in hot])
        return store

    naive_stores = [build() for _ in range(repeats)]
    fast_stores = [build() for _ in range(repeats)]
    nit, fit = iter(naive_stores), iter(fast_stores)
    naive_s = _time(lambda: next(nit).gc(4, indexed=False), repeats)
    indexed_s = _time(lambda: next(fit).gc(4, indexed=True), repeats)

    ref_naive, ref_fast = build(), build()
    checks = {
        "dropped_equal": ref_naive.gc(4, indexed=False) == ref_fast.gc(4, indexed=True),
        "chains_equal": ref_naive._versions == ref_fast._versions,
    }
    return _case("mvstore_gc", {"num_keys": num_keys}, naive_s, indexed_s, checks=checks)


def bench_checkpoint_delta(
    num_keys: int, interval_blocks: int, writes_per_block: int, repeats: int, seed: int
) -> dict:
    """Per-interval durable checkpoint: the seed's full-state deepcopy
    (materialize + materialize_at + deepcopy into the manager — O(keyspace)
    every interval) vs one delta append of the interval's buffered block
    writes (O(interval writes)). The checks prove the folded chain
    reconstructs the full snapshot bit-identically — state content *and*
    key order (recovery derives version tags from dict order), prev_state,
    and the checkpoint block's exact write list — both straight off the
    delta and through a base compaction."""
    from repro.storage.checkpoint import CheckpointManager

    rng = random.Random(seed)
    genesis = {_key(i): i for i in range(num_keys)}
    store = MVStore()
    store.load(genesis)
    interval: list[tuple[int, list]] = []
    for block_id in range(interval_blocks):
        writes = [
            (_key(rng.randrange(num_keys)), rng.randrange(1000))
            for _ in range(writes_per_block)
        ]
        store.apply_block(block_id, writes)
        interval.append((block_id, writes))
    tip = interval_blocks - 1
    meta = {"prev_records": {}}

    def full_checkpoint(mgr: CheckpointManager) -> None:
        mgr.force_checkpoint(
            tip,
            store.materialize(),
            prev_state=store.materialize_at(tip - 1),
            meta=meta,
            block_writes=interval[-1][1],
        )

    def delta_manager(base_interval: int = 4) -> CheckpointManager:
        mgr = CheckpointManager(
            interval_blocks, incremental=True, base_interval=base_interval
        )
        mgr.genesis = genesis
        return mgr

    full_mgrs = [
        CheckpointManager(interval_blocks, incremental=False) for _ in range(repeats)
    ]
    fit = iter(full_mgrs)
    naive_s = _time(lambda: full_checkpoint(next(fit)), repeats)
    delta_mgrs = [delta_manager() for _ in range(repeats)]
    dit = iter(delta_mgrs)
    indexed_s = _time(
        lambda: next(dit).delta_checkpoint(tip, interval, meta=meta), repeats
    )

    reference = CheckpointManager(interval_blocks, incremental=False)
    full_checkpoint(reference)
    ref = reference.latest()
    folded = delta_mgrs[0].latest()
    compacted = delta_manager(base_interval=1)  # compacts on the first delta
    compacted.delta_checkpoint(tip, interval, meta=meta)
    base = compacted.latest()
    checks = {
        "state_equal": folded.state == ref.state,
        "state_order_equal": list(folded.state) == list(ref.state),
        "prev_state_equal": folded.prev_state == ref.prev_state,
        "block_writes_equal": folded.block_writes == ref.block_writes,
        "compacted_base_equal": base.state == ref.state
        and base.prev_state == ref.prev_state,
    }
    if num_keys >= 100_000:
        # the ISSUE 5 acceptance bar, gated only at its stated size where
        # the structural O(keyspace)/O(interval writes) margin (~30x) puts
        # it far outside wall-clock noise; smoke stays equality-only
        checks["speedup_5x"] = indexed_s > 0 and naive_s / indexed_s >= 5.0
    return _case(
        "checkpoint_delta",
        {
            "num_keys": num_keys,
            "interval_blocks": interval_blocks,
            "writes_per_block": writes_per_block,
        },
        naive_s,
        indexed_s,
        checks=checks,
    )


def bench_federated_scan(
    num_keys: int, num_shards: int, limit: int, repeats: int, seed: int
) -> dict:
    """Cross-shard merged range read, consumed up to a limit (the streaming
    shape: a scan feeding a bounded consumer). The naive path materializes
    and re-sorts the whole union before the first row comes out; the lazy
    ``heapq.merge`` pays O(log shards) per row actually consumed. Checks
    pin full-consumption equality too, so the merge order is the sort
    order."""
    from itertools import islice

    from repro.shard.federated import FederatedSnapshot
    from repro.shard.router import ShardRouter

    router = ShardRouter(num_shards, policy="hash")
    parts: list[dict] = [{} for _ in range(num_shards)]
    for i in range(num_keys):
        key = _key(i)
        parts[router.shard_of(key)][key] = i
    stores = []
    for part in parts:
        store = MVStore()
        store.load(part)
        stores.append(store)
    snap = FederatedSnapshot(router, stores, block_id=-1)
    lo, hi = _key(0), _key(num_keys)

    naive_s = _time(
        lambda: list(islice(snap.scan(lo, hi, indexed=False), limit)), repeats
    )
    indexed_s = _time(lambda: list(islice(snap.scan(lo, hi), limit)), repeats)
    checks = {
        "rows_equal": list(snap.scan(lo, hi, indexed=False))
        == list(snap.scan(lo, hi)),
        "limit_rows_equal": list(islice(snap.scan(lo, hi, indexed=False), limit))
        == list(islice(snap.scan(lo, hi), limit)),
    }
    return _case(
        "federated_scan",
        {"num_keys": num_keys, "num_shards": num_shards, "limit": limit},
        naive_s,
        indexed_s,
        checks=checks,
    )


def bench_shard_scaling(smoke: bool, seed: int) -> list[dict]:
    """Shard-scaling scenario: 1/2/4 execution shards over the identical
    low-contention YCSB stream at tunable cross-shard ratios.

    Unlike the differential cases, the two timings here are *simulated*
    wall-clock (deterministic): ``naive_s`` is the 1-shard run's makespan,
    ``indexed_s`` the N-shard run's, and ``speedup`` the aggregate
    committed-transaction throughput ratio. Checks pin the scale-out
    contract: the 1-shard deployment is decision-identical to the
    unsharded :class:`~repro.chain.system.OEBlockchain` (same seed, same
    stream), every ledger and certificate chain verifies, and the 4-shard
    low-cross case must reach at least 2x the 1-shard throughput.
    """
    from repro.chain.system import OEBlockchain, OEConfig
    from repro.shard.system import ShardConfig, ShardedBlockchain
    from repro.workloads.base import ShardAffinity
    from repro.workloads.ycsb import YCSBWorkload

    num_blocks = 8 if smoke else 12
    block_size = 60 if smoke else 100
    run_seed = seed % 100_000

    def make_workload(cross: float) -> YCSBWorkload:
        # data layout fixed at 4 partitions so every deployment size sees
        # the identical transaction stream
        return YCSBWorkload(
            num_keys=10_000, theta=0.1, affinity=ShardAffinity(4, cross)
        )

    def sharded(num_shards: int, cross: float):
        config = ShardConfig(
            system="harmony",
            block_size=block_size,
            num_blocks=num_blocks,
            seed=run_seed,
            num_shards=num_shards,
        )
        chain = ShardedBlockchain(config, make_workload(cross))
        start = time.perf_counter()
        metrics = chain.run()
        return metrics, time.perf_counter() - start

    oe_metrics = OEBlockchain(
        OEConfig(
            system="harmony",
            block_size=block_size,
            num_blocks=num_blocks,
            seed=run_seed,
        ),
        make_workload(0.05),
    ).run()

    cases = []
    for cross in (0.05,) if smoke else (0.05, 0.3):
        base, base_wall = sharded(1, cross)
        identity_checks = {}
        if cross == 0.05:
            identity_checks = {
                "decisions_match_unsharded": base.extra["decision_digest"]
                == oe_metrics.extra["decision_digest"],
                "state_matches_unsharded": base.extra["state_hash"]
                == oe_metrics.extra["state_hash"],
            }
        for num_shards in (2, 4):
            metrics, wall = sharded(num_shards, cross)
            ratio = metrics.throughput_tps / base.throughput_tps
            checks = {
                "ledgers_ok": metrics.extra["ledger_ok"],
                "certificates_ok": metrics.extra["certificates_ok"],
                "has_cross_shard_txns": metrics.extra["cross_shard_txns"] > 0,
                # the honest fail-fast wire for scaling collapse (this
                # case's "speedup" is a throughput ratio, so the generic
                # naive-regression scan skips it — see regressed_cases)
                "scales_past_baseline": ratio >= 1.0,
                **(identity_checks if num_shards == 2 else {}),
            }
            if num_shards == 4 and cross == 0.05:
                # the scale-out acceptance bar
                checks["throughput_2x"] = ratio >= 2.0
            cases.append(
                {
                    "case": "shard_scaling",
                    "params": {
                        "shards": num_shards,
                        "cross_ratio": cross,
                        "block_size": block_size,
                        "num_blocks": num_blocks,
                    },
                    # the headline timings are deterministic *simulated*
                    # makespans; --compare treats a simulated collapse as
                    # real (no perf_counter noise to guard against). The
                    # measured wall clock of the same runs rides along.
                    "basis": "simulated",
                    "speedup_kind": "throughput",
                    "naive_s": round(base.sim_time_us / 1e6, 6),
                    "indexed_s": round(metrics.sim_time_us / 1e6, 6),
                    "naive_wall_s": round(base_wall, 6),
                    "indexed_wall_s": round(wall, 6),
                    "speedup": round(ratio, 2),
                    "committed": metrics.committed,
                    "cross_shard_txns": metrics.extra["cross_shard_txns"],
                    "checks": checks,
                }
            )
    return cases


def bench_tpcc_sharded(smoke: bool, seed: int) -> list[dict]:
    """TPC-C scale-out scenario: warehouse-aligned shards over the identical
    multi-warehouse stream at tunable cross-shard ratios (remote-warehouse
    payments and remote stock lines become genuine 2PC traffic).

    Same accounting as ``shard_scaling`` (simulated basis,
    ``speedup_kind="throughput"``): the 1-shard deployment must be
    decision- and state-identical to the unsharded
    :class:`~repro.chain.system.OEBlockchain` on the same stream, every
    N-shard deployment must certify its ledgers and carry cross-shard
    transactions, and the 4-shard low-cross case must beat the 1-shard
    throughput by >= 1.5x.
    """
    from repro.chain.system import OEBlockchain, OEConfig
    from repro.shard.system import ShardConfig, ShardedBlockchain
    from repro.workloads import make_workload
    from repro.workloads.base import ShardAffinity

    num_blocks = 6 if smoke else 10
    block_size = 24 if smoke else 40
    run_seed = seed % 100_000

    def workload(cross: float):
        # warehouse layout fixed at 4 partitions so every deployment size
        # replays the identical spec stream
        return make_workload(
            "tpcc", num_warehouses=8, affinity=ShardAffinity(4, cross)
        )

    def sharded(num_shards: int, cross: float):
        config = ShardConfig(
            system="harmony",
            block_size=block_size,
            num_blocks=num_blocks,
            seed=run_seed,
            num_shards=num_shards,
        )
        chain = ShardedBlockchain(config, workload(cross))
        start = time.perf_counter()
        metrics = chain.run()
        return metrics, time.perf_counter() - start

    oe_metrics = OEBlockchain(
        OEConfig(
            system="harmony",
            block_size=block_size,
            num_blocks=num_blocks,
            seed=run_seed,
        ),
        workload(0.1),
    ).run()

    cases = []
    for cross in (0.1,) if smoke else (0.1, 0.5):
        base, base_wall = sharded(1, cross)
        identity_checks = {}
        if cross == 0.1:
            identity_checks = {
                "decisions_match_unsharded": base.extra["decision_digest"]
                == oe_metrics.extra["decision_digest"],
                "state_matches_unsharded": base.extra["state_hash"]
                == oe_metrics.extra["state_hash"],
            }
        for num_shards in (2, 4):
            metrics, wall = sharded(num_shards, cross)
            ratio = metrics.throughput_tps / base.throughput_tps
            checks = {
                "ledgers_ok": metrics.extra["ledger_ok"],
                "certificates_ok": metrics.extra["certificates_ok"],
                "has_cross_shard_txns": metrics.extra["cross_shard_txns"] > 0,
                "scales_past_baseline": ratio >= 1.0,
                **(identity_checks if num_shards == 2 else {}),
            }
            if num_shards == 4 and cross == 0.1:
                checks["throughput_1_5x"] = ratio >= 1.5
            cases.append(
                {
                    "case": "tpcc_sharded",
                    "params": {
                        "shards": num_shards,
                        "cross_ratio": cross,
                        "warehouses": 8,
                        "block_size": block_size,
                        "num_blocks": num_blocks,
                    },
                    "basis": "simulated",
                    "speedup_kind": "throughput",
                    "naive_s": round(base.sim_time_us / 1e6, 6),
                    "indexed_s": round(metrics.sim_time_us / 1e6, 6),
                    "naive_wall_s": round(base_wall, 6),
                    "indexed_wall_s": round(wall, 6),
                    "speedup": round(ratio, 2),
                    "committed": metrics.committed,
                    "cross_shard_txns": metrics.extra["cross_shard_txns"],
                    "checks": checks,
                }
            )
    return cases


def bench_adversarial_contention(block_size: int, repeats: int, seed: int) -> dict:
    """Harmony validation differential on the adversarial hot-counter shape.

    Unlike ``bench_validation``'s synthetic Zipf blocks, the read/write
    sets here come from actually simulating :class:`ContentionWorkload`
    transactions (fused adds + separated read-modify-writes piled on a
    handful of counters) — the block shape the reordering and
    dangerous-structure machinery sees at its worst. Naive and indexed
    validators must agree on the abort set, and the contention must
    actually bite (some transactions abort).
    """
    from repro.execution import simulate_transactions
    from repro.sim.rng import SeededRng
    from repro.workloads import make_workload

    workload = make_workload(
        "adv-counter", num_keys=512, hot_keys=6, hot_ratio=0.7, ops_per_txn=8
    )
    registry = workload.build_registry()
    store = MVStore()
    store.load(workload.initial_state())
    rng = SeededRng(seed, "bench/adv-counter")

    def build(first_tid: int, block_id: int) -> list[Txn]:
        txns = [
            Txn(tid=first_tid + i, block_id=block_id, spec=spec)
            for i, spec in enumerate(workload.generate_block(block_size, rng))
        ]
        simulate_transactions(txns, store.latest_snapshot(), registry)
        return txns

    prev = build(0, 0)
    HarmonyValidator().validate(prev)
    records = HarmonyValidator.records_for(_commit_survivors(prev))
    block = build(block_size, 1)

    results = {}
    for label, indexed in (("naive", False), ("indexed", True)):
        validator = HarmonyValidator(inter_block=True, indexed=indexed)
        clones = [clone_txns(block) for _ in range(repeats)]
        it = iter(clones)
        results[label] = (
            _time(lambda: validator.validate(next(it), records), repeats),
            validator.validate(clone_txns(block), records).aborted_tids,
        )
    (naive_s, naive_aborts), (indexed_s, indexed_aborts) = (
        results["naive"],
        results["indexed"],
    )
    return _case(
        "adversarial_contention",
        {"block_size": block_size, "num_keys": 512, "hot_keys": 6},
        naive_s,
        indexed_s,
        checks={
            "aborts_equal": naive_aborts == indexed_aborts,
            "contention_bites": len(indexed_aborts) > 0,
        },
    )


def bench_parallel_prepare(smoke: bool, seed: int) -> dict:
    """Wall-clock gate for the process-pool prepare backend (the tentpole).

    The identical 4-shard low-cross Harmony stream runs twice: once with
    ``backend="serial"`` (every prepare in-process — the differential
    reference) and once with ``backend="process"`` + the inter-block
    pipelined driver. Identity checks pin decisions, state hashes and the
    certificate head bit-equal; the >=2x wall-clock gate arms only on
    machines with >= 4 usable cores (``gate_skipped`` records the reason
    elsewhere — a 1-core box pays IPC overhead for no parallelism, which
    is not a regression of the code under test).
    """
    from repro.parallel.backend import available_cores
    from repro.shard.system import ShardConfig, ShardedBlockchain
    from repro.workloads.base import ShardAffinity
    from repro.workloads.ycsb import YCSBWorkload

    num_blocks = 6 if smoke else 10
    block_size = 60 if smoke else 100
    run_seed = seed % 100_000

    def run(backend: str, pipelined: bool):
        config = ShardConfig(
            system="harmony",
            block_size=block_size,
            num_blocks=num_blocks,
            seed=run_seed,
            num_shards=4,
            backend=backend,
            pipelined=pipelined,
        )
        workload = YCSBWorkload(
            num_keys=10_000, theta=0.1, affinity=ShardAffinity(4, 0.05)
        )
        chain = ShardedBlockchain(config, workload)
        start = time.perf_counter()
        metrics = chain.run()
        wall = time.perf_counter() - start
        chain.close_backend()
        return metrics, wall

    serial_metrics, serial_wall = run("serial", False)
    process_metrics, process_wall = run("process", True)

    cores = available_cores()
    gated = cores >= 4
    checks = {
        "decisions_identical": serial_metrics.extra["decision_digest"]
        == process_metrics.extra["decision_digest"],
        "state_identical": serial_metrics.extra["state_hash"]
        == process_metrics.extra["state_hash"],
        "cert_head_identical": serial_metrics.extra["cert_head"]
        == process_metrics.extra["cert_head"],
        "ledgers_ok": process_metrics.extra["ledger_ok"],
        "certificates_ok": process_metrics.extra["certificates_ok"],
        "process_backend_used": process_metrics.extra["backend"] == "process",
    }
    gate_skipped = None
    if gated:
        # the tentpole acceptance bar: real parallelism must halve wall time
        checks["wall_speedup_2x"] = serial_wall / process_wall >= 2.0
    else:
        gate_skipped = (
            f"{cores} usable core(s) < 4 — wall gate needs real parallelism"
        )
    case = {
        "case": "parallel_prepare",
        "params": {
            "shards": 4,
            "cross_ratio": 0.05,
            "block_size": block_size,
            "num_blocks": num_blocks,
        },
        "basis": "wall",
        "speedup_kind": "wall",
        "cores": cores,
        "naive_s": round(serial_wall, 6),
        "indexed_s": round(process_wall, 6),
        "naive_sim_s": round(serial_metrics.sim_time_us / 1e6, 6),
        "indexed_sim_s": round(process_metrics.sim_time_us / 1e6, 6),
        "speedup": round(serial_wall / process_wall, 2)
        if process_wall > 0
        else float("inf"),
        "checks": checks,
    }
    if gate_skipped:
        case["gate_skipped"] = gate_skipped
    return case


def bench_pipelined_replay(smoke: bool, seed: int) -> dict:
    """Wall-clock case for pipelined replica replay (recovery fan-out).

    A serially-built 4-shard chain is replayed twice from its sub-ledgers
    plus certificate stream: the seed's strictly-serial loop vs
    :func:`repro.parallel.replay.replay_group` (process-pool prepares,
    commit of block *i−1* overlapped with prepare of block *i*). Both
    replays must land bit-identical on the live group's combined state
    hash; the wall gate arms only with >= 4 usable cores.
    """
    from repro.parallel.backend import available_cores
    from repro.parallel.replay import replay_group, replay_group_serial
    from repro.shard.system import ShardConfig, ShardedBlockchain
    from repro.workloads.base import ShardAffinity
    from repro.workloads.ycsb import YCSBWorkload

    num_blocks = 6 if smoke else 10
    block_size = 60 if smoke else 100
    run_seed = seed % 100_000
    config = ShardConfig(
        system="harmony",
        block_size=block_size,
        num_blocks=num_blocks,
        seed=run_seed,
        num_shards=4,
    )
    workload = YCSBWorkload(num_keys=10_000, theta=0.1, affinity=ShardAffinity(4, 0.05))
    chain = ShardedBlockchain(config, workload)
    chain.run()

    start = time.perf_counter()
    serial_replica = replay_group_serial(chain)
    serial_wall = time.perf_counter() - start

    # the live run stays on the serial reference path; only the replay
    # under test gets the process backend
    chain.config.backend = "process"
    start = time.perf_counter()
    parallel_replica = replay_group(chain, pipelined=True)
    parallel_wall = time.perf_counter() - start

    live_hash = chain.group.combined_state_hash()
    cores = available_cores()
    gated = cores >= 4
    checks = {
        "serial_replay_matches_live": serial_replica.combined_state_hash()
        == live_hash,
        "parallel_replay_matches_live": parallel_replica.combined_state_hash()
        == live_hash,
        "ledgers_ok": parallel_replica.ledgers_ok(),
    }
    gate_skipped = None
    if gated:
        checks["wall_speedup"] = serial_wall / parallel_wall >= 1.2
    else:
        gate_skipped = (
            f"{cores} usable core(s) < 4 — wall gate needs real parallelism"
        )
    case = {
        "case": "pipelined_replay",
        "params": {
            "shards": 4,
            "block_size": block_size,
            "num_blocks": num_blocks,
        },
        "basis": "wall",
        "speedup_kind": "wall",
        "cores": cores,
        "naive_s": round(serial_wall, 6),
        "indexed_s": round(parallel_wall, 6),
        "speedup": round(serial_wall / parallel_wall, 2)
        if parallel_wall > 0
        else float("inf"),
        "checks": checks,
    }
    if gate_skipped:
        case["gate_skipped"] = gate_skipped
    return case


def bench_obs_overhead(smoke: bool, seed: int) -> dict:
    """Overhead gate for the tracing/metrics subsystem.

    The identical 2-shard Harmony YCSB stream runs untraced (the hooks at
    their ``None`` defaults) and traced (:func:`repro.obs.trace.attach_tracer`
    arms every emission site). Identity checks pin decisions, state and the
    certificate head bit-equal — tracing observes, never perturbs — and the
    wall gate requires the traced run to stay within 5% of the untraced one
    (best-of-``repeats`` walls on both sides to damp scheduler noise).

    ``speedup_kind="overhead"``: the reported "speedup" is the
    traced/untraced wall ratio, expected ~1.0 — ``regressed_cases``'s
    ``speedup < 1.0`` rule does not apply (a ratio under 1.0 just means the
    traced run won the coin flip).
    """
    from repro.obs.trace import Tracer, attach_tracer
    from repro.shard.system import ShardConfig, ShardedBlockchain
    from repro.workloads.base import ShardAffinity
    from repro.workloads.ycsb import YCSBWorkload

    num_blocks = 6 if smoke else 10
    block_size = 60 if smoke else 100
    run_seed = seed % 100_000
    repeats = 2 if smoke else 3

    def run(traced: bool):
        best_wall = None
        metrics = tracer = None
        for _ in range(repeats):
            config = ShardConfig(
                system="harmony",
                block_size=block_size,
                num_blocks=num_blocks,
                seed=run_seed,
                num_shards=2,
            )
            workload = YCSBWorkload(
                num_keys=10_000, theta=0.1, affinity=ShardAffinity(2, 0.05)
            )
            chain = ShardedBlockchain(config, workload)
            tracer = Tracer() if traced else None
            if tracer is not None:
                attach_tracer(chain, tracer)
            start = time.perf_counter()
            metrics = chain.run()
            wall = time.perf_counter() - start
            chain.close_backend()
            best_wall = wall if best_wall is None else min(best_wall, wall)
        return metrics, tracer, best_wall

    run(False)  # discarded warmup: imports, allocator, branch caches
    base_metrics, _, base_wall = run(False)
    traced_metrics, tracer, traced_wall = run(True)

    ratio = traced_wall / base_wall if base_wall > 0 else float("inf")
    checks = {
        "decisions_identical": base_metrics.extra["decision_digest"]
        == traced_metrics.extra["decision_digest"],
        "state_identical": base_metrics.extra["state_hash"]
        == traced_metrics.extra["state_hash"],
        "cert_head_identical": base_metrics.extra["cert_head"]
        == traced_metrics.extra["cert_head"],
        "spans_recorded": len(tracer.spans) > 0,
        "overhead_under_5pct": ratio <= 1.05,
    }
    return {
        "case": "obs_overhead",
        "params": {
            "shards": 2,
            "block_size": block_size,
            "num_blocks": num_blocks,
        },
        "basis": "wall",
        "speedup_kind": "overhead",
        "naive_s": round(traced_wall, 6),
        "indexed_s": round(base_wall, 6),
        "speedup": round(ratio, 2),
        "spans": len(tracer.spans),
        "checks": checks,
    }


def bench_adaptive_skew(smoke: bool, seed: int) -> dict:
    """Adaptive-sharding scenario: deterministic live re-keying vs static
    hash routing under the migrating-Zipf ``adv-skewshift`` stream.

    At 4 shards with hash routing, a high-theta shifting hotspot scatters
    every transaction's footprint across the fleet — nearly every
    transaction pays 2PC and the hot shard's lane dominates the makespan
    (the scaling collapse adaptive sharding exists to fix). The identical
    stream then runs with ``rebalance="adaptive"``: the policy watches
    the decision-layer telemetry, colocates the hot key set, and the
    certified :class:`~repro.shard.rebalance.MigrationRecord` stream
    re-keys ownership mid-run.

    Same accounting as ``shard_scaling`` (simulated basis,
    ``speedup_kind="throughput"``). The acceptance bar: the adaptive run
    must hold at least 2x the static throughput, certify its ledgers and
    chain, fire at least one migration, and a fresh replica replaying
    (sub-blocks + certificates, migrations included) must reach the
    identical combined state hash.
    """
    from repro.shard.system import ShardConfig, ShardedBlockchain
    from repro.workloads import make_workload

    # deliberately NOT scaled down in smoke mode: the gate needs enough
    # blocks past warmup for the policy to track the hotspot (~0.5s total)
    num_blocks, block_size = 12, 80
    run_seed = seed % 100_000

    def run(rebalance: str):
        workload = make_workload(
            "adv-skewshift",
            num_keys=200,
            theta=1.3,
            shift_period=96,
            ops_per_txn=4,
            fused_ratio=0.9,
        )
        config = ShardConfig(
            system="harmony",
            block_size=block_size,
            num_blocks=num_blocks,
            seed=run_seed,
            num_shards=4,
            router_policy="hash",
            rebalance=rebalance,
            rebalance_check_interval=2,
            rebalance_warmup_blocks=2,
            rebalance_cooldown_blocks=2,
            rebalance_skew_threshold=1.5,
            rebalance_cross_threshold=0.3,
            rebalance_max_keys=128,
        )
        chain = ShardedBlockchain(config, workload)
        start = time.perf_counter()
        metrics = chain.run()
        wall = time.perf_counter() - start
        replica_ok = chain.consistency_check()
        chain.close_backend()
        return metrics, wall, replica_ok

    static, static_wall, static_replica_ok = run("off")
    adaptive, wall, replica_ok = run("adaptive")
    ratio = adaptive.throughput_tps / static.throughput_tps
    checks = {
        "ledgers_ok": adaptive.extra["ledger_ok"],
        "certificates_ok": adaptive.extra["certificates_ok"],
        "static_ledgers_ok": static.extra["ledger_ok"],
        "migrated": adaptive.extra["migrations"] >= 1,
        "cross_shard_reduced": adaptive.extra["cross_shard_txns"]
        < static.extra["cross_shard_txns"],
        # the acceptance bar: live re-keying recovers >= 2x of the
        # throughput static hash routing loses to the shifting hotspot
        "adaptive_holds_2x": ratio >= 2.0,
        # migrations replay: a fresh replica rebuilt from sub-blocks +
        # certificates (MigrationRecords included) matches bit-for-bit
        "replica_replay_identical": replica_ok,
        "static_replica_identical": static_replica_ok,
    }
    return {
        "case": "adaptive_skew",
        "params": {
            "shards": 4,
            "router_policy": "hash",
            "block_size": block_size,
            "num_blocks": num_blocks,
            "theta": 1.3,
        },
        "basis": "simulated",
        "speedup_kind": "throughput",
        "naive_s": round(static.sim_time_us / 1e6, 6),
        "indexed_s": round(adaptive.sim_time_us / 1e6, 6),
        "naive_wall_s": round(static_wall, 6),
        "indexed_wall_s": round(wall, 6),
        "speedup": round(ratio, 2),
        "committed": adaptive.committed,
        "static_committed": static.committed,
        "migrations": adaptive.extra["migrations"],
        "ownership_epoch": adaptive.extra["ownership_epoch"],
        "cross_shard_txns": adaptive.extra["cross_shard_txns"],
        "static_cross_shard_txns": static.extra["cross_shard_txns"],
        "checks": checks,
    }


def bench_scan_footprints(smoke: bool, seed: int) -> dict:
    """Range-read footprint routing vs the endpoint/broadcast reference.

    ``adv-scan`` with ``wide_scan_ratio`` emits scans that deliberately
    cross partition bounds — the shape where endpoint routing under-covers
    and the pre-footprint router had to broadcast. With
    ``scan_footprints`` the router compiles each spec's
    :class:`~repro.workloads.base.ScanFootprint` (point keys + exact
    index-space ranges) into the true participant set; with it off, the
    same specs fall back to ``spec_keys`` (``None`` for wide scans —
    broadcast). Both runs must be decision- and state-identical (a spare
    participant only ever votes commit on an empty footprint), and the
    footprint run must shrink the summed participant sets and not lose
    throughput.
    """
    from repro.shard.router import ShardRouter
    from repro.shard.system import ShardConfig, ShardedBlockchain
    from repro.sim.rng import SeededRng
    from repro.workloads import make_workload

    num_blocks, block_size = 10, 40
    run_seed = seed % 100_000

    def workload():
        return make_workload(
            "adv-scan", num_keys=240, wide_scan_ratio=0.5, wide_span=48
        )

    def run(footprints: bool):
        config = ShardConfig(
            system="harmony",
            block_size=block_size,
            num_blocks=num_blocks,
            seed=run_seed,
            num_shards=4,
            scan_footprints=footprints,
        )
        chain = ShardedBlockchain(config, workload())
        start = time.perf_counter()
        metrics = chain.run()
        wall = time.perf_counter() - start
        chain.close_backend()
        return metrics, wall

    broadcast, broadcast_wall = run(False)
    footprint, wall = run(True)

    # participant-set accounting on the identical stream, straight off the
    # router (the decision layer's exact computation, no chain in the way)
    stream_workload = workload()
    rng = SeededRng(run_seed)
    router = ShardRouter.for_workload(stream_workload, 4)
    specs = [
        spec
        for _ in range(num_blocks)
        for spec in stream_workload.generate_block(block_size, rng)
    ]
    footprint_sum = sum(
        len(router.route_spec(stream_workload, s)[0]) for s in specs
    )
    router.use_footprints = False
    broadcast_sum = sum(
        len(router.route_spec(stream_workload, s)[0]) for s in specs
    )

    ratio = footprint.throughput_tps / broadcast.throughput_tps
    checks = {
        "ledgers_ok": footprint.extra["ledger_ok"],
        "certificates_ok": footprint.extra["certificates_ok"],
        "decisions_identical": footprint.extra["decision_digest"]
        == broadcast.extra["decision_digest"],
        "state_identical": footprint.extra["state_hash"]
        == broadcast.extra["state_hash"],
        "participants_shrink": footprint_sum < broadcast_sum,
        "no_throughput_loss": ratio >= 1.0,
    }
    return {
        "case": "scan_footprints",
        "params": {
            "shards": 4,
            "block_size": block_size,
            "num_blocks": num_blocks,
            "wide_scan_ratio": 0.5,
        },
        "basis": "simulated",
        "speedup_kind": "throughput",
        "naive_s": round(broadcast.sim_time_us / 1e6, 6),
        "indexed_s": round(footprint.sim_time_us / 1e6, 6),
        "naive_wall_s": round(broadcast_wall, 6),
        "indexed_wall_s": round(wall, 6),
        "speedup": round(ratio, 2),
        "participants_footprint": footprint_sum,
        "participants_broadcast": broadcast_sum,
        "participant_shrink": round(broadcast_sum / footprint_sum, 2)
        if footprint_sum
        else float("inf"),
        "checks": checks,
    }


def _case(name: str, params: dict, naive_s: float, indexed_s: float, checks: dict) -> dict:
    return {
        "case": name,
        "params": params,
        # micro-cases time real code with perf_counter: their basis is wall
        # clock, and --compare's noise guard applies (see compare_last_runs)
        "basis": "wall",
        "naive_s": round(naive_s, 6),
        "indexed_s": round(indexed_s, 6),
        "speedup": round(naive_s / indexed_s, 2) if indexed_s > 0 else float("inf"),
        "checks": checks,
    }


# ----------------------------------------------------------------- driver
def run_perf(smoke: bool = False, out_path: str | None = None) -> dict:
    """Run every case, verify differential equality, persist the record."""
    seed = 20230604  # SIGMOD'23 — stable across runs so inputs are identical
    repeats = 2 if smoke else 3
    block_sizes = (25, 100) if smoke else (25, 100, 400)
    scan_keys = 20_000 if smoke else 200_000
    load_sizes = (20_000,) if smoke else (100_000, 1_000_000)

    cases: list[dict] = []
    for block_size in block_sizes:
        num_keys = max(2_000, block_size * 50)
        cases.append(bench_validation(block_size, num_keys, repeats, seed))
        cases.append(bench_rw_edges(block_size, num_keys, repeats, seed + 1))
        cases.append(bench_reachability(block_size, num_keys, repeats, seed + 2))
        cases.append(bench_aria_range_check(block_size, num_keys, repeats, seed + 3))
        cases.append(bench_reorder_reuse(block_size, num_keys, repeats, seed + 8))
    for num_keys in load_sizes:
        cases.append(bench_mvstore_load(num_keys, max(1, repeats - 1), seed + 4))
    cases.append(bench_snapshot_scan(scan_keys, repeats, seed + 5))
    cases.append(bench_overlay_scan(scan_keys, repeats, seed + 6))
    cases.append(bench_state_hash(10_000 if smoke else 50_000, 20, repeats, seed + 7))
    if smoke:
        cases.append(bench_oracle_build_graph(4, 50, 2_500, repeats, seed + 9))
        cases.append(bench_materialize(20_000, 6, repeats, seed + 10))
        cases.append(bench_false_aborts(100, 900, repeats, seed + 11))
        cases.append(bench_mvstore_gc(50_000, repeats, seed + 12))
        cases.append(bench_checkpoint_delta(20_000, 10, 200, repeats, seed + 13))
        cases.append(bench_federated_scan(20_000, 4, 1_024, repeats, seed + 14))
    else:
        cases.append(bench_oracle_build_graph(6, 200, 10_000, repeats, seed + 9))
        cases.append(bench_materialize(scan_keys, 8, repeats, seed + 10))
        cases.append(bench_false_aborts(300, 3_000, repeats, seed + 11))
        cases.append(bench_mvstore_gc(scan_keys, repeats, seed + 12))
        cases.append(bench_checkpoint_delta(100_000, 10, 500, repeats, seed + 13))
        cases.append(bench_federated_scan(scan_keys, 4, 2_048, repeats, seed + 14))
    cases.extend(bench_shard_scaling(smoke, seed))
    cases.append(bench_parallel_prepare(smoke, seed + 15))
    cases.append(bench_pipelined_replay(smoke, seed + 16))
    cases.extend(bench_tpcc_sharded(smoke, seed + 17))
    cases.append(bench_adversarial_contention(60 if smoke else 150, repeats, seed + 18))
    cases.append(bench_obs_overhead(smoke, seed + 19))
    cases.append(bench_adaptive_skew(smoke, seed + 20))
    cases.append(bench_scan_footprints(smoke, seed + 21))

    run = {
        "bench": "perf",
        "mode": "smoke" if smoke else "full",
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": sys.version.split()[0],
        "cases": cases,
        "all_checks_pass": all(
            all(case["checks"].values()) for case in cases
        ),
    }
    _persist(run, out_path)
    return run


def regressed_cases(run: dict) -> list[str]:
    """Cases whose indexed path is no faster than the naive baseline.

    Backs ``python -m repro.bench --perf[-smoke] --check``: a hot path
    whose ``speedup`` fell below 1.0 has regressed to (or past) the seed's
    naive implementation, which should fail fast in CI-style use. Excluded:

    - ``speedup_kind="throughput"`` cases (``shard_scaling``) — their
      "speedup" is an N-shard throughput ratio, not a naive-vs-indexed
      differential; their gating lives in the ``scales_past_baseline`` /
      ``throughput_2x`` checks;
    - ``speedup_kind="overhead"`` cases (``obs_overhead``) — their ratio is
      expected ~1.0 and gated by ``overhead_under_5pct``, not by the
      faster-than-naive rule;
    - cases whose wall gate is skipped (``gate_skipped`` set — e.g. the
      process-backend cases on a <4-core machine, where IPC overhead
      without parallelism is expected, not a regression). Their identity
      checks still count toward ``all_checks_pass``.
    """
    return [
        f"{case['case']}({','.join(f'{k}={v}' for k, v in case['params'].items())})"
        f" speedup={case['speedup']}"
        for case in run["cases"]
        if case["speedup"] < 1.0
        and case["case"] != "shard_scaling"
        and case.get("speedup_kind") not in ("throughput", "overhead")
        and not case.get("gate_skipped")
    ]


def compare_last_runs(
    history: list[dict],
    collapse: float = 0.2,
    floor_s: float = 0.0005,
    window: int = 3,
) -> tuple[list[str], list[str]]:
    """Diff the newest same-mode runs against the trajectory before them,
    per ``(case, params)``.

    Backs ``python -m repro.bench --compare`` — the mechanical form of the
    ROADMAP's "compare your run's speedups against the previous entries"
    step. Returns ``(report_lines, regressions)``: a case whose ``speedup``
    fell by more than ``collapse`` (default 20%) has collapsed, which exits
    non-zero in CLI use.

    The comparison is **basis-aware**:

    - ``basis="wall"`` cases (perf_counter timings) compare the **median**
      over the newest ``k = min(window, runs-1)`` same-mode runs against
      the median over up to ``window`` same-mode runs before that — a
      single noisy run on a shared machine can neither flag nor mask a
      collapse, while a persistent regression is flagged as soon as it
      dominates the newest window. With only two runs on record this
      degenerates to the strict run-vs-run diff. A wall collapse only
      counts as a regression when the *indexed* median itself also rose
      past the threshold — micro-cases sit at tens of microseconds, where
      the naive reference speeding up between runs is routine noise; what
      the gate protects is the production path's wall time, not the
      ratio's denominator — and by more than ``floor_s`` in absolute
      terms, because below ~half a millisecond best-of-N ``perf_counter``
      deltas cannot distinguish regression from scheduler jitter (every
      micro-case re-runs at larger sizes where the floor bites).
    - ``basis="simulated"`` cases (shard_scaling) carry deterministic
      model timings — any run-over-run collapse there is a real
      behavioural change, so they stay strict single-run diffs with no
      noise guard.

    Cases whose wall gate was skipped (``gate_skipped`` — process-backend
    cases on a <4-core machine) are never regressions: their wall ratio
    measures IPC overhead on hardware the gate explicitly excludes.
    Same-mode runs only, so smoke and full trajectories never
    cross-contaminate; cases present in just one run (or younger than the
    window) are reported but never fail the diff.
    """
    if len(history) < 2:
        return ["need at least two runs in the trajectory to compare"], []
    newest = history[-1]
    same_mode = [r for r in history if r.get("mode") == newest.get("mode")]
    if len(same_mode) < 2:
        return [f"no earlier mode={newest.get('mode')!r} run to compare against"], []

    def keyed(run: dict) -> dict:
        return {
            (c["case"], json.dumps(c["params"], sort_keys=True)): c
            for c in run.get("cases", [])
        }

    k = min(window, len(same_mode) - 1)
    keyed_runs = [keyed(r) for r in same_mode]
    recent_keyed, older_keyed = keyed_runs[-k:], keyed_runs[:-k]
    prev, prev_cases = same_mode[-2], keyed_runs[-2]
    newest_cases = keyed_runs[-1]

    def median_of(runs: list[dict], key, field: str):
        vals = [
            r[key][field]
            for r in runs
            if key in r and r[key].get(field) is not None
        ]
        return statistics.median(vals) if vals else None

    lines = [
        f"comparing {newest['mode']} run {newest.get('created_utc', '?')} "
        f"against {prev.get('created_utc', '?')}"
        + (f" (wall basis: medians over {k}-run windows)" if k > 1 else "")
    ]
    regressions: list[str] = []
    for key, case in prev_cases.items():
        if key not in newest_cases:
            params = ",".join(f"{k_}={v}" for k_, v in case["params"].items())
            lines.append(f"  GONE      {case['case']}({params}) — dropped from the run")
    for key, case in newest_cases.items():
        params = ",".join(f"{k_}={v}" for k_, v in case["params"].items())
        label = f"{case['case']}({params})"
        old = prev_cases.get(key)
        if old is None:
            lines.append(f"  NEW       {label} speedup={case['speedup']}")
            continue
        wall = case.get("basis", "wall") == "wall"
        if wall:
            ref_keyed = [r for r in older_keyed if key in r][-window:]
            if not ref_keyed:
                # the case is younger than the comparison window: nothing
                # stable to collapse against yet
                lines.append(f"  NEW       {label} speedup={case['speedup']}")
                continue
            new_speedup = median_of(recent_keyed, key, "speedup")
            old_speedup = median_of(ref_keyed, key, "speedup")
            new_indexed = median_of(recent_keyed, key, "indexed_s")
            old_indexed = median_of(ref_keyed, key, "indexed_s")
        else:
            new_speedup, old_speedup = case["speedup"], old["speedup"]
            new_indexed, old_indexed = case.get("indexed_s"), old.get("indexed_s")
        ratio = new_speedup / old_speedup if old_speedup else float("inf")
        collapsed = ratio < 1.0 - collapse
        if collapsed and case.get("gate_skipped"):
            collapsed = False
        elif collapsed and wall and new_indexed is not None and old_indexed is not None:
            collapsed = old_indexed <= 0 or (
                new_indexed / old_indexed > 1.0 + collapse
                and new_indexed - old_indexed > floor_s
            )
        flag = "COLLAPSED" if collapsed else " " * 9
        lines.append(
            f"  {flag} {label} speedup {old_speedup} -> {new_speedup}"
            f" ({ratio:.2f}x)"
        )
        if collapsed:
            regressions.append(
                f"{label} speedup {old_speedup} -> {new_speedup},"
                f" indexed_s {old_indexed} -> {new_indexed}"
            )
    return lines, regressions


def _persist(run: dict, out_path: str | None) -> str:
    path = out_path or os.environ.get("REPRO_BENCH_OUT") or DEFAULT_OUT
    history: list[dict] = []
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as fh:
                existing = json.load(fh)
            history = existing.get("runs", []) if isinstance(existing, dict) else []
        except (OSError, ValueError):
            history = []
    history.append(run)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"schema": 1, "runs": history}, fh, indent=2)
        fh.write("\n")
    return path


def render_perf(run: dict) -> str:
    lines = [
        f"perf trajectory run — mode={run['mode']}  "
        f"checks={'PASS' if run['all_checks_pass'] else 'FAIL'}",
        f"{'case':<22}{'params':<34}{'naive_s':>10}{'indexed_s':>11}{'speedup':>9}",
    ]
    for case in run["cases"]:
        params = ",".join(f"{k}={v}" for k, v in case["params"].items())
        star = "*" if case.get("naive_extrapolated") else ""
        lines.append(
            f"{case['case']:<22}{params:<34}{case['naive_s']:>10.4f}"
            f"{case['indexed_s']:>11.4f}{case['speedup']:>8.1f}x{star}"
        )
    if any(c.get("naive_extrapolated") for c in run["cases"]):
        lines.append("  (* naive timing extrapolated quadratically from "
                     f"{NAIVE_LOAD_CAP:,} keys)")
    return "\n".join(lines)
