"""Benchmark harness: one experiment per table/figure of the evaluation.

Each ``figureN()`` / ``table3()`` function in
:mod:`repro.bench.experiments` regenerates the corresponding artifact of
Section 5 and returns an :class:`~repro.bench.report.ExperimentResult`
whose rows mirror the paper's series. ``repro.bench.report.render`` prints
them as aligned tables.

Scale: experiments default to a laptop-friendly size (fewer blocks than
the paper's minutes-long runs). Set ``REPRO_FULL=1`` for longer runs; the
*shapes* — who wins, by what factor, where knees fall — are stable across
scales. EXPERIMENTS.md records paper-vs-measured values.

Hot-path micro-benchmarks live in :mod:`repro.bench.perf`
(``python -m repro.bench --perf`` / ``--perf-smoke``); they time the
indexed fast paths against the retained naive implementations and append
the results to the ``BENCH_perf.json`` trajectory.
"""

from repro.bench.config import BenchScale, current_scale
from repro.bench.report import ExperimentResult, render

__all__ = ["BenchScale", "ExperimentResult", "current_scale", "render"]
