"""Multi-core block-pipeline scheduler.

This module answers the question "given per-transaction simulated durations,
how long does a stream of blocks take on a C-core replica?" for the three
execution disciplines the paper compares:

- fully parallel simulation + **parallel commit** (Harmony, Aria);
- fully parallel simulation + **serial validation/commit** (RBC, Fabric);
- with or without **inter-block parallelism** (Section 3.4): block *i*'s
  simulation may start as soon as its required snapshot (block *i−2*) is
  committed and a core is free, instead of waiting for block *i−1* to
  fully finish.

The scheduler is a deterministic greedy list scheduler over a shared pool of
core free-times. It never influences commit/abort decisions — those are made
by the protocol layer before timing is computed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field


@dataclass
class BlockTiming:
    """Timing inputs for one block.

    ``sim_durations`` has one entry per transaction (its simulation-step
    duration, in us). ``commit_durations`` has one entry per commit-step
    task; for parallel-commit protocols these run concurrently, for
    serial-commit protocols they are chained on a single core.
    ``pre_exec_serial_us`` models work that must happen on the critical path
    before simulation starts (e.g. signature verification of the block,
    FastFabric#'s orderer-side graph traversal).
    ``post_commit_serial_us`` models per-block tail work (hash chaining,
    group-commit fsync).
    """

    arrival_us: float
    sim_durations: list[float]
    commit_durations: list[float]
    serial_commit: bool = False
    pre_exec_serial_us: float = 0.0
    post_commit_serial_us: float = 0.0


@dataclass
class PipelineResult:
    """Outcome of scheduling a stream of blocks."""

    commit_finish_us: list[float]
    makespan_us: float
    busy_core_us: float
    num_cores: int
    #: per-block simulation start times (diagnostics / tests)
    sim_start_us: list[float] = field(default_factory=list)

    @property
    def cpu_utilization(self) -> float:
        if self.makespan_us <= 0:
            return 0.0
        return min(1.0, self.busy_core_us / (self.num_cores * self.makespan_us))


def merge_shard_results(results: list[PipelineResult]) -> PipelineResult:
    """Fold per-shard pipeline results into one aggregate timeline.

    Shards run on disjoint core budgets (scale-out: each shard is its own
    replica group), so their lanes overlap in wall-clock time: the global
    block *i* is committed when its slowest shard finishes it, the run's
    makespan is the slowest shard's, busy time and core counts add, and
    utilization follows from the sums. All inputs must cover the same
    number of blocks (every shard processes every global block, empty
    sub-blocks included — that alignment is what makes the per-index max
    meaningful).
    """
    if not results:
        raise ValueError("need at least one shard result")
    num_blocks = len(results[0].commit_finish_us)
    if any(len(r.commit_finish_us) != num_blocks for r in results):
        raise ValueError("shard lanes cover different block counts")
    commit_finish = [
        max(r.commit_finish_us[i] for r in results) for i in range(num_blocks)
    ]
    sim_start = [
        min(r.sim_start_us[i] for r in results) for i in range(num_blocks)
    ] if all(len(r.sim_start_us) == num_blocks for r in results) else []
    return PipelineResult(
        commit_finish_us=commit_finish,
        makespan_us=max(r.makespan_us for r in results),
        busy_core_us=sum(r.busy_core_us for r in results),
        num_cores=sum(r.num_cores for r in results),
        sim_start_us=sim_start,
    )


def replay_lanes(
    timings: list[BlockTiming],
    num_cores: int,
    inter_block: bool,
    snapshot_lag: int = 2,
) -> tuple[PipelineResult, PipelineResult]:
    """Model one recovery replay both ways: strictly serial vs inter-block
    overlapped.

    Replay has no arrival pacing — every block is already durable — so the
    same timings are scheduled once with ``inter_block=False`` (the seed's
    serial replay loop) and once with the executor's actual snapshot lag
    (block *i*'s re-simulation overlapping block *i−1*'s re-commit).
    Returns ``(serial, overlapped)``; the decision stream is identical in
    both, only the modeled makespan differs.
    """
    serial = PipelineSimulator(num_cores=num_cores, inter_block=False).simulate(
        timings
    )
    overlapped = PipelineSimulator(
        num_cores=num_cores, inter_block=inter_block, snapshot_lag=snapshot_lag
    ).simulate(timings)
    return serial, overlapped


class PipelineSimulator:
    """Schedules a stream of blocks on ``num_cores`` cores.

    With ``inter_block=False`` a block's simulation step becomes ready only
    when the previous block has fully committed. With ``inter_block=True``
    it becomes ready when block *i − snapshot_lag* has committed (the
    snapshot it simulates against), so later blocks can absorb idle cores
    left by a straggler. Commit steps always run in block order (Section
    3.4: "Harmony still runs the commit step of block i−1 before the commit
    step of block i to uphold determinism").
    """

    def __init__(
        self,
        num_cores: int,
        inter_block: bool = False,
        snapshot_lag: int = 2,
    ) -> None:
        if num_cores < 1:
            raise ValueError("need at least one core")
        if snapshot_lag < 1:
            raise ValueError("snapshot lag must be >= 1")
        self.num_cores = num_cores
        self.inter_block = inter_block
        self.snapshot_lag = snapshot_lag

    def simulate(self, blocks: list[BlockTiming]) -> PipelineResult:
        cores = [0.0] * self.num_cores
        heapq.heapify(cores)
        busy = 0.0
        commit_finish: list[float] = []
        sim_starts: list[float] = []

        for i, block in enumerate(blocks):
            ready = block.arrival_us
            if self.inter_block:
                dep = i - self.snapshot_lag
            else:
                dep = i - 1
            if dep >= 0:
                ready = max(ready, commit_finish[dep])
            ready += block.pre_exec_serial_us
            busy += block.pre_exec_serial_us

            # --- simulation step: parallel tasks over the shared core pool.
            block_sim_start = ready if block.sim_durations else ready
            sim_finish = ready
            first_start = None
            for dur in block.sim_durations:
                start = max(ready, heapq.heappop(cores))
                finish = start + dur
                heapq.heappush(cores, finish)
                busy += dur
                sim_finish = max(sim_finish, finish)
                if first_start is None or start < first_start:
                    first_start = start
            sim_starts.append(first_start if first_start is not None else block_sim_start)

            # --- commit step: in block order, after the block's simulation.
            commit_ready = sim_finish
            if i > 0:
                commit_ready = max(commit_ready, commit_finish[i - 1])
            if block.serial_commit:
                finish = commit_ready + sum(block.commit_durations)
                busy += sum(block.commit_durations)
            else:
                finish = commit_ready
                for dur in block.commit_durations:
                    start = max(commit_ready, heapq.heappop(cores))
                    end = start + dur
                    heapq.heappush(cores, end)
                    busy += dur
                    finish = max(finish, end)
            finish += block.post_commit_serial_us
            busy += block.post_commit_serial_us
            commit_finish.append(finish)

        makespan = commit_finish[-1] if commit_finish else 0.0
        return PipelineResult(
            commit_finish_us=commit_finish,
            makespan_us=makespan,
            busy_core_us=busy,
            num_cores=self.num_cores,
            sim_start_us=sim_starts,
        )
