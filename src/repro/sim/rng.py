"""Seeded random streams.

Every source of randomness in the repository flows through a
:class:`SeededRng` so that runs are bit-for-bit reproducible. Independent
*streams* (workload generation, endorser staleness, network jitter, ...)
are derived from a root seed and a stream name, so adding a new consumer of
randomness never perturbs existing ones.
"""

from __future__ import annotations

import hashlib
import random


class SeededRng:
    """A named, deterministic random stream derived from a root seed."""

    def __init__(self, seed: int, stream: str = "root") -> None:
        digest = hashlib.sha256(f"{seed}:{stream}".encode()).digest()
        self._seed = seed
        self._stream = stream
        self._random = random.Random(int.from_bytes(digest[:8], "big"))

    @property
    def stream(self) -> str:
        return self._stream

    def derive(self, stream: str) -> "SeededRng":
        """Create an independent child stream."""
        return SeededRng(self._seed, f"{self._stream}/{stream}")

    # Thin pass-throughs: one call site per random primitive we rely on.
    def random(self) -> float:
        return self._random.random()

    def randint(self, a: int, b: int) -> int:
        return self._random.randint(a, b)

    def choice(self, seq):
        return self._random.choice(seq)

    def sample(self, seq, k: int):
        return self._random.sample(seq, k)

    def shuffle(self, seq) -> None:
        self._random.shuffle(seq)

    def uniform(self, a: float, b: float) -> float:
        return self._random.uniform(a, b)

    def expovariate(self, lambd: float) -> float:
        return self._random.expovariate(lambd)
