"""Cost model for the discrete-event simulation.

All costs are expressed in microseconds (us) of simulated time, or bytes for
payload sizes. The constants are calibrated so the *relative* behaviour of
the reproduced systems matches the paper (see EXPERIMENTS.md); they are not
claims about absolute hardware speed.

Three storage profiles reproduce the Figure 21 axis:

- ``SSD`` — the default disk-oriented setting (page I/O dominates).
- ``RAMDISK`` — the same database engine but with near-zero device latency;
  buffer-manager and locking overheads remain.
- ``MEMORY`` — a main-memory engine: no device latency *and* no
  buffer-manager/locking overhead (the "cost of masking I/O latency"
  discussed by Stonebraker et al. and in Section 5.8).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace


class StorageProfile(enum.Enum):
    """Which storage substrate the database layer runs on (Figure 21)."""

    SSD = "ssd"
    RAMDISK = "ramdisk"
    MEMORY = "memory"


@dataclass(frozen=True)
class CostModel:
    """Simulated costs, in microseconds unless stated otherwise.

    The model deliberately stays coarse: the paper's evaluation depends on
    I/O counts, buffer hits, abort waste, serial-vs-parallel commit paths and
    message sizes — all of which are explicit terms here.
    """

    # --- storage device ---
    page_read_us: float = 100.0  # NVMe-SSD-class random page read
    page_write_us: float = 100.0
    fsync_us: float = 400.0  # group-commit flush

    # --- buffer manager / CPU path ---
    dram_access_us: float = 0.2  # buffer-pool hit
    index_lookup_us: float = 1.5  # B-tree/hash probe CPU cost
    latch_us: float = 0.5  # page latch / lock-manager interaction
    op_cpu_us: float = 1.0  # predicate eval, expression, tuple copy
    buffer_admin_us: float = 1.0  # buffer-manager bookkeeping per access

    # --- crypto ---
    hash_us: float = 2.0  # SHA-256 over a transaction/command
    sign_us: float = 60.0  # ECDSA-class signature
    verify_us: float = 120.0  # signature verification

    # --- network ---
    lan_latency_us: float = 150.0  # one-way, same rack / region
    wan_latency_us: float = 75_000.0  # one-way, cross-continent
    bandwidth_mbps: float = 1000.0  # per-NIC uplink (default cluster: 1Gbps)

    # --- transaction ingest ---
    #: per-transaction dispatch cost at the replica (deserialize, route) —
    #: a serial front-end term that is negligible for disk-bound layers but
    #: caps a pure in-memory database layer below the consensus ceiling
    #: (Figures 1 and 21)
    ingest_us: float = 8.0

    # --- logging ---
    log_record_us: float = 0.5  # CPU to format one log record
    logical_log_bytes: int = 64  # a transaction command
    physical_log_bytes: int = 640  # a read-write set / redo-undo record

    def transfer_us(self, nbytes: int) -> float:
        """Serialization delay of ``nbytes`` over this model's bandwidth."""
        bits = nbytes * 8
        return bits / self.bandwidth_mbps  # Mbps == bits per us

    def with_profile(self, profile: StorageProfile) -> "CostModel":
        """Return a copy of this model adjusted to a storage profile."""
        if profile is StorageProfile.SSD:
            return self
        if profile is StorageProfile.RAMDISK:
            return replace(self, page_read_us=1.0, page_write_us=1.0, fsync_us=2.0)
        # MEMORY: no device latency and no buffer-manager masking costs.
        return replace(
            self,
            page_read_us=0.0,
            page_write_us=0.0,
            fsync_us=0.0,
            buffer_admin_us=0.0,
            latch_us=0.1,
            index_lookup_us=0.5,
        )


#: Default model used throughout the benchmarks (the paper's default cluster:
#: SSD storage, 1 Gbps Ethernet).
DEFAULT_COSTS = CostModel()
