"""Result containers shared by the systems and the bench harness."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def percentile(values: list[float], q: float) -> float:
    """Exact nearest-rank percentile: rank ``ceil(q/100 * N)``, 1-indexed.

    ``q`` outside ``[0, 100]`` raises rather than silently clamping; q=0
    is the minimum (the formula's rank-0 corner) and q=100 the maximum.
    An empty sample returns 0.0.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[max(0, min(len(ordered), rank) - 1)]


@dataclass
class BlockStats:
    """Per-block protocol outcome (decision layer, not timing)."""

    block_id: int
    committed: int = 0
    aborted: int = 0
    false_aborts: int = 0
    dangerous_structure_hits: int = 0
    io_reads: int = 0
    io_writes: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0

    @property
    def total(self) -> int:
        return self.committed + self.aborted


@dataclass
class RunMetrics:
    """End-to-end outcome of a system run over many blocks."""

    system: str
    workload: str
    committed: int = 0
    aborted: int = 0
    false_aborts: int = 0
    sim_time_us: float = 0.0
    latencies_us: list[float] = field(default_factory=list)
    cpu_utilization: float = 0.0
    io_reads: int = 0
    io_writes: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0
    dangerous_structure_hits: int = 0
    blocks: int = 0
    extra: dict = field(default_factory=dict)
    #: block ids already folded in — the double-merge guard
    _seen_blocks: set = field(default_factory=set, repr=False, compare=False)

    @property
    def throughput_tps(self) -> float:
        if self.sim_time_us <= 0:
            return 0.0
        return self.committed / (self.sim_time_us / 1e6)

    @property
    def abort_rate(self) -> float:
        total = self.committed + self.aborted
        return self.aborted / total if total else 0.0

    @property
    def false_abort_rate(self) -> float:
        total = self.committed + self.aborted
        return self.false_aborts / total if total else 0.0

    @property
    def mean_latency_ms(self) -> float:
        if not self.latencies_us:
            return 0.0
        return sum(self.latencies_us) / len(self.latencies_us) / 1000.0

    @property
    def p50_latency_ms(self) -> float:
        return percentile(self.latencies_us, 50) / 1000.0

    @property
    def p95_latency_ms(self) -> float:
        return percentile(self.latencies_us, 95) / 1000.0

    @property
    def p99_latency_ms(self) -> float:
        return percentile(self.latencies_us, 99) / 1000.0

    @property
    def p999_latency_ms(self) -> float:
        return percentile(self.latencies_us, 99.9) / 1000.0

    @property
    def dangerous_structure_rate(self) -> float:
        total = self.committed + self.aborted
        return self.dangerous_structure_hits / total if total else 0.0

    def merge_block(self, stats: BlockStats, allow_remerge: bool = False) -> None:
        """Fold one block's outcome into the run totals.

        Every sharded merge path must fold each global block exactly once
        (the merged coordinator view already aggregates the shards), so a
        repeated ``block_id`` raises unless ``allow_remerge`` makes the
        double-count explicit.
        """
        if stats.block_id in self._seen_blocks and not allow_remerge:
            raise ValueError(
                f"block {stats.block_id} already merged into this RunMetrics"
                " (pass allow_remerge=True to double-count deliberately)"
            )
        self._seen_blocks.add(stats.block_id)
        self.committed += stats.committed
        self.aborted += stats.aborted
        self.false_aborts += stats.false_aborts
        self.dangerous_structure_hits += stats.dangerous_structure_hits
        self.io_reads += stats.io_reads
        self.io_writes += stats.io_writes
        self.buffer_hits += stats.buffer_hits
        self.buffer_misses += stats.buffer_misses
        self.blocks += 1
