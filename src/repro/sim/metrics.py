"""Result containers shared by the systems and the bench harness."""

from __future__ import annotations

from dataclasses import dataclass, field


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile; 0 <= q <= 100."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if q <= 0:
        return ordered[0]
    if q >= 100:
        return ordered[-1]
    rank = max(0, min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass
class BlockStats:
    """Per-block protocol outcome (decision layer, not timing)."""

    block_id: int
    committed: int = 0
    aborted: int = 0
    false_aborts: int = 0
    dangerous_structure_hits: int = 0
    io_reads: int = 0
    io_writes: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0

    @property
    def total(self) -> int:
        return self.committed + self.aborted


@dataclass
class RunMetrics:
    """End-to-end outcome of a system run over many blocks."""

    system: str
    workload: str
    committed: int = 0
    aborted: int = 0
    false_aborts: int = 0
    sim_time_us: float = 0.0
    latencies_us: list[float] = field(default_factory=list)
    cpu_utilization: float = 0.0
    io_reads: int = 0
    io_writes: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0
    dangerous_structure_hits: int = 0
    blocks: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def throughput_tps(self) -> float:
        if self.sim_time_us <= 0:
            return 0.0
        return self.committed / (self.sim_time_us / 1e6)

    @property
    def abort_rate(self) -> float:
        total = self.committed + self.aborted
        return self.aborted / total if total else 0.0

    @property
    def false_abort_rate(self) -> float:
        total = self.committed + self.aborted
        return self.false_aborts / total if total else 0.0

    @property
    def mean_latency_ms(self) -> float:
        if not self.latencies_us:
            return 0.0
        return sum(self.latencies_us) / len(self.latencies_us) / 1000.0

    @property
    def p95_latency_ms(self) -> float:
        return percentile(self.latencies_us, 95) / 1000.0

    @property
    def dangerous_structure_rate(self) -> float:
        total = self.committed + self.aborted
        return self.dangerous_structure_hits / total if total else 0.0

    def merge_block(self, stats: BlockStats) -> None:
        self.committed += stats.committed
        self.aborted += stats.aborted
        self.false_aborts += stats.false_aborts
        self.dangerous_structure_hits += stats.dangerous_structure_hits
        self.io_reads += stats.io_reads
        self.io_writes += stats.io_writes
        self.buffer_hits += stats.buffer_hits
        self.buffer_misses += stats.buffer_misses
        self.blocks += 1
