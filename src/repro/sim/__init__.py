"""Deterministic simulation kernel.

This package provides the machinery that turns protocol decisions into
performance numbers without touching real hardware:

- :mod:`repro.sim.costs` — the cost model (disk, CPU, crypto, network) with
  SSD / RAMDisk / in-memory profiles used by Figure 21.
- :mod:`repro.sim.scheduler` — a multi-core list scheduler that computes
  block makespans, pipelining (inter-block parallelism) and CPU utilization.
- :mod:`repro.sim.metrics` — result containers shared by the bench harness.
- :mod:`repro.sim.rng` — seeded random streams so every run is reproducible.

Nothing in here feeds back into commit/abort decisions; determinism of the
protocols is structural (they depend only on TIDs and read/write sets).
"""

from repro.sim.costs import CostModel, StorageProfile
from repro.sim.metrics import BlockStats, RunMetrics
from repro.sim.rng import SeededRng
from repro.sim.scheduler import BlockTiming, PipelineResult, PipelineSimulator

__all__ = [
    "BlockStats",
    "BlockTiming",
    "CostModel",
    "PipelineResult",
    "PipelineSimulator",
    "RunMetrics",
    "SeededRng",
    "StorageProfile",
]
