"""repro — reproduction of "When Private Blockchain Meets Deterministic
Database" (Lai, Liu, Lo; SIGMOD 2023).

The package implements the paper's full stack:

- :mod:`repro.core` — **Harmony**, the deterministic optimistic concurrency
  control protocol (abort-minimizing validation, update reordering and
  coalescence, inter-block parallelism);
- :mod:`repro.dcc` — the baselines it is evaluated against (Aria, RBC,
  Fabric, FastFabric#, serial execution) plus an exact serializability
  oracle;
- :mod:`repro.storage` — a disk-oriented database layer (buffer pool, heap
  files, block-snapshot MVCC, WAL, checkpoints) on a simulated device;
- :mod:`repro.consensus` — pluggable Kafka-style and HotStuff-BFT
  consensus/network models;
- :mod:`repro.chain` — the assembled blockchains: HarmonyBC, AriaBC, RBC
  (Order-Execute) and Fabric / FastFabric# (Simulate-Order-Validate);
- :mod:`repro.sql` — a small SQL subset whose UPDATE plans yield the update
  commands Harmony reorders and coalesces;
- :mod:`repro.workloads` — YCSB, Smallbank, TPC-C and the hotspot variant;
- :mod:`repro.bench` — one experiment per table/figure of the evaluation.

Quickstart::

    from repro import HarmonyExecutor, StorageEngine, ProcedureRegistry
    # see examples/quickstart.py for a complete walk-through
"""

from repro.core.harmony import HarmonyConfig, HarmonyExecutor
from repro.execution import BlockExecution, DCCExecutor
from repro.sim.costs import CostModel, StorageProfile
from repro.storage.engine import StorageEngine
from repro.txn.procedures import ProcedureRegistry
from repro.txn.transaction import Txn, TxnSpec, TxnStatus

__version__ = "1.0.0"

__all__ = [
    "BlockExecution",
    "CostModel",
    "DCCExecutor",
    "HarmonyConfig",
    "HarmonyExecutor",
    "ProcedureRegistry",
    "StorageEngine",
    "StorageProfile",
    "Txn",
    "TxnSpec",
    "TxnStatus",
    "__version__",
]
