"""Transactions, update commands and stored procedures.

Transactions are Python callables (*stored procedures* — the blockchain's
smart contracts, Section 4) executed against a block snapshot by a
:class:`~repro.txn.context.SimulationContext` that records the read set
(keys + versions), range reads (for phantom handling) and the write set.

Crucially, writes are recorded as **update commands** (``add``, ``mul``,
``set`` and field-level variants) rather than evaluated values — the
representation that makes Harmony's update reordering and coalescence
(Section 3.3) possible.
"""

from repro.txn.commands import (
    AddFields,
    AddValue,
    Compose,
    DeleteValue,
    MulValue,
    SetFields,
    SetValue,
    UpdateCommand,
    coalesce,
)
from repro.txn.context import SimulationContext
from repro.txn.procedures import ProcedureRegistry
from repro.txn.transaction import AbortReason, Txn, TxnSpec, TxnStatus

__all__ = [
    "AbortReason",
    "AddFields",
    "AddValue",
    "Compose",
    "DeleteValue",
    "MulValue",
    "ProcedureRegistry",
    "SetFields",
    "SetValue",
    "SimulationContext",
    "Txn",
    "TxnSpec",
    "TxnStatus",
    "UpdateCommand",
    "coalesce",
]
