"""Stored-procedure registry.

Procedures are plain Python callables ``fn(ctx, **params)`` — smart
contracts with arbitrary control flow, including branches that predicate on
query results. Nothing in the system performs static analysis on them
(the defining constraint motivating optimistic DCC; Section 2.2).
"""

from __future__ import annotations

from typing import Callable

from repro.txn.context import SimulationContext

Procedure = Callable[..., object]


class ProcedureRegistry:
    """Name -> procedure mapping installed on every replica."""

    def __init__(self) -> None:
        self._procedures: dict[str, Procedure] = {}

    def register(self, name: str) -> Callable[[Procedure], Procedure]:
        """Decorator: ``@registry.register("pay")``."""

        def decorator(fn: Procedure) -> Procedure:
            if name in self._procedures:
                raise ValueError(f"procedure {name!r} already registered")
            self._procedures[name] = fn
            return fn

        return decorator

    def add(self, name: str, fn: Procedure) -> None:
        self.register(name)(fn)

    def get(self, name: str) -> Procedure:
        try:
            return self._procedures[name]
        except KeyError:
            raise KeyError(f"unknown procedure {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._procedures

    def names(self) -> list[str]:
        return sorted(self._procedures)

    def execute(self, ctx: SimulationContext) -> object:
        """Run the context's transaction procedure to completion."""
        fn = self.get(ctx.txn.spec.proc)
        return fn(ctx, **ctx.txn.spec.param_dict)
