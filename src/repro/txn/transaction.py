"""Transaction runtime records.

A :class:`TxnSpec` is what clients submit and the ordering service ships —
just a procedure name and parameters (the OE architecture ships commands,
not read-write sets; Section 2.1.2). A :class:`Txn` is the per-replica
runtime record produced by the simulation step: read/write sets, the
``min_out`` / ``max_in`` counters of Algorithm 1, and the commit outcome.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.txn.commands import UpdateCommand, coalesce


class TxnStatus(enum.Enum):
    PENDING = "pending"
    COMMITTED = "committed"
    ABORTED = "aborted"


class AbortReason(enum.Enum):
    """Why a protocol aborted a transaction (diagnostics + Figure 13)."""

    BACKWARD_DANGEROUS_STRUCTURE = "backward-dangerous-structure"  # Harmony Rule 1
    INTER_BLOCK_STRUCTURE = "inter-block-structure"  # Harmony Rule 3(ii)
    WAW = "waw"  # Aria / RBC write-write conflict
    RAW = "raw"  # Aria read-after-write conflict
    STALE_READ = "stale-read"  # Fabric version check
    SSI_DANGEROUS_STRUCTURE = "ssi-dangerous-structure"  # RBC
    GRAPH_CYCLE = "graph-cycle"  # FastFabric# orderer
    GRAPH_OVERFLOW = "graph-overflow"  # FastFabric# drops txns on big graphs
    ENDORSEMENT_MISMATCH = "endorsement-mismatch"  # SOV divergent rw-sets
    EXECUTION_ERROR = "execution-error"
    CROSS_SHARD_ABORT = "cross-shard-abort"  # 2PC veto by another shard
    MIGRATION_FENCE = "migration-fence"  # key in flight at a re-key boundary


@dataclass(frozen=True)
class TxnSpec:
    """A client transaction: procedure name + parameters (a command)."""

    proc: str
    params: tuple = ()

    @property
    def param_dict(self) -> dict:
        return dict(self.params)


@dataclass
class Txn:
    """Per-replica runtime state of one transaction in one block."""

    tid: int
    block_id: int
    spec: TxnSpec

    #: key -> version read (None when the key was absent).
    read_set: dict = field(default_factory=dict)
    #: half-open ranges [(start, end)] registered by scans (phantom guard).
    read_ranges: list = field(default_factory=list)
    #: key -> ordered update commands recorded during simulation.
    write_set: dict = field(default_factory=dict)
    #: keys in first-update order (Algorithm 2's ``updated_keys``).
    updated_keys: list = field(default_factory=list)

    output: object = None
    status: TxnStatus = TxnStatus.PENDING
    abort_reason: AbortReason | None = None
    sim_cost_us: float = 0.0
    commit_cost_us: float = 0.0

    # Algorithm 1 counters; initialised by the validator.
    min_out: int = 0
    max_in: int = 0

    @property
    def committed(self) -> bool:
        return self.status is TxnStatus.COMMITTED

    @property
    def aborted(self) -> bool:
        return self.status is TxnStatus.ABORTED

    def record_update(self, key: object, command: UpdateCommand) -> None:
        """Append an update command (corner case 2: repeated updates to one
        key coalesce immediately, so each key holds one effective command)."""
        existing = self.write_set.get(key)
        if existing is None:
            self.write_set[key] = command
            self.updated_keys.append(key)
        else:
            self.write_set[key] = coalesce([existing, command])

    def reads(self, key: object) -> bool:
        if key in self.read_set:
            return True
        return any(start <= key < end for start, end in self.read_ranges)

    def mark_committed(self) -> None:
        self.status = TxnStatus.COMMITTED
        self.abort_reason = None

    def mark_aborted(self, reason: AbortReason) -> None:
        self.status = TxnStatus.ABORTED
        self.abort_reason = reason

    def reset_for_retry(self) -> None:
        """Clear execution state (a fresh simulation in a later block)."""
        self.read_set.clear()
        self.read_ranges.clear()
        self.write_set.clear()
        self.updated_keys.clear()
        self.output = None
        self.status = TxnStatus.PENDING
        self.abort_reason = None
        self.sim_cost_us = 0.0
        self.commit_cost_us = 0.0
