"""The update-command algebra (Section 3.3).

Harmony keeps *commands* (e.g. ``add(x, 10)``) in write sets instead of
evaluated values (e.g. ``x = 20``). During commit, the commands on each key
are reordered by Rule 2 and **coalesced** into a single physical update, so
many transactions updating a hotspot cost one index lookup / lock / page
write instead of N (Figure 5).

A command is *read-modify-write* (``reads_value``) when its result depends
on the value it is applied to — those induce wr-dependencies when ordered
after another update (Theorem 1 case 2). Blind commands (``set``,
``delete``) do not.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from repro.storage.mvstore import TOMBSTONE


class UpdateCommand:
    """Base class; subclasses are immutable value objects."""

    #: True when the command reads the value it overwrites (RMW).
    reads_value: bool = True

    def apply(self, old: object) -> object:
        raise NotImplementedError

    def merge_after(self, earlier: "UpdateCommand") -> "UpdateCommand | None":
        """If ``earlier; self`` simplifies to one primitive command, return
        it; otherwise ``None`` (callers fall back to :class:`Compose`)."""
        return None


@dataclass(frozen=True)
class SetValue(UpdateCommand):
    """Blind write: ``x = value``."""

    value: object
    reads_value = False

    def apply(self, old: object) -> object:
        return self.value

    def merge_after(self, earlier: UpdateCommand) -> UpdateCommand:
        return self  # a blind write annihilates whatever came before


@dataclass(frozen=True)
class DeleteValue(UpdateCommand):
    """Blind delete: install a tombstone."""

    reads_value = False

    def apply(self, old: object) -> object:
        return TOMBSTONE

    def merge_after(self, earlier: UpdateCommand) -> UpdateCommand:
        return self


@dataclass(frozen=True)
class AddValue(UpdateCommand):
    """Scalar RMW: ``x = x + delta``."""

    delta: float

    def apply(self, old: object) -> object:
        if old is None or old is TOMBSTONE:
            raise KeyError("add() on a missing value")
        return old + self.delta

    def merge_after(self, earlier: UpdateCommand) -> UpdateCommand | None:
        if isinstance(earlier, AddValue):
            return AddValue(earlier.delta + self.delta)
        if isinstance(earlier, SetValue):
            return SetValue(self.apply(earlier.value))
        return None


@dataclass(frozen=True)
class MulValue(UpdateCommand):
    """Scalar RMW: ``x = x * factor``."""

    factor: float

    def apply(self, old: object) -> object:
        if old is None or old is TOMBSTONE:
            raise KeyError("mul() on a missing value")
        return old * self.factor

    def merge_after(self, earlier: UpdateCommand) -> UpdateCommand | None:
        if isinstance(earlier, MulValue):
            return MulValue(earlier.factor * self.factor)
        if isinstance(earlier, SetValue):
            return SetValue(self.apply(earlier.value))
        return None


def _frozen_items(mapping: dict) -> tuple:
    return tuple(sorted(mapping.items()))


@dataclass(frozen=True)
class SetFields(UpdateCommand):
    """Record RMW: overwrite some fields, keep the rest."""

    updates: tuple = ()

    @staticmethod
    def of(**updates: object) -> "SetFields":
        return SetFields(_frozen_items(updates))

    def apply(self, old: object) -> object:
        if old is None or old is TOMBSTONE:
            raise KeyError("set_fields() on a missing record")
        if not isinstance(old, dict):
            raise TypeError("set_fields() on a non-record value")
        new = dict(old)
        new.update(self.updates)
        return new

    def merge_after(self, earlier: UpdateCommand) -> UpdateCommand | None:
        if isinstance(earlier, SetFields):
            merged = dict(earlier.updates)
            merged.update(self.updates)
            return SetFields(_frozen_items(merged))
        if isinstance(earlier, SetValue) and isinstance(earlier.value, dict):
            return SetValue(self.apply(earlier.value))
        return None


@dataclass(frozen=True)
class AddFields(UpdateCommand):
    """Record RMW: add deltas to numeric fields."""

    deltas: tuple = ()

    @staticmethod
    def of(**deltas: float) -> "AddFields":
        return AddFields(_frozen_items(deltas))

    def apply(self, old: object) -> object:
        if old is None or old is TOMBSTONE:
            raise KeyError("add_fields() on a missing record")
        if not isinstance(old, dict):
            raise TypeError("add_fields() on a non-record value")
        new = dict(old)
        for name, delta in self.deltas:
            new[name] = new.get(name, 0) + delta
        return new

    def merge_after(self, earlier: UpdateCommand) -> UpdateCommand | None:
        if isinstance(earlier, AddFields):
            merged = dict(earlier.deltas)
            for name, delta in self.deltas:
                merged[name] = merged.get(name, 0) + delta
            return AddFields(_frozen_items(merged))
        if isinstance(earlier, SetValue) and isinstance(earlier.value, dict):
            return SetValue(self.apply(earlier.value))
        if isinstance(earlier, SetFields):
            # set then add: fields present in the set are computable now.
            set_map = dict(earlier.updates)
            leftover = {}
            for name, delta in self.deltas:
                if name in set_map:
                    set_map[name] = set_map[name] + delta
                else:
                    leftover[name] = delta
            if not leftover:
                return SetFields(_frozen_items(set_map))
        return None


@dataclass(frozen=True)
class Compose(UpdateCommand):
    """Sequential composition: apply ``commands`` left to right."""

    commands: tuple = dc_field(default=())

    @property
    def reads_value(self) -> bool:  # type: ignore[override]
        return self.commands[0].reads_value if self.commands else False

    def apply(self, old: object) -> object:
        value = old
        for command in self.commands:
            value = command.apply(value)
        return value


def apply_safely(command: UpdateCommand, base: object) -> object:
    """Apply a command; a missing/mistyped base makes it a no-op.

    Mirrors SQL semantics: an UPDATE whose row vanished (e.g. deleted by the
    previous block under inter-block parallelism) matches zero rows.
    """
    try:
        return command.apply(base)
    except (KeyError, TypeError):
        return base


def coalesce(commands: list[UpdateCommand]) -> UpdateCommand:
    """Fold an ordered command list into one command (Figure 5b).

    Adjacent commands are merged when an algebraic simplification exists
    (``add∘add``, blind-write annihilation, ...); otherwise the result is a
    :class:`Compose`, which still yields a *single* physical plan — one
    index lookup, one latch, one page write.
    """
    if not commands:
        raise ValueError("cannot coalesce an empty command list")
    parts: list[UpdateCommand] = []
    for command in commands:
        if isinstance(command, Compose):
            pending = list(command.commands)
        else:
            pending = [command]
        for piece in pending:
            if not piece.reads_value:
                parts.clear()  # blind write: everything before it is dead
                parts.append(piece)
                continue
            if parts:
                merged = piece.merge_after(parts[-1])
                if merged is not None:
                    parts[-1] = merged
                    continue
            parts.append(piece)
    if len(parts) == 1:
        return parts[0]
    return Compose(tuple(parts))
