"""Simulation-step execution context.

Runs a stored procedure against a block snapshot (Table 2c), recording the
read set (key + version), range reads and update commands. Costs of every
access are charged to the transaction through the storage engine, so I/O
behaviour (buffer hits vs page misses) shapes the transaction's simulated
duration.

Corner case (1) of Section 3.3.2 is handled here: a read of a key the
transaction itself updated evaluates the pending command against the
snapshot value (the command may thus be evaluated twice — once here, once
after reordering — but Rule 2 guarantees both evaluations agree).
"""

from __future__ import annotations

from repro.storage.engine import StorageEngine
from repro.storage.mvstore import SnapshotView
from repro.txn.commands import (
    AddFields,
    AddValue,
    DeleteValue,
    MulValue,
    SetFields,
    SetValue,
    UpdateCommand,
)
from repro.txn.transaction import Txn


class SimulationContext:
    """The API stored procedures program against (the smart-contract ABI)."""

    def __init__(
        self,
        txn: Txn,
        snapshot: SnapshotView,
        engine: StorageEngine | None = None,
    ) -> None:
        self.txn = txn
        self.snapshot = snapshot
        self._engine = engine
        self.cost_us = 0.0

    # --------------------------------------------------------------- costs
    def charge(self, us: float) -> None:
        self.cost_us += us

    def _charge_read(self, key: object) -> None:
        if self._engine is not None:
            self.charge(self._engine.read_cost(key))

    def _charge_cpu(self) -> None:
        if self._engine is not None:
            self.charge(self._engine.costs.op_cpu_us)

    # --------------------------------------------------------------- reads
    def read(self, key: object) -> object | None:
        """Snapshot read; returns ``None`` for absent keys."""
        value, version = self.snapshot.get(key)
        if key not in self.txn.read_set:
            self.txn.read_set[key] = version
        self._charge_read(key)
        pending = self.txn.write_set.get(key)
        if pending is not None:
            value = self._evaluate_own(pending, value)
        return value

    def _evaluate_own(self, command: UpdateCommand, snapshot_value: object) -> object:
        from repro.storage.mvstore import TOMBSTONE

        result = command.apply(snapshot_value)
        self._charge_cpu()
        return None if result is TOMBSTONE else result

    def scan(self, start: object, end: object) -> list[tuple[object, object]]:
        """Range read [start, end); registers the range for phantom checks."""
        rows = list(self.snapshot.scan(start, end))
        self.txn.read_ranges.append((start, end))
        for key, _value in rows:
            if key not in self.txn.read_set:
                value, version = self.snapshot.get(key)
                self.txn.read_set[key] = version
        if self._engine is not None:
            self.charge(self._engine.scan_cost(max(1, len(rows))))
        # Apply own pending writes over the scanned window.
        merged: dict[object, object] = dict(rows)
        for key, command in self.txn.write_set.items():
            if start <= key < end:
                base = merged.get(key)
                if base is None:
                    base, _ = self.snapshot.get(key)
                try:
                    merged[key] = self._evaluate_own(command, base)
                except (KeyError, TypeError):
                    continue
        return sorted(
            ((k, v) for k, v in merged.items() if v is not None),
            key=lambda kv: kv[0],
        )

    # -------------------------------------------------------------- writes
    def update(self, key: object, command: UpdateCommand) -> None:
        """Record an update command without evaluating it (Section 3.3.1)."""
        self.txn.record_update(key, command)
        self._charge_cpu()

    def add(self, key: object, delta: float) -> None:
        self.update(key, AddValue(delta))

    def mul(self, key: object, factor: float) -> None:
        self.update(key, MulValue(factor))

    def write(self, key: object, value: object) -> None:
        self.update(key, SetValue(value))

    def insert(self, key: object, value: object) -> None:
        self.update(key, SetValue(value))

    def delete(self, key: object) -> None:
        self.update(key, DeleteValue())

    def set_fields(self, key: object, **updates: object) -> None:
        self.update(key, SetFields.of(**updates))

    def add_fields(self, key: object, **deltas: float) -> None:
        self.update(key, AddFields.of(**deltas))

    # ------------------------------------------------------------- helpers
    def read_for_update(self, key: object) -> object | None:
        """Read that documents intent to update; identical bookkeeping to
        :meth:`read` — the rw-dependency is what validation consumes."""
        return self.read(key)
