"""Shared interval machinery for range-read bookkeeping.

Every layer that reasons about predicate reads — intra-block dependency
extraction, Rule-3 inter-block folding, Aria's reservation checks, overlay
scans — needs the same two queries over half-open ranges ``[start, end)``:

- *stabbing*: which registered ranges cover a given key
  (:class:`RangeIndex`), and
- *slicing*: which keys of a set fall inside a given range
  (:class:`SortedKeys`).

The seed answered both with linear scans guarded by the copy-pasted
``try: start <= key < end except TypeError`` predicate, making the block
pipeline's hot loops quadratic in block size × range readers. This module
centralizes the predicate (:func:`covers`) and provides log-time indexes
built on sorted boundaries.

Fallback semantics: keys that cannot be compared with a boundary are
treated as *not covered* — exactly what the naive predicate's
``TypeError -> False`` did. When a whole key/boundary population is
unsortable (heterogeneous types), the indexes degrade to the naive linear
scan, so behaviour is preserved bit-for-bit.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable


def covers(start: object, end: object, key: object) -> bool:
    """The canonical half-open range predicate: ``start <= key < end``.

    Incomparable keys are not covered (mirrors the historical per-call-site
    ``try/except TypeError`` guards).
    """
    try:
        return start <= key < end
    except TypeError:
        return False


class SortedKeys:
    """A sorted, de-duplicated key set answering ``[start, end)`` slices.

    Build once — O(n log n) — then each :meth:`in_range` query costs
    O(log n + hits) instead of a full scan. Unsortable populations fall
    back to a linear :func:`covers` scan in insertion order.
    """

    __slots__ = ("_keys", "_seen", "_sorted", "_sortable")

    def __init__(self, keys: Iterable[object]) -> None:
        # insertion-order dedup, so the linear fallback honours the
        # de-duplicated contract too (never yields a key twice)
        self._keys = list(dict.fromkeys(keys))
        #: membership set for extend()'s dedup, built on first extend —
        #: the common build-once/query-many users never pay for it
        self._seen: set[object] | None = None
        try:
            self._sorted = sorted(self._keys)
            self._sortable = True
        except TypeError:
            self._sorted = []
            self._sortable = False

    def __len__(self) -> int:
        return len(self._keys)

    def extend(self, keys: Iterable[object]) -> None:
        """Fold new keys into the index (one merge per batch).

        Lets a long-lived owner (e.g. the history oracle's growing
        write-chain directory) keep one index across additions instead of
        rebuilding from scratch: the batch is deduplicated against the
        existing key set and folded in with a single timsort pass
        (O(n + b log b), not a full re-sort). An unsortable addition
        degrades the whole index to the linear fallback, same as at
        construction.
        """
        seen = self._seen
        if seen is None:
            seen = self._seen = set(self._keys)
        new = [key for key in dict.fromkeys(keys) if key not in seen]
        if not new:
            return
        self._keys.extend(new)
        seen.update(new)
        if not self._sortable:
            return
        sorted_keys = self._sorted
        try:
            sorted_keys.extend(sorted(new))
            sorted_keys.sort()  # one merge of two sorted runs
        except TypeError:
            self._sorted = []
            self._sortable = False

    def in_range(self, start: object, end: object) -> list[object]:
        """Keys ``k`` with ``start <= k < end`` (sorted when sortable)."""
        if self._sortable:
            try:
                lo = bisect_left(self._sorted, start)
                hi = bisect_left(self._sorted, end)
            except TypeError:
                pass
            else:
                return self._sorted[lo:hi]
        return [key for key in self._keys if covers(start, end, key)]


class RangeIndex:
    """A sorted-boundary stabbing index over half-open ranges.

    Registered ranges carry an opaque payload; :meth:`stab` returns the
    payloads of every range covering a key, in registration order (so a
    de-duplicating caller observes the same first-seen order as a linear
    scan). The index is an event sweep: all boundaries are sorted once and
    each elementary segment between consecutive boundaries stores the
    ranges active over it, so a stab is one bisect plus the output.

    Per-segment materialization costs O(boundaries × overlap); when a
    pathological population of mutually-overlapping ranges would blow
    that up quadratically, the build bails out and stabs degrade to the
    linear scan (no worse than the naive path this index replaces).
    Intended usage is build-once/query-many: ``add`` after a stab
    triggers a full rebuild on the next query.
    """

    #: segment-slot budget multiplier before falling back to linear stabs
    _DENSE_FACTOR = 16

    __slots__ = ("_items", "_boundaries", "_segments", "_segmented", "_built")

    def __init__(self, items: Iterable[tuple[object, object, object]] = ()) -> None:
        #: (start, end, payload) in registration order
        self._items: list[tuple[object, object, object]] = list(items)
        self._boundaries: list[object] = []
        #: per-segment payload tuples, precomputed so a stab is allocation-free
        self._segments: list[tuple[object, ...]] = []
        self._segmented = True
        self._built = False

    def add(self, start: object, end: object, payload: object) -> None:
        self._items.append((start, end, payload))
        self._built = False

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def _build(self) -> None:
        self._built = True
        self._segmented = True
        try:
            bounds = sorted({b for s, e, _p in self._items for b in (s, e)})
        except TypeError:
            self._segmented = False
            return
        index_of = {b: i for i, b in enumerate(bounds)}
        add_at: list[list[int]] = [[] for _ in bounds]
        remove_at: list[list[int]] = [[] for _ in bounds]
        total_slots = 0
        for item_idx, (start, end, _payload) in enumerate(self._items):
            si, ei = index_of[start], index_of[end]
            if si < ei:  # empty/inverted ranges cover nothing
                add_at[si].append(item_idx)
                remove_at[ei].append(item_idx)
                total_slots += ei - si
        if total_slots > max(4096, self._DENSE_FACTOR * len(self._items)):
            # Dense mutual overlap: materializing every segment would be
            # quadratic; linear stabs are no worse than the naive scan.
            self._segmented = False
            return
        active: dict[int, None] = {}
        items = self._items
        segments: list[tuple[object, ...]] = []
        for i in range(len(bounds)):
            for item_idx in remove_at[i]:
                active.pop(item_idx, None)
            for item_idx in add_at[i]:
                active[item_idx] = None
            # Segment i spans [bounds[i], bounds[i+1]); keep registration
            # order so stabs match a naive forward scan.
            segments.append(tuple(items[idx][2] for idx in sorted(active)))
        self._boundaries = bounds
        self._segments = segments

    def stab(self, key: object) -> tuple[object, ...]:
        """Payloads of every range covering ``key``, in registration order."""
        if not self._items:
            return ()
        if not self._built:
            self._build()
        if self._segmented:
            try:
                pos = bisect_right(self._boundaries, key) - 1
            except TypeError:
                pass
            else:
                if pos < 0:
                    return ()
                return self._segments[pos]
        return tuple(
            payload
            for start, end, payload in self._items
            if covers(start, end, key)
        )
