"""JSONL trace files: one meta header, one line per span, one metrics
tail. The format round-trips exactly (``export_jsonl`` then
``load_trace`` reproduces the spans, the metrics registry, and the
deterministic digest), so an exported trace is as strong a correctness
artifact as the live tracer."""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer, det_digest, det_events

SCHEMA_VERSION = 1


@dataclass
class TraceFile:
    """A loaded JSONL trace."""

    meta: dict
    schema: int
    det_digest: str
    spans: list[Span] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    def det_events(self) -> list[dict]:
        return det_events(self.spans)

    def verify_digest(self) -> bool:
        """Recompute the deterministic digest from the loaded spans."""
        return det_digest(self.spans) == self.det_digest


def export_jsonl(tracer: Tracer, path: str) -> None:
    """Write the trace as JSONL: meta header, spans, metrics tail."""
    with open(path, "w", encoding="utf-8") as fh:
        header = {
            "type": "meta",
            "schema": SCHEMA_VERSION,
            "meta": tracer.meta,
            "det_digest": tracer.det_digest(),
            "spans": len(tracer.spans),
        }
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for span in tracer.spans:
            fh.write(
                json.dumps({"type": "span", **span.to_dict()}, sort_keys=True)
                + "\n"
            )
        fh.write(
            json.dumps(
                {"type": "metrics", "metrics": tracer.metrics.to_dict()},
                sort_keys=True,
            )
            + "\n"
        )


def load_trace(path: str) -> TraceFile:
    """Parse a JSONL trace back into spans + metrics."""
    meta: dict = {}
    schema = SCHEMA_VERSION
    digest = ""
    spans: list[Span] = []
    metrics = MetricsRegistry()
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "meta":
                meta = record.get("meta", {})
                schema = record.get("schema", SCHEMA_VERSION)
                digest = record.get("det_digest", "")
            elif kind == "span":
                spans.append(Span.from_dict(record))
            elif kind == "metrics":
                metrics = MetricsRegistry.from_dict(record.get("metrics", {}))
            else:
                raise ValueError(f"unknown trace record type {kind!r}")
    return TraceFile(
        meta=meta, schema=schema, det_digest=digest, spans=spans, metrics=metrics
    )
