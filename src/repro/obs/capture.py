"""Seeded traced runs: the capture surface behind ``python -m repro.obs``.

:func:`trace_run` runs a sharded chain from the workload registry with a
tracer armed end to end; :func:`trace_drill` arms a tracer on the
disturbed side of a fault drill (:func:`repro.faults.drill.run_drill`),
so supervision and injected-fault events land in the span stream next to
the pipeline stages they disturbed.
"""

from __future__ import annotations

from repro.obs.trace import Tracer, attach_tracer


def build_workload(name: str, num_shards: int):
    from repro.workloads import make_workload
    from repro.workloads.base import ShardAffinity

    affinity = ShardAffinity(num_shards, 0.5) if num_shards > 1 else None
    return make_workload(name, profile="gate", affinity=affinity)


def trace_run(
    workload: str = "smallbank",
    scheme: str = "harmony",
    num_shards: int = 2,
    num_blocks: int = 8,
    block_size: int = 8,
    seed: int = 61,
    backend: str = "serial",
    wall: bool = False,
):
    """One seeded sharded run with tracing armed; returns (tracer, metrics)."""
    from repro.shard.system import ShardConfig, ShardedBlockchain

    config = ShardConfig(
        system=scheme,
        num_shards=num_shards,
        block_size=block_size,
        num_blocks=num_blocks,
        seed=seed,
        backend=backend,
    )
    chain = ShardedBlockchain(config, build_workload(workload, num_shards))
    tracer = Tracer(
        meta={
            "mode": "run",
            "workload": workload,
            "scheme": scheme,
            "shards": num_shards,
            "blocks": num_blocks,
            "block_size": block_size,
            "seed": seed,
            "backend": backend,
        },
        wall=wall,
    )
    attach_tracer(chain, tracer)
    try:
        metrics = chain.run()
    finally:
        chain.close_backend()
    return tracer, metrics


def trace_drill(
    plan_name: str = "crash-before-prepare",
    scheme: str = "harmony",
    num_shards: int = 2,
    workload: str = "smallbank",
    num_blocks: int = 8,
    block_size: int = 8,
    seed: int = 61,
    wall: bool = False,
):
    """One traced fault drill; returns (tracer, DrillResult).

    The tracer rides the *disturbed* chain, so injected crash/retry/
    recovery events appear as ``fault`` spans amid the pipeline stages.
    The drill's bit-identity verdict against the undisturbed reference is
    recorded in the tracer meta.
    """
    from repro.faults.drill import run_drill
    from repro.faults.plan import standard_plans

    plans = {p.name: p for p in standard_plans(num_blocks, num_shards, seed)}
    if plan_name not in plans:
        raise ValueError(
            f"unknown fault plan {plan_name!r}; have {sorted(plans)}"
        )
    tracer = Tracer(
        meta={
            "mode": "drill",
            "plan": plan_name,
            "workload": workload,
            "scheme": scheme,
            "shards": num_shards,
            "blocks": num_blocks,
            "block_size": block_size,
            "seed": seed,
        },
        wall=wall,
    )
    result = run_drill(
        scheme,
        num_shards,
        plans[plan_name],
        num_blocks=num_blocks,
        block_size=block_size,
        workload=workload,
        tracer=tracer,
    )
    tracer.meta["drill_ok"] = result.ok
    tracer.meta.update({f"drill_{k}": v for k, v in result.stats.items()})
    return tracer, result
