"""Deterministic tracing + metrics for the OE pipelines (the observability
layer).

- :mod:`repro.obs.trace` — :class:`Tracer` / :class:`Span`, the dual-clock
  span stream and its deterministic digest; :func:`attach_tracer` arms a
  chain through the zero-cost ``None``-default hooks.
- :mod:`repro.obs.metrics` — :class:`MetricsRegistry`: counters, gauges,
  streaming log-bucketed histograms (p50/p99/p999).
- :mod:`repro.obs.export` — JSONL round-trip (:func:`export_jsonl` /
  :func:`load_trace`).
- :mod:`repro.obs.analyze` — per-stage breakdowns, per-shard skew,
  per-block critical paths, report rendering.
- :mod:`repro.obs.capture` — seeded traced runs and traced fault drills.
- ``python -m repro.obs`` — the trace / report / smoke CLI.
"""

from repro.obs.analyze import (
    block_paths,
    fault_events,
    render_report,
    shard_skew,
    slowest_blocks,
    stage_breakdown,
)
from repro.obs.capture import trace_drill, trace_run
from repro.obs.export import TraceFile, export_jsonl, load_trace
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    Span,
    Tracer,
    attach_tracer,
    det_digest,
    det_events,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TraceFile",
    "Tracer",
    "attach_tracer",
    "block_paths",
    "det_digest",
    "det_events",
    "export_jsonl",
    "fault_events",
    "load_trace",
    "render_report",
    "shard_skew",
    "slowest_blocks",
    "stage_breakdown",
    "trace_drill",
    "trace_run",
]
