"""Counters, gauges and streaming histograms for the run-level registry.

The histogram is log-bucketed (HDR-style, ~10% relative error per
bucket): constant memory per distinct magnitude, deterministic for a
fixed input stream, and quantile reads (p50/p99/p999) by nearest-rank
walk over the buckets. Exact ``count/total/min/max`` ride alongside, so
means and extremes carry no bucketing error.
"""

from __future__ import annotations

import math


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-write-wins sample."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming log-bucketed histogram with nearest-rank quantiles."""

    #: bucket growth factor: bucket ``i`` covers ``[G**i, G**(i+1))``
    GROWTH = 1.1

    __slots__ = ("count", "total", "min", "max", "zeros", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        #: observations <= 0 (their own bucket; log is undefined there)
        self.zeros = 0
        #: bucket index -> observation count
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if value <= 0.0:
            self.zeros += 1
            return
        index = math.floor(math.log(value) / math.log(self.GROWTH))
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile estimate (bucket upper edge, <= max)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"quantile q must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q / 100.0 * self.count))
        if rank <= self.zeros:
            return 0.0
        seen = self.zeros
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                return min(self.GROWTH ** (index + 1), self.max)
        return self.max

    @property
    def p50(self) -> float:
        return self.quantile(50)

    @property
    def p99(self) -> float:
        return self.quantile(99)

    @property
    def p999(self) -> float:
        return self.quantile(99.9)

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "zeros": self.zeros,
            "buckets": {str(i): n for i, n in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        hist = cls()
        hist.count = data["count"]
        hist.total = data["total"]
        hist.min = data["min"]
        hist.max = data["max"]
        hist.zeros = data["zeros"]
        hist.buckets = {int(i): n for i, n in data["buckets"].items()}
        return hist


class MetricsRegistry:
    """Named counters, gauges and histograms, created on first touch."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge()
        return gauge

    def histogram(self, name: str) -> Histogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        return hist

    def to_dict(self) -> dict:
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: h.to_dict() for n, h in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        registry = cls()
        for name, value in data.get("counters", {}).items():
            registry.counters[name] = Counter(value)
        for name, value in data.get("gauges", {}).items():
            registry.gauges[name] = Gauge(value)
        for name, payload in data.get("histograms", {}).items():
            registry.histograms[name] = Histogram.from_dict(payload)
        return registry
