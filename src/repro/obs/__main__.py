"""CLI: capture and analyze deterministic pipeline traces.

Usage::

    python -m repro.obs trace --out trace.jsonl            # seeded run
    python -m repro.obs trace --out t.jsonl --shards 4 --backend process
    python -m repro.obs trace --out t.jsonl --plan vote-drop   # fault drill
    python -m repro.obs report trace.jsonl --top 8         # render tables
    python -m repro.obs smoke                              # CI gate

``trace`` runs a seeded sharded run (or, with ``--plan``, the disturbed
side of a fault drill) with tracing armed and exports the JSONL trace.
``report`` renders per-stage breakdowns, per-shard load skew, per-block
critical paths, and injected fault events. ``smoke`` exercises the whole
loop — capture, export, round-trip, digest reproducibility, report — and
exits non-zero on any failure.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

from repro.obs.analyze import render_report
from repro.obs.capture import trace_drill, trace_run
from repro.obs.export import export_jsonl, load_trace


def _cmd_trace(args) -> int:
    if args.plan:
        tracer, result = trace_drill(
            plan_name=args.plan,
            scheme=args.scheme,
            num_shards=args.shards,
            workload=args.workload,
            num_blocks=args.blocks,
            block_size=args.block_size,
            seed=args.seed,
            wall=args.wall,
        )
        verdict = "ok" if result.ok else "DIVERGED"
        print(f"drill {result.label}: {verdict}")
        if not result.ok:
            for failure in result.failures:
                print(f"  {failure}")
    else:
        tracer, metrics = trace_run(
            workload=args.workload,
            scheme=args.scheme,
            num_shards=args.shards,
            num_blocks=args.blocks,
            block_size=args.block_size,
            seed=args.seed,
            backend=args.backend,
            wall=args.wall,
        )
        print(
            f"run {args.scheme} x {args.shards}shard x {args.workload}: "
            f"{metrics.committed} committed / {metrics.aborted} aborted"
        )
    export_jsonl(tracer, args.out)
    print(
        f"wrote {args.out}: {len(tracer.spans)} spans, "
        f"det digest {tracer.det_digest()[:16]}"
    )
    return 0


def _cmd_report(args) -> int:
    trace = load_trace(args.path)
    if not trace.verify_digest():
        print("WARNING: deterministic digest mismatch (file edited?)")
    print(render_report(trace.spans, meta=trace.meta, top=args.top))
    return 0


def _cmd_smoke(args) -> int:
    failures: list[str] = []

    def check(name: str, ok: bool) -> None:
        print(f"  {'PASS' if ok else 'FAIL'}  {name}")
        if not ok:
            failures.append(name)

    print("obs smoke: traced seeded run")
    tracer, metrics = trace_run(num_blocks=6, block_size=8)
    check("spans recorded", len(tracer.spans) > 0)
    check("blocks committed", metrics.committed > 0)

    tracer2, _ = trace_run(num_blocks=6, block_size=8)
    check("det digest reproducible", tracer.det_digest() == tracer2.det_digest())

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "trace.jsonl")
        export_jsonl(tracer, path)
        loaded = load_trace(path)
        check("exporter round-trips spans", loaded.spans == tracer.spans)
        check("exporter round-trips digest", loaded.verify_digest())
        check(
            "exporter round-trips metrics",
            loaded.metrics.to_dict() == tracer.metrics.to_dict(),
        )
        report = render_report(loaded.spans, meta=loaded.meta)
        check("report renders breakdown", "per-stage breakdown" in report)
        check("report renders skew table", "per-shard load skew" in report)

    print("obs smoke: traced fault drill")
    drill_tracer, result = trace_drill(plan_name="crash-before-prepare")
    check("drill bit-identical", result.ok)
    fault_spans = [s for s in drill_tracer.spans if s.kind == "fault"]
    check("fault events traced", len(fault_spans) > 0)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "drill.jsonl")
        export_jsonl(drill_tracer, path)
        report = render_report(load_trace(path).spans, meta=drill_tracer.meta)
        check("fault events annotated in report", "FAULT" in report)

    if failures:
        print(f"obs smoke: {len(failures)} failure(s)")
        return 1
    print("obs smoke: all checks passed")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="deterministic pipeline traces: capture and analysis",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    trace_p = sub.add_parser("trace", help="run a seeded traced run / drill")
    trace_p.add_argument("--out", required=True, help="output JSONL path")
    trace_p.add_argument("--workload", default="smallbank")
    trace_p.add_argument("--scheme", default="harmony")
    trace_p.add_argument("--shards", type=int, default=2)
    trace_p.add_argument("--blocks", type=int, default=8)
    trace_p.add_argument("--block-size", type=int, default=8)
    trace_p.add_argument("--seed", type=int, default=61)
    trace_p.add_argument(
        "--backend", choices=("serial", "process"), default="serial"
    )
    trace_p.add_argument(
        "--plan", default=None, help="fault plan name: trace a drill instead"
    )
    trace_p.add_argument(
        "--wall", action="store_true", help="stamp wall-clock annotations"
    )
    trace_p.set_defaults(func=_cmd_trace)

    report_p = sub.add_parser("report", help="render a JSONL trace")
    report_p.add_argument("path", help="trace JSONL file")
    report_p.add_argument("--top", type=int, default=5)
    report_p.set_defaults(func=_cmd_report)

    smoke_p = sub.add_parser("smoke", help="capture/export/report gate")
    smoke_p.set_defaults(func=_cmd_smoke)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except BrokenPipeError:  # report piped into head etc.
        sys.exit(0)
