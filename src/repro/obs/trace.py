"""Deterministic structured spans with dual clocks.

A :class:`Tracer` records one :class:`Span` per pipeline event — block,
shard, stage, attempt — carrying **two clocks**:

- ``sim_us`` + ``attrs``: the *deterministic* side, populated only from
  decision-layer quantities (counts, certificate data, NetworkModel
  costs, retry schedules). The ordered stream of these fields — the
  *decision-relevant span stream*, :func:`det_events` — is bit-identical
  across serial vs process prepare backends and across repeated seeded
  runs, so the trace itself is a correctness artifact
  (:func:`det_digest` pins it).
- ``timing``: annotations — engine-simulated durations (which legally
  differ across backends: a worker engine's buffer pool sees only
  prepare reads) and optional wall-clock stamps (``wall=True``). Spans
  of kind ``"anno"`` are excluded from the deterministic stream
  entirely (e.g. process-backend shipping events, which have no serial
  counterpart).

Instrumentation follows the fault-hook pattern from ``repro.faults``: a
pipeline object's ``tracer`` attribute defaults to ``None`` and every
emission site is guarded by one attribute check, so disabled tracing is
zero-cost. :func:`attach_tracer` arms a chain end to end.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

from repro.consensus.crypto import sha256_hex
from repro.obs.metrics import MetricsRegistry

#: span kinds; ``anno`` spans are excluded from the deterministic stream
KIND_STAGE = "stage"
KIND_EVENT = "event"
KIND_FAULT = "fault"
KIND_ANNO = "anno"


@dataclass
class Span:
    """One traced pipeline event."""

    seq: int
    name: str
    kind: str = KIND_STAGE
    block: int | None = None
    shard: int | None = None
    attempt: int = 0
    #: deterministic simulated duration (NetworkModel/schedule costs)
    sim_us: float = 0.0
    #: deterministic attributes (counts, decisions, hashes)
    attrs: dict = field(default_factory=dict)
    #: non-deterministic annotations (engine sim durations, wall clock)
    timing: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "name": self.name,
            "kind": self.kind,
            "block": self.block,
            "shard": self.shard,
            "attempt": self.attempt,
            "sim_us": self.sim_us,
            "attrs": self.attrs,
            "timing": self.timing,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            seq=data["seq"],
            name=data["name"],
            kind=data["kind"],
            block=data["block"],
            shard=data["shard"],
            attempt=data["attempt"],
            sim_us=data["sim_us"],
            attrs=dict(data["attrs"]),
            timing=dict(data["timing"]),
        )


def det_events(spans: list[Span]) -> list[dict]:
    """The decision-relevant span stream: every non-anno span's
    deterministic fields, in emission order (``seq`` and ``timing`` are
    deliberately excluded — annotation spans interleave differently
    across backends without perturbing this stream)."""
    return [
        {
            "name": s.name,
            "kind": s.kind,
            "block": s.block,
            "shard": s.shard,
            "attempt": s.attempt,
            "sim_us": s.sim_us,
            "attrs": s.attrs,
        }
        for s in spans
        if s.kind != KIND_ANNO
    ]


def det_digest(spans: list[Span]) -> str:
    """SHA-256 over the canonical JSON of :func:`det_events`."""
    payload = json.dumps(det_events(spans), sort_keys=True)
    return sha256_hex(payload.encode())


class Tracer:
    """Collects spans and feeds the run's :class:`MetricsRegistry`."""

    def __init__(self, meta: dict | None = None, wall: bool = False) -> None:
        self.meta = dict(meta or {})
        #: wall-clock annotations: stamp ``timing["wall_ts"]`` per span
        self.wall = wall
        self.spans: list[Span] = []
        self.metrics = MetricsRegistry()
        self._seq = 0

    # ------------------------------------------------------------- emission
    def emit(
        self,
        name: str,
        kind: str = KIND_EVENT,
        block: int | None = None,
        shard: int | None = None,
        attempt: int = 0,
        sim_us: float = 0.0,
        attrs: dict | None = None,
        timing: dict | None = None,
    ) -> Span:
        span = Span(
            seq=self._seq,
            name=name,
            kind=kind,
            block=block,
            shard=shard,
            attempt=attempt,
            sim_us=float(sim_us),
            attrs=dict(attrs or {}),
            timing=dict(timing or {}),
        )
        if self.wall:
            span.timing["wall_ts"] = time.perf_counter()
        self._seq += 1
        self.spans.append(span)
        return span

    def stage(self, name: str, **kw) -> Span:
        return self.emit(name, kind=KIND_STAGE, **kw)

    def event(self, name: str, **kw) -> Span:
        return self.emit(name, kind=KIND_EVENT, **kw)

    def fault(self, name: str, **kw) -> Span:
        return self.emit(name, kind=KIND_FAULT, **kw)

    def anno(self, name: str, **kw) -> Span:
        return self.emit(name, kind=KIND_ANNO, **kw)

    # ---------------------------------------------------------- determinism
    def det_events(self) -> list[dict]:
        return det_events(self.spans)

    def det_digest(self) -> str:
        return det_digest(self.spans)


def _arm_node(node, tracer: Tracer, shard: int | None) -> None:
    manager = node.engine.checkpoints
    manager.tracer = tracer
    manager.trace_shard = shard


def attach_tracer(chain, tracer: Tracer) -> Tracer:
    """Arm ``tracer`` on every hook of an (un)sharded chain.

    Wires the chain itself, the certificate log, every node's checkpoint
    manager (re-armed on rejoin, so recovered shards keep tracing), and
    the process-prepare backend if one is already built
    (``_ensure_backend`` arms later-built ones from ``chain.tracer``).
    """
    chain.tracer = tracer
    cert_log = getattr(chain, "cert_log", None)
    if cert_log is not None:
        cert_log.tracer = tracer
    group = getattr(chain, "group", None)
    if group is not None:
        for shard, node in enumerate(group.nodes):
            _arm_node(node, tracer, shard)
        group.rejoin_listeners.append(
            lambda shard, node: _arm_node(node, tracer, shard)
        )
    else:
        _arm_node(chain.node, tracer, None)
    backend = getattr(chain, "_prepare_backend", None)
    if backend is not None:
        backend.tracer = tracer
    return tracer
