"""Trace analysis: per-stage breakdowns, per-shard skew, critical paths.

Pure functions over a list of :class:`~repro.obs.trace.Span` (live or
loaded from JSONL), plus plain-text renderers for the
``python -m repro.obs report`` CLI. Span durations prefer the engine's
simulated-time annotation (``timing["sim_us"]``) and fall back to the
deterministic ``sim_us`` clock, so breakdowns work on both clocks.
"""

from __future__ import annotations

from repro.obs.trace import KIND_ANNO, KIND_EVENT, KIND_FAULT, Span


def span_us(span: Span) -> float:
    """One span's duration: simulated-annotation first, det clock second."""
    return float(span.timing.get("sim_us", 0.0)) + span.sim_us


def stage_breakdown(spans: list[Span]) -> dict[str, dict]:
    """Per stage name: event count and total simulated time."""
    out: dict[str, dict] = {}
    for span in spans:
        if span.kind == KIND_ANNO:
            continue
        entry = out.setdefault(span.name, {"count": 0, "sim_us": 0.0})
        entry["count"] += 1
        entry["sim_us"] += span_us(span)
    total = sum(e["sim_us"] for e in out.values())
    for entry in out.values():
        entry["share"] = entry["sim_us"] / total if total > 0 else 0.0
    return out


def shard_skew(spans: list[Span]) -> dict[int, dict]:
    """Per-shard load: busy simulated time, txns committed/aborted, and
    the ``skew`` ratio (busy / mean busy) — the adaptive-sharding input.

    Degenerate traces (no busy time anywhere, a single shard, or no
    sharded spans at all) report a skew of exactly ``1.0`` — a perfectly
    balanced fleet, not a division-by-zero artifact. A rebalance policy
    reading 0.0 would see "infinitely under-loaded" and could flap."""
    out: dict[int, dict] = {}
    for span in spans:
        if span.shard is None or span.kind == KIND_ANNO:
            continue
        entry = out.setdefault(
            span.shard,
            {"busy_us": 0.0, "committed": 0, "aborted": 0, "spans": 0},
        )
        entry["busy_us"] += span_us(span)
        entry["spans"] += 1
        if span.name == "commit":
            entry["committed"] += span.attrs.get("committed", 0)
            entry["aborted"] += span.attrs.get("aborted", 0)
    if out:
        mean_busy = sum(e["busy_us"] for e in out.values()) / len(out)
        for entry in out.values():
            entry["skew"] = (
                entry["busy_us"] / mean_busy if mean_busy > 0 else 1.0
            )
    return out


def block_paths(spans: list[Span]) -> dict[int, dict]:
    """Per block: the critical (slowest) shard lane and the block's time.

    A block's time is its slowest per-shard lane (prepare + commit run
    per shard in parallel lanes) plus every unsharded span charged to the
    block (vote exchange costs, supervision backoff). Fault spans are
    counted so renderers can annotate disturbed blocks.
    """
    out: dict[int, dict] = {}
    for span in spans:
        if span.block is None or span.kind == KIND_ANNO:
            continue
        entry = out.setdefault(
            span.block,
            {"lanes": {}, "serial_us": 0.0, "faults": 0, "fault_names": []},
        )
        if span.kind == KIND_FAULT:
            entry["faults"] += 1
            if span.name not in entry["fault_names"]:
                entry["fault_names"].append(span.name)
        if span.shard is None:
            entry["serial_us"] += span_us(span)
        else:
            lane = entry["lanes"].setdefault(span.shard, 0.0)
            entry["lanes"][span.shard] = lane + span_us(span)
    for entry in out.values():
        lanes = entry["lanes"]
        if lanes:
            critical = max(sorted(lanes), key=lambda s: lanes[s])
            entry["critical_shard"] = critical
            entry["total_us"] = lanes[critical] + entry["serial_us"]
        else:
            entry["critical_shard"] = None
            entry["total_us"] = entry["serial_us"]
    return out


def slowest_blocks(spans: list[Span], top: int = 5) -> list[tuple[int, dict]]:
    """The ``top`` slowest blocks, by critical-path time, slowest first."""
    paths = block_paths(spans)
    ranked = sorted(paths.items(), key=lambda kv: (-kv[1]["total_us"], kv[0]))
    return ranked[:top]


def fault_events(spans: list[Span]) -> list[Span]:
    return [s for s in spans if s.kind == KIND_FAULT]


# ------------------------------------------------------------- rendering
def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_report(spans: list[Span], meta: dict | None = None, top: int = 5) -> str:
    """The full plain-text report: breakdown, skew, slowest blocks, faults."""
    sections: list[str] = []
    if meta:
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        sections.append(f"trace: {pairs}")

    breakdown = stage_breakdown(spans)
    rows = [
        [
            name,
            str(entry["count"]),
            f"{entry['sim_us'] / 1000.0:.3f}",
            f"{entry['share'] * 100.0:.1f}%",
        ]
        for name, entry in sorted(
            breakdown.items(), key=lambda kv: -kv[1]["sim_us"]
        )
    ]
    sections.append(
        "per-stage breakdown (simulated time)\n"
        + _table(["stage", "spans", "ms", "share"], rows)
    )

    skew = shard_skew(spans)
    if skew:
        rows = [
            [
                str(shard),
                f"{entry['busy_us'] / 1000.0:.3f}",
                str(entry["committed"]),
                str(entry["aborted"]),
                f"{entry['skew']:.2f}x",
            ]
            for shard, entry in sorted(skew.items())
        ]
        sections.append(
            "per-shard load skew\n"
            + _table(["shard", "busy ms", "committed", "aborted", "skew"], rows)
        )

    migrations = [
        s for s in spans if s.kind == KIND_EVENT and s.name == "migrate"
    ]
    if migrations:
        rows = [
            [
                str(s.block) if s.block is not None else "-",
                str(s.attrs.get("epoch", "-")),
                str(s.attrs.get("keys", "-")),
                str(s.attrs.get("shipped", "-")),
                str(s.attrs.get("reason", "-")),
            ]
            for s in migrations
        ]
        sections.append(
            "ownership migrations (live re-keying)\n"
            + _table(["block", "epoch", "keys", "shipped", "reason"], rows)
        )

    ranked = slowest_blocks(spans, top)
    if ranked:
        rows = []
        for block, entry in ranked:
            marker = (
                f"FAULT({','.join(entry['fault_names'])})" if entry["faults"] else ""
            )
            rows.append(
                [
                    str(block),
                    f"{entry['total_us'] / 1000.0:.3f}",
                    str(entry["critical_shard"])
                    if entry["critical_shard"] is not None
                    else "-",
                    marker,
                ]
            )
        sections.append(
            f"top-{top} slowest blocks (critical path)\n"
            + _table(["block", "ms", "critical shard", "faults"], rows)
        )

    faults = fault_events(spans)
    if faults:
        rows = [
            [
                str(s.block) if s.block is not None else "-",
                str(s.shard) if s.shard is not None else "-",
                s.name,
                str(s.attempt),
                f"{s.sim_us / 1000.0:.3f}",
                ", ".join(f"{k}={v}" for k, v in sorted(s.attrs.items())),
            ]
            for s in faults
        ]
        sections.append(
            "injected fault events\n"
            + _table(["block", "shard", "event", "attempt", "ms", "detail"], rows)
        )
    else:
        sections.append("injected fault events: none")
    return "\n\n".join(sections)
