"""Smallbank (Alomari et al., ICDE 2008): the paper's banking workload.

10K customers, each with a checking and a savings account, and the standard
six procedures at the standard mix. Deposit-style procedures express their
balance changes as ``add`` commands (the natural SQL
``UPDATE ... SET bal = bal + ?``), while check-and-debit procedures read
first and branch — exactly the mix of fused and separated read-modify-write
the paper's protocols disagree on.
"""

from __future__ import annotations

from repro.sim.rng import SeededRng
from repro.txn.procedures import ProcedureRegistry
from repro.txn.transaction import TxnSpec
from repro.workloads.base import ShardAffinity, Workload, params, partition_of_index
from repro.workloads.zipf import ZipfGenerator


def checking(cid: int) -> tuple:
    return ("checking", cid)


def savings(cid: int) -> tuple:
    return ("savings", cid)


#: (procedure, weight) — the standard Smallbank mix
MIX = (
    ("sb_balance", 15),
    ("sb_deposit_checking", 15),
    ("sb_transact_savings", 15),
    ("sb_amalgamate", 15),
    ("sb_write_check", 15),
    ("sb_send_payment", 25),
)


class SmallbankWorkload(Workload):
    name = "smallbank"

    def __init__(
        self,
        num_accounts: int = 10_000,
        theta: float = 0.6,
        initial_balance: float = 10_000.0,
        affinity: ShardAffinity | None = None,
    ) -> None:
        self.num_accounts = num_accounts
        self.theta = theta
        self.initial_balance = initial_balance
        #: a customer's checking and savings rows are co-located (partition
        #: by cid), so only the two-customer procedures (amalgamate,
        #: send_payment) can cross shards — ``cross_ratio`` applies to them
        self.affinity = affinity
        self._zipf = ZipfGenerator(num_accounts, theta)
        total = sum(w for _p, w in MIX)
        self._mix_cdf = []
        acc = 0.0
        for proc, weight in MIX:
            acc += weight / total
            self._mix_cdf.append((acc, proc))

    def initial_state(self) -> dict:
        state = {}
        for cid in range(self.num_accounts):
            state[checking(cid)] = self.initial_balance
            state[savings(cid)] = self.initial_balance
        return state

    def build_registry(self) -> ProcedureRegistry:
        registry = ProcedureRegistry()

        @registry.register("sb_balance")
        def sb_balance(ctx, cid):
            ck = ctx.read(checking(cid)) or 0.0
            sv = ctx.read(savings(cid)) or 0.0
            return ck + sv

        @registry.register("sb_deposit_checking")
        def sb_deposit_checking(ctx, cid, amount):
            # fused RMW: UPDATE checking SET bal = bal + ? WHERE cid = ?
            ctx.add(checking(cid), amount)
            return "ok"

        @registry.register("sb_transact_savings")
        def sb_transact_savings(ctx, cid, amount):
            balance = ctx.read(savings(cid)) or 0.0
            if balance + amount < 0:
                return "insufficient"
            ctx.add(savings(cid), amount)
            return "ok"

        @registry.register("sb_amalgamate")
        def sb_amalgamate(ctx, cid_from, cid_to):
            ck = ctx.read(checking(cid_from)) or 0.0
            sv = ctx.read(savings(cid_from)) or 0.0
            ctx.write(checking(cid_from), 0.0)
            ctx.write(savings(cid_from), 0.0)
            ctx.add(checking(cid_to), ck + sv)
            return ck + sv

        @registry.register("sb_write_check")
        def sb_write_check(ctx, cid, amount):
            ck = ctx.read(checking(cid)) or 0.0
            sv = ctx.read(savings(cid)) or 0.0
            penalty = 1.0 if ck + sv < amount else 0.0
            ctx.add(checking(cid), -(amount + penalty))
            return "ok"

        @registry.register("sb_send_payment")
        def sb_send_payment(ctx, cid_from, cid_to, amount):
            balance = ctx.read(checking(cid_from)) or 0.0
            if balance < amount:
                return "insufficient"
            ctx.add(checking(cid_from), -amount)
            ctx.add(checking(cid_to), amount)
            return "ok"

        return registry

    def _pick_proc(self, rng: SeededRng) -> str:
        u = rng.random()
        for threshold, proc in self._mix_cdf:
            if u <= threshold:
                return proc
        return self._mix_cdf[-1][1]

    def _account(self, rng: SeededRng) -> int:
        return self._zipf.sample(rng)

    def generate_block(self, size: int, rng: SeededRng) -> list[TxnSpec]:
        affinity = self.affinity
        specs = []
        for _ in range(size):
            proc = self._pick_proc(rng)
            cid = self._account(rng)
            home = None
            if affinity is not None and affinity.num_shards > 1:
                home = affinity.pick_home(rng)
                cid = affinity.map_index(cid, home, self.num_accounts)
            if proc == "sb_balance":
                spec = TxnSpec(proc, params(cid=cid))
            elif proc == "sb_deposit_checking":
                spec = TxnSpec(proc, params(cid=cid, amount=float(rng.randint(1, 100))))
            elif proc == "sb_transact_savings":
                spec = TxnSpec(proc, params(cid=cid, amount=float(rng.randint(-50, 100))))
            elif proc == "sb_write_check":
                spec = TxnSpec(proc, params(cid=cid, amount=float(rng.randint(1, 50))))
            else:
                other = self._account(rng)
                if home is not None:
                    partition = home
                    if affinity.crosses(rng):
                        partition = affinity.pick_other(rng, home)
                    other = affinity.map_index(other, partition, self.num_accounts)
                if other == cid:
                    other = self._bump_within_partition(other)
                if proc == "sb_amalgamate":
                    spec = TxnSpec(proc, params(cid_from=cid, cid_to=other))
                else:
                    spec = TxnSpec(
                        proc,
                        params(cid_from=cid, cid_to=other, amount=float(rng.randint(1, 50))),
                    )
            specs.append(spec)
        return specs

    def _bump_within_partition(self, cid: int) -> int:
        """The next distinct account, staying inside ``cid``'s partition."""
        if self.affinity is None or self.affinity.num_shards == 1:
            return (cid + 1) % self.num_accounts
        affinity = self.affinity
        partition = partition_of_index(cid, self.num_accounts, affinity.num_shards)
        lo, hi = affinity.partition_bounds(self.num_accounts, partition)
        return lo + (cid - lo + 1) % (hi - lo)

    # ---------------------------------------------------------- shard hints
    def spec_keys(self, spec: TxnSpec) -> list:
        p = spec.param_dict
        if spec.proc in ("sb_balance", "sb_write_check"):
            return [checking(p["cid"]), savings(p["cid"])]
        if spec.proc == "sb_deposit_checking":
            return [checking(p["cid"])]
        if spec.proc == "sb_transact_savings":
            return [savings(p["cid"])]
        if spec.proc == "sb_amalgamate":
            return [
                checking(p["cid_from"]),
                savings(p["cid_from"]),
                checking(p["cid_to"]),
            ]
        if spec.proc == "sb_send_payment":
            return [checking(p["cid_from"]), checking(p["cid_to"])]
        return None

    def shard_index(self, key: object) -> int | None:
        if isinstance(key, tuple) and key[0] in ("checking", "savings"):
            return key[1]
        return None

    @property
    def shard_space(self) -> int:
        return self.num_accounts
