"""TPC-C with the five standard transactions at the standard mix
(NewOrder 45%, Payment 43%, OrderStatus 4%, Delivery 4%, StockLevel 4%).

Scaled for simulation — the shape of Figure 19 depends on contention
(warehouse count) and database size, not on absolute cardinalities:

===============  =========  ==============
population       standard   this module
===============  =========  ==============
districts/WH     10         10
customers/dist   3000       60
items            100 000    500
stock/WH         100 000    500
===============  =========  ==============

Contention structure preserved faithfully:

- NewOrder reads the district's ``next_o_id`` and increments it — a
  *separated* read-modify-write (the order id keys the inserted rows), so
  concurrent NewOrders in one district form backward dangerous structures;
  this is why 1 warehouse hits the structure 47.9% of the time (Table 3).
- Payment's YTD updates are *fused* arithmetic updates
  (``UPDATE ... SET ytd = ytd + ?``), which Harmony reorders and coalesces.
- Delivery/OrderStatus/StockLevel use range scans (phantom-guarded reads).
"""

from __future__ import annotations

from repro.sim.rng import SeededRng
from repro.txn.procedures import ProcedureRegistry
from repro.txn.transaction import TxnSpec
from repro.workloads.base import ShardAffinity, Workload, params

DISTRICTS_PER_WAREHOUSE = 10
CUSTOMERS_PER_DISTRICT = 60
NUM_ITEMS = 500
STOCK_PER_WAREHOUSE = 500
INITIAL_NEXT_O_ID = 1
BIG = 10**9

MIX = (
    ("tpcc_new_order", 45),
    ("tpcc_payment", 43),
    ("tpcc_order_status", 4),
    ("tpcc_delivery", 4),
    ("tpcc_stock_level", 4),
)


def _line_source(w: int, line: tuple) -> tuple[int, int]:
    """(supply_warehouse, item_id) of a NewOrder line.

    Lines come in two shapes: the original ``(i_id, qty)`` (home-warehouse
    supply) and the cross-shard ``(supply_w, i_id, qty)`` emitted when a
    :class:`~repro.workloads.base.ShardAffinity` marks the order remote.
    """
    if len(line) == 3:
        return line[0], line[1]
    return w, line[0]


def warehouse(w: int) -> tuple:
    return ("warehouse", w)


def district(w: int, d: int) -> tuple:
    return ("district", w, d)


def customer(w: int, d: int, c: int) -> tuple:
    return ("customer", w, d, c)


def item(i: int) -> tuple:
    return ("item", i)


def stock(w: int, i: int) -> tuple:
    return ("stock", w, i)


def order_key(w: int, d: int, o: int) -> tuple:
    return ("order", w, d, o)


def order_line(w: int, d: int, o: int, n: int) -> tuple:
    return ("order_line", w, d, o, n)


def new_order_key(w: int, d: int, o: int) -> tuple:
    return ("new_order", w, d, o)


#: tables whose second key component is the owning warehouse — the natural
#: warehouse -> shard alignment. ``item`` is deliberately absent: item rows
#: are immutable reference data, read cross-shard through the federated
#: snapshot and never written, so they can stay out of participant sets
#: without creating a conflict the router would miss.
_WAREHOUSE_TABLES = frozenset(
    {"warehouse", "district", "customer", "stock", "order", "order_line", "new_order"}
)


class TPCCWorkload(Workload):
    name = "tpcc"

    def __init__(
        self,
        num_warehouses: int = 20,
        affinity: ShardAffinity | None = None,
    ) -> None:
        if num_warehouses < 1:
            raise ValueError("need at least one warehouse")
        if affinity is not None and num_warehouses < affinity.num_shards:
            raise ValueError(
                f"affinity over {affinity.num_shards} shards needs at least "
                f"{affinity.num_shards} warehouses, got {num_warehouses}"
            )
        self.num_warehouses = num_warehouses
        self.affinity = affinity

    # ---------------------------------------------------------- shard hints
    def shard_index(self, key: object) -> int | None:
        if isinstance(key, tuple) and len(key) >= 2 and key[0] in _WAREHOUSE_TABLES:
            return key[1]
        return None

    @property
    def shard_space(self) -> int | None:
        return self.num_warehouses

    def spec_keys(self, spec: TxnSpec) -> list | None:
        """Exact static key footprint — every access of every procedure is
        confined to the warehouses named here (item reads excepted, see
        :data:`_WAREHOUSE_TABLES`), so the router's participant sets are
        exact and multi-warehouse Payments/NewOrders become genuine
        cross-shard 2PC traffic."""
        p = spec.param_dict
        if spec.proc == "tpcc_new_order":
            keys = [warehouse(p["w"]), district(p["w"], p["d"])]
            for line in p["lines"]:
                supply_w, i_id = _line_source(p["w"], line)
                keys.append(stock(supply_w, i_id))
            return keys
        if spec.proc == "tpcc_payment":
            c_w = p.get("c_w")
            c_d = p.get("c_d")
            return [
                warehouse(p["w"]),
                district(p["w"], p["d"]),
                customer(
                    p["w"] if c_w is None else c_w,
                    p["d"] if c_d is None else c_d,
                    p["c"],
                ),
            ]
        if spec.proc == "tpcc_order_status":
            return [district(p["w"], p["d"]), customer(p["w"], p["d"], p["c"])]
        if spec.proc == "tpcc_delivery":
            return [warehouse(p["w"])]
        if spec.proc == "tpcc_stock_level":
            return [district(p["w"], p["d"])]
        return None

    # ----------------------------------------------------------------- state
    def initial_state(self) -> dict:
        state: dict = {}
        for i in range(NUM_ITEMS):
            state[item(i)] = {"price": 1.0 + (i % 100) / 10.0, "name": f"item-{i}"}
        for w in range(self.num_warehouses):
            state[warehouse(w)] = {"ytd": 0.0, "tax": 0.05}
            for d in range(DISTRICTS_PER_WAREHOUSE):
                state[district(w, d)] = {
                    "ytd": 0.0,
                    "tax": 0.07,
                    "next_o_id": INITIAL_NEXT_O_ID,
                }
                for c in range(CUSTOMERS_PER_DISTRICT):
                    state[customer(w, d, c)] = {
                        "balance": -10.0,
                        "ytd_payment": 10.0,
                        "payment_cnt": 1,
                        "delivery_cnt": 0,
                    }
            for i in range(STOCK_PER_WAREHOUSE):
                state[stock(w, i % NUM_ITEMS)] = {
                    "quantity": 50,
                    "ytd": 0,
                    "order_cnt": 0,
                }
        return state

    # ------------------------------------------------------------ procedures
    def build_registry(self) -> ProcedureRegistry:
        registry = ProcedureRegistry()

        @registry.register("tpcc_new_order")
        def tpcc_new_order(ctx, w, d, c, lines):
            wh = ctx.read(warehouse(w))
            dist = ctx.read(district(w, d))
            if wh is None or dist is None:
                return "missing-warehouse"
            o_id = dist["next_o_id"]
            ctx.add_fields(district(w, d), next_o_id=1)

            total = 0.0
            for n, line in enumerate(lines):
                supply_w, i_id = _line_source(w, line)
                qty = line[-1]
                it = ctx.read(item(i_id))
                if it is None:
                    return "invalid-item"  # TPC-C: 1% rollback path
                st = ctx.read(stock(supply_w, i_id))
                if st is None:
                    continue
                if st["quantity"] - qty >= 10:
                    ctx.add_fields(
                        stock(supply_w, i_id), quantity=-qty, ytd=qty, order_cnt=1
                    )
                else:
                    ctx.add_fields(
                        stock(supply_w, i_id), quantity=91 - qty, ytd=qty, order_cnt=1
                    )
                amount = qty * it["price"]
                total += amount
                ctx.insert(
                    order_line(w, d, o_id, n),
                    {"i_id": i_id, "qty": qty, "amount": amount, "delivery_d": None},
                )
            ctx.insert(
                order_key(w, d, o_id),
                {"c_id": c, "carrier_id": None, "ol_cnt": len(lines)},
            )
            ctx.insert(new_order_key(w, d, o_id), {"o_id": o_id})
            return total * (1 + wh["tax"] + dist["tax"])

        @registry.register("tpcc_payment")
        def tpcc_payment(ctx, w, d, c, amount, c_w=None, c_d=None):
            # fused YTD updates: UPDATE ... SET ytd = ytd + ? (coalescible).
            # The YTD rows always belong to the home warehouse; a remote
            # customer (TPC-C's 15% "pay through another warehouse" path,
            # here driven by the affinity's cross ratio) makes the
            # transaction genuinely multi-warehouse.
            ctx.add_fields(warehouse(w), ytd=amount)
            ctx.add_fields(district(w, d), ytd=amount)
            ctx.add_fields(
                customer(w if c_w is None else c_w, d if c_d is None else c_d, c),
                balance=-amount,
                ytd_payment=amount,
                payment_cnt=1,
            )
            return "ok"

        @registry.register("tpcc_order_status")
        def tpcc_order_status(ctx, w, d, c):
            cust = ctx.read(customer(w, d, c))
            if cust is None:
                return "no-customer"
            dist = ctx.read(district(w, d))
            next_o = dist["next_o_id"] if dist else INITIAL_NEXT_O_ID
            lo = max(INITIAL_NEXT_O_ID, next_o - 20)
            last_order = None
            last_oid = None
            for key, row in ctx.scan(order_key(w, d, lo), order_key(w, d, BIG)):
                if row.get("c_id") == c:
                    last_order, last_oid = row, key[3]
            if last_order is None:
                return {"balance": cust["balance"], "order": None}
            lines = list(
                ctx.scan(order_line(w, d, last_oid, 0), order_line(w, d, last_oid, BIG))
            )
            return {"balance": cust["balance"], "order": last_oid, "lines": len(lines)}

        @registry.register("tpcc_delivery")
        def tpcc_delivery(ctx, w, carrier):
            delivered = 0
            for d in range(DISTRICTS_PER_WAREHOUSE):
                oldest = None
                for key, _row in ctx.scan(
                    new_order_key(w, d, 0), new_order_key(w, d, BIG)
                ):
                    oldest = key[3]
                    break
                if oldest is None:
                    continue
                ctx.delete(new_order_key(w, d, oldest))
                order_row = ctx.read(order_key(w, d, oldest))
                if order_row is None:
                    continue
                ctx.set_fields(order_key(w, d, oldest), carrier_id=carrier)
                total = 0.0
                for _key, line in ctx.scan(
                    order_line(w, d, oldest, 0), order_line(w, d, oldest, BIG)
                ):
                    total += line.get("amount", 0.0)
                ctx.add_fields(
                    customer(w, d, order_row["c_id"]), balance=total, delivery_cnt=1
                )
                delivered += 1
            return delivered

        @registry.register("tpcc_stock_level")
        def tpcc_stock_level(ctx, w, d, threshold):
            dist = ctx.read(district(w, d))
            if dist is None:
                return 0
            next_o = dist["next_o_id"]
            lo = max(INITIAL_NEXT_O_ID, next_o - 20)
            item_ids = set()
            for _key, line in ctx.scan(
                order_line(w, d, lo, 0), order_line(w, d, BIG, 0)
            ):
                item_ids.add(line["i_id"])
            low = 0
            for i_id in sorted(item_ids):
                st = ctx.read(stock(w, i_id))
                if st is not None and st["quantity"] < threshold:
                    low += 1
            return low

        return registry

    # ------------------------------------------------------------ generation
    def _pick_proc(self, rng: SeededRng) -> str:
        total = sum(weight for _p, weight in MIX)
        u = rng.random() * total
        acc = 0.0
        for proc, weight in MIX:
            acc += weight
            if u <= acc:
                return proc
        return MIX[-1][0]

    def generate_block(self, size: int, rng: SeededRng) -> list[TxnSpec]:
        affinity = self.affinity
        specs = []
        for _ in range(size):
            proc = self._pick_proc(rng)
            w = rng.randint(0, self.num_warehouses - 1)
            remote = None
            if affinity is not None and affinity.num_shards > 1:
                home = affinity.pick_home(rng)
                w = affinity.map_index(w, home, self.num_warehouses)
                if proc in ("tpcc_new_order", "tpcc_payment") and affinity.crosses(
                    rng
                ):
                    remote = affinity.pick_other(rng, home)
            d = rng.randint(0, DISTRICTS_PER_WAREHOUSE - 1)
            c = rng.randint(0, CUSTOMERS_PER_DISTRICT - 1)
            if proc == "tpcc_new_order":
                n_lines = rng.randint(5, 15)
                if remote is None:
                    lines = tuple(
                        (rng.randint(0, NUM_ITEMS - 1), rng.randint(1, 10))
                        for _ in range(n_lines)
                    )
                else:
                    # the last line sources its stock from a remote
                    # warehouse (TPC-C's remote order line); every other
                    # line stays home-supplied
                    remote_w = affinity.map_index(
                        rng.randint(0, self.num_warehouses - 1),
                        remote,
                        self.num_warehouses,
                    )
                    lines = tuple(
                        (
                            remote_w if n == n_lines - 1 else w,
                            rng.randint(0, NUM_ITEMS - 1),
                            rng.randint(1, 10),
                        )
                        for n in range(n_lines)
                    )
                specs.append(TxnSpec(proc, params(w=w, d=d, c=c, lines=lines)))
            elif proc == "tpcc_payment":
                amount = float(rng.randint(1, 5000)) / 100.0
                if remote is None:
                    specs.append(TxnSpec(proc, params(w=w, d=d, c=c, amount=amount)))
                else:
                    c_w = affinity.map_index(
                        rng.randint(0, self.num_warehouses - 1),
                        remote,
                        self.num_warehouses,
                    )
                    c_d = rng.randint(0, DISTRICTS_PER_WAREHOUSE - 1)
                    specs.append(
                        TxnSpec(
                            proc,
                            params(w=w, d=d, c=c, amount=amount, c_w=c_w, c_d=c_d),
                        )
                    )
            elif proc == "tpcc_order_status":
                specs.append(TxnSpec(proc, params(w=w, d=d, c=c)))
            elif proc == "tpcc_delivery":
                specs.append(TxnSpec(proc, params(w=w, carrier=rng.randint(1, 10))))
            else:
                specs.append(
                    TxnSpec(proc, params(w=w, d=d, threshold=rng.randint(10, 20)))
                )
        return specs
