"""Adversarial workload family — stress where the paper's claims bite.

Three seeded generators over one shared integer keyspace, each aimed at a
specific piece of the machinery:

- :class:`ContentionWorkload` (``adv-counter``) — a handful of hot
  counters absorbing most updates, mixing *fused* arithmetic adds (which
  Harmony reorders and coalesces) with *separated* read-modify-writes
  (which form backward dangerous structures). This is the worst case for
  the reordering and false-abort machinery.
- :class:`RangeScanWorkload` (``adv-scan``) — read-mostly range scans with
  periodic writer bursts that insert/delete inside the scanned windows:
  phantom pressure on the range-read validation paths.
- :class:`SkewShiftWorkload` (``adv-skewshift``) — a Zipfian hotspot whose
  center migrates deterministically mid-run, so any state cached or
  partitioned around the early hotspot goes cold.

All three honour :class:`~repro.workloads.base.ShardAffinity` with the
same partition-fold idiom as YCSB/SmallBank: every access stays in the
transaction's home partition except one access sent to a second partition
with probability ``cross_ratio``. Generation is a pure function of the
RNG stream plus a per-instance transaction counter, and instances carry
only plain data, so they pickle into process-pool prepare workers.
"""

from __future__ import annotations

from repro.sim.rng import SeededRng
from repro.txn.procedures import ProcedureRegistry
from repro.txn.transaction import TxnSpec
from repro.workloads.base import (
    ScanFootprint,
    ShardAffinity,
    Workload,
    params,
)
from repro.workloads.zipf import ZipfGenerator

ADV_TABLE = "adv"


def adv_key(i: int) -> tuple:
    return (ADV_TABLE, i)


class AdversarialWorkload(Workload):
    """Shared base: one keyspace, one generic op-list procedure.

    Ops are tuples dispatched by their first element:
    ``("r", i)`` read, ``("u", i, delta)`` fused add,
    ``("ru", i, delta)`` separated read-modify-write,
    ``("w", i, value)`` blind write, ``("del", i)`` delete,
    ``("scan", lo, hi)`` range scan over ``[lo, hi)``, and
    ``("wscan", lo, hi)`` — the same scan, but generated *wide*: the
    window deliberately ignores partition bounds, so only the compiled
    :meth:`spec_footprint` can route it exactly.
    """

    def __init__(
        self, num_keys: int, affinity: ShardAffinity | None = None
    ) -> None:
        if num_keys < 1:
            raise ValueError("need at least one key")
        if affinity is not None and num_keys < affinity.num_shards:
            raise ValueError(
                f"affinity over {affinity.num_shards} shards needs at least "
                f"{affinity.num_shards} keys, got {num_keys}"
            )
        self.num_keys = num_keys
        self.affinity = affinity
        self._txn_seq = 0

    # ----------------------------------------------------------------- state
    def initial_state(self) -> dict:
        return {adv_key(i): 100 + i for i in range(self.num_keys)}

    # ------------------------------------------------------------ procedures
    def build_registry(self) -> ProcedureRegistry:
        registry = ProcedureRegistry()

        @registry.register("adv_txn")
        def adv_txn(ctx, ops):
            out = []
            # keys with a pending fused add or delete this transaction:
            # reading back through that pending command chain would raise
            # on a base the lag snapshot doesn't hold yet (early blocks
            # predate the preload under inter-block lag), so reads of
            # those keys stay fused — a data-independent, deterministic
            # rule, the procedure stays total under every scheme
            blind = set()
            for op in ops:
                kind = op[0]
                if kind == "r":
                    out.append(
                        None if op[1] in blind else ctx.read(adv_key(op[1]))
                    )
                elif kind == "u":
                    ctx.add(adv_key(op[1]), op[2])
                    blind.add(op[1])
                elif kind == "ru":
                    if op[1] in blind:
                        ctx.add(adv_key(op[1]), op[2])
                    else:
                        # separated RMW; the `or 0` keeps the procedure
                        # total when a writer burst deleted the row
                        value = ctx.read(adv_key(op[1])) or 0
                        ctx.write(adv_key(op[1]), value + op[2])
                elif kind == "w":
                    ctx.write(adv_key(op[1]), op[2])
                elif kind == "del":
                    ctx.delete(adv_key(op[1]))
                    blind.add(op[1])
                else:  # "scan" / "wscan" — identical execution
                    rows = ctx.scan(adv_key(op[1]), adv_key(op[2]))
                    out.append(len(rows))
            return tuple(out)

        return registry

    # ---------------------------------------------------------- shard hints
    def spec_keys(self, spec: TxnSpec) -> list | None:
        """Point keys plus scan endpoints.

        Endpoints suffice for ``scan`` ops because every generator keeps
        them inside one contiguous partition of the layout its affinity
        was built with (and layout partitions nest inside any deployment
        whose shard count divides the layout's, the only combinations the
        benches replay). A ``wscan`` breaks that invariant by design, so
        its presence makes the key footprint unknowable (``None`` —
        broadcast) unless the router consumes :meth:`spec_footprint`.
        """
        keys = []
        for op in spec.param_dict["ops"]:
            if op[0] == "wscan":
                return None
            if op[0] == "scan":
                keys.append(adv_key(op[1]))
                keys.append(adv_key(max(op[1], op[2] - 1)))
            else:
                keys.append(adv_key(op[1]))
        return keys

    def spec_footprint(self, spec: TxnSpec) -> ScanFootprint:
        """Exact compiled footprint: point keys plus ``[lo, hi)`` index
        ranges for every scan (wide or not) — the router computes true
        participant sets from this instead of endpoint guesses or a
        broadcast. The adv table's index space *is* the key integer, so
        scan bounds translate verbatim."""
        points = []
        ranges = []
        for op in spec.param_dict["ops"]:
            if op[0] in ("scan", "wscan"):
                ranges.append((op[1], op[2]))
            else:
                points.append(adv_key(op[1]))
        return ScanFootprint(points, ranges)

    def shard_index(self, key: object) -> int | None:
        if isinstance(key, tuple) and len(key) == 2 and key[0] == ADV_TABLE:
            return key[1]
        return None

    @property
    def shard_space(self) -> int | None:
        return self.num_keys

    # ------------------------------------------------------------ generation
    def _partitions(self, rng: SeededRng) -> tuple[int | None, int | None]:
        """(home, remote) partition draw for one transaction; ``(None,
        None)`` when no affinity is set (whole keyspace is home)."""
        affinity = self.affinity
        if affinity is None or affinity.num_shards == 1:
            return None, None
        home = affinity.pick_home(rng)
        remote = affinity.pick_other(rng, home) if affinity.crosses(rng) else None
        return home, remote

    def _fold(self, index: int, partition: int | None) -> int:
        if partition is None:
            return index
        return self.affinity.map_index(index, partition, self.num_keys)


class ContentionWorkload(AdversarialWorkload):
    """High-contention counters: most ops hit ``hot_keys`` counters at the
    base of each partition, mixing fused adds with separated RMWs."""

    name = "adv-counter"

    def __init__(
        self,
        num_keys: int = 256,
        hot_keys: int = 4,
        hot_ratio: float = 0.8,
        ops_per_txn: int = 6,
        fused_ratio: float = 0.5,
        affinity: ShardAffinity | None = None,
    ) -> None:
        super().__init__(num_keys, affinity)
        if not 1 <= hot_keys <= num_keys:
            raise ValueError("hot_keys must be within [1, num_keys]")
        self.hot_keys = hot_keys
        self.hot_ratio = hot_ratio
        self.ops_per_txn = ops_per_txn
        self.fused_ratio = fused_ratio

    def generate_block(self, size: int, rng: SeededRng) -> list[TxnSpec]:
        specs = []
        for _ in range(size):
            home, remote = self._partitions(rng)
            ops = []
            for n in range(self.ops_per_txn):
                target = remote if (remote is not None and n == 0) else home
                if rng.random() < self.hot_ratio:
                    index = rng.randint(0, self.hot_keys - 1)
                else:
                    index = rng.randint(0, self.num_keys - 1)
                index = self._fold(index, target)
                shape = rng.random()
                delta = rng.randint(1, 9)
                if shape < 0.2:
                    ops.append(("r", index))
                elif shape < 0.2 + 0.8 * self.fused_ratio:
                    ops.append(("u", index, delta))
                else:
                    ops.append(("ru", index, delta))
            self._txn_seq += 1
            specs.append(TxnSpec("adv_txn", params(ops=tuple(ops))))
        return specs


class RangeScanWorkload(AdversarialWorkload):
    """Read-mostly range scans with deterministic writer bursts.

    Every ``burst_period`` transactions, ``burst_len`` consecutive
    transactions are writers that blind-write and delete inside the scan
    windows — phantoms for the range validators to catch.

    ``wide_scan_ratio`` > 0 makes that fraction of reader scans *wide*:
    a ``wide_span``-key window drawn over the whole keyspace, ignoring
    partition bounds — the case where endpoint routing under-covers and
    only :meth:`spec_footprint` keeps the participant set both exact and
    small. The extra RNG draws are gated on the knob, so the default
    (``0.0``) generates streams byte-identical to before the knob existed.
    """

    name = "adv-scan"

    def __init__(
        self,
        num_keys: int = 240,
        scan_span: int = 16,
        scans_per_txn: int = 2,
        burst_period: int = 10,
        burst_len: int = 2,
        writer_ops: int = 4,
        wide_scan_ratio: float = 0.0,
        wide_span: int | None = None,
        affinity: ShardAffinity | None = None,
    ) -> None:
        super().__init__(num_keys, affinity)
        if not 1 <= scan_span <= num_keys:
            raise ValueError("scan_span must be within [1, num_keys]")
        if burst_period < 1 or not 0 <= burst_len <= burst_period:
            raise ValueError("need 0 <= burst_len <= burst_period, period >= 1")
        if not 0.0 <= wide_scan_ratio <= 1.0:
            raise ValueError("wide_scan_ratio must be within [0, 1]")
        self.scan_span = scan_span
        self.scans_per_txn = scans_per_txn
        self.burst_period = burst_period
        self.burst_len = burst_len
        self.writer_ops = writer_ops
        self.wide_scan_ratio = wide_scan_ratio
        self.wide_span = (
            min(num_keys, wide_span)
            if wide_span is not None
            else min(num_keys, scan_span * 8)
        )

    def _window_start(self, rng: SeededRng, partition: int | None) -> int:
        """A scan-window start such that ``[start, start + span)`` stays
        inside ``partition`` (or the whole keyspace)."""
        if partition is None:
            lo, hi = 0, self.num_keys
        else:
            lo, hi = self.affinity.partition_bounds(self.num_keys, partition)
        span = min(self.scan_span, hi - lo)
        return lo + rng.randint(0, max(0, (hi - lo) - span))

    def generate_block(self, size: int, rng: SeededRng) -> list[TxnSpec]:
        specs = []
        for _ in range(size):
            is_writer = (self._txn_seq % self.burst_period) < self.burst_len
            home, remote = self._partitions(rng)
            ops = []
            if is_writer:
                for n in range(self.writer_ops):
                    target = (
                        remote
                        if (remote is not None and n == self.writer_ops - 1)
                        else home
                    )
                    start = self._window_start(rng, target)
                    index = start + rng.randint(0, self.scan_span - 1)
                    index = min(index, self.num_keys - 1)
                    if rng.random() < 0.25:
                        ops.append(("del", index))
                    else:
                        ops.append(("w", index, rng.randint(0, 999)))
            else:
                for n in range(self.scans_per_txn):
                    target = (
                        remote
                        if (remote is not None and n == self.scans_per_txn - 1)
                        else home
                    )
                    if (
                        self.wide_scan_ratio > 0.0
                        and rng.random() < self.wide_scan_ratio
                    ):
                        span = self.wide_span
                        start = rng.randint(0, self.num_keys - span)
                        ops.append(("wscan", start, start + span))
                        continue
                    start = self._window_start(rng, target)
                    span = min(self.scan_span, self.num_keys - start)
                    ops.append(("scan", start, start + span))
                ops.append(("r", self._fold(rng.randint(0, self.num_keys - 1), home)))
            self._txn_seq += 1
            specs.append(TxnSpec("adv_txn", params(ops=tuple(ops))))
        return specs


class SkewShiftWorkload(AdversarialWorkload):
    """Zipfian hotspot that migrates mid-run.

    Rank 0 of the Zipf draw lands at ``(phase * stride) % num_keys`` where
    ``phase`` advances every ``shift_period`` generated transactions — the
    hotspot walks the keyspace deterministically, going cold behind it.
    """

    name = "adv-skewshift"

    def __init__(
        self,
        num_keys: int = 200,
        theta: float = 0.9,
        shift_period: int = 40,
        stride: int | None = None,
        ops_per_txn: int = 4,
        fused_ratio: float = 0.5,
        affinity: ShardAffinity | None = None,
    ) -> None:
        super().__init__(num_keys, affinity)
        self.theta = theta
        if shift_period < 1:
            raise ValueError("shift_period must be >= 1")
        self.shift_period = shift_period
        self.stride = stride if stride is not None else max(1, num_keys // 3)
        self.ops_per_txn = ops_per_txn
        self.fused_ratio = fused_ratio
        self._zipf = ZipfGenerator(num_keys, theta)

    def generate_block(self, size: int, rng: SeededRng) -> list[TxnSpec]:
        specs = []
        for _ in range(size):
            phase = self._txn_seq // self.shift_period
            offset = (phase * self.stride) % self.num_keys
            home, remote = self._partitions(rng)
            ops = []
            for n in range(self.ops_per_txn):
                target = remote if (remote is not None and n == 0) else home
                index = (self._zipf.sample(rng) + offset) % self.num_keys
                index = self._fold(index, target)
                shape = rng.random()
                delta = rng.randint(1, 9)
                if shape < 0.25:
                    ops.append(("r", index))
                elif shape < 0.25 + 0.75 * self.fused_ratio:
                    ops.append(("u", index, delta))
                else:
                    ops.append(("ru", index, delta))
            self._txn_seq += 1
            specs.append(TxnSpec("adv_txn", params(ops=tuple(ops))))
        return specs
