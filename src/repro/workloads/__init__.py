"""Benchmark workloads (Section 5) and the shared workload registry.

- :mod:`repro.workloads.ycsb` — YCSB: 10K keys, 10 operations per
  transaction, each equally likely a SELECT or an UPDATE, Zipfian skew.
- :mod:`repro.workloads.smallbank` — Smallbank: 10K accounts, the standard
  six-procedure mix.
- :mod:`repro.workloads.tpcc` — TPC-C: the five standard transactions at
  the standard mix, scaled for simulation (see module docs).
- :mod:`repro.workloads.hotspot` — the Section 5.3 YCSB variant: 1% of
  records are hotspots, SELECT+UPDATE pairs fused into single UPDATEs.
- :mod:`repro.workloads.adversarial` — the adversarial family: hot
  counters, range scans with writer bursts, migrating Zipf hotspot.
- :mod:`repro.workloads.zipf` — the Zipfian generator all of them share.

Every verification surface (conformance sweeps, fault drills, bench
experiments, parallel/recovery gates) builds its workloads through
:data:`REGISTRY` / :func:`make_workload`, so adding a workload is one
registration here and the matrices pick it up together.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workloads.adversarial import (
    AdversarialWorkload,
    ContentionWorkload,
    RangeScanWorkload,
    SkewShiftWorkload,
)
from repro.workloads.base import ShardAffinity, Workload
from repro.workloads.hotspot import HotspotWorkload
from repro.workloads.smallbank import SmallbankWorkload
from repro.workloads.tpcc import TPCCWorkload
from repro.workloads.ycsb import YCSBWorkload
from repro.workloads.zipf import ZipfGenerator


@dataclass(frozen=True)
class WorkloadEntry:
    """One registered workload plus its per-surface scale profiles.

    ``default`` is the paper-scale configuration (bench experiments),
    ``conformance`` the small-and-extremely-contended scale the unsharded
    conformance sweep certifies, and ``gate`` the moderated scale shared
    by the sharded sweeps, fault drills, and parallel/recovery gates
    (sized so every partition is non-empty at 4 shards).
    """

    factory: type
    default: dict = field(default_factory=dict)
    conformance: dict = field(default_factory=dict)
    gate: dict = field(default_factory=dict)


#: name -> entry; keys are the workloads' ``name`` attributes.
REGISTRY: dict[str, WorkloadEntry] = {
    "ycsb": WorkloadEntry(
        YCSBWorkload,
        conformance={"num_keys": 150, "theta": 0.9},
        gate={"num_keys": 300, "theta": 0.7},
    ),
    "smallbank": WorkloadEntry(
        SmallbankWorkload,
        conformance={"num_accounts": 60, "theta": 0.9},
        gate={"num_accounts": 120, "theta": 0.7},
    ),
    "ycsb-hotspot": WorkloadEntry(
        HotspotWorkload,
        conformance={"num_keys": 200, "hotspot_probability": 0.7},
        gate={"num_keys": 300, "hotspot_probability": 0.5},
    ),
    "tpcc": WorkloadEntry(
        TPCCWorkload,
        conformance={"num_warehouses": 2},
        gate={"num_warehouses": 8},
    ),
    "adv-counter": WorkloadEntry(
        ContentionWorkload,
        conformance={"num_keys": 64, "hot_keys": 3},
        gate={
            "num_keys": 160,
            "hot_keys": 8,
            "hot_ratio": 0.5,
            "ops_per_txn": 4,
        },
    ),
    "adv-scan": WorkloadEntry(
        RangeScanWorkload,
        conformance={"num_keys": 200},
        gate={"num_keys": 240},
    ),
    "adv-skewshift": WorkloadEntry(
        SkewShiftWorkload,
        conformance={"num_keys": 150, "theta": 0.9},
        gate={"num_keys": 240, "theta": 0.7},
    ),
}


def workload_names() -> tuple[str, ...]:
    return tuple(sorted(REGISTRY))


def make_workload(
    name: str,
    profile: str = "default",
    affinity: ShardAffinity | None = None,
    **overrides,
):
    """Build a registered workload at one of its scale profiles.

    ``overrides`` are constructor kwargs layered over the profile;
    ``affinity`` is passed through when given (every registered workload
    accepts it).
    """
    try:
        entry = REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown workload {name!r}") from None
    kwargs = dict(getattr(entry, profile))
    kwargs.update(overrides)
    if affinity is not None:
        kwargs["affinity"] = affinity
    return entry.factory(**kwargs)


__all__ = [
    "AdversarialWorkload",
    "ContentionWorkload",
    "HotspotWorkload",
    "RangeScanWorkload",
    "REGISTRY",
    "ShardAffinity",
    "SkewShiftWorkload",
    "SmallbankWorkload",
    "TPCCWorkload",
    "Workload",
    "WorkloadEntry",
    "YCSBWorkload",
    "ZipfGenerator",
    "make_workload",
    "workload_names",
]
