"""Benchmark workloads (Section 5).

- :mod:`repro.workloads.ycsb` — YCSB: 10K keys, 10 operations per
  transaction, each equally likely a SELECT or an UPDATE, Zipfian skew.
- :mod:`repro.workloads.smallbank` — Smallbank: 10K accounts, the standard
  six-procedure mix.
- :mod:`repro.workloads.tpcc` — TPC-C: the five standard transactions at
  the standard mix, scaled for simulation (see module docs).
- :mod:`repro.workloads.hotspot` — the Section 5.3 YCSB variant: 1% of
  records are hotspots, SELECT+UPDATE pairs fused into single UPDATEs.
- :mod:`repro.workloads.zipf` — the Zipfian generator all of them share.
"""

from repro.workloads.base import Workload
from repro.workloads.hotspot import HotspotWorkload
from repro.workloads.smallbank import SmallbankWorkload
from repro.workloads.tpcc import TPCCWorkload
from repro.workloads.ycsb import YCSBWorkload
from repro.workloads.zipf import ZipfGenerator

__all__ = [
    "HotspotWorkload",
    "SmallbankWorkload",
    "TPCCWorkload",
    "Workload",
    "YCSBWorkload",
    "ZipfGenerator",
]
