"""The hotspot YCSB variant of Section 5.3 (Figure 14).

Still 10 statements per transaction, but 1% of the records are *hotspots*
and each statement targets a hotspot with a controlled probability. Pairs
of SELECT and UPDATE touching the same record are rewritten as one UPDATE
that both reads and writes (``UPDATE ... SET v = v + ?``), i.e. a fused
arithmetic command — the rewrite the paper applies because "Postgres's
optimizer does not have this rewrite rule".

With the rewrite in place a transaction's hotspot access contributes *only*
a ww-dependency: Harmony reorders and coalesces it (flat curve in
Figure 14), while Aria/RBC abort all but one updater per hotspot.
"""

from __future__ import annotations

from repro.sim.rng import SeededRng
from repro.txn.procedures import ProcedureRegistry
from repro.txn.transaction import TxnSpec
from repro.workloads.base import ShardAffinity, Workload, params
from repro.workloads.ycsb import key_of

HOT_FRACTION = 0.01


class HotspotWorkload(Workload):
    name = "ycsb-hotspot"

    def __init__(
        self,
        num_keys: int = 10_000,
        statements_per_txn: int = 10,
        hotspot_probability: float = 0.5,
        fused: bool = True,
        affinity: ShardAffinity | None = None,
    ) -> None:
        self.num_keys = num_keys
        self.statements_per_txn = statements_per_txn
        self.hotspot_probability = hotspot_probability
        #: fused=True models the SELECT+UPDATE -> UPDATE rewrite; False is
        #: the separated form (the "opportunity lost" case of Section 3.3.2).
        self.fused = fused
        #: partition-local key choice with a tunable cross-shard ratio; the
        #: affinity fold keeps hotspot pressure (multiples of the stride
        #: remain spread across each partition's index range)
        self.affinity = affinity
        self.num_hot = max(1, int(num_keys * HOT_FRACTION))
        #: hot keys are spread across the keyspace (and thus across heap
        #: pages) so that hotspot pressure changes *conflicts*, not page
        #: locality
        self._stride = max(1, num_keys // self.num_hot)

    def initial_state(self) -> dict:
        return {key_of(i): 1000 + i for i in range(self.num_keys)}

    def build_registry(self) -> ProcedureRegistry:
        registry = ProcedureRegistry()

        @registry.register("hotspot_txn")
        def hotspot_txn(ctx, ops):
            """ops: ("u", k, delta) fused update | ("ru", k, delta) separated
            read-then-update | ("r", k) plain read."""
            out = []
            for op in ops:
                kind = op[0]
                if kind == "r":
                    out.append(ctx.read(key_of(op[1])))
                elif kind == "u":
                    ctx.add(key_of(op[1]), op[2])
                else:  # separated read-modify-write
                    value = ctx.read(key_of(op[1])) or 0
                    ctx.write(key_of(op[1]), value + op[2])
            return tuple(out)

        return registry

    def is_hot(self, key_index: int) -> bool:
        return key_index % self._stride == 0

    def _pick_key(self, rng: SeededRng) -> int:
        if rng.random() < self.hotspot_probability:
            return rng.randint(0, self.num_hot - 1) * self._stride
        cold = rng.randint(0, self.num_keys - 1)
        while self.is_hot(cold):
            cold = rng.randint(0, self.num_keys - 1)
        return cold

    def generate_block(self, size: int, rng: SeededRng) -> list[TxnSpec]:
        """Each transaction is 10 statements = 5 SELECT+UPDATE pairs; after
        the rewrite each pair is a single fused UPDATE (or a separated
        read-then-write when ``fused=False``)."""
        affinity = self.affinity
        specs = []
        update_kind = "u" if self.fused else "ru"
        pairs = max(1, self.statements_per_txn // 2)
        for _ in range(size):
            home = remote = None
            if affinity is not None and affinity.num_shards > 1:
                home = affinity.pick_home(rng)
                if affinity.crosses(rng):
                    remote = affinity.pick_other(rng, home)
            ops = []
            chosen: set[int] = set()
            for pair in range(pairs):
                partition = None
                if home is not None:
                    partition = remote if remote is not None and pair == pairs - 1 else home

                def pick() -> int:
                    key = self._pick_key(rng)
                    if partition is not None:
                        key = affinity.map_index(key, partition, self.num_keys)
                    return key

                key = pick()
                tries = 0
                while key in chosen and tries < 20:
                    key = pick()
                    tries += 1
                chosen.add(key)
                ops.append((update_kind, key, rng.randint(1, 9)))
            specs.append(TxnSpec("hotspot_txn", params(ops=tuple(ops))))
        return specs

    # ---------------------------------------------------------- shard hints
    def spec_keys(self, spec: TxnSpec) -> list:
        return [key_of(op[1]) for op in spec.param_dict["ops"]]

    def shard_index(self, key: object) -> int | None:
        return key[1] if isinstance(key, tuple) and key[0] == "usertable" else None

    @property
    def shard_space(self) -> int:
        return self.num_keys
