"""YCSB (Cooper et al., SoCC 2010) as configured by the paper:

10K keys, 10 operations wrapped into one transaction (following Aria/
TicToc practice), each operation an equally likely SELECT or UPDATE, key
popularity Zipfian with the "skewness" knob of Figures 11–12.

UPDATEs are expressed as ``set`` commands (a blind field overwrite, like
YCSB's writes); the *hotspot* variant in :mod:`repro.workloads.hotspot`
uses arithmetic updates instead.
"""

from __future__ import annotations

from repro.sim.rng import SeededRng
from repro.txn.procedures import ProcedureRegistry
from repro.txn.transaction import TxnSpec
from repro.workloads.base import ShardAffinity, Workload, params
from repro.workloads.zipf import ZipfGenerator


def key_of(index: int) -> tuple:
    return ("usertable", index)


class YCSBWorkload(Workload):
    name = "ycsb"

    def __init__(
        self,
        num_keys: int = 10_000,
        ops_per_txn: int = 10,
        read_ratio: float = 0.5,
        theta: float = 0.6,
        distinct_keys: bool = True,
        affinity: ShardAffinity | None = None,
    ) -> None:
        self.num_keys = num_keys
        self.ops_per_txn = ops_per_txn
        self.read_ratio = read_ratio
        self.theta = theta
        self.distinct_keys = distinct_keys
        self.affinity = affinity
        self._zipf = ZipfGenerator(num_keys, theta)
        self._write_seq = 0

    def initial_state(self) -> dict:
        return {key_of(i): 1000 + i for i in range(self.num_keys)}

    def build_registry(self) -> ProcedureRegistry:
        registry = ProcedureRegistry()

        @registry.register("ycsb_txn")
        def ycsb_txn(ctx, ops):
            """ops: tuple of ("r", key_index) / ("w", key_index, value)."""
            results = []
            for op in ops:
                if op[0] == "r":
                    results.append(ctx.read(key_of(op[1])))
                else:
                    ctx.write(key_of(op[1]), op[2])
            return tuple(results)

        return registry

    def generate_block(self, size: int, rng: SeededRng) -> list[TxnSpec]:
        affinity = self.affinity
        specs = []
        for _ in range(size):
            home = remote = None
            if affinity is not None and affinity.num_shards > 1:
                home = affinity.pick_home(rng)
                if affinity.crosses(rng):
                    remote = affinity.pick_other(rng, home)
            if self.distinct_keys:
                ranks = self._zipf.sample_distinct(rng, self.ops_per_txn)
            else:
                ranks = [self._zipf.sample(rng) for _ in range(self.ops_per_txn)]
            if home is not None:
                # fold every access into the home partition; a cross-shard
                # transaction sends its last access to the remote partition.
                # Folding can collide two distinct ranks onto one partition-
                # local index, so re-establish distinctness by probing to
                # the next free index inside the partition (deterministic,
                # no extra rng draws).
                folded: list[int] = []
                used: set[int] = set()
                for j, rank in enumerate(ranks):
                    partition = (
                        remote if remote is not None and j == len(ranks) - 1 else home
                    )
                    index = affinity.map_index(rank, partition, self.num_keys)
                    if self.distinct_keys:
                        lo, hi = affinity.partition_bounds(self.num_keys, partition)
                        span = hi - lo
                        tries = 0
                        while index in used and tries < span:
                            index = lo + (index - lo + 1) % span
                            tries += 1
                        used.add(index)
                    folded.append(index)
                ranks = folded
            ops = []
            for rank in ranks:
                if rng.random() < self.read_ratio:
                    ops.append(("r", rank))
                else:
                    self._write_seq += 1
                    ops.append(("w", rank, 10_000 + self._write_seq))
            specs.append(TxnSpec("ycsb_txn", params(ops=tuple(ops))))
        return specs

    # ---------------------------------------------------------- shard hints
    def spec_keys(self, spec: TxnSpec) -> list:
        return [key_of(op[1]) for op in spec.param_dict["ops"]]

    def shard_index(self, key: object) -> int | None:
        return key[1] if isinstance(key, tuple) and key[0] == "usertable" else None

    @property
    def shard_space(self) -> int:
        return self.num_keys
