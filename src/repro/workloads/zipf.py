"""Zipfian key-popularity generator (YCSB-style).

``theta`` (the paper's "skewness") is the Zipf exponent: 0 is uniform, 1.0
is the heavy skew where a handful of keys absorbs most accesses. Sampling
uses a precomputed CDF and binary search — deterministic given the RNG
stream, O(log n) per draw.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.sim.rng import SeededRng


class ZipfGenerator:
    """Draws ranks in [0, n) with probability proportional to 1/(rank+1)^theta."""

    def __init__(self, n: int, theta: float) -> None:
        if n < 1:
            raise ValueError("need at least one item")
        if theta < 0:
            raise ValueError("theta must be >= 0")
        self.n = n
        self.theta = theta
        cumulative = 0.0
        self._cdf: list[float] = []
        for rank in range(1, n + 1):
            cumulative += 1.0 / (rank**theta)
            self._cdf.append(cumulative)
        total = self._cdf[-1]
        self._cdf = [c / total for c in self._cdf]

    def sample(self, rng: SeededRng) -> int:
        """One rank draw; rank 0 is the most popular item."""
        u = rng.random()
        return bisect_left(self._cdf, u)

    def sample_distinct(self, rng: SeededRng, k: int) -> list[int]:
        """``k`` distinct ranks (used to avoid self-conflicts within a txn)."""
        if k > self.n:
            raise ValueError("cannot draw more distinct items than exist")
        seen: set[int] = set()
        out: list[int] = []
        while len(out) < k:
            rank = self.sample(rng)
            if rank not in seen:
                seen.add(rank)
                out.append(rank)
        return out
