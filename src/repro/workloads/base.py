"""Workload interface consumed by the system assemblies and benches."""

from __future__ import annotations

from repro.sim.rng import SeededRng
from repro.txn.procedures import ProcedureRegistry
from repro.txn.transaction import TxnSpec


class Workload:
    """A benchmark: initial state, stored procedures, and a spec stream.

    Subclasses override the three methods below. ``generate_block`` must be
    a pure function of the RNG stream so that every system under comparison
    sees the identical transaction sequence.
    """

    name = "abstract"

    def initial_state(self) -> dict:
        """Key -> value map the database is preloaded with."""
        raise NotImplementedError

    def build_registry(self) -> ProcedureRegistry:
        """The stored procedures (smart contracts) this workload invokes."""
        raise NotImplementedError

    def generate_block(self, size: int, rng: SeededRng) -> list[TxnSpec]:
        """The next ``size`` transaction specs."""
        raise NotImplementedError

    # Convenience used by tests and examples.
    def generate_blocks(self, num_blocks: int, size: int, rng: SeededRng):
        for _ in range(num_blocks):
            yield self.generate_block(size, rng)


def params(**kwargs) -> tuple:
    """Freeze procedure parameters into the hashable TxnSpec form."""
    return tuple(sorted(kwargs.items()))
