"""Workload interface consumed by the system assemblies and benches."""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from functools import lru_cache

from repro.intervals import RangeIndex
from repro.sim.rng import SeededRng
from repro.txn.procedures import ProcedureRegistry
from repro.txn.transaction import TxnSpec


class ScanFootprint:
    """A compiled static read/write footprint: point keys plus half-open
    index-space scan ranges.

    Range reads used to force a choice between two bad participant sets:
    endpoint keys (an *underset* the moment a scan crosses a partition)
    or a full broadcast. A footprint keeps both exact: ``points`` route
    key-by-key, ``ranges`` are ``[lo, hi)`` integer intervals in the
    workload's ``shard_index`` space, compiled into a
    :class:`~repro.intervals.RangeIndex` so the router can stab each
    ownership override's position against every scanned range at once.
    """

    __slots__ = ("points", "ranges", "_index")

    def __init__(self, points=(), ranges=()) -> None:
        self.points = tuple(points)
        self.ranges = tuple(ranges)
        self._index = RangeIndex(
            (lo, hi, (lo, hi)) for lo, hi in self.ranges
        )

    def covers_index(self, position: int) -> bool:
        """Whether any compiled scan range covers ``position``."""
        return bool(self._index.stab(position))


@lru_cache(maxsize=None)
def partition_split_points(space: int, num_shards: int) -> tuple:
    """Split points of a ``space``-key index range into contiguous
    partitions — THE partitioning formula. Workload generation
    (:class:`ShardAffinity`), the reverse lookup
    (:func:`partition_of_index`) and the shard router's workload policy
    all consume this one cached tuple, so "generated partition-local" and
    "routed locally" can never disagree."""
    return tuple(p * space // num_shards for p in range(1, num_shards))


def partition_of_index(index: int, space: int, num_shards: int) -> int:
    """The contiguous partition holding position ``index`` of ``space``
    (the inverse of :meth:`ShardAffinity.partition_bounds`)."""
    if num_shards <= 1:
        return 0
    return bisect_right(partition_split_points(space, num_shards), index)


@dataclass(frozen=True)
class ShardAffinity:
    """Shard-affinity knob: how often a transaction leaves its home partition.

    The keyspace is split into ``num_shards`` contiguous index partitions
    (the same split :class:`~repro.shard.router.ShardRouter`'s workload
    policy routes on). Each transaction draws a home partition and keeps
    all its accesses there; with probability ``cross_ratio`` it sends one
    access to a second partition instead, making it a cross-shard
    transaction. ``num_shards`` here is a property of the *data layout*,
    so the identical transaction stream can be replayed against deployments
    with any number of execution shards (the 1-vs-N scaling comparison).
    """

    num_shards: int
    cross_ratio: float = 0.0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("need at least one shard")
        if not 0.0 <= self.cross_ratio <= 1.0:
            raise ValueError("cross_ratio must be within [0, 1]")

    def partition_bounds(self, space: int, partition: int) -> tuple[int, int]:
        """Half-open index range of ``partition`` over a ``space``-key table.

        Requires ``space >= num_shards`` (every partition non-empty);
        anything smaller would force a "partition-local" sample into an
        index another shard owns, silently breaking the cross-ratio knob.
        """
        if space < self.num_shards:
            raise ValueError(
                f"affinity over {self.num_shards} shards needs at least "
                f"{self.num_shards} keys, got {space}"
            )
        points = partition_split_points(space, self.num_shards)
        lo = points[partition - 1] if partition > 0 else 0
        hi = points[partition] if partition < len(points) else space
        return lo, hi

    def map_index(self, index: int, partition: int, space: int) -> int:
        """Deterministically fold a global sample into ``partition``'s range
        (preserves the sampling skew within the partition)."""
        lo, hi = self.partition_bounds(space, partition)
        return lo + index % (hi - lo)

    def pick_home(self, rng: SeededRng) -> int:
        return rng.randint(0, self.num_shards - 1)

    def pick_other(self, rng: SeededRng, home: int) -> int:
        """A uniformly random partition different from ``home``."""
        if self.num_shards == 1:
            return home
        return (home + 1 + rng.randint(0, self.num_shards - 2)) % self.num_shards

    def crosses(self, rng: SeededRng) -> bool:
        return self.num_shards > 1 and rng.random() < self.cross_ratio


class Workload:
    """A benchmark: initial state, stored procedures, and a spec stream.

    Subclasses override the three methods below. ``generate_block`` must be
    a pure function of the RNG stream so that every system under comparison
    sees the identical transaction sequence.
    """

    name = "abstract"
    #: optional :class:`ShardAffinity`; workloads that honour it draw their
    #: keys partition-locally with a tunable cross-partition ratio
    affinity: ShardAffinity | None = None

    def initial_state(self) -> dict:
        """Key -> value map the database is preloaded with."""
        raise NotImplementedError

    # ---------------------------------------------------------- shard hints
    def spec_keys(self, spec: TxnSpec) -> list | None:
        """The static key footprint of ``spec``, or ``None`` when unknown.

        The shard router derives a transaction's participant set from this;
        ``None`` conservatively means "could touch anything" and routes the
        transaction to every shard. Workloads whose procedures' accesses
        are a pure function of the parameters (YCSB, SmallBank, hotspot)
        return the exact key list.
        """
        return None

    def spec_footprint(self, spec: TxnSpec) -> ScanFootprint | None:
        """Compiled footprint with exact scan ranges, or ``None``.

        Preferred over :meth:`spec_keys` by the router when available:
        a workload whose scans can cross partitions cannot express them
        as a key list (endpoints under-cover, ``None`` broadcasts), but a
        :class:`ScanFootprint` carries the precise index ranges and the
        router computes the true participant set.
        """
        return None

    def shard_index(self, key: object) -> int | None:
        """Position of ``key`` in the workload's contiguous index space
        (``None`` = not partitionable by position)."""
        return None

    @property
    def shard_space(self) -> int | None:
        """Size of the index space :meth:`shard_index` maps into."""
        return None

    def build_registry(self) -> ProcedureRegistry:
        """The stored procedures (smart contracts) this workload invokes."""
        raise NotImplementedError

    def generate_block(self, size: int, rng: SeededRng) -> list[TxnSpec]:
        """The next ``size`` transaction specs."""
        raise NotImplementedError

    # Convenience used by tests and examples.
    def generate_blocks(self, num_blocks: int, size: int, rng: SeededRng):
        for _ in range(num_blocks):
            yield self.generate_block(size, rng)


def params(**kwargs) -> tuple:
    """Freeze procedure parameters into the hashable TxnSpec form."""
    return tuple(sorted(kwargs.items()))
