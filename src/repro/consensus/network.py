"""Network model: the paper's three cluster settings.

- ``DEFAULT_1G`` — the default 7-node cluster: 1 Gbps Ethernet.
- ``CLOUD_LAN_5G`` — 80 t3.2xlarge instances in one region (5 Gbps).
- ``CLOUD_WAN`` — the same instances across 4 continents (Ohio, Mumbai,
  Sydney, Stockholm): cross-region one-way latency dominates.

Throughput ceilings come from uplink serialization (bytes × fan-out /
bandwidth); latency terms come from one-way delays. Figures 15–18 are
driven entirely by these two quantities.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class NetworkPreset(enum.Enum):
    DEFAULT_1G = "default-1g"
    CLOUD_LAN_5G = "cloud-lan-5g"
    CLOUD_WAN = "cloud-wan"


@dataclass(frozen=True)
class NetworkModel:
    """Point-to-point latency plus a shared per-node uplink."""

    one_way_us: float
    bandwidth_mbps: float
    #: one-way latency between different regions (WAN); same as
    #: ``one_way_us`` for single-region presets.
    cross_region_one_way_us: float = None  # type: ignore[assignment]
    regions: int = 1

    def __post_init__(self) -> None:
        if self.cross_region_one_way_us is None:
            object.__setattr__(self, "cross_region_one_way_us", self.one_way_us)

    @staticmethod
    def preset(which: NetworkPreset) -> "NetworkModel":
        if which is NetworkPreset.DEFAULT_1G:
            return NetworkModel(one_way_us=150.0, bandwidth_mbps=1000.0)
        if which is NetworkPreset.CLOUD_LAN_5G:
            return NetworkModel(one_way_us=100.0, bandwidth_mbps=5000.0)
        return NetworkModel(
            one_way_us=100.0,
            bandwidth_mbps=5000.0,
            cross_region_one_way_us=75_000.0,
            regions=4,
        )

    def transfer_us(self, nbytes: int) -> float:
        """Serialization delay of ``nbytes`` on one uplink."""
        return nbytes * 8 / self.bandwidth_mbps  # Mbps == bits/us

    def broadcast_us(self, nbytes: int, fanout: int) -> float:
        """Serialize ``nbytes`` to ``fanout`` peers over one shared uplink."""
        return self.transfer_us(nbytes) * max(0, fanout)

    def worst_one_way_us(self, num_nodes: int) -> float:
        """Worst one-way delay to reach ``num_nodes`` peers.

        With a geo-distributed deployment the worst path crosses regions as
        soon as nodes spill beyond one region (the paper places 20 per
        region: more than 20 nodes => WAN latencies).
        """
        if self.regions <= 1:
            return self.one_way_us
        per_region = 20
        if num_nodes <= per_region:
            return self.one_way_us
        return self.cross_region_one_way_us

    def rtt_us(self, num_nodes: int = 1) -> float:
        return 2.0 * self.worst_one_way_us(num_nodes)
