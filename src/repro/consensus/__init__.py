"""Consensus layer: pluggable ordering services (Section 4).

HarmonyBC's consensus layer is a pluggable module; the paper evaluates a
crash-fault-tolerant Kafka ordering service (default) and Byzantine-fault-
tolerant HotStuff. Both are modelled analytically on top of the network
model: the evaluation's claims about them (Figures 1, 17, 18) concern
throughput ceilings and latency floors, not internals.

- :mod:`repro.consensus.crypto` — hash chaining and keyed "signatures"
  with metered sign/verify costs.
- :mod:`repro.consensus.network` — latency/bandwidth presets (default
  1 Gbps cluster, cloud LAN 5 Gbps, 4-continent WAN).
- :mod:`repro.consensus.kafka` — CFT ordering.
- :mod:`repro.consensus.hotstuff` — 3-phase pipelined BFT.
"""

from repro.consensus.crypto import Signer, sha256_hex
from repro.consensus.hotstuff import HotStuffConsensus
from repro.consensus.kafka import KafkaOrdering
from repro.consensus.network import NetworkModel, NetworkPreset

__all__ = [
    "HotStuffConsensus",
    "KafkaOrdering",
    "NetworkModel",
    "NetworkPreset",
    "Signer",
    "sha256_hex",
]
