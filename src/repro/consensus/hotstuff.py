"""HotStuff BFT consensus (Yin et al., PODC 2019) — analytic model.

Three chained phases (prepare / pre-commit / commit), linear message
complexity, and pipelining: each new block piggybacks the quorum
certificate of its predecessor, so at steady state one block completes per
*round*, while an individual block's end-to-end latency spans three rounds.

What Figures 17/18 exercise:

- **throughput** is bounded by the leader's per-round work — verifying
  ``n`` vote signatures, signing, hashing the batch — NOT by the WAN
  round-trip (rounds pipeline), so geo-distribution barely moves it;
- **latency** is three round-trips, so crossing continents multiplies it.

Figure 1's point — consensus outruns a disk DB layer by an order of
magnitude — falls out of the same model at 80 nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.consensus.network import NetworkModel
from repro.sim.costs import CostModel


@dataclass
class HotStuffConsensus:
    """Analytic model of pipelined (chained) HotStuff."""

    network: NetworkModel
    costs: CostModel
    num_nodes: int
    #: consensus batches are larger than database blocks; the ordering
    #: service re-cuts them (the paper tunes block size per system).
    batch_size: int = 1000
    #: bytes per transaction on the proposal critical path — hash-based
    #: dissemination (payloads sync off the critical path).
    proposal_bytes_per_txn: int = 32

    @property
    def quorum(self) -> int:
        return 2 * ((self.num_nodes - 1) // 3) + 1

    def leader_round_cpu_us(self) -> float:
        """Per-round leader work: verify a quorum of votes, sign, hash."""
        verify_votes = self.quorum * self.costs.verify_us
        sign = self.costs.sign_us
        batch_hash = self.batch_size * self.costs.hash_us * 0.05  # Merkle-ish, amortized
        return verify_votes + sign + batch_hash

    def round_interval_us(self) -> float:
        """Steady-state spacing between consecutive committed batches."""
        cpu = self.leader_round_cpu_us()
        proposal_bytes = self.batch_size * self.proposal_bytes_per_txn
        serialization = self.network.broadcast_us(proposal_bytes, self.num_nodes - 1)
        return max(cpu, serialization)

    def throughput_tps(self) -> float:
        interval = self.round_interval_us()
        return self.batch_size / (interval / 1e6)

    def block_latency_us(self) -> float:
        """Three phases, each a leader<->replicas round trip."""
        round_trip = self.network.rtt_us(self.num_nodes)
        per_phase = round_trip + self.costs.sign_us + self.costs.verify_us
        return 3.0 * per_phase + self.leader_round_cpu_us()

    # -- adapter API shared with KafkaOrdering -------------------------------
    def block_latency_for_us(self, block_bytes: int, num_replicas: int) -> float:
        return self.block_latency_us()

    def min_block_interval_us(self, block_bytes: int, num_replicas: int) -> float:
        """Interval scaled from consensus batches down to database blocks."""
        per_txn_us = self.round_interval_us() / self.batch_size
        block_txns = max(1, block_bytes // 128)
        return per_txn_us * block_txns
