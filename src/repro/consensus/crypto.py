"""Hashing and signatures for tamper-evidence (Section 4, Security).

Real deployments use x509 identities and ECDSA; what the evaluation
exercises is (a) hash chaining making tampering detectable and (b) the CPU
cost of sign/verify on the critical path. We use SHA-256 for hashes and
keyed HMAC-SHA256 as the signature primitive — cryptographically sound for
the trust model we simulate (the key registry stands in for the CA).
"""

from __future__ import annotations

import hashlib
import hmac


def sha256_hex(data: bytes | str) -> str:
    if isinstance(data, str):
        data = data.encode()
    return hashlib.sha256(data).hexdigest()


class Signer:
    """A node identity that can sign and verify payloads."""

    def __init__(self, identity: str, secret: bytes | None = None) -> None:
        self.identity = identity
        self._secret = secret or hashlib.sha256(f"key:{identity}".encode()).digest()

    def sign(self, payload: bytes | str) -> str:
        if isinstance(payload, str):
            payload = payload.encode()
        return hmac.new(self._secret, payload, hashlib.sha256).hexdigest()

    def verify(self, payload: bytes | str, signature: str) -> bool:
        return hmac.compare_digest(self.sign(payload), signature)


class KeyRegistry:
    """Node authentication: only registered identities may participate.

    Mirrors the paper's reuse of the consensus layer's authentication —
    "only identified clients can submit transactions. The replicas are also
    authenticated when connecting to the consensus layer."
    """

    def __init__(self) -> None:
        self._signers: dict[str, Signer] = {}

    def enroll(self, identity: str) -> Signer:
        if identity in self._signers:
            raise ValueError(f"identity {identity!r} already enrolled")
        signer = Signer(identity)
        self._signers[identity] = signer
        return signer

    def is_enrolled(self, identity: str) -> bool:
        return identity in self._signers

    def verify(self, identity: str, payload: bytes | str, signature: str) -> bool:
        signer = self._signers.get(identity)
        if signer is None:
            return False
        return signer.verify(payload, signature)
