"""Kafka-style crash-fault-tolerant ordering service.

The default consensus layer of HarmonyBC (and of Fabric deployments of the
period). Clients submit transactions to the ordering service, which batches
them into blocks and broadcasts each block to every replica. Being a
replicated log append, its latency is a couple of network hops plus disk
append; its throughput ceiling is the broadcast uplink.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.consensus.network import NetworkModel
from repro.sim.costs import CostModel


@dataclass
class KafkaOrdering:
    """Analytic model of a Kafka ordering service."""

    network: NetworkModel
    costs: CostModel
    #: replication factor inside the ordering cluster (3 in the paper's
    #: cloud experiments: "3 of them as the ordering service").
    ordering_replicas: int = 3

    def block_latency_us(self, block_bytes: int, num_replicas: int) -> float:
        """Client -> orderer -> (intra-cluster replication) -> broadcast."""
        submit = self.network.one_way_us
        replicate = self.network.one_way_us * 2  # leader <-> followers
        append = self.costs.fsync_us
        broadcast = self.network.worst_one_way_us(num_replicas)
        broadcast += self.network.broadcast_us(block_bytes, num_replicas)
        return submit + replicate + append + broadcast

    def min_block_interval_us(self, block_bytes: int, num_replicas: int) -> float:
        """Pipelined ordering: successive blocks are spaced by the uplink
        serialization of the broadcast plus a small per-block CPU term."""
        serialization = self.network.broadcast_us(block_bytes, num_replicas)
        per_block_cpu = self.costs.hash_us + self.costs.log_record_us
        return serialization + per_block_cpu

    def throughput_cap_tps(
        self, block_size: int, block_bytes: int, num_replicas: int
    ) -> float:
        interval = self.min_block_interval_us(block_bytes, num_replicas)
        if interval <= 0:
            return float("inf")
        return block_size / (interval / 1e6)
