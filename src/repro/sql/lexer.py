"""SQL tokenizer."""

from __future__ import annotations

from dataclasses import dataclass

KEYWORDS = {
    "SELECT",
    "FROM",
    "WHERE",
    "AND",
    "BETWEEN",
    "UPDATE",
    "SET",
    "INSERT",
    "INTO",
    "VALUES",
    "DELETE",
}

PUNCTUATION = {"(", ")", ",", "=", "+", "-", "*", "/", "?", "."}


class SQLSyntaxError(Exception):
    """Raised on malformed SQL text."""


@dataclass(frozen=True)
class Token:
    kind: str  # KEYWORD | IDENT | NUMBER | STRING | PUNCT | EOF
    value: object
    pos: int


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch in PUNCTUATION:
            tokens.append(Token("PUNCT", ch, i))
            i += 1
            continue
        if ch == "'":
            j = text.find("'", i + 1)
            if j < 0:
                raise SQLSyntaxError(f"unterminated string at {i}")
            tokens.append(Token("STRING", text[i + 1 : j], i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                seen_dot = seen_dot or text[j] == "."
                j += 1
            raw = text[i:j]
            value = float(raw) if "." in raw else int(raw)
            tokens.append(Token("NUMBER", value, i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word.upper() in KEYWORDS:
                tokens.append(Token("KEYWORD", word.upper(), i))
            else:
                tokens.append(Token("IDENT", word, i))
            i = j
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r} at {i}")
    tokens.append(Token("EOF", None, n))
    return tokens
