"""SQL entry point for stored procedures, with a plan cache."""

from __future__ import annotations

from repro.sql.catalog import Catalog
from repro.sql.parser import parse
from repro.sql.planner import PlannedStatement, Planner
from repro.txn.context import SimulationContext


class SQLExecutor:
    """Executes SQL text inside a transaction's simulation context.

    Plans are cached per SQL string, so stored procedures pay parsing and
    planning once per replica process — like prepared statements.
    """

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self._planner = Planner(catalog)
        self._plan_cache: dict[str, PlannedStatement] = {}

    def prepare(self, sql: str) -> PlannedStatement:
        plan = self._plan_cache.get(sql)
        if plan is None:
            plan = self._planner.plan(parse(sql))
            self._plan_cache[sql] = plan
        return plan

    def execute(self, ctx: SimulationContext, sql: str, params: tuple = ()):
        """Run one statement; returns rows (SELECT) or an affected count."""
        return self.prepare(sql).run(ctx, tuple(params))
