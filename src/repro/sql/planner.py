"""Query planner: ASTs become executable plans over the transaction API.

The load-bearing analysis is in :meth:`Planner.plan_update`: an assignment
``c = c + <expr>`` (or ``c - / c *``) whose right-hand side does not read
other columns compiles to an **update command** extracted from the physical
plan without evaluation — "Harmony extracts the update command of
add(Alice.balance, 10) from the physical plan and stores it in T's
write-set without evaluating its value" (Section 3.3.1). Anything else
degrades to read-modify-write: the row is read (creating the rw edge that
can abort under contention) and a computed ``SetFields`` is emitted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sql.ast_nodes import (
    Assignment,
    BinOp,
    ColumnRef,
    Condition,
    DeleteStmt,
    Expr,
    InsertStmt,
    Literal,
    Param,
    SelectStmt,
    UpdateStmt,
)
from repro.sql.catalog import Catalog, TableSchema
from repro.txn.commands import AddFields, SetFields
from repro.txn.context import SimulationContext


class PlanningError(Exception):
    """The statement is valid SQL but outside the supported plan space."""


def evaluate(expr: Expr, params: tuple, row: dict | None = None):
    """Evaluate an expression; column refs resolve against ``row``."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Param):
        try:
            return params[expr.index]
        except IndexError:
            raise PlanningError(f"missing parameter ${expr.index}") from None
    if isinstance(expr, ColumnRef):
        if row is None or expr.name not in row:
            raise PlanningError(f"column {expr.name!r} not available here")
        return row[expr.name]
    if isinstance(expr, BinOp):
        left = evaluate(expr.left, params, row)
        right = evaluate(expr.right, params, row)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        return left / right
    raise PlanningError(f"unsupported expression {expr!r}")


def columns_in(expr: Expr) -> set:
    if isinstance(expr, ColumnRef):
        return {expr.name}
    if isinstance(expr, BinOp):
        return columns_in(expr.left) | columns_in(expr.right)
    return set()


@dataclass
class PlannedStatement:
    """A closed plan: call ``run(ctx, params)``."""

    kind: str  # select | update-command | update-rmw | insert | delete
    runner: object

    def run(self, ctx: SimulationContext, params: tuple = ()):
        return self.runner(ctx, params)


class Planner:
    """Compiles parsed statements against a catalog."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    # ------------------------------------------------------------- dispatch
    def plan(self, statement) -> PlannedStatement:
        if isinstance(statement, SelectStmt):
            return self.plan_select(statement)
        if isinstance(statement, UpdateStmt):
            return self.plan_update(statement)
        if isinstance(statement, InsertStmt):
            return self.plan_insert(statement)
        if isinstance(statement, DeleteStmt):
            return self.plan_delete(statement)
        raise PlanningError(f"unsupported statement {statement!r}")

    # ----------------------------------------------------------------- keys
    def _key_plan(self, schema: TableSchema, conditions: tuple):
        """Classify the WHERE clause: point key or trailing-column range."""
        eq: dict[str, Expr] = {}
        between: Condition | None = None
        for condition in conditions:
            if not schema.has_column(condition.column):
                raise PlanningError(
                    f"unknown column {condition.column!r} in WHERE for {schema.name}"
                )
            if condition.kind == "eq":
                eq[condition.column] = condition.value
            else:
                if between is not None:
                    raise PlanningError("at most one BETWEEN is supported")
                between = condition
        key_cols = schema.key_columns
        if between is None:
            if set(eq) < set(key_cols):
                raise PlanningError(
                    f"WHERE must bind all key columns of {schema.name}: {key_cols}"
                )
            return "point", eq, None
        if between.column != key_cols[-1] or set(eq) != set(key_cols[:-1]):
            raise PlanningError(
                "BETWEEN is supported on the trailing key column only"
            )
        return "range", eq, between

    def _point_key(self, schema, eq, params):
        values = {col: evaluate(expr, params) for col, expr in eq.items()}
        return schema.key_for(values)

    # --------------------------------------------------------------- SELECT
    def plan_select(self, stmt: SelectStmt) -> PlannedStatement:
        schema = self.catalog.table(stmt.table)
        mode, eq, between = self._key_plan(schema, stmt.conditions)
        non_key_filters = {c: e for c, e in eq.items() if c not in schema.key_columns}

        def project(key, row: dict) -> dict:
            full = dict(row)
            for col, value in zip(schema.key_columns, key[1:]):
                full[col] = value
            if stmt.columns == ("*",):
                return full
            return {c: full.get(c) for c in stmt.columns}

        def run(ctx: SimulationContext, params: tuple):
            if mode == "point":
                key = self._point_key(
                    schema, {c: e for c, e in eq.items() if c in schema.key_columns}, params
                )
                row = ctx.read(key)
                if row is None:
                    return []
                for col, expr in non_key_filters.items():
                    if row.get(col) != evaluate(expr, params):
                        return []
                return [project(key, row)]
            prefix = {c: evaluate(e, params) for c, e in eq.items()}
            low = evaluate(between.low, params)
            high = evaluate(between.high, params)
            start = (schema.name,) + tuple(
                prefix[c] for c in schema.key_columns[:-1]
            ) + (low,)
            end = (schema.name,) + tuple(
                prefix[c] for c in schema.key_columns[:-1]
            ) + (high,)
            rows = []
            for key, row in ctx.scan(start, end):
                rows.append(project(key, row))
            return rows

        return PlannedStatement(kind="select", runner=run)

    # --------------------------------------------------------------- UPDATE
    def plan_update(self, stmt: UpdateStmt) -> PlannedStatement:
        schema = self.catalog.table(stmt.table)
        mode, eq, _between = self._key_plan(schema, stmt.conditions)
        if mode != "point":
            raise PlanningError("UPDATE requires a point WHERE on the key")
        non_key_filters = {
            c: e for c, e in eq.items() if c not in schema.key_columns
        }
        key_eq = {c: e for c, e in eq.items() if c in schema.key_columns}

        # Non-key predicates force a read (the row must be inspected), so
        # only a pure key-addressed arithmetic update stays command-only.
        commandable = not non_key_filters and all(
            self._commandable_delta(a) is not None for a in stmt.assignments
        )

        if commandable:
            deltas = {a.column: self._commandable_delta(a) for a in stmt.assignments}

            def run(ctx: SimulationContext, params: tuple):
                key = self._point_key(schema, key_eq, params)
                evaluated = {
                    col: evaluate(delta, params) for col, delta in deltas.items()
                }
                sets = {
                    a.column: evaluate(a.expr, params)
                    for a in stmt.assignments
                    if not columns_in(a.expr)
                }
                adds = {c: d for c, d in evaluated.items() if c not in sets}
                if adds:
                    ctx.update(key, AddFields.of(**adds))
                if sets:
                    ctx.update(key, SetFields.of(**sets))
                return 1

            return PlannedStatement(kind="update-command", runner=run)

        def run_rmw(ctx: SimulationContext, params: tuple):
            key = self._point_key(schema, key_eq, params)
            row = ctx.read(key)  # the rw edge the fused form avoids
            if row is None:
                return 0
            for col, expr in non_key_filters.items():
                if row.get(col) != evaluate(expr, params):
                    return 0
            updates = {
                a.column: evaluate(a.expr, params, row) for a in stmt.assignments
            }
            ctx.update(key, SetFields.of(**updates))
            return 1

        return PlannedStatement(kind="update-rmw", runner=run_rmw)

    @staticmethod
    def _commandable_delta(assignment: Assignment):
        """Return the delta expression when ``c = c +/- <col-free expr>``;
        column-free ``c = <expr>`` is a blind field set (also commandable);
        otherwise ``None`` (needs a read)."""
        expr = assignment.expr
        refs = columns_in(expr)
        if not refs:
            return Literal(0)  # blind set: handled separately, delta unused
        if (
            isinstance(expr, BinOp)
            and expr.op in ("+", "-")
            and isinstance(expr.left, ColumnRef)
            and expr.left.name == assignment.column
            and not columns_in(expr.right)
        ):
            if expr.op == "+":
                return expr.right
            return BinOp(op="-", left=Literal(0), right=expr.right)
        return None

    # --------------------------------------------------------------- INSERT
    def plan_insert(self, stmt: InsertStmt) -> PlannedStatement:
        schema = self.catalog.table(stmt.table)
        missing = set(schema.key_columns) - set(stmt.columns)
        if missing:
            raise PlanningError(f"INSERT must provide key columns {missing}")

        def run(ctx: SimulationContext, params: tuple):
            values = {
                col: evaluate(expr, params)
                for col, expr in zip(stmt.columns, stmt.values)
            }
            key = schema.key_for(values)
            row = {c: values.get(c) for c in schema.value_columns}
            ctx.insert(key, row)
            return 1

        return PlannedStatement(kind="insert", runner=run)

    # --------------------------------------------------------------- DELETE
    def plan_delete(self, stmt: DeleteStmt) -> PlannedStatement:
        schema = self.catalog.table(stmt.table)
        mode, eq, _between = self._key_plan(schema, stmt.conditions)
        if mode != "point":
            raise PlanningError("DELETE requires a point WHERE on the key")

        def run(ctx: SimulationContext, params: tuple):
            key = self._point_key(schema, eq, params)
            ctx.delete(key)
            return 1

        return PlannedStatement(kind="delete", runner=run)
