"""Recursive-descent parser for the SQL subset."""

from __future__ import annotations

from repro.sql.ast_nodes import (
    Assignment,
    BinOp,
    ColumnRef,
    Condition,
    DeleteStmt,
    Expr,
    InsertStmt,
    Literal,
    Param,
    SelectStmt,
    UpdateStmt,
)
from repro.sql.lexer import SQLSyntaxError, Token, tokenize


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0
        self._param_counter = 0

    # ------------------------------------------------------------- plumbing
    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect(self, kind: str, value=None) -> Token:
        token = self._advance()
        if token.kind != kind or (value is not None and token.value != value):
            raise SQLSyntaxError(
                f"expected {value or kind} at position {token.pos}, got {token.value!r}"
            )
        return token

    def _match(self, kind: str, value=None) -> bool:
        token = self._peek()
        if token.kind == kind and (value is None or token.value == value):
            self._advance()
            return True
        return False

    # ----------------------------------------------------------- statements
    def parse_statement(self):
        token = self._peek()
        if token.kind != "KEYWORD":
            raise SQLSyntaxError(f"expected a statement, got {token.value!r}")
        if token.value == "SELECT":
            return self._select()
        if token.value == "UPDATE":
            return self._update()
        if token.value == "INSERT":
            return self._insert()
        if token.value == "DELETE":
            return self._delete()
        raise SQLSyntaxError(f"unsupported statement {token.value}")

    def _select(self) -> SelectStmt:
        self._expect("KEYWORD", "SELECT")
        columns = []
        if self._match("PUNCT", "*"):
            columns.append("*")
        else:
            columns.append(self._expect("IDENT").value)
            while self._match("PUNCT", ","):
                columns.append(self._expect("IDENT").value)
        self._expect("KEYWORD", "FROM")
        table = self._expect("IDENT").value
        conditions = self._where()
        self._expect("EOF")
        return SelectStmt(table=table, columns=tuple(columns), conditions=conditions)

    def _update(self) -> UpdateStmt:
        self._expect("KEYWORD", "UPDATE")
        table = self._expect("IDENT").value
        self._expect("KEYWORD", "SET")
        assignments = [self._assignment()]
        while self._match("PUNCT", ","):
            assignments.append(self._assignment())
        conditions = self._where()
        self._expect("EOF")
        return UpdateStmt(
            table=table, assignments=tuple(assignments), conditions=conditions
        )

    def _insert(self) -> InsertStmt:
        self._expect("KEYWORD", "INSERT")
        self._expect("KEYWORD", "INTO")
        table = self._expect("IDENT").value
        self._expect("PUNCT", "(")
        columns = [self._expect("IDENT").value]
        while self._match("PUNCT", ","):
            columns.append(self._expect("IDENT").value)
        self._expect("PUNCT", ")")
        self._expect("KEYWORD", "VALUES")
        self._expect("PUNCT", "(")
        values = [self._expr()]
        while self._match("PUNCT", ","):
            values.append(self._expr())
        self._expect("PUNCT", ")")
        self._expect("EOF")
        if len(columns) != len(values):
            raise SQLSyntaxError("INSERT column/value count mismatch")
        return InsertStmt(table=table, columns=tuple(columns), values=tuple(values))

    def _delete(self) -> DeleteStmt:
        self._expect("KEYWORD", "DELETE")
        self._expect("KEYWORD", "FROM")
        table = self._expect("IDENT").value
        conditions = self._where()
        self._expect("EOF")
        return DeleteStmt(table=table, conditions=conditions)

    def _assignment(self) -> Assignment:
        column = self._expect("IDENT").value
        self._expect("PUNCT", "=")
        return Assignment(column=column, expr=self._expr())

    # ---------------------------------------------------------------- where
    def _where(self) -> tuple:
        if not self._match("KEYWORD", "WHERE"):
            return ()
        conditions = [self._condition()]
        while self._match("KEYWORD", "AND"):
            conditions.append(self._condition())
        return tuple(conditions)

    def _condition(self) -> Condition:
        column = self._expect("IDENT").value
        if self._match("KEYWORD", "BETWEEN"):
            low = self._expr()
            self._expect("KEYWORD", "AND")
            high = self._expr()
            return Condition(column=column, kind="between", low=low, high=high)
        self._expect("PUNCT", "=")
        return Condition(column=column, kind="eq", value=self._expr())

    # ----------------------------------------------------------- expression
    def _expr(self) -> Expr:
        left = self._term()
        while True:
            token = self._peek()
            if token.kind == "PUNCT" and token.value in ("+", "-"):
                self._advance()
                left = BinOp(op=token.value, left=left, right=self._term())
            else:
                return left

    def _term(self) -> Expr:
        left = self._factor()
        while True:
            token = self._peek()
            if token.kind == "PUNCT" and token.value in ("*", "/"):
                self._advance()
                left = BinOp(op=token.value, left=left, right=self._factor())
            else:
                return left

    def _factor(self) -> Expr:
        token = self._peek()
        if token.kind == "NUMBER" or token.kind == "STRING":
            self._advance()
            return Literal(token.value)
        if token.kind == "PUNCT" and token.value == "?":
            self._advance()
            param = Param(self._param_counter)
            self._param_counter += 1
            return param
        if token.kind == "PUNCT" and token.value == "(":
            self._advance()
            inner = self._expr()
            self._expect("PUNCT", ")")
            return inner
        if token.kind == "PUNCT" and token.value == "-":
            self._advance()
            return BinOp(op="-", left=Literal(0), right=self._factor())
        if token.kind == "IDENT":
            self._advance()
            return ColumnRef(token.value)
        raise SQLSyntaxError(f"unexpected token {token.value!r} at {token.pos}")


def parse(sql: str):
    """Parse one SQL statement into its AST."""
    return _Parser(tokenize(sql)).parse_statement()
