"""A small SQL subset compiled onto the transaction API.

HarmonyBC "chainifies" a relational database, so smart contracts are SQL
plus stored procedures (Section 4). This package implements the part of
SQL the paper's evaluation leans on:

- ``SELECT`` (point and range via ``BETWEEN``), ``INSERT``, ``DELETE``;
- ``UPDATE t SET c = c + ? WHERE pk = ?`` — the planner recognises
  arithmetic self-updates and emits **update commands** (``AddFields``)
  without evaluating them, which is precisely what enables Harmony's
  update reordering and coalescence (Section 3.3.1);
- non-self-referential or cross-column ``SET`` expressions fall back to a
  read-then-write plan — the "opportunity lost" case the paper warns smart
  contract developers about (Section 3.3.2).

Pipeline: :mod:`~repro.sql.lexer` -> :mod:`~repro.sql.parser` (AST in
:mod:`~repro.sql.ast_nodes`) -> :mod:`~repro.sql.planner` against a
:mod:`~repro.sql.catalog` -> executable plans run by
:class:`~repro.sql.executor.SQLExecutor` inside any stored procedure.
"""

from repro.sql.catalog import Catalog, TableSchema
from repro.sql.executor import SQLExecutor
from repro.sql.lexer import SQLSyntaxError, tokenize
from repro.sql.parser import parse
from repro.sql.planner import Planner, PlanningError

__all__ = [
    "Catalog",
    "Planner",
    "PlanningError",
    "SQLExecutor",
    "SQLSyntaxError",
    "TableSchema",
    "parse",
    "tokenize",
]
