"""Table schemas: how relational rows map onto the key-value substrate.

A row of table ``t`` with primary key columns ``(a, b)`` lives at the key
``(t, row[a], row[b])`` with the remaining columns as a record dict — the
same encoding the built-in workloads use directly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TableSchema:
    name: str
    key_columns: tuple
    value_columns: tuple

    def key_for(self, key_values: dict) -> tuple:
        try:
            return (self.name,) + tuple(key_values[c] for c in self.key_columns)
        except KeyError as exc:
            raise KeyError(f"missing key column {exc} for table {self.name}") from exc

    def has_column(self, column: str) -> bool:
        return column in self.key_columns or column in self.value_columns


class Catalog:
    """Name -> schema registry shared by planner and executor."""

    def __init__(self) -> None:
        self._tables: dict[str, TableSchema] = {}

    def create_table(self, name: str, key_columns, value_columns) -> TableSchema:
        if name in self._tables:
            raise ValueError(f"table {name!r} already exists")
        schema = TableSchema(
            name=name,
            key_columns=tuple(key_columns),
            value_columns=tuple(value_columns),
        )
        self._tables[name] = schema
        return schema

    def table(self, name: str) -> TableSchema:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"unknown table {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def tables(self) -> list[str]:
        return sorted(self._tables)

    def initial_rows(self, name: str, rows: list[dict]) -> dict:
        """Encode bootstrap rows for ``StorageEngine.preload``."""
        schema = self.table(name)
        state = {}
        for row in rows:
            key = schema.key_for(row)
            state[key] = {c: row[c] for c in schema.value_columns}
        return state
