"""SQL abstract syntax tree."""

from __future__ import annotations

from dataclasses import dataclass


class Expr:
    """Base expression node."""


@dataclass(frozen=True)
class Literal(Expr):
    value: object


@dataclass(frozen=True)
class Param(Expr):
    """A ``?`` placeholder, numbered left to right."""

    index: int


@dataclass(frozen=True)
class ColumnRef(Expr):
    name: str


@dataclass(frozen=True)
class BinOp(Expr):
    op: str  # + - * /
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Condition:
    """column = expr, or column BETWEEN lo AND hi."""

    column: str
    kind: str  # "eq" | "between"
    value: Expr | None = None
    low: Expr | None = None
    high: Expr | None = None


@dataclass(frozen=True)
class SelectStmt:
    table: str
    columns: tuple  # ("*",) or column names
    conditions: tuple  # of Condition


@dataclass(frozen=True)
class Assignment:
    column: str
    expr: Expr


@dataclass(frozen=True)
class UpdateStmt:
    table: str
    assignments: tuple
    conditions: tuple


@dataclass(frozen=True)
class InsertStmt:
    table: str
    columns: tuple
    values: tuple  # of Expr


@dataclass(frozen=True)
class DeleteStmt:
    table: str
    conditions: tuple
