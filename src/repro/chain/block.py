"""Blocks: hash-chained batches of transactions (Section 4, Security).

Each block embeds the hash of its predecessor, so "any tampered block could
be identified by back-tracing the hash values from the latest block". The
block body is the ordered list of transaction *commands* (OE ships commands;
SOV blocks additionally carry the endorsed read-write sets, which is the
network-size difference Figures 15/16 measure).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.consensus.crypto import sha256_hex
from repro.txn.transaction import Txn, TxnSpec

GENESIS_HASH = "0" * 64


def _canonical_spec(spec: TxnSpec) -> str:
    return f"{spec.proc}({spec.params!r})"


@dataclass
class Block:
    """One ordered, hash-chained batch."""

    block_id: int
    specs: tuple
    prev_hash: str
    first_tid: int
    #: SOV only: endorsed runtime transactions travelling with the block
    endorsed_txns: list = field(default_factory=list)
    #: orderer's signature over the header
    signature: str = ""
    hash: str = ""
    #: explicit global TIDs, one per spec — set on per-shard sub-blocks,
    #: whose transactions keep their *global* order position even though
    #: the shard sees only a subset (``None`` = contiguous from first_tid)
    tids: tuple | None = None

    def __post_init__(self) -> None:
        if self.tids is not None and len(self.tids) != len(self.specs):
            raise ValueError(
                f"block {self.block_id}: {len(self.tids)} tids "
                f"for {len(self.specs)} specs"
            )
        if not self.hash:
            self.hash = self.compute_hash()

    def header_bytes(self) -> bytes:
        body = ";".join(_canonical_spec(s) for s in self.specs)
        header = f"{self.block_id}|{self.first_tid}|{self.prev_hash}|{body}"
        if self.tids is not None:
            # sub-blocks commit to their global TID assignment too
            header += "|" + ",".join(str(t) for t in self.tids)
        return header.encode()

    def tid_of(self, index: int) -> int:
        return self.tids[index] if self.tids is not None else self.first_tid + index

    def compute_hash(self) -> str:
        return sha256_hex(self.header_bytes())

    def build_txns(self) -> list[Txn]:
        """Instantiate this block's runtime transactions.

        SOV blocks return their endorsed transactions (rw-sets travel with
        the block); OE blocks build fresh records under their global TIDs.
        The single source for live ingestion and recovery replay — the two
        must never instantiate differently, or a recovered replica replays
        different transactions than the live ones executed.
        """
        if self.endorsed_txns:
            return self.endorsed_txns
        return [
            Txn(tid=self.tid_of(i), block_id=self.block_id, spec=spec)
            for i, spec in enumerate(self.specs)
        ]

    @property
    def size(self) -> int:
        return len(self.specs)

    def verify_integrity(self, expected_prev_hash: str) -> bool:
        """Check the hash chain and the block's own digest."""
        return self.prev_hash == expected_prev_hash and self.hash == self.compute_hash()
