"""Simulate-Order-Validate blockchain assembly: Fabric and FastFabric#.

The SOV workflow (Section 2.1.1): (1) a client submits a transaction to
endorsers, (2) each endorser simulates it against its *local latest* state
— replicas lag behind by different amounts, so read-write sets may diverge
— (3) the client reconciles them per its endorsement policy, (4) the
ordering service cuts blocks of endorsed transactions, (5) validators check
versions (Fabric) or signatures only (FastFabric#, whose orderer already
built and pruned the dependency graph).

Costs specific to SOV, all of which Figures 7/8 and 15/16 exercise:

- two extra client round trips (endorsement and reconciliation);
- blocks ship ~1.5 KB endorsed read-write sets per transaction instead of
  ~128 B commands, so the ordering service's broadcast uplink saturates as
  replicas are added;
- serial validation and physical logging at every replica;
- FastFabric#'s serial graph traversal on the ordering critical path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.block import Block
from repro.chain.node import ReplicaNode
from repro.chain.ordering import OrderingService
from repro.consensus.crypto import Signer
from repro.consensus.kafka import KafkaOrdering
from repro.consensus.network import NetworkModel, NetworkPreset
from repro.dcc.fabric import FabricValidator, endorsed_value_writes
from repro.dcc.fastfabric import FastFabricOrderer, FastFabricValidator
from repro.dcc.oracle import SerializabilityOracle
from repro.sim.costs import CostModel, StorageProfile
from repro.sim.metrics import RunMetrics
from repro.sim.rng import SeededRng
from repro.sim.scheduler import BlockTiming, PipelineSimulator
from repro.storage.engine import StorageEngine
from repro.storage.wal import LogMode
from repro.txn.context import SimulationContext
from repro.txn.transaction import AbortReason, Txn

#: fixed per-transaction endorsement overhead: x509 certificates and
#: signatures for the endorsement policy
ENDORSED_BASE_BYTES = 1200
#: per read-/write-set entry: key, version, value, proof
ENDORSED_RECORD_BYTES = 300


def endorsed_txn_bytes(records_per_txn: float) -> int:
    return int(ENDORSED_BASE_BYTES + ENDORSED_RECORD_BYTES * records_per_txn)


@dataclass
class SOVConfig:
    """Configuration of one Simulate-Order-Validate system run."""

    system: str = "fabric"  # fabric | fastfabric
    block_size: int = 50
    num_blocks: int = 40
    num_replicas: int = 4
    cores: int = 8
    endorsers: int = 2
    #: endorsers lag behind the latest block by 0..max_endorser_lag blocks
    max_endorser_lag: int = 2
    network: NetworkPreset = NetworkPreset.DEFAULT_1G
    profile: StorageProfile = StorageProfile.SSD
    pool_pages: int = 48
    checkpoint_interval: int = 10
    #: delta-chain the durable checkpoints (False = full deepcopy reference)
    checkpoint_incremental: bool = True
    checkpoint_base_interval: int = 8
    max_graph_txns: int = 150
    seed: int = 7
    measure_false_aborts: bool = True
    #: clients resubmit aborted transactions (fresh endorsement each time)
    retry_aborted: bool = True


class SOVBlockchain:
    """Fabric-style blockchain bound to a workload."""

    def __init__(self, config: SOVConfig, workload) -> None:
        self.config = config
        self.workload = workload
        self.costs = CostModel()
        self.network = NetworkModel.preset(config.network)
        self.orderer_signer = Signer("ordering-service")
        self.ordering = OrderingService(self.orderer_signer)
        self.consensus = KafkaOrdering(self.network, self.costs)
        self.registry = self.workload.build_registry()
        self.node = self._build_node("replica-0")
        self.fast_orderer = (
            FastFabricOrderer(max_graph_txns=config.max_graph_txns)
            if config.system == "fastfabric"
            else None
        )

    def _build_node(self, name: str) -> ReplicaNode:
        engine = StorageEngine(
            costs=self.costs,
            profile=self.config.profile,
            pool_pages=self.config.pool_pages,
            log_mode=LogMode.PHYSICAL,
            checkpoint_interval=self.config.checkpoint_interval,
            incremental_checkpoints=self.config.checkpoint_incremental,
            checkpoint_base_interval=self.config.checkpoint_base_interval,
        )
        engine.preload(self.workload.initial_state())
        if self.config.system == "fastfabric":
            executor = FastFabricValidator(engine, self.workload.build_registry())
        else:
            executor = FabricValidator(engine, self.workload.build_registry())
        return ReplicaNode(name, executor, self.orderer_signer)

    # ------------------------------------------------------------ endorsing
    def _endorse(self, txn: Txn, rng: SeededRng) -> float:
        """Simulate ``txn`` on ``endorsers`` independently-lagged replicas.

        Returns the endorsement CPU cost; marks the transaction aborted
        (ENDORSEMENT_MISMATCH) when the endorsers' read sets diverge and the
        client cannot assemble a valid endorsement.
        """
        store = self.node.engine.store
        latest = store.last_committed_block
        outcomes = []
        cost = 0.0
        for _ in range(self.config.endorsers):
            lag = rng.randint(0, self.config.max_endorser_lag)
            view_block = max(-1, latest - lag)
            probe = Txn(tid=txn.tid, block_id=txn.block_id, spec=txn.spec)
            ctx = SimulationContext(probe, store.snapshot(view_block), self.node.engine)
            try:
                probe.output = self.registry.execute(ctx)
            except (KeyError, TypeError, ValueError):
                probe.mark_aborted(AbortReason.EXECUTION_ERROR)
            cost += ctx.cost_us
            outcomes.append((view_block, probe))
        versions = {tuple(sorted(p.read_set.items(), key=repr)) for _v, p in outcomes}
        if len(versions) > 1:
            txn.mark_aborted(AbortReason.ENDORSEMENT_MISMATCH)
            return cost
        view_block, chosen = outcomes[0]
        txn.read_set = chosen.read_set
        txn.read_ranges = chosen.read_ranges
        txn.write_set = chosen.write_set
        txn.updated_keys = chosen.updated_keys
        txn.output = chosen.output
        txn.status = chosen.status
        txn.abort_reason = chosen.abort_reason
        endorsed_value_writes(txn, store.snapshot(view_block))
        return cost

    # ------------------------------------------------------------------ run
    def run(self) -> RunMetrics:
        config = self.config
        rng = SeededRng(config.seed, f"sov/{config.system}/{self.workload.name}")
        metrics = RunMetrics(system=config.system, workload=self.workload.name)

        consensus_latency = None
        endorsement_latency = None

        timings: list[BlockTiming] = []
        executions = []
        retry_queue: list = []
        next_tid = 0
        arrival = 0.0
        for i in range(config.num_blocks):
            retries = retry_queue[: config.block_size]
            retry_queue = retry_queue[config.block_size :]
            specs = retries + self.workload.generate_block(
                config.block_size - len(retries), rng
            )
            txns = [
                Txn(tid=next_tid + j, block_id=i, spec=spec)
                for j, spec in enumerate(specs)
            ]
            next_tid += len(specs)
            for txn in txns:
                self._endorse(txn, rng)

            pre_exec = 0.0
            if self.fast_orderer is not None:
                outcome = self.fast_orderer.process(
                    txns, state_view=self.node.engine.store.latest_snapshot()
                )
                ordered = outcome.ordered_txns + [t for t in txns if t.aborted]
                pre_exec = outcome.traversal_cost_us
            else:
                ordered = txns

            block = self._form_sov_block(i, specs, ordered)
            execution = self.node.process_block(block)
            execution.pre_exec_serial_us += pre_exec
            execution.pre_exec_serial_us += block.size * self.costs.ingest_us
            if config.measure_false_aborts:
                execution.stats.false_aborts = SerializabilityOracle.count_false_aborts(
                    execution.txns, chain_order=lambda t: t.tid
                )
            if config.retry_aborted:
                retry_queue.extend(t.spec for t in execution.txns if t.aborted)
            metrics.merge_block(execution.stats)
            executions.append(execution)

            # the rw-set broadcast paces block delivery (Figures 15/16)
            records = sum(len(t.read_set) + len(t.write_set) for t in txns)
            per_txn = records / max(1, len(txns))
            block_bytes = len(txns) * endorsed_txn_bytes(per_txn)
            interval = self.consensus.min_block_interval_us(
                block_bytes, config.num_replicas
            )
            if consensus_latency is None:
                consensus_latency = self.consensus.block_latency_us(
                    block_bytes, config.num_replicas
                )
                # two extra client round trips plus the rw-set upload
                endorsement_latency = (
                    4 * self.network.one_way_us
                    + self.network.transfer_us(endorsed_txn_bytes(per_txn))
                )
            timings.append(
                BlockTiming(
                    arrival_us=arrival,
                    sim_durations=execution.sim_durations_us,
                    commit_durations=execution.commit_durations_us,
                    serial_commit=execution.serial_commit,
                    pre_exec_serial_us=execution.pre_exec_serial_us,
                    post_commit_serial_us=execution.post_commit_serial_us,
                )
            )
            arrival += interval

        scheduler = PipelineSimulator(num_cores=config.cores, inter_block=False)
        result = scheduler.simulate(timings)
        metrics.sim_time_us = result.makespan_us
        metrics.cpu_utilization = result.cpu_utilization
        for i, execution in enumerate(executions):
            started = timings[i].arrival_us
            if i > 0:
                started = max(started, result.commit_finish_us[i - 1])
            block_latency = (
                endorsement_latency
                + consensus_latency
                + (result.commit_finish_us[i] - started)
                + self.network.worst_one_way_us(config.num_replicas)
            )
            metrics.latencies_us.extend([block_latency] * execution.stats.committed)
        engine = self.node.engine
        metrics.io_reads = engine.io_reads
        metrics.io_writes = engine.io_writes
        metrics.buffer_hits = engine.buffer_hits
        metrics.buffer_misses = engine.buffer_misses
        metrics.extra["state_hash"] = self.node.state_hash()
        metrics.extra["ledger_ok"] = self.node.ledger.verify_chain()
        return metrics

    def _form_sov_block(self, block_id: int, specs, ordered_txns) -> Block:
        block = self.ordering.form_block(list(specs))
        block.endorsed_txns = list(ordered_txns)
        return block
