"""A replica node: ledger + storage engine + DCC executor.

On receiving a block the node verifies its chain linkage and the orderer's
signature, persists the input block (logical logging — Section 4,
Recovery), instantiates the runtime transactions and hands them to its DCC
executor. State hashes let tests assert replica consistency: every correct
replica must reach the identical state from the same chain of blocks.
"""

from __future__ import annotations

from repro.chain.block import Block
from repro.chain.ledger import Ledger
from repro.consensus.crypto import Signer
from repro.execution import BlockExecution, DCCExecutor, PreparedBlock
from repro.txn.transaction import Txn


class ReplicaNode:
    """One replica of the blockchain's database layer."""

    def __init__(
        self,
        name: str,
        executor: DCCExecutor,
        orderer_signer: Signer | None = None,
    ) -> None:
        self.name = name
        self.executor = executor
        self.engine = executor.engine
        self.ledger = Ledger()
        self._orderer_signer = orderer_signer

    def _ingest_block(self, block: Block) -> tuple[list[Txn], float]:
        """Verify, append and log one block; instantiate its transactions."""
        verify_cost = self.engine.costs.hash_us
        if self._orderer_signer is not None:
            if not self._orderer_signer.verify(block.header_bytes(), block.signature):
                raise ValueError(f"block {block.block_id}: bad orderer signature")
            verify_cost += self.engine.costs.verify_us

        self.ledger.append(block)  # raises TamperError on chain mismatch
        self.engine.log_block_input(block)
        return block.build_txns(), verify_cost

    def ingest_block(self, block: Block) -> tuple[list[Txn], float]:
        """Ingest without executing — the process-prepare backend's main-side
        half: the ledger/block log stay authoritative here while a worker
        process runs the executor's ``prepare_block`` on its own replica of
        the state. Returns the instantiated transactions (discarded by that
        path — the worker's copies carry the decisions) and the verify cost."""
        return self._ingest_block(block)

    def clone_executor(self, engine) -> DCCExecutor:
        """A fresh executor of this node's type and configuration bound to
        ``engine`` — the recovery path's replica-rebuild hook. Each
        executor declares its own extra constructor switches via
        ``clone_args``. Federation hooks (``snapshot_source`` /
        ``key_scope``) are *not* carried over; sharded recovery rewires
        them against the recovered store."""
        executor = self.executor
        return type(executor)(engine, executor.registry, *executor.clone_args())

    def process_block(self, block: Block) -> BlockExecution:
        """Verify, log, execute and append one block."""
        if self.executor.supports_two_phase:
            return self.finish_block(self.prepare_block(block))
        txns, verify_cost = self._ingest_block(block)
        execution = self.executor.execute_block(block.block_id, txns)
        execution.pre_exec_serial_us += verify_cost
        return execution

    def prepare_block(self, block: Block) -> PreparedBlock:
        """Phase one: verify + log + simulate + validate (the local vote)."""
        txns, verify_cost = self._ingest_block(block)
        prepared = self.executor.prepare_block(block.block_id, txns)
        prepared.extra_pre_exec_us += verify_cost
        return prepared

    def finish_block(
        self, prepared: PreparedBlock, abort_tids: frozenset = frozenset()
    ) -> BlockExecution:
        """Phase two: apply, honouring cross-shard vetos in ``abort_tids``."""
        execution = self.executor.commit_block(prepared, abort_tids)
        execution.pre_exec_serial_us += prepared.extra_pre_exec_us
        return execution

    def state_hash(self) -> str:
        """Replica-consistency fingerprint of the database state."""
        return self.engine.state_hash()
