"""Crash recovery by deterministic replay (Section 4, Recovery).

HarmonyBC persists the small *input* blocks before execution (logical
logging) and checkpoints dirty pages every *p* blocks. Recovery loads the
latest usable checkpoint — reconstructed by folding the delta chain onto
its base (see :mod:`repro.storage.checkpoint`); the previous recovery
point survives a crash mid-checkpoint because chain entries are never
overwritten — and re-executes the logged blocks after it. Determinism
guarantees the replica converges to exactly the state it held before the
crash, with no ARIES-style redo/undo.

Under inter-block parallelism the first replayed block simulates against a
lag-2 snapshot, so checkpoints capture the previous block's state and the
Rule-3 committed-writer records too (see ``StorageEngine.checkpoint_if_due``).
"""

from __future__ import annotations

from repro.chain.node import ReplicaNode
from repro.core.harmony import HarmonyExecutor
from repro.storage.checkpoint import Checkpoint
from repro.storage.engine import StorageEngine
from repro.storage.mvstore import TOMBSTONE
from repro.storage.wal import LogMode


def rebuild_engine(
    old_engine: StorageEngine,
) -> tuple[StorageEngine, int, Checkpoint | None]:
    """Rebuild a storage engine from a crashed engine's durable state.

    Returns ``(engine, replay_from, checkpoint)``: the fresh engine loaded
    with the newest usable checkpoint (delta chains folded onto their
    base), the block id replay resumes after, and the checkpoint itself
    (``None`` when recovery starts from genesis). Shared by single-replica
    recovery and the sharded drill (:mod:`repro.shard.recovery`).
    """
    checkpoint = old_engine.checkpoints.latest()

    engine = StorageEngine(
        profile=old_engine.profile,
        pool_pages=old_engine.pool.capacity,
        log_mode=LogMode.LOGICAL,
        checkpoint_interval=old_engine.checkpoints.interval_blocks,
        incremental_checkpoints=old_engine.checkpoints.incremental,
        checkpoint_base_interval=old_engine.checkpoints.base_interval,
    )
    engine.genesis_state = dict(old_engine.genesis_state)
    engine.checkpoints.genesis = dict(old_engine.genesis_state)
    if checkpoint is None:
        # No checkpoint yet: replay the whole chain from genesis state.
        replay_from = -1
        engine.preload(old_engine.genesis_state)
        return engine, replay_from, checkpoint

    replay_from = checkpoint.block_id
    if checkpoint.prev_state is not None:
        engine.store.load(checkpoint.prev_state, block_id=-1)
        if checkpoint.block_writes is not None:
            # Replay the checkpoint block's recorded writes verbatim:
            # the version batch (same (block_id, seq) tags, same
            # TOMBSTONEs) comes out identical to an uncrashed
            # replica's, which SOV-style version checks rely on. A
            # state diff cannot do this — it is blind to keys
            # rewritten with an unchanged value.
            writes = list(checkpoint.block_writes)
        else:
            # Legacy checkpoints without block_writes: diff the two
            # snapshots. Membership, not .get(): a key born with a
            # stored-None value between them must enter the delta, or
            # the recovered replica loses the version an uncrashed
            # one holds.
            delta = {
                key: value
                for key, value in checkpoint.state.items()
                if key not in checkpoint.prev_state
                or checkpoint.prev_state[key] != value
            }
            writes = list(delta.items())
            writes.extend(
                (key, TOMBSTONE)
                for key in checkpoint.prev_state
                if key not in checkpoint.state
            )
        # fast-forward version history so the replayed blocks see both
        # snapshot(block-1) and snapshot(block)
        engine.store.last_committed_block = checkpoint.block_id - 1
        engine.store.apply_block(checkpoint.block_id, writes)
    else:
        engine.store.load(checkpoint.state, block_id=checkpoint.block_id)
        engine.store.last_committed_block = checkpoint.block_id
    if engine.checkpoints.incremental:
        # Restart the delta chain from the recovery point: the first
        # post-recovery deltas cover only replayed blocks, so they must
        # fold onto this base, not onto genesis.
        engine.checkpoints.seed_base(checkpoint)
    for key in engine.store.keys():
        engine.heap.insert(key)
    engine.reset_stats()
    return engine, replay_from, checkpoint


def recover_node(crashed: ReplicaNode, executor_factory=None) -> ReplicaNode:
    """Rebuild a replica from its checkpoint + block log.

    ``executor_factory(engine, registry) -> DCCExecutor`` defaults to
    cloning the crashed node's executor type and configuration.
    """
    engine, replay_from, checkpoint = rebuild_engine(crashed.engine)

    registry = crashed.executor.registry
    if executor_factory is not None:
        executor = executor_factory(engine, registry)
    else:
        executor = crashed.clone_executor(engine)
    if isinstance(executor, HarmonyExecutor) and checkpoint and checkpoint.meta:
        executor.restore_records(checkpoint.meta.get("prev_records", {}))

    recovered = ReplicaNode(f"{crashed.name}-recovered", executor, None)
    # Recovery trusts the locally persisted, already-verified chain: rebuild
    # the ledger, then re-execute everything after the checkpoint.
    for block in crashed.engine.block_log.blocks_after(-1):
        recovered.ledger.append(block)
        recovered.engine.block_log.append(block)
        if block.block_id <= replay_from:
            continue
        executor.execute_block(block.block_id, block.build_txns())
    return recovered
