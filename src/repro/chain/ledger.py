"""The replicated ledger: an append-only chain of verified blocks."""

from __future__ import annotations

from repro.chain.block import GENESIS_HASH, Block


class TamperError(Exception):
    """A block failed hash-chain verification."""


class Ledger:
    """Append-only block store with tamper detection."""

    def __init__(self) -> None:
        self._blocks: list[Block] = []

    def __len__(self) -> int:
        return len(self._blocks)

    def __getitem__(self, index: int) -> Block:
        return self._blocks[index]

    @property
    def head_hash(self) -> str:
        return self._blocks[-1].hash if self._blocks else GENESIS_HASH

    @property
    def height(self) -> int:
        return len(self._blocks)

    def append(self, block: Block) -> None:
        if not block.verify_integrity(self.head_hash):
            raise TamperError(f"block {block.block_id} fails chain verification")
        self._blocks.append(block)

    def verify_chain(self) -> bool:
        """Back-trace the hash chain from genesis; False on any tampering."""
        prev = GENESIS_HASH
        for block in self._blocks:
            if not block.verify_integrity(prev):
                return False
            prev = block.hash
        return True

    def blocks(self) -> list[Block]:
        return list(self._blocks)
