"""The assembled private blockchains.

Order-Execute systems (Section 2.1.2): clients submit transaction commands
to an ordering service; every replica executes blocks independently with a
DCC protocol — **HarmonyBC** (Harmony), **AriaBC** (Aria), **RBC** and a
serial baseline.

Simulate-Order-Validate systems (Section 2.1.1): transactions are endorsed
(simulated) first, the client reconciles the read-write sets, the ordering
service cuts blocks, and replicas validate — **Fabric** and **FastFabric#**.

Both assemblies share the ledger (hash-chained blocks, tamper detection),
replica nodes (a storage engine + a DCC executor), recovery (checkpoint +
deterministic replay) and the pipeline timing model.
"""

from repro.chain.block import GENESIS_HASH, Block
from repro.chain.ledger import Ledger, TamperError
from repro.chain.node import ReplicaNode
from repro.chain.ordering import OrderingService
from repro.chain.recovery import recover_node
from repro.chain.sov import SOVBlockchain, SOVConfig
from repro.chain.system import OEBlockchain, OEConfig, build_system

__all__ = [
    "Block",
    "GENESIS_HASH",
    "Ledger",
    "OEBlockchain",
    "OEConfig",
    "OrderingService",
    "ReplicaNode",
    "SOVBlockchain",
    "SOVConfig",
    "TamperError",
    "build_system",
    "recover_node",
]
