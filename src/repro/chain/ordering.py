"""Ordering service: collects transactions, cuts signed, hash-chained blocks.

Functionally identical between OE blockchains and deterministic databases
(Section 2.1.4: "the ordering service in OE is equivalent to the sequencing
layer of deterministic databases"): it assigns globally increasing TIDs and
broadcasts blocks; the consensus model attached to it prices latency and
throughput ceilings.
"""

from __future__ import annotations

from repro.chain.block import GENESIS_HASH, Block
from repro.consensus.crypto import Signer
from repro.txn.transaction import TxnSpec


class OrderingService:
    """Sequencer: TID assignment + block formation + hash chaining."""

    def __init__(self, signer: Signer | None = None) -> None:
        self._signer = signer or Signer("ordering-service")
        self._next_tid = 0
        self._prev_hash = GENESIS_HASH
        self._next_block_id = 0

    @property
    def next_block_id(self) -> int:
        return self._next_block_id

    def form_block(self, specs: list[TxnSpec]) -> Block:
        """Cut one block from ``specs``; deterministic and hash-chained."""
        block = Block(
            block_id=self._next_block_id,
            specs=tuple(specs),
            prev_hash=self._prev_hash,
            first_tid=self._next_tid,
        )
        block.signature = self._signer.sign(block.header_bytes())
        self._next_block_id += 1
        self._next_tid += len(specs)
        self._prev_hash = block.hash
        return block
