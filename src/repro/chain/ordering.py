"""Ordering service: collects transactions, cuts signed, hash-chained blocks.

Functionally identical between OE blockchains and deterministic databases
(Section 2.1.4: "the ordering service in OE is equivalent to the sequencing
layer of deterministic databases"): it assigns globally increasing TIDs and
broadcasts blocks; the consensus model attached to it prices latency and
throughput ceilings.
"""

from __future__ import annotations

from repro.chain.block import GENESIS_HASH, Block
from repro.consensus.crypto import Signer
from repro.txn.transaction import TxnSpec


class OrderingService:
    """Sequencer: TID assignment + block formation + hash chaining."""

    def __init__(self, signer: Signer | None = None) -> None:
        self._signer = signer or Signer("ordering-service")
        self._next_tid = 0
        self._prev_hash = GENESIS_HASH
        self._next_block_id = 0

    @property
    def next_block_id(self) -> int:
        return self._next_block_id

    def form_block(self, specs: list[TxnSpec]) -> Block:
        """Cut one block from ``specs``; deterministic and hash-chained."""
        block = Block(
            block_id=self._next_block_id,
            specs=tuple(specs),
            prev_hash=self._prev_hash,
            first_tid=self._next_tid,
        )
        block.signature = self._signer.sign(block.header_bytes())
        self._next_block_id += 1
        self._next_tid += len(specs)
        self._prev_hash = block.hash
        return block


class ShardSequencer:
    """Derives per-shard sub-blocks from the global block stream.

    Sharding does not add a second sequencing layer: the ordering service
    already fixes the global transaction order, and the split is a pure
    function of (global block, shard assignment) — every replica of every
    shard derives the identical sub-block. Each shard's sub-blocks form
    their own hash chain (one ledger per shard) and carry the *global* TIDs
    of their transactions (:attr:`~repro.chain.block.Block.tids`), so a
    shard validating a subset still reasons in global order. Every shard
    receives a sub-block for every global block — empty if it hosts none of
    its transactions — which keeps per-shard block ids, snapshot lags and
    checkpoint schedules aligned with the global stream.
    """

    def __init__(self, num_shards: int, signer: Signer | None = None) -> None:
        if num_shards < 1:
            raise ValueError("need at least one shard")
        self.num_shards = num_shards
        self._signer = signer or Signer("ordering-service")
        self._prev_hashes = [GENESIS_HASH] * num_shards

    def split(self, block: Block, participants: list) -> dict[int, Block]:
        """Cut one sub-block per shard from a global block.

        ``participants[i]`` is the set of shard ids transaction *i* runs on
        (every shard owning a key it statically touches). A cross-shard
        transaction appears in each participant's sub-block under the same
        global TID.
        """
        if len(participants) != len(block.specs):
            raise ValueError(
                f"block {block.block_id}: {len(participants)} assignments "
                f"for {len(block.specs)} specs"
            )
        per_shard: dict[int, Block] = {}
        for shard in range(self.num_shards):
            specs = []
            tids = []
            for i, spec in enumerate(block.specs):
                if shard in participants[i]:
                    specs.append(spec)
                    tids.append(block.first_tid + i)
            sub = Block(
                block_id=block.block_id,
                specs=tuple(specs),
                prev_hash=self._prev_hashes[shard],
                first_tid=tids[0] if tids else block.first_tid,
                tids=tuple(tids),
            )
            sub.signature = self._signer.sign(sub.header_bytes())
            self._prev_hashes[shard] = sub.hash
            per_shard[shard] = sub
        return per_shard
