"""Order-Execute blockchain assembly: HarmonyBC, AriaBC, RBC, serial.

``OEBlockchain.run()`` drives the full pipeline for one replica (all
replicas are deterministic copies — ``consistency_check`` proves it by
running a second one) and prices the run:

- the ordering service paces block arrivals (consensus model: Kafka or
  HotStuff — never the bottleneck for disk-oriented layers, Figure 1);
- each block executes through the replica's DCC executor, yielding decision
  stats and task durations;
- the pipeline scheduler (with inter-block parallelism iff the executor
  supports it) turns durations into makespan, latency and CPU utilization;
- the serializability oracle counts false aborts per block (Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.node import ReplicaNode
from repro.chain.ordering import OrderingService
from repro.consensus.crypto import Signer
from repro.consensus.hotstuff import HotStuffConsensus
from repro.consensus.kafka import KafkaOrdering
from repro.consensus.network import NetworkModel, NetworkPreset
from repro.core.harmony import HarmonyConfig, HarmonyExecutor
from repro.dcc.aria import AriaExecutor
from repro.dcc.oracle import SerializabilityOracle
from repro.dcc.rbc import RBCExecutor
from repro.dcc.serial import SerialExecutor
from repro.sim.costs import CostModel, StorageProfile
from repro.sim.metrics import RunMetrics
from repro.sim.rng import SeededRng
from repro.sim.scheduler import BlockTiming, PipelineSimulator
from repro.storage.engine import StorageEngine
from repro.storage.wal import LogMode

#: bytes shipped per transaction command in an OE block (vs the ~1.5 KB
#: endorsed read-write sets SOV ships — the Figures 15/16 asymmetry).
COMMAND_BYTES = 128


def decision_digest(per_block_txns) -> str:
    """A digest of every block's commit/abort decisions.

    ``per_block_txns`` yields ``(block_id, txns)`` in block order. The
    digest is a pure function of the decision layer (TIDs and statuses,
    never timings), so two runs are decision-identical iff their digests
    match — the contract the sharded pipeline's single-shard configuration
    is held to against :class:`OEBlockchain`.
    """
    from repro.consensus.crypto import sha256_hex

    parts = []
    for block_id, txns in per_block_txns:
        committed = ",".join(str(t.tid) for t in txns if t.committed)
        aborted = ",".join(str(t.tid) for t in txns if t.aborted)
        parts.append(f"{block_id}:{committed}|{aborted}")
    return sha256_hex(";".join(parts).encode())


@dataclass
class OEConfig:
    """Configuration of one Order-Execute system run."""

    system: str = "harmony"  # harmony | aria | rbc | serial
    block_size: int = 25
    num_blocks: int = 40
    num_replicas: int = 4
    cores: int = 8
    consensus: str = "kafka"  # kafka | hotstuff
    network: NetworkPreset = NetworkPreset.DEFAULT_1G
    profile: StorageProfile = StorageProfile.SSD
    pool_pages: int = 48
    checkpoint_interval: int = 10
    #: delta-chain the durable checkpoints (False = the seed's full
    #: deepcopy per interval, kept as the differential reference)
    checkpoint_incremental: bool = True
    #: delta checkpoints between base compactions of the chain
    checkpoint_base_interval: int = 8
    harmony: HarmonyConfig = field(default_factory=HarmonyConfig)
    aria_reordering: bool = True
    seed: int = 7
    measure_false_aborts: bool = True
    #: clients resubmit aborted transactions; retries consume block slots,
    #: so high-abort protocols pay for their aborts in throughput
    retry_aborted: bool = True
    #: prepare backend: ``"serial"`` runs every prepare in-process (the
    #: differential reference); ``"process"`` fans per-shard
    #: ``prepare_block`` calls out to a ``ProcessPoolExecutor`` pool
    #: (``repro.parallel``) — decisions, state hashes and certificates are
    #: bit-identical, only wall-clock changes. Fault-armed runs fall back
    #: to serial automatically so injected hooks keep firing in-process.
    backend: str = "serial"
    #: worker processes for ``backend="process"`` (``None`` = one per shard)
    backend_workers: int | None = None
    #: overlap block N+1's prepare with block N's commit (the paper's
    #: inter-block pipelining, on real cores). Takes effect with
    #: ``backend="process"`` on executors whose snapshot lag >= 2
    #: (Harmony with ``inter_block``); otherwise runs identically to the
    #: sequential driver.
    pipelined: bool = False


def append_block_latencies(
    metrics: RunMetrics,
    commit_finish_us: list[float],
    interval_us: float,
    consensus_latency_us: float,
    reply_us: float,
    per_block_committed: list[int],
) -> None:
    """Record per-block service latency for every committed transaction.

    Backlog excluded: what a client observes at sustainable load —
    consensus, execution from the moment the replica could start the
    block, and the reply hop. Shared by the unsharded and sharded runs so
    their latency models can never drift apart.
    """
    for i, committed in enumerate(per_block_committed):
        started = i * interval_us
        if i > 0:
            started = max(started, commit_finish_us[i - 1])
        block_latency = (
            consensus_latency_us + (commit_finish_us[i] - started) + reply_us
        )
        metrics.latencies_us.extend([block_latency] * committed)


def build_executor(config: OEConfig, engine: StorageEngine, registry):
    if config.system == "harmony":
        return HarmonyExecutor(engine, registry, config.harmony)
    if config.system == "aria":
        return AriaExecutor(engine, registry, config.aria_reordering)
    if config.system == "rbc":
        return RBCExecutor(engine, registry)
    if config.system == "serial":
        return SerialExecutor(engine, registry)
    raise ValueError(f"unknown OE system {config.system!r}")


def build_system(config: OEConfig, workload) -> "OEBlockchain":
    """Convenience constructor used by the bench harness and examples."""
    return OEBlockchain(config, workload)


class OEBlockchain:
    """One Order-Execute blockchain bound to a workload."""

    def __init__(self, config: OEConfig, workload) -> None:
        self.config = config
        self.workload = workload
        self.costs = CostModel()
        self.network = NetworkModel.preset(config.network)
        self.orderer_signer = Signer("ordering-service")
        self.ordering = OrderingService(self.orderer_signer)
        self.node = self._build_node("replica-0")
        if config.consensus == "hotstuff":
            self.consensus = HotStuffConsensus(
                self.network, self.costs, num_nodes=max(4, config.num_replicas)
            )
        else:
            self.consensus = KafkaOrdering(self.network, self.costs)
        #: span/metric sink (:class:`~repro.obs.trace.Tracer`); ``None``
        #: (the default) costs one attribute check per emission site.
        self.tracer = None

    def _build_node(self, name: str) -> ReplicaNode:
        engine = StorageEngine(
            costs=self.costs,
            profile=self.config.profile,
            pool_pages=self.config.pool_pages,
            log_mode=LogMode.LOGICAL,
            checkpoint_interval=self.config.checkpoint_interval,
            incremental_checkpoints=self.config.checkpoint_incremental,
            checkpoint_base_interval=self.config.checkpoint_base_interval,
        )
        engine.preload(self.workload.initial_state())
        registry = self.workload.build_registry()
        executor = build_executor(self.config, engine, registry)
        return ReplicaNode(name, executor, self.orderer_signer)

    # ------------------------------------------------------------------ run
    def _block_bytes(self) -> int:
        return self.config.block_size * COMMAND_BYTES

    def _inter_block_enabled(self) -> bool:
        return self.config.system == "harmony" and self.config.harmony.inter_block

    def _pipelined_ready(self) -> bool:
        """Whether the pipelined process-backend driver applies: requested,
        and the executor's snapshot lag legalizes preparing block *i*
        before block *i-1*'s commit (Harmony inter-block)."""
        return (
            self.config.pipelined
            and self.config.backend == "process"
            and self._inter_block_enabled()
            and self.config.harmony.effective_lag >= 2
        )

    def run(self) -> RunMetrics:
        if self._pipelined_ready():
            from repro.parallel.pipeline import run_oe_pipelined

            return run_oe_pipelined(self)
        config = self.config
        rng = SeededRng(config.seed, f"oe/{config.system}/{self.workload.name}")
        metrics = RunMetrics(system=config.system, workload=self.workload.name)

        interval = self.consensus.min_block_interval_us(
            self._block_bytes(), config.num_replicas
        )

        timings: list[BlockTiming] = []
        executions = []
        retry_queue: list = []
        for i in range(config.num_blocks):
            retries = retry_queue[: config.block_size]
            retry_queue = retry_queue[config.block_size :]
            fresh = self.workload.generate_block(
                config.block_size - len(retries), rng
            )
            block = self.ordering.form_block(retries + fresh)
            if self.tracer is not None:
                self.tracer.event(
                    "enqueue",
                    block=block.block_id,
                    attrs={"retries": len(retries), "backlog": len(retry_queue)},
                )
            execution = self.node.process_block(block)
            self._absorb_execution(metrics, timings, executions, i, interval, execution)
            if config.retry_aborted:
                retry_queue.extend(t.spec for t in execution.txns if t.aborted)
        return self._finalize_metrics(metrics, timings, executions, interval)

    # ------------------------------------------------- run bookkeeping
    # Shared with the pipelined driver (repro.parallel.pipeline) so the
    # two paths can never drift in how an execution is accounted.
    def _absorb_execution(
        self, metrics, timings, executions, i, interval, execution
    ) -> None:
        config = self.config
        # serial front-end: deserialize + dispatch each transaction
        execution.pre_exec_serial_us += len(execution.txns) * self.costs.ingest_us
        if config.measure_false_aborts:
            execution.stats.false_aborts = SerializabilityOracle.count_false_aborts(
                execution.txns
            )
        metrics.merge_block(execution.stats)
        if self.tracer is not None:
            self.tracer.stage(
                "execute",
                block=execution.block_id,
                attrs={
                    "committed": execution.stats.committed,
                    "aborted": execution.stats.aborted,
                    "false_aborts": execution.stats.false_aborts,
                },
                timing={
                    "sim_us": sum(execution.sim_durations_us)
                    + sum(execution.commit_durations_us)
                    + execution.post_commit_serial_us
                },
            )
        executions.append(execution)
        timings.append(
            BlockTiming(
                arrival_us=i * interval,
                sim_durations=execution.sim_durations_us,
                commit_durations=execution.commit_durations_us,
                serial_commit=execution.serial_commit,
                pre_exec_serial_us=execution.pre_exec_serial_us,
                post_commit_serial_us=execution.post_commit_serial_us,
            )
        )

    def _finalize_metrics(self, metrics, timings, executions, interval) -> RunMetrics:
        config = self.config
        consensus_latency = self._consensus_latency_us()
        lag = config.harmony.snapshot_lag if self._inter_block_enabled() else 2
        scheduler = PipelineSimulator(
            num_cores=config.cores,
            inter_block=self._inter_block_enabled(),
            snapshot_lag=lag,
        )
        result = scheduler.simulate(timings)

        metrics.sim_time_us = result.makespan_us
        metrics.cpu_utilization = result.cpu_utilization
        append_block_latencies(
            metrics,
            result.commit_finish_us,
            interval,
            consensus_latency,
            self.network.worst_one_way_us(config.num_replicas),
            [e.stats.committed for e in executions],
        )
        engine = self.node.engine
        metrics.io_reads = engine.io_reads
        metrics.io_writes = engine.io_writes
        metrics.buffer_hits = engine.buffer_hits
        metrics.buffer_misses = engine.buffer_misses
        metrics.extra["state_hash"] = self.node.state_hash()
        metrics.extra["ledger_ok"] = self.node.ledger.verify_chain()
        metrics.extra["decision_digest"] = decision_digest(
            (e.block_id, e.txns) for e in executions
        )
        if self.tracer is not None:
            self.tracer.event(
                "run_end",
                attrs={
                    "blocks": len(executions),
                    "committed": metrics.committed,
                    "aborted": metrics.aborted,
                    "decision_digest": metrics.extra["decision_digest"][:16],
                },
            )
            self.tracer.anno(
                "run_summary",
                timing={
                    "makespan_us": result.makespan_us,
                    "cpu_utilization": result.cpu_utilization,
                },
            )
            latency_hist = self.tracer.metrics.histogram("block_latency_us")
            for latency in metrics.latencies_us:
                latency_hist.observe(latency)
        return metrics

    def _consensus_latency_us(self) -> float:
        if isinstance(self.consensus, HotStuffConsensus):
            return self.consensus.block_latency_us()
        return self.consensus.block_latency_us(
            self._block_bytes(), self.config.num_replicas
        )

    # -------------------------------------------------------------- checks
    def consistency_check(self) -> bool:
        """Run a second replica over the same chain; states must match.

        Deterministic DCC means replicas need no coordination — this check
        is the paper's core replica-consistency claim, exercised for real.
        """
        other = self._build_node("replica-1")
        for block in self.node.ledger.blocks():
            other.process_block(block)
        return other.state_hash() == self.node.state_hash()
