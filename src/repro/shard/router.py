"""Deterministic keyspace partitioning: key -> shard.

The router is a pure function shared by every replica of every shard —
routing decisions must never depend on local state, message timing or dict
iteration order, or replicas would disagree about which shard owns a write.
Three policies:

- ``hash``   — SHA-256 of the key's canonical form, mod ``num_shards``.
  Re-keying safe: the mapping depends only on (key, num_shards), never on
  insertion order or router instance history.
- ``range``  — explicit sorted split boundaries; shard *i* owns keys in
  ``[bounds[i-1], bounds[i])`` (contiguous key ranges, the classic
  range-partitioned layout).
- ``workload`` — the workload exposes each key's position in a contiguous
  index space (:meth:`~repro.workloads.base.Workload.shard_index`); the
  router splits that space with the same formula
  :class:`~repro.workloads.base.ShardAffinity` generates against, so a
  partition-local transaction stream is also a single-shard transaction
  stream. Keys outside the index space (``None`` position) fall back to
  the hash policy.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right

from repro.workloads.base import partition_split_points


class ShardRouter:
    """Deterministic key -> shard mapping plus spec-level participant sets."""

    def __init__(
        self,
        num_shards: int,
        policy: str = "hash",
        boundaries: list | None = None,
        index_fn=None,
        index_space: int | None = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("need at least one shard")
        if policy not in ("hash", "range", "workload"):
            raise ValueError(f"unknown routing policy {policy!r}")
        if policy == "range":
            boundaries = list(boundaries or [])
            if len(boundaries) != num_shards - 1:
                raise ValueError(
                    f"range policy needs {num_shards - 1} boundaries, "
                    f"got {len(boundaries)}"
                )
            if boundaries != sorted(boundaries):
                raise ValueError("range boundaries must be sorted")
        if policy == "workload" and (index_fn is None or not index_space):
            raise ValueError("workload policy needs index_fn and index_space")
        self.num_shards = num_shards
        self.policy = policy
        self._boundaries = boundaries
        self._index_fn = index_fn
        self._index_space = index_space
        #: workload policy: the shared, cached split points — shard_of sits
        #: on every read/scope check, so each call is one bisect, and the
        #: formula is literally the one the affinity generator folds with.
        self._index_bounds = (
            partition_split_points(index_space, num_shards)
            if policy == "workload"
            else None
        )

    @classmethod
    def for_workload(cls, workload, num_shards: int) -> "ShardRouter":
        """The router aligned with ``workload``'s partition layout.

        Uses the workload policy when the workload exposes index hints
        (YCSB / SmallBank / hotspot); otherwise the hash policy — still
        correct, just blind to any affinity the generator applied.
        """
        space = getattr(workload, "shard_space", None)
        if space:
            return cls(
                num_shards,
                policy="workload",
                index_fn=workload.shard_index,
                index_space=space,
            )
        return cls(num_shards, policy="hash")

    # ------------------------------------------------------------- routing
    def shard_of(self, key: object) -> int:
        """The shard owning ``key``; deterministic across replicas."""
        if self.num_shards == 1:
            return 0
        if self.policy == "range":
            return bisect_right(self._boundaries, key)
        if self.policy == "workload":
            position = self._index_fn(key)
            if position is not None:
                return bisect_right(self._index_bounds, position)
        return self._hash_shard(key)

    def _hash_shard(self, key: object) -> int:
        digest = hashlib.sha256(repr(key).encode()).digest()
        return int.from_bytes(digest[:8], "big") % self.num_shards

    def is_local(self, key: object, shard: int) -> bool:
        return self.shard_of(key) == shard

    def shards_for(self, keys) -> frozenset:
        """Participant set of a key footprint."""
        return frozenset(self.shard_of(key) for key in keys)

    def participants_of(self, workload, spec) -> frozenset:
        """Shards a transaction runs on, from its static key footprint.

        An unknown footprint (``spec_keys`` returned ``None`` — e.g. a
        procedure whose accesses, or scan ranges, are not a pure function
        of its parameters) is routed to *every* shard: conservative, always
        correct, and the cost shows up as cross-shard coordination instead
        of a consistency hole. An *empty* footprint gets the same
        treatment — every transaction must live in at least one sub-block,
        and all-shards stays correct even if the workload's static
        analysis under-reported.
        """
        keys = workload.spec_keys(spec)
        if not keys:
            return frozenset(range(self.num_shards))
        return self.shards_for(keys)

    def split_state(self, state: dict) -> list[dict]:
        """Partition an initial-state map into per-shard slices."""
        shards: list[dict] = [{} for _ in range(self.num_shards)]
        for key, value in state.items():
            shards[self.shard_of(key)][key] = value
        return shards
