"""Deterministic keyspace partitioning: key -> shard, versioned by epoch.

The router is a pure function shared by every replica of every shard —
routing decisions must never depend on local state, message timing or dict
iteration order, or replicas would disagree about which shard owns a write.
Three static policies:

- ``hash``   — SHA-256 of the key's canonical form, mod ``num_shards``.
  Re-keying safe: the mapping depends only on (key, num_shards), never on
  insertion order or router instance history.
- ``range``  — explicit sorted split boundaries; shard *i* owns keys in
  ``[bounds[i-1], bounds[i])`` (contiguous key ranges, the classic
  range-partitioned layout).
- ``workload`` — the workload exposes each key's position in a contiguous
  index space (:meth:`~repro.workloads.base.Workload.shard_index`); the
  router splits that space with the same formula
  :class:`~repro.workloads.base.ShardAffinity` generates against, so a
  partition-local transaction stream is also a single-shard transaction
  stream. Keys outside the index space (``None`` position) fall back to
  the hash policy.

On top of the static policy sits the **ownership-epoch layer**
(:class:`~repro.shard.rebalance.OwnershipTable`): epoch 0 is the static
policy, later epochs add per-key overrides effective from an exact block
height. The router keeps a *height cursor* (:meth:`advance_to`) so the
hot single-argument lookups (``shard_of``, the executors' ``key_scope``
closures) stay cursor-relative and cost one extra ``dict.get``, while
height-explicit callers (snapshot reads, replay) use :meth:`shard_of_at`.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right

from repro.shard.rebalance import OwnershipTable
from repro.workloads.base import partition_split_points


class ShardRouter:
    """Deterministic key -> shard mapping plus spec-level participant sets."""

    def __init__(
        self,
        num_shards: int,
        policy: str = "hash",
        boundaries: list | None = None,
        index_fn=None,
        index_space: int | None = None,
        ownership: OwnershipTable | None = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("need at least one shard")
        if policy not in ("hash", "range", "workload"):
            raise ValueError(f"unknown routing policy {policy!r}")
        if policy == "range":
            boundaries = list(boundaries or [])
            if len(boundaries) != num_shards - 1:
                raise ValueError(
                    f"range policy needs {num_shards - 1} boundaries, "
                    f"got {len(boundaries)}"
                )
            if boundaries != sorted(boundaries):
                raise ValueError("range boundaries must be sorted")
        if policy == "workload" and (index_fn is None or not index_space):
            raise ValueError("workload policy needs index_fn and index_space")
        self.num_shards = num_shards
        self.policy = policy
        self._boundaries = boundaries
        self._index_fn = index_fn
        self._index_space = index_space
        #: workload policy: the shared, cached split points — shard_of sits
        #: on every read/scope check, so each call is one bisect, and the
        #: formula is literally the one the affinity generator folds with.
        self._index_bounds = (
            partition_split_points(index_space, num_shards)
            if policy == "workload"
            else None
        )
        #: consult workload scan footprints (``spec_footprint``) for exact
        #: participant sets; ``False`` restores the broadcast reference path
        self.use_footprints = True
        #: versioned per-key ownership overrides; epoch 0 == static policy
        self.ownership = ownership if ownership is not None else OwnershipTable()
        #: the height cursor single-argument lookups resolve against
        self._cursor_height = 0
        self._cur_overrides = self.ownership.overrides_at(0)

    @classmethod
    def for_workload(cls, workload, num_shards: int) -> "ShardRouter":
        """The router aligned with ``workload``'s partition layout.

        Uses the workload policy when the workload exposes index hints
        (YCSB / SmallBank / hotspot); otherwise the hash policy — still
        correct, just blind to any affinity the generator applied.
        """
        space = getattr(workload, "shard_space", None)
        if space:
            return cls(
                num_shards,
                policy="workload",
                index_fn=workload.shard_index,
                index_space=space,
            )
        return cls(num_shards, policy="hash")

    # ------------------------------------------------------------- epochs
    @property
    def ownership_epoch(self) -> int:
        """The newest installed ownership epoch."""
        return self.ownership.epoch

    @property
    def cursor_height(self) -> int:
        return self._cursor_height

    def advance_to(self, height: int) -> None:
        """Point the cursor at ``height``; single-argument lookups then
        resolve ownership as of that block. Replay surfaces save/restore
        the cursor around their loops."""
        self._cursor_height = height
        self._cur_overrides = self.ownership.overrides_at(height)

    def apply_migration(self, record) -> int:
        """Install a certified ownership change and move the cursor to its
        effective height. Epochs are strictly sequential — a gap means a
        replica missed a record, which must fail loudly."""
        if record.epoch != self.ownership.epoch + 1:
            raise ValueError(
                f"migration epoch {record.epoch} does not follow "
                f"installed epoch {self.ownership.epoch}"
            )
        self.ownership.append(record.block_id, dict(record.moves))
        self.advance_to(record.block_id)
        return record.epoch

    # ------------------------------------------------------------- routing
    def base_shard_of(self, key: object) -> int:
        """The static-policy owner, ignoring ownership epochs."""
        if self.num_shards == 1:
            return 0
        if self.policy == "range":
            return bisect_right(self._boundaries, key)
        if self.policy == "workload":
            position = self._index_fn(key)
            if position is not None:
                return bisect_right(self._index_bounds, position)
        return self._hash_shard(key)

    def shard_of(self, key: object) -> int:
        """The shard owning ``key`` at the cursor height; deterministic
        across replicas."""
        override = self._cur_overrides.get(key)
        if override is not None:
            return override
        return self.base_shard_of(key)

    def shard_of_at(self, key: object, height: int) -> int:
        """The shard owning ``key`` at block ``height`` (cursor-free).

        Snapshot reads at height ``h`` route by the owner at ``h + 1``:
        migration deltas land inside the boundary block, so the value
        visible at a pre-boundary snapshot is still on the source."""
        override = self.ownership.overrides_at(height).get(key)
        if override is not None:
            return override
        return self.base_shard_of(key)

    def _hash_shard(self, key: object) -> int:
        digest = hashlib.sha256(repr(key).encode()).digest()
        return int.from_bytes(digest[:8], "big") % self.num_shards

    def is_local(self, key: object, shard: int) -> bool:
        return self.shard_of(key) == shard

    def shards_for(self, keys) -> frozenset:
        """Participant set of a key footprint."""
        return frozenset(self.shard_of(key) for key in keys)

    def route_spec(self, workload, spec) -> tuple[frozenset, list]:
        """``(participants, routed (key, shard) pairs)`` in one pass.

        Participant sets may be supersets of the true owners (a spare
        participant prepares an empty local footprint and votes commit);
        they must never be undersets, or a cross-shard conflict would go
        unvalidated. Resolution order:

        1. A compiled :class:`~repro.workloads.base.ScanFootprint`
           (``spec_footprint``): exact point keys plus index-space scan
           ranges, covered via the static split points *and* a stab of
           every ownership override inside the ranges — true participant
           sets for scans instead of a broadcast.
        2. A static key footprint (``spec_keys``).
        3. Neither (``None``/empty): broadcast to every shard —
           conservative, always correct.
        """
        fp_fn = getattr(workload, "spec_footprint", None) if self.use_footprints else None
        if fp_fn is not None:
            footprint = fp_fn(spec)
            if footprint is not None:
                pairs = [(key, self.shard_of(key)) for key in footprint.points]
                shards = {shard for _key, shard in pairs}
                shards.update(self._range_shards(footprint))
                if shards:
                    return frozenset(shards), pairs
                return frozenset(range(self.num_shards)), pairs
        keys = workload.spec_keys(spec)
        if not keys:
            return frozenset(range(self.num_shards)), []
        pairs = [(key, self.shard_of(key)) for key in keys]
        return frozenset(shard for _key, shard in pairs), pairs

    def _range_shards(self, footprint) -> set:
        """Shards whose ownership intersects the footprint's index ranges."""
        if not footprint.ranges:
            return set()
        shards: set[int] = set()
        if self._index_bounds is not None:
            # Static cover: the contiguous shard span of each range.
            for lo, hi in footprint.ranges:
                if hi <= lo:
                    continue
                first = bisect_right(self._index_bounds, lo)
                last = bisect_right(self._index_bounds, hi - 1)
                shards.update(range(first, last + 1))
        else:
            # Hash/range policies cannot bound a scan in index space.
            return set(range(self.num_shards))
        # Overridden keys inside a scanned range may live anywhere: stab
        # each override's index position against the compiled ranges.
        if self._cur_overrides and self._index_fn is not None:
            for key, shard in self._cur_overrides.items():
                position = self._index_fn(key)
                if position is not None and footprint.covers_index(position):
                    shards.add(shard)
        return shards

    def participants_of(self, workload, spec) -> frozenset:
        """Shards a transaction runs on, from its static footprint."""
        return self.route_spec(workload, spec)[0]

    def split_state(self, state: dict) -> list[dict]:
        """Partition an initial-state map into per-shard slices."""
        shards: list[dict] = [{} for _ in range(self.num_shards)]
        for key, value in state.items():
            shards[self.shard_of(key)][key] = value
        return shards
