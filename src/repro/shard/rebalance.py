"""Adaptive sharding: deterministic live re-keying driven by telemetry.

Static routing (hash / range / workload) is a pure function of the key,
so a migrating Zipf hotspot either saturates one shard (partition-aligned
policies) or scatters every transaction's footprint across the fleet
(hash), and the scaling wins of multi-shard execution evaporate. This
module closes the loop from *observed* load back to routing:

- :class:`OwnershipTable` — an append-only, versioned key-ownership
  overlay on top of the router's static policy. Epoch 0 is the static
  policy itself; each later epoch adds a batch of per-key overrides that
  become effective at an exact block height.
- :class:`MigrationRecord` — the ownership-change record that rides the
  certificate log as a first-class, hash-covered field of the boundary
  block's :class:`~repro.shard.twopc.CommitCertificate`. Because every
  replica, :func:`~repro.shard.recovery.recover_shard_node`, and
  :func:`~repro.parallel.replay.replay_group` already index the
  certificate stream positionally, they all apply the identical
  migration at the identical height — the same trick the 2PC decisions
  use.
- :class:`RebalancePolicy` — watches the decision-layer load telemetry
  (per-key routed-access counts, per-shard load, cross-shard ratio: the
  same quantities ``repro.obs.analyze.shard_skew`` reports) and proposes
  key moves. Inputs are *decision-layer only* — counts accumulated while
  routing, never timing annotations — so the disturbed and reference
  sides of a fault drill, and the serial and process prepare backends,
  fire bit-identical migrations.

Physical shipment happens at the ``H-1 -> H`` block boundary: the moved
keys' latest versions are loaded into the destination store as a version
batch *inside* block ``H-1`` (``seq`` offset by
:data:`~repro.storage.mvstore.MIGRATION_SEQ_BASE` so they sort after the
block's real writes), and the source store receives TOMBSTONEs the same
way. That keeps the per-shard AdHash state hashes summing to the same
combined hash, keeps :class:`~repro.shard.federated.FederatedSnapshot`
scans disjoint, and makes snapshot reads at height ``h`` route by the
owner at ``h+1`` (pre-migration snapshots still find the value on the
source, post-boundary snapshots on the destination).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.storage.mvstore import MIGRATION_SEQ_BASE, TOMBSTONE, canonical

__all__ = [
    "MIGRATION_SEQ_BASE",
    "OwnershipTable",
    "MigrationRecord",
    "RebalanceProposal",
    "RebalancePolicy",
    "migration_store_deltas",
]


class OwnershipTable:
    """Append-only versioned key-ownership overrides.

    Epoch *e* is a cumulative ``{key: shard}`` override map effective for
    every block at or above its height. Epoch 0 (height 0, empty map) is
    the router's static policy. Cumulative maps make the hot-path lookup
    a single ``dict.get``.
    """

    def __init__(self) -> None:
        self._heights: list[int] = [0]
        self._overrides: list[dict] = [{}]

    @property
    def epoch(self) -> int:
        """The newest epoch number (0 = static policy only)."""
        return len(self._heights) - 1

    def height_of(self, epoch: int) -> int:
        return self._heights[epoch]

    def append(self, height: int, moves) -> int:
        """Install a new epoch effective at ``height``; returns its number."""
        if height < self._heights[-1]:
            raise ValueError(
                f"epoch height {height} precedes current epoch at "
                f"{self._heights[-1]}"
            )
        merged = dict(self._overrides[-1])
        merged.update(moves)
        self._heights.append(height)
        self._overrides.append(merged)
        return self.epoch

    def epoch_at(self, height: int) -> int:
        """The epoch in force for block ``height``."""
        return max(0, bisect_right(self._heights, height) - 1)

    def overrides_at(self, height: int) -> dict:
        return self._overrides[self.epoch_at(height)]


@dataclass(frozen=True)
class MigrationRecord:
    """One ownership change, certified at block ``block_id``.

    The record is decided at the *start* of block ``block_id`` from
    telemetry through ``block_id - 1``, applied to the router before that
    block is routed, and carried (hash-covered) on that block's commit
    certificate. ``moves`` re-keys ownership; ``deltas`` are the shipped
    latest versions of the moved keys as of ``block_id - 1`` (keys whose
    latest version is a deletion ship no value — ownership still moves).
    """

    block_id: int
    epoch: int
    #: ((key, dst_shard), ...) sorted by ``repr(key)``
    moves: tuple = ()
    #: ((key, value), ...) in ``moves`` order, live keys only
    deltas: tuple = ()
    reason: str = ""

    def payload_text(self) -> str:
        """Canonical text folded into the certificate hash."""
        moves = ",".join(f"{key!r}->{dst}" for key, dst in self.moves)
        deltas = ",".join(
            f"{key!r}={canonical(value)}" for key, value in self.deltas
        )
        return (
            f"epoch={self.epoch};block={self.block_id};"
            f"moves=[{moves}];deltas=[{deltas}];reason={self.reason}"
        )


def migration_store_deltas(record: MigrationRecord, router):
    """Per-shard store loads a migration implies: ``(incoming, outgoing)``.

    ``incoming[dst]`` maps moved keys to their shipped values;
    ``outgoing[src]`` maps them to TOMBSTONE. Sources resolve through the
    ownership table *at the pre-boundary height*, so the split is
    identical whether the record's epoch is already appended or not —
    recovery and replay reuse this on long-settled tables.
    """
    dst_of = dict(record.moves)
    prev = record.block_id - 1
    incoming: dict[int, dict] = {}
    outgoing: dict[int, dict] = {}
    for key, value in record.deltas:
        dst = dst_of[key]
        src = router.shard_of_at(key, prev)
        if src == dst:
            continue
        incoming.setdefault(dst, {})[key] = value
        outgoing.setdefault(src, {})[key] = TOMBSTONE
    return incoming, outgoing


@dataclass(frozen=True)
class RebalanceProposal:
    """A policy's side-effect-free migration proposal."""

    #: ((key, dst_shard), ...) sorted by ``repr(key)``
    moves: tuple
    reason: str


class RebalancePolicy:
    """Skew-watching migration policy over decision-layer telemetry.

    Accumulates, per check window, the per-key routed-access counts, the
    per-shard load they imply, and the cross-shard transaction ratio —
    all from the routing step, never from timing. At each check boundary
    (past warmup, respecting cooldown) it computes the same busy/mean
    skew ratio ``shard_skew`` reports and fires on either trigger:

    - *scatter* (cross-shard ratio >= ``cross_threshold``): the hot key
      set is spread across shards, so nearly every transaction pays 2PC;
      colocate the hottest ``max_keys`` keys on the shard that already
      owns the plurality of their traffic.
    - *skew* (load skew >= ``skew_threshold``): one shard is saturated;
      move its hottest keys, as a group, to the least-loaded shard.

    All tie-breaks are ``(-count, repr(key))`` / smallest-shard-id, so
    every replica proposes the identical record.
    """

    def __init__(
        self,
        num_shards: int,
        check_interval: int = 4,
        warmup_blocks: int = 4,
        cooldown_blocks: int = 4,
        skew_threshold: float = 2.0,
        cross_threshold: float = 0.5,
        max_keys: int = 32,
    ) -> None:
        if num_shards < 2:
            raise ValueError("rebalancing needs at least two shards")
        if check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        self.num_shards = num_shards
        self.check_interval = check_interval
        self.warmup_blocks = warmup_blocks
        self.cooldown_blocks = cooldown_blocks
        self.skew_threshold = skew_threshold
        self.cross_threshold = cross_threshold
        self.max_keys = max_keys
        self._key_counts: dict[object, int] = {}
        self._shard_counts = [0] * num_shards
        self._txns = 0
        self._cross = 0
        self._last_fired = -(10**9)

    @classmethod
    def from_config(cls, config) -> "RebalancePolicy":
        return cls(
            config.num_shards,
            check_interval=config.rebalance_check_interval,
            warmup_blocks=config.rebalance_warmup_blocks,
            cooldown_blocks=config.rebalance_cooldown_blocks,
            skew_threshold=config.rebalance_skew_threshold,
            cross_threshold=config.rebalance_cross_threshold,
            max_keys=config.rebalance_max_keys,
        )

    # -------------------------------------------------------------- telemetry
    def begin_block(self, height: int) -> None:
        """Start a block; check boundaries reset the window counters."""
        if height > 0 and height % self.check_interval == 0:
            self._key_counts.clear()
            self._shard_counts = [0] * self.num_shards
            self._txns = 0
            self._cross = 0

    def observe_txn(self, routed_keys, participants) -> None:
        """Account one transaction's routed footprint.

        ``routed_keys`` is an iterable of ``(key, shard)`` pairs from the
        routing step; ``participants`` the transaction's participant set.
        """
        counts = self._key_counts
        shards = self._shard_counts
        for key, shard in routed_keys:
            counts[key] = counts.get(key, 0) + 1
            shards[shard] += 1
        self._txns += 1
        if len(participants) > 1:
            self._cross += 1

    # --------------------------------------------------------------- decision
    def window_skew(self) -> float:
        """Busy/mean load skew of the current window (1.0 when degenerate —
        the same convention ``obs.analyze.shard_skew`` hardens to)."""
        total = sum(self._shard_counts)
        if total <= 0:
            return 1.0
        mean = total / self.num_shards
        return max(self._shard_counts) / mean

    def cross_ratio(self) -> float:
        return self._cross / self._txns if self._txns else 0.0

    def propose(self, height: int, router) -> RebalanceProposal | None:
        """Side-effect-free: the migration this window's telemetry asks
        for, or ``None``. The caller commits it (and then calls
        :meth:`committed`) or drops it."""
        if height < self.warmup_blocks or height % self.check_interval != 0:
            return None
        if height - self._last_fired < self.cooldown_blocks:
            return None
        if not self._key_counts:
            return None
        skew = self.window_skew()
        cross = self.cross_ratio()
        hot = sorted(
            self._key_counts.items(), key=lambda kv: (-kv[1], repr(kv[0]))
        )[: self.max_keys]
        if cross >= self.cross_threshold:
            moves = self._colocate(hot, router)
            if moves:
                return RebalanceProposal(
                    moves=moves, reason=f"scatter:cross={cross:.2f}"
                )
        if skew >= self.skew_threshold:
            moves = self._offload(hot, router)
            if moves:
                return RebalanceProposal(
                    moves=moves, reason=f"skew={skew:.2f}"
                )
        return None

    def _colocate(self, hot, router) -> tuple:
        """Gather the hot set on the shard already owning most of it."""
        weight = [0] * self.num_shards
        owner = {}
        for key, count in hot:
            shard = router.shard_of(key)
            owner[key] = shard
            weight[shard] += count
        dst = max(range(self.num_shards), key=lambda s: (weight[s], -s))
        moves = tuple(
            (key, dst)
            for key, _count in hot
            if owner[key] != dst
        )
        return tuple(sorted(moves, key=lambda kv: repr(kv[0])))

    def _offload(self, hot, router) -> tuple:
        """Move the hottest shard's hot keys, as a group, to the coldest."""
        loads = self._shard_counts
        src = max(range(self.num_shards), key=lambda s: (loads[s], -s))
        dst = min(range(self.num_shards), key=lambda s: (loads[s], s))
        if src == dst:
            return ()
        moves = tuple(
            (key, dst)
            for key, _count in hot
            if router.shard_of(key) == src
        )
        return tuple(sorted(moves, key=lambda kv: repr(kv[0])))

    def committed(self, height: int) -> None:
        """A proposal fired at ``height`` was certified; start cooldown."""
        self._last_fired = height
        self._key_counts.clear()
        self._shard_counts = [0] * self.num_shards
        self._txns = 0
        self._cross = 0


def build_migration_record(
    height: int, epoch: int, proposal: RebalanceProposal, value_of
) -> MigrationRecord:
    """Materialize a proposal into the certified record.

    ``value_of(key)`` returns the key's raw latest chain entry
    ``(value, version)`` on its *current* owner as of ``height - 1``;
    keys with no visible live version (absent or deleted) move ownership
    without shipping a value.
    """
    deltas = []
    for key, _dst in proposal.moves:
        value, version = value_of(key)
        if version is None or value is TOMBSTONE:
            continue
        deltas.append((key, value))
    return MigrationRecord(
        block_id=height,
        epoch=epoch,
        moves=proposal.moves,
        deltas=tuple(deltas),
        reason=proposal.reason,
    )
