"""The sharded Order-Execute blockchain: N pipelines, one global order.

:class:`ShardedBlockchain` runs one full OE pipeline per shard — each with
its own :class:`~repro.storage.engine.StorageEngine`, DCC executor,
hash-chained ledger and :class:`~repro.sim.scheduler.PipelineSimulator`
lane — under a single global ordering service. Per global block:

1. the ordering service cuts the global block; the
   :class:`~repro.chain.ordering.ShardSequencer` derives per-shard
   sub-blocks (global TIDs preserved, empty sub-blocks keep every shard
   block-locked);
2. every shard *prepares* its sub-block (simulate against a
   :class:`~repro.shard.federated.FederatedSnapshot`, validate with its
   own DCC protocol) — the prepare outcome is its 2PC vote;
3. votes on cross-shard transactions are exchanged and folded into a
   hash-chained :class:`~repro.shard.twopc.CommitCertificate`;
4. every shard *commits*, honouring the certificate's vetoes and
   installing only the writes it owns.

With ``num_shards=1`` every hook degenerates to the unsharded pipeline
(no federation, no scope, no votes) and the run is decision-identical to
:class:`~repro.chain.system.OEBlockchain` on the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.node import ReplicaNode
from repro.chain.ordering import OrderingService, ShardSequencer
from repro.chain.system import (
    COMMAND_BYTES,
    OEConfig,
    append_block_latencies,
    build_executor,
    decision_digest,
)
from repro.consensus.crypto import Signer
from repro.consensus.hotstuff import HotStuffConsensus
from repro.consensus.kafka import KafkaOrdering
from repro.consensus.network import NetworkModel
from repro.dcc.oracle import SerializabilityOracle
from repro.shard.federated import FederatedSnapshot
from repro.shard.rebalance import (
    RebalancePolicy,
    build_migration_record,
    migration_store_deltas,
)
from repro.shard.router import ShardRouter
from repro.shard.twopc import CertificateLog, derive_votes
from repro.sim.costs import CostModel
from repro.sim.metrics import BlockStats, RunMetrics
from repro.sim.rng import SeededRng
from repro.sim.scheduler import BlockTiming, PipelineSimulator, merge_shard_results
from repro.storage.engine import StorageEngine
from repro.storage.mvstore import combine_state_hashes
from repro.storage.wal import LogMode
from repro.txn.transaction import AbortReason


@dataclass
class ShardConfig(OEConfig):
    """An :class:`~repro.chain.system.OEConfig` plus the sharding knobs."""

    num_shards: int = 1
    #: ``workload`` aligns with the workload's partition layout (falls back
    #: to ``hash`` when the workload has no index hints); ``hash`` and
    #: ``range`` are the generic policies.
    router_policy: str = "workload"
    #: explicit split points for ``router_policy="range"``
    range_boundaries: tuple = ()
    #: core budget of each shard's replica (scale-out: every shard is its
    #: own machine group); ``None`` = same budget as the unsharded replica
    cores_per_shard: int | None = None
    #: bytes of one batched remote-read round (request + values)
    cross_read_bytes: int = 256
    #: bytes of one prepare vote on the wire
    vote_bytes: int = 64
    #: retain per-block executions + merged transactions (tests/oracles)
    keep_history: bool = False
    #: live re-keying: ``"off"`` pins the epoch-0 static routing; ``"adaptive"``
    #: arms a :class:`~repro.shard.rebalance.RebalancePolicy` that watches
    #: decision-layer telemetry and re-keys hot keys mid-run
    rebalance: str = "off"
    #: blocks between rebalance decision points (telemetry window length)
    rebalance_check_interval: int = 4
    #: blocks before the first decision point may fire
    rebalance_warmup_blocks: int = 4
    #: blocks a committed migration suppresses the next one
    rebalance_cooldown_blocks: int = 4
    #: window load skew (max/mean) at which the offload trigger fires
    rebalance_skew_threshold: float = 2.0
    #: cross-shard txn ratio at which the co-location trigger fires
    rebalance_cross_threshold: float = 0.5
    #: most keys one migration record may move
    rebalance_max_keys: int = 32
    #: compile workload scan footprints into exact participant sets
    #: (``False`` restores broadcast routing for scans — the differential
    #: reference the footprint bench compares against)
    scan_footprints: bool = True


def build_router(config: ShardConfig, workload) -> ShardRouter:
    """The deterministic router for ``config`` — module-level so worker
    processes of the parallel prepare backend rebuild the identical
    routing from (config, workload) alone."""
    if config.router_policy == "workload":
        router = ShardRouter.for_workload(workload, config.num_shards)
    elif config.router_policy == "range":
        router = ShardRouter(
            config.num_shards,
            policy="range",
            boundaries=list(config.range_boundaries),
        )
    else:
        router = ShardRouter(config.num_shards, policy="hash")
    router.use_footprints = getattr(config, "scan_footprints", True)
    return router


@dataclass
class GlobalBlockRecord:
    """One global block's outcome, kept when ``keep_history`` is set."""

    block_id: int
    merged_txns: list
    executions: dict
    participants: list
    certificate: object


@dataclass
class GlobalBlockOutcome:
    """The decision layer's result for one global block."""

    block: object
    participants: list
    cross_tids: set
    sub_blocks: dict
    certificate: object
    #: shard -> BlockExecution; crashed shards (``crash_after_prepare``)
    #: have no entry — they voted but never committed
    executions: dict


@dataclass
class _ShardedRunState:
    """Accumulators shared by the sequential and pipelined run drivers."""

    metrics: RunMetrics
    interval: float
    remote_round_us: float
    shard_timings: list
    merged_blocks: list = None
    per_block_committed: list = None
    cross_txns_total: int = 0
    cross_aborted_total: int = 0

    def __post_init__(self) -> None:
        self.merged_blocks = [] if self.merged_blocks is None else self.merged_blocks
        self.per_block_committed = (
            [] if self.per_block_committed is None else self.per_block_committed
        )


class ShardGroup:
    """One replica's full set of shard pipelines (nodes + wiring).

    Both the primary and the consistency-check replica are instances of
    this class: building one wires each shard executor's federated
    snapshot source and key scope, so replaying the same sub-blocks +
    certificates reproduces the same state anywhere.
    """

    def __init__(
        self,
        config: ShardConfig,
        workload,
        router: ShardRouter,
        costs: CostModel,
        orderer_signer: Signer,
        name_prefix: str = "replica-0",
    ) -> None:
        self.config = config
        self.router = router
        shard_states = router.split_state(workload.initial_state())
        self.nodes: list[ReplicaNode] = []
        for shard in range(config.num_shards):
            engine = StorageEngine(
                costs=costs,
                profile=config.profile,
                pool_pages=config.pool_pages,
                log_mode=LogMode.LOGICAL,
                checkpoint_interval=config.checkpoint_interval,
                incremental_checkpoints=config.checkpoint_incremental,
                checkpoint_base_interval=config.checkpoint_base_interval,
            )
            engine.preload(shard_states[shard])
            executor = build_executor(config, engine, workload.build_registry())
            self.nodes.append(
                ReplicaNode(f"{name_prefix}/shard-{shard}", executor, orderer_signer)
            )
        #: the shared store list captured (by reference) in every shard's
        #: federation closures — :meth:`rejoin` mutates slots in place so
        #: peers re-point at a recovered store without rewiring
        self._stores: list | None = None
        #: ``listener(shard, node)`` callbacks fired by :meth:`rejoin` —
        #: the process-prepare backend registers one so worker-side store
        #: caches are invalidated whenever a recovered shard re-enters
        self.rejoin_listeners: list = []
        if config.num_shards > 1:
            stores = [node.engine.store for node in self.nodes]
            self._stores = stores
            for shard, node in enumerate(self.nodes):
                node.executor.snapshot_source = (
                    lambda snap_block_id, _stores=stores: FederatedSnapshot(
                        router, _stores, snap_block_id
                    )
                )
                node.executor.key_scope = (
                    lambda key, _shard=shard: router.shard_of(key) == _shard
                )

    def prepare(self, sub_blocks: dict, skip: frozenset = frozenset()) -> dict:
        """Phase one on every live shard; all prepares precede any commit.

        Shards in ``skip`` (crash-before-prepare injection) died before
        the sub-block arrived: they never log or prepare it and get no
        entry — a supervisor must catch them up after recovery.
        """
        return {
            shard: node.prepare_block(sub_blocks[shard])
            for shard, node in enumerate(self.nodes)
            if shard not in skip
        }

    def finish(
        self, prepared: dict, abort_tids: frozenset, skip: frozenset = frozenset()
    ) -> dict:
        """Phase two on every prepared shard, honouring the certificate's
        vetoes.

        Shards in ``skip`` (crash injection) never commit and get no entry;
        shards absent from ``prepared`` never even prepared.
        """
        return {
            shard: self.nodes[shard].finish_block(prepared[shard], abort_tids)
            for shard in sorted(prepared)
            if shard not in skip
        }

    def rejoin(self, shard: int, node: ReplicaNode) -> None:
        """Swap a recovered replica back into the fleet as a full peer.

        The federation closures capture the shared store list by
        reference, so mutating the slot in place re-points every peer's
        cross-shard reads at the recovered store. The recovered executor
        itself was wired against a *copy* of the list (see
        :func:`~repro.shard.recovery.recover_shard_node`), so it is
        re-wired against the shared one here.
        """
        self.nodes[shard] = node
        if self._stores is not None:
            self._stores[shard] = node.engine.store
            stores = self._stores
            router = self.router
            node.executor.snapshot_source = (
                lambda snap_block_id, _stores=stores: FederatedSnapshot(
                    router, _stores, snap_block_id
                )
            )
            node.executor.key_scope = (
                lambda key, _shard=shard: router.shard_of(key) == _shard
            )
        for listener in self.rejoin_listeners:
            listener(shard, node)

    def state_hashes(self) -> list[str]:
        return [node.state_hash() for node in self.nodes]

    def combined_state_hash(self) -> str:
        return combine_state_hashes(self.state_hashes())

    def ledgers_ok(self) -> bool:
        return all(node.ledger.verify_chain() for node in self.nodes)


class ShardedBlockchain:
    """N partitioned OE pipelines with deterministic cross-shard commit."""

    def __init__(self, config: ShardConfig, workload) -> None:
        if config.system == "serial" and config.num_shards > 1:
            # serial reads its in-block predecessors, which only exist on
            # the shard that executed them — no deterministic federation.
            raise ValueError("serial execution does not support num_shards > 1")
        self.config = config
        self.workload = workload
        self.costs = CostModel()
        self.network = NetworkModel.preset(config.network)
        self.orderer_signer = Signer("ordering-service")
        self.ordering = OrderingService(self.orderer_signer)
        self.sequencer = ShardSequencer(config.num_shards, self.orderer_signer)
        self.router = self._build_router()
        self.group = ShardGroup(
            config, workload, self.router, self.costs, self.orderer_signer
        )
        if config.consensus == "hotstuff":
            self.consensus = HotStuffConsensus(
                self.network, self.costs, num_nodes=max(4, config.num_replicas)
            )
        else:
            self.consensus = KafkaOrdering(self.network, self.costs)
        self.cert_log = CertificateLog()
        #: adaptive re-keying policy (``config.rebalance="adaptive"``);
        #: ``None`` pins the static epoch-0 routing for the whole run
        self.rebalance_policy = (
            RebalancePolicy.from_config(config)
            if config.rebalance == "adaptive" and config.num_shards > 1
            else None
        )
        #: migration fault point (``hook(block_id) -> {shard: "skip"|"torn"}``)
        #: consulted by :meth:`apply_migration` — armed by
        #: :mod:`repro.faults.inject` for the migration-crash family
        self.migration_hook = None
        #: per-shard shipment watermark: the highest migration epoch whose
        #: store deltas landed on each live store. A store behind the
        #: boundary (open partition window) skips the live shipment; the
        #: supervisor's catch-up re-applies it from the certified record,
        #: keyed off this mark so nothing applies twice.
        self._store_mig_epochs = [0] * config.num_shards
        #: participant sets per global block (replayed by replicas)
        self.participants_log: list[list[frozenset]] = []
        self.history: list[GlobalBlockRecord] = []
        #: fault-point hook (``hook(block_id) -> (skip_prepare, skip_commit)
        #: | None``) consulted by :meth:`process_global_block`; ``None``
        #: (the default) costs one attribute check per block. Armed by
        #: :mod:`repro.faults.inject`.
        self.fault_hook = None
        #: vote-exchange medium; ``None`` means perfect delivery. A
        #: :class:`~repro.shard.twopc.VoteChannel` here lets fault plans
        #: drop/duplicate/delay votes on the wire.
        self.vote_channel = None
        #: span/metric sink (:class:`~repro.obs.trace.Tracer`); ``None``
        #: (the default) costs one attribute check per emission site.
        #: Armed by :func:`repro.obs.trace.attach_tracer`.
        self.tracer = None
        #: the process-pool prepare backend (``config.backend="process"``),
        #: built lazily on the first fault-free block; ``None`` = serial
        self._prepare_backend = None
        #: sticky serial fallback: set when a fault directive fires (the
        #: injected hooks must run in-process) and cleared by rejoin,
        #: which resyncs the workers' store caches
        self._backend_suspended = False
        self.group.rejoin_listeners.append(self._on_rejoin)

    # ------------------------------------------------------ prepare backend
    def _backend_lag(self) -> int:
        if self.config.system == "harmony":
            return self.config.harmony.effective_lag
        return 1

    def _ensure_backend(self):
        """The process prepare backend, or ``None`` for the serial path.

        Fault-armed chains (hooks or a vote channel installed) never get a
        backend: injected faults must fire inside this process, so they
        auto-fall back to the serial reference path.
        """
        if (
            self.config.backend != "process"
            or self._backend_suspended
            or self.fault_hook is not None
            or self.vote_channel is not None
        ):
            return None
        if self._prepare_backend is None:
            from repro.parallel.backend import make_prepare_backend

            self._prepare_backend = make_prepare_backend(
                self.config, self.workload, self.config.num_shards
            )
            if self._prepare_backend is None:
                self._backend_suspended = True  # unsupported scheme: stay serial
            elif self.tracer is not None:
                self._prepare_backend.tracer = self.tracer
        return self._prepare_backend

    def _suspend_backend(self) -> None:
        """Serial fallback until a rejoin resyncs the worker caches."""
        if self.config.backend == "process":
            self._backend_suspended = True

    def _on_rejoin(self, shard: int, node: ReplicaNode) -> None:
        """Rejoin listener: the serial fallback window recorded every
        committed block's per-shard deltas (:meth:`advance_partial`), so
        only shards that missed commits — plus the recovered shard, whose
        store was rebuilt — need their worker caches re-shipped; the rest
        catch up incrementally from the delta log. Then lift the fallback."""
        backend = self._prepare_backend
        if backend is None:
            return
        backend.rejoin_resync(
            shard,
            [n.engine.store for n in self.group.nodes],
            lag=self._backend_lag(),
        )
        if self.fault_hook is None and self.vote_channel is None:
            self._backend_suspended = False

    def close_backend(self) -> None:
        """Shut the worker pools down (idempotent); the chain stays usable
        on the serial path."""
        if self._prepare_backend is not None:
            self._prepare_backend.close()
            self._prepare_backend = None
        self._suspend_backend()

    def _build_router(self) -> ShardRouter:
        return build_router(self.config, self.workload)

    # ------------------------------------------------------------------ run
    def _block_bytes(self) -> int:
        return self.config.block_size * COMMAND_BYTES

    def _inter_block_enabled(self) -> bool:
        return self.config.system == "harmony" and self.config.harmony.inter_block

    def _cores_per_shard(self) -> int:
        return self.config.cores_per_shard or self.config.cores

    def _remote_read_round_us(self) -> float:
        """One batched remote-read exchange of a cross-shard simulation."""
        return self.network.rtt_us(self.config.num_shards) + self.network.transfer_us(
            self.config.cross_read_bytes
        )

    def _vote_exchange_us(self, num_cross_local: int) -> float:
        """Prepare-vote broadcast + decide hop for one shard's sub-block."""
        return 2.0 * self.network.worst_one_way_us(
            self.config.num_shards
        ) + self.network.broadcast_us(
            self.config.vote_bytes * num_cross_local, self.config.num_shards - 1
        )

    # -------------------------------------------------------------- tracing
    # Span emission helpers, shared by the sequential driver, the pipelined
    # driver and the fault supervisor (which runs prepare/commit itself).
    # Deterministic fields only carry decision-layer quantities; engine sim
    # durations (which legally differ across prepare backends) ride in the
    # ``timing`` annotation dict. Every per-shard loop iterates sorted shard
    # ids so the span order is independent of dict iteration order.
    def _trace_order(
        self, tracer, block, cross_tids, sub_blocks, skip_prepare, skip_commit
    ) -> None:
        tracer.event(
            "order",
            block=block.block_id,
            attrs={
                "size": block.size,
                "cross": len(cross_tids),
                "sub_sizes": [sub_blocks[s].size for s in sorted(sub_blocks)],
            },
        )
        if skip_prepare or skip_commit:
            tracer.fault(
                "fault_directive",
                block=block.block_id,
                attrs={
                    "skip_prepare": sorted(skip_prepare),
                    "skip_commit": sorted(skip_commit),
                },
            )

    def _trace_prepared(self, tracer, block_id: int, prepared: dict) -> None:
        for shard in sorted(prepared):
            prep = prepared[shard]
            tracer.stage(
                "prepare",
                block=block_id,
                shard=shard,
                attrs={"txns": len(prep.txns)},
                timing={"sim_us": sum(prep.sim_durations_us)},
            )

    def _trace_commits(self, tracer, block_id: int, executions: dict) -> None:
        for shard in sorted(executions):
            execution = executions[shard]
            stats = execution.stats
            tracer.stage(
                "commit",
                block=block_id,
                shard=shard,
                attrs={
                    "committed": stats.committed
                    if stats is not None
                    else len(execution.committed_txns),
                    "aborted": stats.aborted
                    if stats is not None
                    else len(execution.aborted_txns),
                },
                timing={
                    "sim_us": sum(execution.commit_durations_us)
                    + execution.post_commit_serial_us
                },
            )

    # ---------------------------------------------------------- rebalancing
    def plan_rebalance(self, block_id: int):
        """The armed policy's proposal for the start of ``block_id``
        (telemetry through ``block_id - 1``), or ``None``. Side-effect-free
        so the pipelined driver can drain its in-flight block between the
        plan and the commit."""
        policy = self.rebalance_policy
        if policy is None:
            return None
        return policy.propose(block_id, self.router)

    def commit_rebalance(self, block_id: int, proposal):
        """Materialize ``proposal`` into the certified record and install
        it (router, stores, worker caches). Every shard's store must be at
        height ``block_id - 1`` — the pipelined driver and the fault
        supervisor enforce that barrier before calling."""
        router = self.router
        nodes = self.group.nodes

        def value_of(key):
            return nodes[router.shard_of(key)].engine.store._latest_entry(key)

        record = build_migration_record(
            block_id, router.ownership_epoch + 1, proposal, value_of
        )
        self.apply_migration(record)
        self.rebalance_policy.committed(block_id)
        return record

    def apply_migration(self, record) -> None:
        """Install a certified ownership change on this replica.

        Router epoch first (shipment routing below resolves sources at the
        pre-boundary height, which is append-order independent), then the
        per-shard store loads at the ``block_id - 1`` boundary, then the
        worker-cache epoch bump (stale workers refuse with
        ``StalePrepareError`` and get resynced). The armed
        ``migration_hook`` may fate a shard's shipment ``"skip"`` (crashed
        before the delta arrived) or ``"torn"`` (crashed mid-apply) — those
        shards also crash per the fault plan, and recovery re-derives the
        full shipment from the certificate stream.
        """
        fates = (
            self.migration_hook(record.block_id)
            if self.migration_hook is not None
            else None
        ) or {}
        self.router.apply_migration(record)
        fence = frozenset(dict(record.moves))
        for node in self.group.nodes:
            node.executor.migration_fences[record.block_id] = fence
        incoming, outgoing = migration_store_deltas(record, self.router)
        boundary = record.block_id - 1
        for shard in sorted(set(incoming) | set(outgoing)):
            fate = fates.get(shard)
            if fate == "skip":
                continue
            engine = self.group.nodes[shard].engine
            if engine.store.last_committed_block != boundary:
                # a lagging store (open partition window) misses the live
                # shipment; catch-up re-applies it from the certified
                # record, keyed off the watermark
                continue
            items = dict(outgoing.get(shard, ()))
            items.update(incoming.get(shard, ()))
            if fate == "torn":
                items = dict(list(items.items())[: len(items) // 2])
            engine.apply_migration(boundary, items)
            if fate is None:
                self._store_mig_epochs[shard] = record.epoch
        backend = self._prepare_backend
        if backend is not None:
            backend.apply_migration(record)
        tracer = self.tracer
        if tracer is not None:
            tracer.event(
                "migrate",
                block=record.block_id,
                attrs={
                    "epoch": record.epoch,
                    "keys": len(record.moves),
                    "shipped": len(record.deltas),
                    "reason": record.reason,
                },
            )
            if fates:
                tracer.fault(
                    "migration_fault",
                    block=record.block_id,
                    attrs={"fates": {s: fates[s] for s in sorted(fates)}},
                )
            tracer.metrics.counter("rebalance.migrations").inc()
            tracer.metrics.gauge("rebalance.epoch").set(record.epoch)

    def route_global_block(self, block, migration_barrier=None):
        """The routing front half shared by the sequential driver, the
        pipelined driver and the fault supervisor: decide/apply any due
        migration, route every spec, feed the policy telemetry, log the
        participant sets and split the block.

        Returns ``(migration_record, participants, cross_tids,
        sub_blocks)``. ``migration_barrier`` (pipelined driver, fault
        supervisor) runs after a proposal is made but before the record is
        built, so in-flight work can land and every store reaches the
        boundary height first.
        """
        migration = None
        policy = self.rebalance_policy
        if policy is not None:
            proposal = self.plan_rebalance(block.block_id)
            if proposal is not None:
                if migration_barrier is not None:
                    migration_barrier()
                migration = self.commit_rebalance(block.block_id, proposal)
            policy.begin_block(block.block_id)
            participants = []
            for spec in block.specs:
                parts, routed = self.router.route_spec(self.workload, spec)
                participants.append(parts)
                policy.observe_txn(routed, parts)
        else:
            participants = [
                self.router.participants_of(self.workload, spec)
                for spec in block.specs
            ]
        self.participants_log.append(participants)
        cross_tids = {
            block.first_tid + j
            for j, shards in enumerate(participants)
            if len(shards) > 1
        }
        sub_blocks = self.sequencer.split(block, participants)
        return migration, participants, cross_tids, sub_blocks

    def process_global_block(
        self,
        block,
        crash_after_prepare: frozenset = frozenset(),
        fault_hook=None,
    ) -> GlobalBlockOutcome:
        """Decision layer for one global block: route, split, prepare,
        exchange votes, certify, commit.

        ``fault_hook`` (or the armed ``self.fault_hook``) generalizes the
        crash flags into a fault point: called with the block id, it
        returns ``None`` (no fault) or a ``(skip_prepare, skip_commit)``
        pair of shard sets. Shards in ``skip_prepare`` die *before* the
        sub-block arrives (never logged, never voted — with the vote
        missing, the certificate's timeout degradation vetoes their
        cross-shard transactions); shards in ``skip_commit`` die between
        their prepare vote and the certificate append: the deterministic
        votes were cast, the certificate lands, but the shard never
        commits — its block log holds the input block, so recovery
        replays it under the certificate's recorded decisions.

        ``crash_after_prepare`` is the deprecated spelling of that second
        window (pre-fault-plan API), kept as a thin shim: it feeds
        ``skip_commit`` directly.
        """
        skip_prepare: frozenset = frozenset()
        skip_commit: frozenset = crash_after_prepare
        hook = fault_hook if fault_hook is not None else self.fault_hook
        if hook is not None:
            directive = hook(block.block_id)
            if directive is not None:
                before, after = directive
                skip_prepare = skip_prepare | before
                skip_commit = skip_commit | before | after
        migration, participants, cross_tids, sub_blocks = self.route_global_block(
            block
        )
        tracer = self.tracer
        if tracer is not None:
            self._trace_order(
                tracer, block, cross_tids, sub_blocks, skip_prepare, skip_commit
            )
        faulted = bool(skip_prepare or skip_commit)
        if faulted:
            # injected faults must fire in-process; stay serial until a
            # rejoin resyncs the worker caches
            self._suspend_backend()
        backend = None if (faulted or hook is not None) else self._ensure_backend()
        if backend is not None:
            prepared = backend.prepare(sub_blocks, self.group.nodes)
        else:
            prepared = self.group.prepare(sub_blocks, skip=skip_prepare)
        if tracer is not None:
            self._trace_prepared(tracer, block.block_id, prepared)

        # --- ordered vote exchange: prepare outcomes become the block
        # stream's commit certificate (deterministic all-yes rule).
        votes = derive_votes(prepared, cross_tids)
        if self.vote_channel is not None:
            votes = self.vote_channel.deliver(votes, block.block_id)
        # expected participant sets arm the timeout→abort degradation for
        # any vote that never arrived; with a full vote set (the
        # fault-free case) they change nothing.
        expected = {
            block.first_tid + j: shards
            for j, shards in enumerate(participants)
            if len(shards) > 1
        }
        certificate = self.cert_log.append(
            votes, block.block_id, expected=expected, migration=migration
        )
        executions = self.group.finish(
            prepared, certificate.abort_tids, skip=skip_commit
        )
        if tracer is not None:
            self._trace_commits(tracer, block.block_id, executions)
        if backend is not None:
            backend.advance(
                block.block_id,
                [node.engine.writes_of(block.block_id) for node in self.group.nodes],
            )
        elif self._prepare_backend is not None:
            # suspended window: record what each shard actually committed
            # (None for crashed shards) so the rejoin resync re-ships only
            # the stale stores instead of every worker cache
            self._prepare_backend.advance_partial(
                block.block_id,
                [
                    node.engine.writes_of(block.block_id)
                    if node.engine.store.last_committed_block >= block.block_id
                    else None
                    for node in self.group.nodes
                ],
            )
        return GlobalBlockOutcome(
            block=block,
            participants=participants,
            cross_tids=cross_tids,
            sub_blocks=sub_blocks,
            certificate=certificate,
            executions=executions,
        )

    def _pipelined_ready(self) -> bool:
        """Whether the inter-block pipelined driver may run: requested,
        process backend available, and a snapshot lag that legalizes
        preparing block *i* before block *i-1*'s commit."""
        return (
            self.config.pipelined
            and self.config.backend == "process"
            and self._inter_block_enabled()
            and self.config.harmony.effective_lag >= 2
            and self.fault_hook is None
            and self.vote_channel is None
        )

    def run(self) -> RunMetrics:
        if self._pipelined_ready():
            from repro.parallel.pipeline import run_sharded_pipelined

            return run_sharded_pipelined(self)
        rng, state = self._begin_run()
        config = self.config
        retry_queue: list = []
        for i in range(config.num_blocks):
            retries = retry_queue[: config.block_size]
            retry_queue = retry_queue[config.block_size :]
            fresh = self.workload.generate_block(
                config.block_size - len(retries), rng
            )
            block = self.ordering.form_block(retries + fresh)
            if self.tracer is not None:
                self.tracer.event(
                    "enqueue",
                    block=block.block_id,
                    attrs={"retries": len(retries), "backlog": len(retry_queue)},
                )
                self.tracer.metrics.histogram("retry_queue_depth").observe(
                    len(retry_queue)
                )
            outcome = self.process_global_block(block)
            merged_txns = self._absorb_block(state, i, outcome)
            if config.retry_aborted:
                retry_queue.extend(t.spec for t in merged_txns if t.aborted)
        return self._finish_run(state)

    # ------------------------------------------------- run bookkeeping
    # The sequential loop above and the pipelined driver
    # (repro.parallel.pipeline) share these, so the two paths can never
    # drift in how a block's outcome is accounted.
    def _begin_run(self):
        config = self.config
        rng = SeededRng(config.seed, f"oe/{config.system}/{self.workload.name}")
        state = _ShardedRunState(
            metrics=RunMetrics(system=config.system, workload=self.workload.name),
            interval=self.consensus.min_block_interval_us(
                self._block_bytes(), config.num_replicas
            ),
            remote_round_us=self._remote_read_round_us(),
            shard_timings=[[] for _ in range(config.num_shards)],
        )
        return rng, state

    def merged_view(self, block, participants, txns_by_shard: dict) -> list:
        """One runtime record per transaction, from its coordinator shard
        (lowest participant id). ``txns_by_shard`` maps shard -> txns."""
        by_shard_tid = {
            shard: {t.tid: t for t in txns} for shard, txns in txns_by_shard.items()
        }
        return [
            by_shard_tid[min(participants[j])][block.first_tid + j]
            for j in range(block.size)
        ]

    def _absorb_block(
        self, state, i: int, outcome: GlobalBlockOutcome, merged_txns: list = None
    ) -> list:
        config = self.config
        block = outcome.block
        executions = outcome.executions
        cross_tids = outcome.cross_tids
        state.cross_txns_total += len(cross_tids)
        state.cross_aborted_total += len(outcome.certificate.abort_tids)

        # --- merged (global) view: one runtime record per transaction,
        # taken from its coordinator shard (lowest participant id).
        if merged_txns is None:
            merged_txns = self.merged_view(
                block,
                outcome.participants,
                {shard: e.txns for shard, e in executions.items()},
            )
        state.merged_blocks.append((block.block_id, merged_txns))

        stats = BlockStats(block_id=block.block_id)
        for txn in merged_txns:
            if txn.committed:
                stats.committed += 1
            elif txn.aborted:
                stats.aborted += 1
        if config.measure_false_aborts:
            stats.false_aborts = SerializabilityOracle.count_false_aborts(
                merged_txns
            )
        # validator events are per-shard observations (a cross-shard
        # transaction is validated at every participant)
        stats.dangerous_structure_hits = sum(
            e.stats.dangerous_structure_hits for e in executions.values()
        )
        state.metrics.merge_block(stats)
        state.per_block_committed.append(stats.committed)

        tracer = self.tracer
        if tracer is not None:
            tracer.event(
                "decide",
                block=block.block_id,
                attrs={
                    "committed": stats.committed,
                    "aborted": stats.aborted,
                    "false_aborts": stats.false_aborts,
                },
            )
            participant_hist = tracer.metrics.histogram("cross_participants")
            for shards in outcome.participants:
                if len(shards) > 1:
                    participant_hist.observe(len(shards))

        for shard in sorted(executions):
            execution = executions[shard]
            # serial front-end: each shard ingests only its sub-block
            execution.pre_exec_serial_us += (
                outcome.sub_blocks[shard].size * self.costs.ingest_us
            )
            sim_durations = list(execution.sim_durations_us)
            cross_here = 0
            for idx, txn in enumerate(execution.txns):
                if txn.tid in cross_tids:
                    cross_here += 1
                    if idx < len(sim_durations):
                        # the cross-shard simulation waits one batched
                        # remote-read round
                        sim_durations[idx] += state.remote_round_us
            post_commit = execution.post_commit_serial_us
            if cross_here:
                # the vote exchange separates prepare from commit; in
                # the lane model the serial tail position is equivalent
                # (commit_finish shifts by the same amount either way)
                vote_us = self._vote_exchange_us(cross_here)
                post_commit += vote_us
                if tracer is not None:
                    tracer.stage(
                        "vote_exchange",
                        block=block.block_id,
                        shard=shard,
                        sim_us=vote_us,
                        attrs={
                            "cross": cross_here,
                            "remote_read_us": cross_here * state.remote_round_us,
                        },
                    )
            if tracer is not None:
                shard_stats = execution.stats
                tracer.metrics.counter(f"shard{shard}.committed").inc(
                    shard_stats.committed if shard_stats is not None else 0
                )
                tracer.metrics.counter(f"shard{shard}.aborted").inc(
                    shard_stats.aborted if shard_stats is not None else 0
                )
                tracer.metrics.histogram(f"shard{shard}.prepare_us").observe(
                    sum(execution.sim_durations_us)
                )
                tracer.metrics.histogram(f"shard{shard}.commit_us").observe(
                    sum(execution.commit_durations_us)
                )
            state.shard_timings[shard].append(
                BlockTiming(
                    arrival_us=i * state.interval,
                    sim_durations=sim_durations,
                    commit_durations=execution.commit_durations_us,
                    serial_commit=execution.serial_commit,
                    pre_exec_serial_us=execution.pre_exec_serial_us,
                    post_commit_serial_us=post_commit,
                )
            )

        if config.keep_history:
            self.history.append(
                GlobalBlockRecord(
                    block_id=block.block_id,
                    merged_txns=merged_txns,
                    executions=executions,
                    participants=outcome.participants,
                    certificate=outcome.certificate,
                )
            )
        return merged_txns

    def _finish_run(self, state) -> RunMetrics:
        metrics = state.metrics
        # --- timing: one pipeline lane per shard, merged into one timeline.
        lag = self.config.harmony.snapshot_lag if self._inter_block_enabled() else 2
        results = [
            PipelineSimulator(
                num_cores=self._cores_per_shard(),
                inter_block=self._inter_block_enabled(),
                snapshot_lag=lag,
            ).simulate(timings)
            for timings in state.shard_timings
        ]
        merged_result = merge_shard_results(results)

        metrics.sim_time_us = merged_result.makespan_us
        metrics.cpu_utilization = merged_result.cpu_utilization
        append_block_latencies(
            metrics,
            merged_result.commit_finish_us,
            state.interval,
            self._consensus_latency_us(),
            self.network.worst_one_way_us(self.config.num_replicas),
            state.per_block_committed,
        )

        for node in self.group.nodes:
            engine = node.engine
            metrics.io_reads += engine.io_reads
            metrics.io_writes += engine.io_writes
            metrics.buffer_hits += engine.buffer_hits
            metrics.buffer_misses += engine.buffer_misses
        metrics.extra["state_hash"] = self.group.combined_state_hash()
        metrics.extra["shard_state_hashes"] = self.group.state_hashes()
        metrics.extra["ledger_ok"] = self.group.ledgers_ok()
        metrics.extra["decision_digest"] = decision_digest(state.merged_blocks)
        metrics.extra["num_shards"] = self.config.num_shards
        metrics.extra["cross_shard_txns"] = state.cross_txns_total
        metrics.extra["cross_shard_aborted"] = state.cross_aborted_total
        metrics.extra["certificates_ok"] = self.cert_log.verify_chain()
        metrics.extra["cert_head"] = self.cert_log.head_hash
        metrics.extra["ownership_epoch"] = self.router.ownership_epoch
        metrics.extra["migrations"] = sum(
            1 for cert in self.cert_log.certificates() if cert.migration is not None
        )
        metrics.extra["backend"] = (
            "process" if self._prepare_backend is not None else "serial"
        )
        tracer = self.tracer
        if tracer is not None:
            tracer.event(
                "run_end",
                attrs={
                    "blocks": len(state.merged_blocks),
                    "committed": metrics.committed,
                    "aborted": metrics.aborted,
                    "decision_digest": metrics.extra["decision_digest"][:16],
                    "cert_head": self.cert_log.head_hash[:16],
                },
            )
            tracer.anno(
                "run_summary",
                timing={
                    "makespan_us": merged_result.makespan_us,
                    "cpu_utilization": merged_result.cpu_utilization,
                },
            )
            latency_hist = tracer.metrics.histogram("block_latency_us")
            for latency in metrics.latencies_us:
                latency_hist.observe(latency)
            for shard, result in enumerate(results):
                tracer.metrics.gauge(f"shard{shard}.busy_core_us").set(
                    result.busy_core_us
                )
        return metrics

    def _consensus_latency_us(self) -> float:
        if isinstance(self.consensus, HotStuffConsensus):
            return self.consensus.block_latency_us()
        return self.consensus.block_latency_us(
            self._block_bytes(), self.config.num_replicas
        )

    # -------------------------------------------------------------- checks
    def consistency_check(self) -> bool:
        """Replay blocks + certificates on a fresh replica; states must match.

        The replica never re-runs the vote exchange: the certificates *are*
        the decision stream, so a correct replica reaches the identical
        per-shard states from (sub-blocks, certificates) alone — the
        sharded analogue of the paper's replica-consistency claim.
        """
        from repro.parallel.replay import replay_group_serial

        other = replay_group_serial(self, name_prefix="replica-1")
        return other.combined_state_hash() == self.group.combined_state_hash()

    # ------------------------------------------------------------ reporting
    def cross_shard_abort_reasons(self) -> dict:
        """Histogram of veto reasons recorded in the certificate stream."""
        reasons: dict[str, int] = {}
        for cert in self.cert_log.certificates():
            for vote in cert.votes:
                if not vote.commit and vote.reason:
                    reasons[vote.reason] = reasons.get(vote.reason, 0) + 1
        return reasons


def build_sharded_system(config: ShardConfig, workload) -> ShardedBlockchain:
    """Convenience constructor matching :func:`repro.chain.system.build_system`."""
    return ShardedBlockchain(config, workload)


# re-exported for callers that reason about forced aborts
CROSS_SHARD_ABORT = AbortReason.CROSS_SHARD_ABORT
