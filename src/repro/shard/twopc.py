"""Deterministic two-phase commit over the block stream.

There is no coordinator process and no timeout path: the *ordering layer*
is the coordinator. For every global block each participant shard derives
a prepare vote for each of its cross-shard transactions (the outcome of
its local deterministic validation — a pure function of the sub-block),
the votes are exchanged, and the decision rule is fixed: **commit iff
every participant voted commit**. Votes and decisions are serialized into
a hash-chained :class:`CommitCertificate` stream that parallels the block
stream, so a replica joining late (or recovering) replays blocks +
certificates and lands on the identical state — it never needs to re-run
the vote exchange. Because votes themselves are deterministic, the
certificate is redundant information in the failure-free case (every
replica computes the same votes); shipping it in the stream is what makes
the decision *auditable* and replayable without re-execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.consensus.crypto import sha256_hex

GENESIS_CERT_HASH = "0" * 64


@dataclass(frozen=True)
class ShardVote:
    """One participant's prepare vote on one cross-shard transaction."""

    tid: int
    shard_id: int
    commit: bool
    #: the local abort reason backing a veto (diagnostics; not hashed)
    reason: str | None = None


@dataclass
class CommitCertificate:
    """The ordered vote record + decisions for one global block."""

    block_id: int
    votes: tuple
    #: TIDs vetoed by at least one participant (the deterministic decision)
    abort_tids: frozenset
    prev_hash: str = GENESIS_CERT_HASH
    hash: str = ""
    #: optional ownership-change record
    #: (:class:`~repro.shard.rebalance.MigrationRecord`) certified at this
    #: block — hash-covered, so replicas and replay apply the identical
    #: re-key at the identical height
    migration: object = None

    def __post_init__(self) -> None:
        if not self.hash:
            self.hash = self.compute_hash()

    def payload_bytes(self) -> bytes:
        votes = ";".join(
            f"{v.tid}@{v.shard_id}={'c' if v.commit else 'a'}" for v in self.votes
        )
        aborts = ",".join(str(t) for t in sorted(self.abort_tids))
        # Migration-free certificates keep the historical payload form, so
        # their hashes (and every pre-rebalance chain) are unchanged.
        suffix = (
            f"|m:{self.migration.payload_text()}" if self.migration is not None else ""
        )
        return f"{self.block_id}|{votes}|{aborts}|{self.prev_hash}{suffix}".encode()

    def compute_hash(self) -> str:
        return sha256_hex(self.payload_bytes())

    def verify(self, expected_prev_hash: str) -> bool:
        if self.prev_hash != expected_prev_hash or self.hash != self.compute_hash():
            return False
        # the decision must be exactly the all-yes rule over the votes
        vetoed = {v.tid for v in self.votes if not v.commit}
        return vetoed == set(self.abort_tids)


def decide(votes) -> frozenset:
    """The commit rule: a transaction aborts iff any participant vetoed."""
    return frozenset(v.tid for v in votes if not v.commit)


def derive_votes(prepared: dict, cross_tids) -> list[ShardVote]:
    """Each shard's prepare outcomes, folded into cross-shard votes.

    ``prepared`` maps shard id to its :class:`~repro.execution.PreparedBlock`;
    a vote is cast per (cross-shard tid, participant). Shared by the
    sequential decision layer and the pipelined/process-backend drivers so
    the vote stream is one code path regardless of how prepares ran.
    """
    votes: list[ShardVote] = []
    for shard, prep in prepared.items():
        for txn in prep.txns:
            if txn.tid in cross_tids:
                votes.append(
                    ShardVote(
                        tid=txn.tid,
                        shard_id=shard,
                        commit=not txn.aborted,
                        reason=txn.abort_reason.value if txn.aborted else None,
                    )
                )
    return votes


def reconcile_votes(
    votes: list[ShardVote], expected: dict[int, frozenset] | None = None
) -> list[ShardVote]:
    """Normalize a (possibly faulty) vote collection into one vote per
    ``(tid, shard_id)`` pair.

    Duplicated deliveries are idempotent: the first vote for a pair wins
    and later copies must agree — a *conflicting* duplicate means a shard
    equivocated, which deterministic validation makes impossible, so it
    raises rather than picking a side. When ``expected`` maps each
    cross-shard tid to its participant set, any pair still missing after
    dedup is synthesized as a veto (``reason="vote-timeout"``): the
    degradation policy for an unhealed partition is *abort, never guess*,
    keeping the decision a pure function of the votes that arrived.
    """
    by_pair: dict[tuple[int, int], ShardVote] = {}
    for vote in votes:
        pair = (vote.tid, vote.shard_id)
        prior = by_pair.get(pair)
        if prior is None:
            by_pair[pair] = vote
        elif prior.commit != vote.commit:
            raise ValueError(
                f"equivocating votes for tid {vote.tid} from shard {vote.shard_id}"
            )
    if expected is not None:
        for tid, shards in expected.items():
            for shard_id in shards:
                if (tid, shard_id) not in by_pair:
                    by_pair[(tid, shard_id)] = ShardVote(
                        tid, shard_id, commit=False, reason="vote-timeout"
                    )
    return list(by_pair.values())


def make_certificate(
    block_id: int,
    votes: list[ShardVote],
    prev_hash: str,
    expected: dict[int, frozenset] | None = None,
    migration: object = None,
) -> CommitCertificate:
    """Build the block's certificate with votes in canonical order.

    ``expected`` (tid -> participant shard set) arms the timeout
    degradation: missing votes become synthesized vetoes via
    :func:`reconcile_votes`. Without it the votes are still deduplicated,
    so retransmitted copies never change the certificate hash.
    ``migration`` rides the certificate hash-covered (see
    :class:`~repro.shard.rebalance.MigrationRecord`).
    """
    reconciled = reconcile_votes(votes, expected)
    ordered = tuple(sorted(reconciled, key=lambda v: (v.tid, v.shard_id)))
    return CommitCertificate(
        block_id=block_id,
        votes=ordered,
        abort_tids=decide(ordered),
        prev_hash=prev_hash,
        migration=migration,
    )


@dataclass
class CertificateLog:
    """Append-only, hash-chained certificate stream (one per global block)."""

    _certs: list = field(default_factory=list)
    #: span sink (:class:`repro.obs.trace.Tracer`); ``None`` = no tracing
    tracer: object = None

    def __len__(self) -> int:
        return len(self._certs)

    def __getitem__(self, index: int) -> CommitCertificate:
        return self._certs[index]

    @property
    def head_hash(self) -> str:
        return self._certs[-1].hash if self._certs else GENESIS_CERT_HASH

    def append(
        self,
        votes: list[ShardVote],
        block_id: int,
        expected: dict[int, frozenset] | None = None,
        migration: object = None,
    ) -> CommitCertificate:
        cert = make_certificate(block_id, votes, self.head_hash, expected, migration)
        self._certs.append(cert)
        if self.tracer is not None:
            attrs = {
                "votes": len(cert.votes),
                "aborts": len(cert.abort_tids),
                "timeout_vetoes": sum(
                    1 for v in cert.votes if v.reason == "vote-timeout"
                ),
                "head": cert.hash[:16],
            }
            if migration is not None:
                attrs["migration_epoch"] = migration.epoch
                attrs["migration_keys"] = len(migration.moves)
            self.tracer.event("certify", block=block_id, attrs=attrs)
        return cert

    def verify_chain(self) -> bool:
        prev = GENESIS_CERT_HASH
        for cert in self._certs:
            if not cert.verify(prev):
                return False
            prev = cert.hash
        return True

    def certificates(self) -> list:
        return list(self._certs)


class VoteChannel:
    """The vote-exchange medium between shards and the ordering layer.

    The default channel is perfect: every vote cast arrives exactly once,
    immediately. Fault injection subclasses (``repro.faults.inject``)
    override :meth:`deliver` to drop, duplicate or delay votes per the
    armed plan; the supervisor then drives bounded retries until the
    expected set is covered or the timeout degradation kicks in.
    """

    def deliver(
        self, votes: list[ShardVote], block_id: int, attempt: int = 0
    ) -> list[ShardVote]:
        """Return the votes that actually arrive for this attempt."""
        return list(votes)
