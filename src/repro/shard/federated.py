"""Cross-shard read views: the ordered remote-read exchange, materialized.

A cross-shard transaction executes at *every* participant shard, and its
reads may touch keys any shard owns. Because all shards advance block-
locked (every shard applies global block *b* before any shard prepares
*b+1*), "the snapshot of block *b*" is globally well-defined, and a remote
read is deterministic: every participant resolves the identical value no
matter when its messages arrive. That is what lets the vote exchange be
the *only* cross-shard coordination — reads need no locks, just one
(priced) network round.

:class:`FederatedSnapshot` implements the snapshot interface the
simulation context consumes (``get`` / ``scan`` / ``get_entry``) by
routing each key to its owner's :class:`~repro.storage.mvstore.MVStore`
snapshot at the same block height.
"""

from __future__ import annotations

from repro.shard.router import ShardRouter


class FederatedSnapshot:
    """A snapshot of the whole sharded database as of one global block."""

    def __init__(self, router: ShardRouter, stores: list, block_id: int) -> None:
        self._router = router
        self._views = [store.snapshot(block_id) for store in stores]
        self.block_id = block_id

    def get(self, key: object):
        return self._views[self._router.shard_of(key)].get(key)

    def get_entry(self, key: object):
        return self._views[self._router.shard_of(key)].get_entry(key)

    def scan(self, start: object, end: object):
        """Merged range read across every shard's key range.

        Each per-shard scan yields sorted rows; the global result is the
        sorted union (shards own disjoint keys, so no shadowing is needed).
        """
        rows = [row for view in self._views for row in view.scan(start, end)]
        try:
            rows.sort(key=lambda kv: kv[0])
        except TypeError:
            rows.sort(key=lambda kv: repr(kv[0]))
        return iter(rows)
