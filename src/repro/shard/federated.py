"""Cross-shard read views: the ordered remote-read exchange, materialized.

A cross-shard transaction executes at *every* participant shard, and its
reads may touch keys any shard owns. Because all shards advance block-
locked (every shard applies global block *b* before any shard prepares
*b+1*), "the snapshot of block *b*" is globally well-defined, and a remote
read is deterministic: every participant resolves the identical value no
matter when its messages arrive. That is what lets the vote exchange be
the *only* cross-shard coordination — reads need no locks, just one
(priced) network round.

:class:`FederatedSnapshot` implements the snapshot interface the
simulation context consumes (``get`` / ``scan`` / ``get_entry``) by
routing each key to its owner's :class:`~repro.storage.mvstore.MVStore`
snapshot at the same block height.
"""

from __future__ import annotations

import heapq
from itertools import chain as _chain, islice
from operator import itemgetter

from repro.shard.router import ShardRouter


class FederatedSnapshot:
    """A snapshot of the whole sharded database as of one global block."""

    def __init__(self, router: ShardRouter, stores: list, block_id: int) -> None:
        self._router = router
        self._views = [store.snapshot(block_id) for store in stores]
        self.block_id = block_id
        #: reads at snapshot ``h`` route by the owner at ``h + 1``:
        #: ownership migrations ship their deltas *inside* the boundary
        #: block, so a pre-boundary snapshot still finds the value (and no
        #: tombstone) on the source shard, a post-boundary one on the
        #: destination.
        self._owner_height = block_id + 1

    def _owner(self, key: object) -> int:
        return self._router.shard_of_at(key, self._owner_height)

    def get(self, key: object):
        return self._views[self._owner(key)].get(key)

    def get_entry(self, key: object):
        return self._views[self._owner(key)].get_entry(key)

    def scan(self, start: object, end: object, indexed: bool = True):
        """Merged range read across every shard's key range.

        Each per-shard scan yields sorted rows; the global result is the
        sorted union (shards own disjoint keys, so no shadowing is
        needed). ``indexed=True`` (default) stream-merges the per-shard
        scans lazily — O(log shards) per row consumed, nothing
        materialized — so a consumer that stops early (a limit, a missing
        key probe) never pays for the whole range. ``indexed=False``
        retains the materialize-and-sort union as the differential
        reference.

        Mixed-type keys keep the eager path's ``TypeError`` → ``repr``-key
        fallback: incomparable *heads* are caught up front (the realistic
        case — each shard's sorted key directory makes it type-homogeneous
        in practice); a clash surfacing only deeper in the merge degrades
        to the repr total order for the rows not yet emitted (yielded rows
        cannot be recalled), still deterministic and complete.
        """
        if not indexed:
            rows = [row for view in self._views for row in view.scan(start, end)]
            try:
                rows.sort(key=lambda kv: kv[0])
            except TypeError:
                rows.sort(key=lambda kv: repr(kv[0]))
            return iter(rows)
        streams = []
        heads = []
        for view in self._views:
            rows = view.scan(start, end)
            try:
                first = next(rows)
            except StopIteration:
                continue
            heads.append(first[0])
            streams.append(_chain((first,), rows))
        try:
            sorted(heads)  # cross-shard comparability probe
        except TypeError:
            rows = [row for stream in streams for row in stream]
            rows.sort(key=lambda kv: repr(kv[0]))
            return iter(rows)
        return self._merge_streams(streams, start, end)

    def _merge_streams(self, streams: list, start: object, end: object):
        """Lazily merge sorted per-shard streams, surviving a deep clash.

        The happy path carries one integer of state per scan; only the
        rare fallback re-derives the already-emitted prefix (a fresh merge
        is deterministic, and those first ``yielded`` rows came out once
        already, so re-producing them cannot raise).
        """
        yielded = 0
        try:
            for row in heapq.merge(*streams, key=itemgetter(0)):
                yielded += 1
                yield row
        except TypeError:
            # incomparable keys past the head probe: finish in repr order
            # (shards own disjoint keys, so the re-derived prefix set
            # filters exactly)
            seen = {
                row[0]
                for row in islice(
                    heapq.merge(
                        *(view.scan(start, end) for view in self._views),
                        key=itemgetter(0),
                    ),
                    yielded,
                )
            }
            rows = [
                row
                for view in self._views
                for row in view.scan(start, end)
                if row[0] not in seen
            ]
            rows.sort(key=lambda kv: repr(kv[0]))
            yield from rows
