"""Sharded execution: partitioned OE pipelines, deterministic 2PC-over-blocks.

Why sharding fits deterministic concurrency control
---------------------------------------------------
The paper's Order-Execute pipeline is deterministic end to end: given the
block stream, every replica reaches the same commit/abort decisions and
the same state with no coordination. That same property makes the *shard*
a unit of scale-out: if each shard's decisions are a pure function of its
sub-block stream, then cross-shard agreement needs no locks, no leases and
no failure-path timeouts — only an ordered exchange of deterministic facts.

The design, layer by layer
--------------------------
**Routing** (:mod:`repro.shard.router`). A :class:`ShardRouter`
deterministically partitions the keyspace (hash, range, or the workload's
own contiguous index split). A transaction's *participant set* is derived
from its static key footprint; a footprint the router cannot see through
routes the transaction to every shard (conservative, never wrong).

**Sequencing** (:class:`repro.chain.ordering.ShardSequencer`). The global
ordering service remains the single sequencing point. Sub-blocks are a
pure function of (global block, participant sets): per shard, the subset
of transactions it participates in, carrying their *global* TIDs, chained
into a per-shard ledger. Every shard gets a sub-block for every global
block (possibly empty), keeping all shards block-locked — which is what
makes "the snapshot of block *b*" globally well-defined.

**Execution** (:mod:`repro.shard.federated`). Single-shard transactions
run exactly as in the unsharded pipeline. A cross-shard transaction is
simulated *at every participant* against a :class:`FederatedSnapshot`
that routes each read to the owning shard's store at the same block
height. Because shards advance block-locked and stores are deterministic,
every participant observes identical values — the simulation itself is
replicated, not distributed, so there is nothing to disagree about.

**Deterministic 2PC over the block stream** (:mod:`repro.shard.twopc`).
Each shard's prepare outcome (its local DCC validation of the sub-block)
is its vote. The decision rule is fixed — commit iff *all* participants
voted commit — and votes are serialized into a hash-chained
:class:`CommitCertificate` stream that travels with the block stream.
There is no coordinator and no failure path: votes are deterministic, so
any replica can compute them; the certificate makes the decisions
auditable and lets a recovering replica replay (sub-blocks, certificates)
without re-running the exchange. Commit then installs only locally-owned
writes; remote reads were validated at their owner shard as reservations
(the cross-shard transaction sits in that shard's sub-block too, so its
reads conflict with local writers there — closing the write-skew window
that purely local validation would leave open).

**Pricing** (:mod:`repro.sim`, :mod:`repro.consensus.network`). Each
shard is its own replica group with its own core budget and pipeline
lane; lanes merge by per-block max (a global block commits when its
slowest shard does). Cross-shard transactions pay one batched remote-read
round in their simulated duration and each sub-block with cross-shard
members pays a vote-exchange round, both priced through the
:class:`~repro.consensus.network.NetworkModel`.

With ``num_shards=1`` every mechanism above collapses to the unsharded
pipeline and :class:`ShardedBlockchain` is decision-identical to
:class:`~repro.chain.system.OEBlockchain` — the invariant the test suite
pins on all three workloads.
"""

from repro.shard.federated import FederatedSnapshot
from repro.shard.recovery import ShardRecovery, recover_shard_node
from repro.shard.router import ShardRouter
from repro.shard.system import (
    ShardConfig,
    ShardedBlockchain,
    ShardGroup,
    build_sharded_system,
)
from repro.shard.twopc import (
    CertificateLog,
    CommitCertificate,
    ShardVote,
    VoteChannel,
    decide,
    make_certificate,
    reconcile_votes,
)

__all__ = [
    "CertificateLog",
    "CommitCertificate",
    "FederatedSnapshot",
    "ShardConfig",
    "ShardGroup",
    "ShardRecovery",
    "ShardRouter",
    "ShardVote",
    "ShardedBlockchain",
    "VoteChannel",
    "build_sharded_system",
    "decide",
    "recover_shard_node",
    "make_certificate",
    "reconcile_votes",
]
