"""Cross-shard crash recovery: rebuild one shard under the certificate stream.

A shard that crashes — even in the 2PC window between casting its prepare
vote and the certificate landing — recovers from exactly three durable
artifacts: its checkpoint chain, its logged sub-blocks, and the *global*
hash-chained certificate stream. It never re-runs the vote exchange: the
certificates are the decision record, so replaying sub-blocks and
honouring each block's recorded vetoes reproduces the shard's state
bit-for-bit (the sharded analogue of single-replica
:func:`~repro.chain.recovery.recover_node`).

Cross-shard reads during replay resolve against the *peers'* multi-version
stores at the historical block heights — block-locked advancement means
those snapshots are globally well-defined, and the version chains retain
them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.node import ReplicaNode
from repro.chain.recovery import rebuild_engine
from repro.chain.system import decision_digest
from repro.core.harmony import HarmonyExecutor
from repro.shard.federated import FederatedSnapshot
from repro.shard.rebalance import migration_store_deltas
from repro.shard.router import ShardRouter
from repro.shard.twopc import CertificateLog
from repro.sim.scheduler import BlockTiming, replay_lanes


@dataclass
class ShardRecovery:
    """The outcome of one shard's crash recovery."""

    node: ReplicaNode
    #: block id replay resumed after (-1 = replayed from genesis)
    replay_from: int
    #: digest of the replayed blocks' commit/abort decisions — comparable
    #: against an uncrashed replica's decisions over the same block range
    decision_digest: str
    #: the replayed ``(block_id, txns)`` pairs behind the digest — lets a
    #: supervisor back-fill per-block decision records the crashed shard
    #: never surfaced through the live pipeline
    replayed_blocks: list = None
    #: modeled replay makespans (``{"serial_us", "pipelined_us",
    #: "speedup"}``) when the executor's snapshot lag legalized the
    #: interleaved replay; ``None`` for lag-1 executors or empty replays
    replay_sim: dict | None = None


def recover_shard_node(
    crashed: ReplicaNode,
    shard_id: int,
    peer_stores: list,
    router: ShardRouter,
    cert_log: CertificateLog,
    pipelined: bool = True,
    cores: int = 8,
) -> ShardRecovery:
    """Rebuild one shard's replica from checkpoint + block log + certificates.

    ``peer_stores`` is the full per-shard store list of a surviving
    replica group (the crashed shard's slot is replaced by the recovered
    store); ``cert_log`` is the global certificate stream, indexed by
    block id.

    With ``pipelined`` (the default) and an executor whose snapshot lag is
    >= 2 (Harmony inter-block), replay interleaves block *i*'s prepare with
    block *i−1*'s commit: the decisions come from the certificate stream,
    so block *i* validates against block *i−1*'s *decided* records before
    that block's physical commit runs — the same legality argument as the
    live pipeline (:mod:`repro.parallel.pipeline`), and bit-identical state
    either way. ``replay_sim`` on the result reports the modeled makespan
    of both disciplines on a ``cores``-core replica.
    """
    engine, replay_from, checkpoint = rebuild_engine(crashed.engine)
    executor = crashed.clone_executor(engine)
    if isinstance(executor, HarmonyExecutor) and checkpoint and checkpoint.meta:
        executor.restore_records(checkpoint.meta.get("prev_records", {}))

    # Rewire the federation around the recovered store: reads of this
    # shard's keys resolve locally (correct at every replay height), remote
    # keys against the peers' retained version history.
    stores = list(peer_stores)
    stores[shard_id] = engine.store
    if len(stores) > 1:
        executor.snapshot_source = lambda snap_block_id: FederatedSnapshot(
            router, stores, snap_block_id
        )
        executor.key_scope = lambda key: router.shard_of(key) == shard_id

    interleave = (
        pipelined
        and isinstance(executor, HarmonyExecutor)
        and executor.config.inter_block
        and executor.config.effective_lag >= 2
    )
    recovered = ReplicaNode(f"{crashed.name}-recovered", executor, None)
    replayed: list[tuple[int, list]] = []
    timings: list[BlockTiming] = []
    pending = None  # (PreparedBlock, abort_tids) with its commit deferred
    saved_height = router.cursor_height
    for block in crashed.engine.block_log.blocks_after(-1):
        recovered.ledger.append(block)
        recovered.engine.block_log.append(block)
        if block.block_id <= replay_from:
            continue
        txns = block.build_txns()
        if executor.supports_two_phase:
            certificate = cert_log[block.block_id]
            if certificate.block_id != block.block_id:
                # positional lookup relies on the dense 0-based stream; a
                # pruned or misaligned log must fail loudly, not replay
                # another block's vetoes
                raise ValueError(
                    f"certificate stream misaligned: position {block.block_id} "
                    f"holds block {certificate.block_id}"
                )
            if certificate.migration is not None:
                # migration barrier: the record ships key versions inside
                # block i-1, so a deferred commit must land first (same
                # discipline as the live pipelined driver); commit_block
                # re-derives the decided records, so the subsequent
                # prepare sees the identical state either way. Records at
                # or below ``replay_from`` are baked into the checkpoint
                # (the engine buffers migration loads for the delta chain)
                # and never reach this branch.
                if pending is not None:
                    prev_prepared, prev_aborts = pending
                    execution = executor.commit_block(prev_prepared, prev_aborts)
                    timings.append(_replay_timing(execution))
                    pending = None
                router.advance_to(block.block_id)
                record = certificate.migration
                executor.migration_fences[record.block_id] = frozenset(
                    dict(record.moves)
                )
                incoming, outgoing = migration_store_deltas(record, router)
                items = dict(outgoing.get(shard_id, ()))
                items.update(incoming.get(shard_id, ()))
                if items:
                    engine.apply_migration(record.block_id - 1, items)
            else:
                router.advance_to(block.block_id)
            if interleave:
                # pipelined replay: validate block i against block i-1's
                # *decided* records (certificate vetoes applied), prepare,
                # and only then run block i-1's deferred commit — the
                # commit recomputes the identical records, so the
                # interleave is idempotent with the serial order.
                if pending is not None:
                    prev_prepared, prev_aborts = pending
                    executor.import_prepare_state(
                        executor.decided_prepare_state(prev_prepared, prev_aborts)
                    )
                    prepared = executor.prepare_block(block.block_id, txns)
                    execution = executor.commit_block(prev_prepared, prev_aborts)
                    timings.append(_replay_timing(execution))
                else:
                    prepared = executor.prepare_block(block.block_id, txns)
                pending = (prepared, certificate.abort_tids)
            else:
                prepared = executor.prepare_block(block.block_id, txns)
                execution = executor.commit_block(prepared, certificate.abort_tids)
                timings.append(_replay_timing(execution))
        else:
            execution = executor.execute_block(block.block_id, txns)
            timings.append(_replay_timing(execution))
        replayed.append((block.block_id, txns))
    if pending is not None:
        prev_prepared, prev_aborts = pending
        execution = executor.commit_block(prev_prepared, prev_aborts)
        timings.append(_replay_timing(execution))
    # the shared router serves the live group too — put its cursor back
    router.advance_to(saved_height)
    replay_sim = None
    if timings:
        lag = (
            executor.config.effective_lag
            if isinstance(executor, HarmonyExecutor)
            else 1
        )
        serial, overlapped = replay_lanes(
            timings, num_cores=cores, inter_block=lag >= 2, snapshot_lag=max(lag, 1)
        )
        replay_sim = {
            "serial_us": serial.makespan_us,
            "pipelined_us": overlapped.makespan_us,
            "speedup": (
                serial.makespan_us / overlapped.makespan_us
                if overlapped.makespan_us > 0
                else 1.0
            ),
        }
    return ShardRecovery(
        node=recovered,
        replay_from=replay_from,
        decision_digest=decision_digest(replayed),
        replayed_blocks=replayed,
        replay_sim=replay_sim,
    )


def _replay_timing(execution) -> BlockTiming:
    """Replay has no arrival pacing: every logged block is ready at t=0."""
    return BlockTiming(
        arrival_us=0.0,
        sim_durations=execution.sim_durations_us,
        commit_durations=execution.commit_durations_us,
        serial_commit=execution.serial_commit,
        pre_exec_serial_us=execution.pre_exec_serial_us,
        post_commit_serial_us=execution.post_commit_serial_us,
    )
