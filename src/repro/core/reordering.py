"""Update reordering and coalescence (Rule 2, Algorithm 2).

After validation the rw-subgraph is free of backward dangerous structures,
and Theorem 2 guarantees that ascending ``min_out`` order (ties by TID) is a
topological order of it. So instead of a graph traversal, each key's
surviving update commands are *quick-sorted* by ``(min_out, tid)``,
coalesced into one command (Figure 5b), and applied by whichever committing
transaction reaches the key first — one index lookup, one latch, one page
write per key, regardless of how many transactions updated it. That is the
hotspot-resiliency mechanism of Figure 14.

The two ablation switches reproduce Figure 20's bars:

- ``coalesce=False`` — commands still apply in Rule-2 order but each
  transaction performs its own physical update (duplicated I/O and a serial
  chain per key);
- reordering itself is disabled one layer up (the validator aborts ww
  losers), after which every key has at most one updater.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.txn.commands import apply_safely, coalesce
from repro.txn.transaction import Txn


@dataclass
class KeyApply:
    """One key's commit-step work item."""

    key: object
    #: committing updaters in Rule-2 order
    updater_tids: list[int]
    #: the transaction that physically applies the (coalesced) update
    handler_tid: int
    #: simulated duration(s): one entry when coalesced, one per updater when
    #: not (they form a serial chain on the key's page).
    chain_durations_us: list[float] = field(default_factory=list)
    final_value: object = None


@dataclass
class ReorderingResult:
    """Outcome of the commit step's write application."""

    #: ordered (key, value) writes, apply order == version seq order
    ordered_writes: list = field(default_factory=list)
    #: one entry per written key (the commit step's parallel task list)
    key_applies: list = field(default_factory=list)
    #: per-transaction extra commit CPU (validation bookkeeping)
    txn_commit_cpu_us: dict = field(default_factory=dict)


def derive_reservation(txns: list[Txn], dep_index=None) -> dict:
    """The update-reservation table: key -> surviving updaters, block order.

    With ``dep_index`` (the :class:`~repro.core.dependencies.BlockDependencyIndex`
    the validator built over the *same* transactions) the per-key updater
    chains are reused instead of re-derived: a block with no aborts shares
    the index's chains outright, a block with few aborts subtracts the
    doomed updaters, and a block dominated by aborts falls back to the
    output-sensitive rebuild. ``dep_index=None`` is the seed's rebuild,
    retained as the differential-testing reference; all paths produce
    identical tables.
    """
    reservation: dict[object, list[Txn]]
    aborted = None if dep_index is None else [t for t in txns if t.aborted]
    if dep_index is not None and len(aborted) * 4 <= len(txns):
        # Only the commit/abort decisions are new information since the
        # index chained updaters per key (Harmony reorders ww conflicts
        # instead of aborting, so aborts are usually few). The untouched
        # chains are shared with the index — commit-step callers must not
        # mutate them.
        reservation = dep_index.writer_txns() if not aborted else dict(
            dep_index.writer_txns()
        )
        for txn in aborted:
            for key in txn.updated_keys:
                updaters = reservation.get(key)
                if updaters is None:
                    continue
                kept = [t for t in updaters if t is not txn]
                if kept:
                    reservation[key] = kept
                else:
                    del reservation[key]
        return reservation
    reservation = {}
    for txn in txns:
        if txn.aborted:
            continue
        for key in txn.updated_keys:
            reservation.setdefault(key, []).append(txn)
    return reservation


def apply_write_sets(
    txns: list[Txn],
    read_base,
    write_cost,
    op_cpu_us: float = 1.0,
    do_coalesce: bool = True,
    dep_index=None,
    key_scope=None,
) -> ReorderingResult:
    """Evaluate surviving transactions' update commands (Algorithm 2).

    ``txns`` is the block in TID order, with statuses already decided by the
    validator (aborted transactions are filtered here, line #13 of
    Algorithm 2). ``read_base(key)`` returns the pre-block value of a key —
    the store's latest committed version. ``write_cost(key)`` charges one
    physical update of the key's page and returns its simulated cost.

    ``dep_index`` is the :class:`~repro.core.dependencies.BlockDependencyIndex`
    the validator built over the *same* transactions: its per-key updater
    chains are reused instead of re-deriving the reservation table from
    scratch. ``dep_index=None`` retains the seed's rebuild as the
    differential-testing reference; both paths are bit-identical.

    ``key_scope`` (sharded deployments) restricts the physical apply to
    locally-owned keys: a cross-shard transaction's remote writes are
    validated here as reservations but installed by the shard that owns
    them (it runs the same commit step with the complementary scope).

    Returns the ordered writes to install plus the commit step's task
    durations for the scheduler.
    """
    result = ReorderingResult()

    # update_reservation: key -> updater txns, in TID order (deterministic).
    reservation = derive_reservation(txns, dep_index)
    if key_scope is not None:
        reservation = {
            key: updaters for key, updaters in reservation.items() if key_scope(key)
        }

    for txn in txns:
        if not txn.aborted:
            txn.mark_committed()
            result.txn_commit_cpu_us[txn.tid] = op_cpu_us

    # Apply per key: sort by (min_out, tid) — Rule 2 — then coalesce.
    for key in sorted(reservation, key=repr):
        updaters = sorted(reservation[key], key=lambda t: (t.min_out, t.tid))
        commands = [t.write_set[key] for t in updaters]
        handler = updaters[0]
        apply_item = KeyApply(
            key=key,
            updater_tids=[t.tid for t in updaters],
            handler_tid=handler.tid,
        )

        base = read_base(key)
        if do_coalesce:
            merged = coalesce(commands)
            value = apply_safely(merged, base)
            apply_item.chain_durations_us.append(
                write_cost(key) + op_cpu_us * len(commands)
            )
        else:
            value = base
            for command in commands:
                value = apply_safely(command, value)
                # every updater pays its own lookup + page write (Figure 5a)
                apply_item.chain_durations_us.append(write_cost(key) + op_cpu_us)
        apply_item.final_value = value
        result.key_applies.append(apply_item)
        if value is None:
            # Every command no-oped on a missing base: nothing to install.
            continue
        # Tombstones are stored as-is; SnapshotView.get() hides them.
        result.ordered_writes.append((key, value))

    return result
