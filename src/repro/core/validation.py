"""Abort-minimizing validation: Rule 1 (Algorithm 1) and Rule 3.

Rule 1 — a transaction ``Tj`` aborts iff it sits in a *backward dangerous
structure* ``Ti <--rw-- Tj <--rw-- Tk`` with ``i < j`` and ``i <= k``.
Algorithm 1 folds the rw-subgraph into two counters per transaction:

- ``min_out``: the minimal TID that ``Tj`` rw-points to (init ``j + 1``);
- ``max_in``: the maximal TID that rw-points to ``Tj`` (init ``-inf``);

and aborts ``Tj`` when ``min_out < j and min_out <= max_in`` — an O(edges)
check with no graph traversal and no cross-thread coordination.

Rule 3 — with inter-block parallelism, block *i* simulates against the
snapshot of block *i−2*, so a committed writer in block *i−1* can induce an
*inter-block* rw edge. The generalized structure is resolved with a
deterministic abort policy: when the structure closes within one block the
middle transaction aborts (same as Rule 1); when the closing edge comes from
a later block, the later transaction aborts — so every replica, regardless
of message timing, reaches the same decision (Figure 6).

The implementation keeps a :class:`CommittedRecord` per committed
transaction of the previous block: its TID, final ``min_out``, the keys it
wrote, and whether its write commands were read-modify-write. Validation of
block *i* consults those records for:

- (ii) incoming inter-block ww/wr dependencies that close a structure on a
  current-block middle transaction, and
- (iii) outgoing inter-block rw edges into a previous-block transaction that
  was itself a structure middle (``min_out < tid``) — the Figure 6 case.

Performance: the hot loops run against sorted-key / interval indexes
(``indexed=True``, the default) — range reads slice the previous block's
written keys with two bisects, written keys stab the committed range
readers, and the committed-block reachability closure is computed with
per-node bitsets instead of one DFS per node. The naive quadratic paths
are retained behind ``indexed=False`` as the differential-testing
reference; both produce bit-identical commit/abort decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dependencies import BlockDependencyIndex
from repro.intervals import RangeIndex, SortedKeys, covers
from repro.txn.transaction import AbortReason, Txn

NEG_INF = float("-inf")


@dataclass(frozen=True)
class CommittedRecord:
    """What later blocks need to know about a committed transaction."""

    tid: int
    min_out: int
    written_keys: frozenset
    rmw_keys: frozenset  # written keys whose command reads the prior value
    #: position in the block's serial witness order (ascending min_out, tid)
    witness_pos: int = 0

    @property
    def was_structure_middle(self) -> bool:
        return self.min_out < self.tid


@dataclass
class PrevBlockRecords:
    """Committed-transaction facts of the previous block (Rule 3 inputs).

    Treated as immutable once built by :meth:`HarmonyValidator.records_for`;
    the two ``*_index`` accessors cache derived indexes on that assumption.
    """

    #: key -> committed records that wrote it
    writers: dict = field(default_factory=dict)
    #: key -> [(tid, witness_pos)] of committed point readers
    readers: dict = field(default_factory=dict)
    #: [(start, end, tid, witness_pos)] of committed range readers
    range_readers: list = field(default_factory=list)
    #: witness_pos -> frozenset of witness_pos reachable through the
    #: committed block's dependency graph (reflexive)
    reachable: dict = field(default_factory=dict)

    def __bool__(self) -> bool:
        return bool(self.writers or self.readers or self.range_readers)

    def reaches(self, from_pos: int, to_pos: int) -> bool:
        if from_pos == to_pos:
            return True
        return to_pos in self.reachable.get(from_pos, ())

    def writer_key_index(self) -> SortedKeys:
        """Sorted index over the keys the committed block wrote (cached)."""
        index = self.__dict__.get("_writer_key_index")
        if index is None:
            index = SortedKeys(self.writers)
            self._writer_key_index = index
        return index

    def range_reader_index(self) -> RangeIndex:
        """Stabbing index over committed range reads, payload = witness_pos
        (cached)."""
        index = self.__dict__.get("_range_reader_index")
        if index is None:
            index = RangeIndex(
                (start, end, pos) for start, end, _tid, pos in self.range_readers
            )
            self._range_reader_index = index
        return index


@dataclass
class ValidationStats:
    """Per-block validation outcome."""

    aborted_tids: set = field(default_factory=set)
    dangerous_structure_hits: int = 0
    inter_block_aborts: int = 0
    ww_aborts: int = 0
    #: the dependency index built for this block — handed to the commit
    #: step so update reordering reuses the per-key chains instead of
    #: re-deriving them (see :func:`repro.core.reordering.apply_write_sets`)
    dep_index: BlockDependencyIndex | None = field(
        default=None, repr=False, compare=False
    )


class HarmonyValidator:
    """Applies Rule 1 (and Rule 3 when ``inter_block``) to a block.

    With ``update_reorder=False`` (Figure 20's ablation), ww-dependencies
    cannot be resolved by reordering, so the validator falls back to Aria's
    style: among transactions updating the same key, only the smallest TID
    survives.

    ``indexed=False`` selects the retained naive scans everywhere (the
    differential-testing / benchmarking baseline).
    """

    def __init__(
        self,
        inter_block: bool = False,
        update_reorder: bool = True,
        indexed: bool = True,
    ) -> None:
        self.inter_block = inter_block
        self.update_reorder = update_reorder
        self.indexed = indexed

    def validate(
        self,
        txns: list[Txn],
        prev_records: PrevBlockRecords | None = None,
    ) -> ValidationStats:
        """Decide commit/abort for every transaction in the block.

        ``prev_records`` carries the previous block's committed reader and
        writer facts (only consulted when ``inter_block``).
        """
        stats = ValidationStats()
        index = BlockDependencyIndex(
            txns, indexed=self.indexed, collect_writer_txns=True
        )
        stats.dep_index = index

        # --- simulation-step events: fold rw edges into the counters.
        for txn in txns:
            txn.min_out = txn.tid + 1
            txn.max_in = NEG_INF
        if self.indexed:
            # Fused fold: same events, no per-edge object churn.
            index.fold_rw_counters()
        else:
            for edge in index.rw_edges():
                reader = index.txn(edge.reader_tid)
                writer = index.txn(edge.writer_tid)
                # Event on_seeing_rw_dependency(T_writer <--rw-- T_reader):
                reader.min_out = min(writer.tid, reader.min_out)
                writer.max_in = max(reader.tid, writer.max_in)

        inter_doomed: set[int] = set()
        if self.inter_block and prev_records:
            self._fold_inter_block_edges(txns, prev_records, inter_doomed)

        # --- commit-step checks, in TID order (deterministic).
        for txn in sorted(txns, key=lambda t: t.tid):
            if txn.aborted:  # e.g. execution error during simulation
                stats.aborted_tids.add(txn.tid)
                continue
            if txn.min_out < txn.tid and txn.min_out <= txn.max_in:
                txn.mark_aborted(AbortReason.BACKWARD_DANGEROUS_STRUCTURE)
                stats.aborted_tids.add(txn.tid)
                stats.dangerous_structure_hits += 1
                continue
            if self.inter_block and txn.tid in inter_doomed:
                txn.mark_aborted(AbortReason.INTER_BLOCK_STRUCTURE)
                stats.aborted_tids.add(txn.tid)
                stats.inter_block_aborts += 1

        if not self.update_reorder:
            self._abort_ww_losers(txns, stats)
        return stats

    def _fold_inter_block_edges(
        self,
        txns: list[Txn],
        prev: PrevBlockRecords,
        inter_doomed: set[int],
    ) -> None:
        """Account for dependencies that cross the snapshot gap (Rule 3).

        For a transaction ``T`` of the current block (simulating against the
        snapshot two blocks back) and the previous block's committed set:

        - ``T`` reads a key a committed ``W`` wrote -> *backward* inter-rw
          edge (``T`` must serialize before ``W``): ``T.min_out`` absorbs
          ``W.tid``. If ``W`` was itself a structure middle
          (``min_out < tid``), ``T`` closes a generalized backward dangerous
          structure whose other members already committed — abort ``T``
          (the Figure 6 policy: the replica that sees the structure late
          must agree with one that saw it early).
        - committed ``R`` read (or ``W'`` wrote) a key ``T`` writes ->
          *forward* inter edge into ``T`` (``R``/``W'`` serialize before
          ``T``). A cross-block cycle exists iff some backward target ``W``
          reaches some forward source ``S`` through the previous block's
          committed dependency graph (``T -> W ->* S -> T``); reachability
          is precomputed in :meth:`HarmonyValidator.records_for`, so the
          check here is exact, not a TID heuristic.

        All inputs are committed facts of an already-decided block, so every
        replica reaches identical decisions regardless of message timing.

        Indexed path: each range read slices ``prev``'s written keys with
        two bisects; each written key stabs the committed-range-reader
        index — O((reads + writes) · log |prev| + hits) per transaction
        instead of a full scan of ``prev`` per read range / written key.
        """
        if not self.indexed:
            self._fold_inter_block_edges_naive(txns, prev, inter_doomed)
            return

        writer_keys = prev.writer_key_index()
        range_reader_index = prev.range_reader_index()
        prev_writers = prev.writers
        prev_readers = prev.readers
        for txn in txns:
            backward_positions: set[int] = set()
            forward_positions: set[int] = set()

            # Backward targets (``see_target`` in the naive path, inlined —
            # this runs once per committed writer hit).
            for key in txn.read_set:
                for record in prev_writers.get(key, ()):
                    if record.tid < txn.min_out:
                        txn.min_out = record.tid
                    backward_positions.add(record.witness_pos)
                    if record.min_out < record.tid:  # was a structure middle
                        inter_doomed.add(txn.tid)
            for start, end in txn.read_ranges:
                for key in writer_keys.in_range(start, end):
                    for record in prev_writers[key]:
                        if record.tid < txn.min_out:
                            txn.min_out = record.tid
                        backward_positions.add(record.witness_pos)
                        if record.min_out < record.tid:
                            inter_doomed.add(txn.tid)

            for key in txn.write_set:
                for record in prev_writers.get(key, ()):  # ww into T
                    forward_positions.add(record.witness_pos)
                for _tid, pos in prev_readers.get(key, ()):  # rw into T
                    forward_positions.add(pos)
                for pos in range_reader_index.stab(key):
                    forward_positions.add(pos)

            self._close_structure(
                txn, prev, backward_positions, forward_positions, inter_doomed
            )

    def _fold_inter_block_edges_naive(
        self,
        txns: list[Txn],
        prev: PrevBlockRecords,
        inter_doomed: set[int],
    ) -> None:
        """Seed implementation: every range read scans every previous-block
        written key, every written key scans every committed range reader."""
        for txn in txns:
            backward_positions: set[int] = set()
            forward_positions: set[int] = set()

            def see_target(record: CommittedRecord) -> None:
                txn.min_out = min(txn.min_out, record.tid)
                backward_positions.add(record.witness_pos)
                if record.was_structure_middle:
                    inter_doomed.add(txn.tid)

            for key in txn.read_set:
                for record in prev.writers.get(key, ()):
                    see_target(record)
            for start, end in txn.read_ranges:
                for key, records in prev.writers.items():
                    if covers(start, end, key):
                        for record in records:
                            see_target(record)

            for key in txn.write_set:
                for record in prev.writers.get(key, ()):  # ww into T
                    forward_positions.add(record.witness_pos)
                for _tid, pos in prev.readers.get(key, ()):  # rw into T
                    forward_positions.add(pos)
                for start, end, _tid, pos in prev.range_readers:
                    if covers(start, end, key):
                        forward_positions.add(pos)

            self._close_structure(
                txn, prev, backward_positions, forward_positions, inter_doomed
            )

    @staticmethod
    def _close_structure(
        txn: Txn,
        prev: PrevBlockRecords,
        backward_positions: set[int],
        forward_positions: set[int],
        inter_doomed: set[int],
    ) -> None:
        """Doom ``txn`` when a backward target reaches a forward source."""
        if txn.tid in inter_doomed or not backward_positions or not forward_positions:
            return
        if any(
            prev.reaches(target, source)
            for target in backward_positions
            for source in forward_positions
        ):
            inter_doomed.add(txn.tid)

    def _abort_ww_losers(self, txns: list[Txn], stats: ValidationStats) -> None:
        """Ablation mode (no update reordering): Aria-style ww aborts —
        whenever multiple surviving transactions update the same record,
        only the one with the smallest TID commits."""
        winners: dict[object, int] = {}
        for txn in sorted(txns, key=lambda t: t.tid):
            if txn.tid in stats.aborted_tids:
                continue
            for key in txn.write_set:
                owner = winners.get(key)
                if owner is None:
                    winners[key] = txn.tid
                else:
                    txn.mark_aborted(AbortReason.WAW)
                    stats.aborted_tids.add(txn.tid)
                    stats.ww_aborts += 1
                    break

    @staticmethod
    def records_for(txns: list[Txn], indexed: bool = True) -> PrevBlockRecords:
        """Build the committed-transaction facts the next block consults."""
        committed = sorted(
            (t for t in txns if t.committed), key=lambda t: (t.min_out, t.tid)
        )
        records = PrevBlockRecords()
        for pos, txn in enumerate(committed):
            if txn.write_set:
                rmw = frozenset(
                    k for k, cmd in txn.write_set.items() if cmd.reads_value
                )
                record = CommittedRecord(
                    tid=txn.tid,
                    min_out=txn.min_out,
                    written_keys=frozenset(txn.write_set),
                    rmw_keys=rmw,
                    witness_pos=pos,
                )
                for key in record.written_keys:
                    records.writers.setdefault(key, []).append(record)
            for key in txn.read_set:
                records.readers.setdefault(key, []).append((txn.tid, pos))
            for start, end in txn.read_ranges:
                records.range_readers.append((start, end, txn.tid, pos))
        records.reachable = HarmonyValidator._reachability(committed, indexed=indexed)
        return records

    @staticmethod
    def _reachability(
        committed: list[Txn], indexed: bool = True
    ) -> dict[int, frozenset]:
        """Transitive closure over the committed block's dependency graph.

        Nodes are witness positions; edges are the block's rw anti-
        dependencies (reader -> writer) and the per-key apply chains (ww/wr
        in Rule-2 order, which equals ascending witness position).

        The indexed path finds each key's readers through a point-read map
        plus a range stabbing index (instead of re-evaluating
        ``txn.reads(key)`` for every (key, txn) pair), then closes the
        graph with per-node bitsets propagated in reverse witness order —
        near reverse-topological, since apply-chain edges always point to
        higher positions — iterating to a fixpoint so residual backward rw
        edges (and any cycles they form) are still closed exactly.
        """
        if not indexed:
            return HarmonyValidator._reachability_naive(committed)
        n = len(committed)
        edges: dict[int, set[int]] = {i: set() for i in range(n)}
        writers_by_key: dict[object, list[int]] = {}
        point_readers: dict[object, list[int]] = {}
        range_index = RangeIndex()
        for pos, txn in enumerate(committed):
            for key in txn.write_set:
                writers_by_key.setdefault(key, []).append(pos)
            for key in txn.read_set:
                point_readers.setdefault(key, []).append(pos)
            for start, end in txn.read_ranges:
                range_index.add(start, end, pos)
        for key, writer_positions in writers_by_key.items():
            ordered = sorted(writer_positions)
            for earlier, later in zip(ordered, ordered[1:]):
                edges[earlier].add(later)
            reader_positions = set(point_readers.get(key, ()))
            reader_positions.update(range_index.stab(key))
            for pos in reader_positions:
                for writer_pos in writer_positions:
                    if writer_pos != pos:
                        edges[pos].add(writer_pos)

        # Bitset closure: reach[i] = positions reachable from i via >= 1 edge.
        succ = [0] * n
        for i, outs in edges.items():
            for j in outs:
                succ[i] |= 1 << j
        reach = list(succ)
        changed = True
        while changed:
            changed = False
            for i in range(n - 1, -1, -1):
                acc = succ[i]
                bits = succ[i]
                while bits:
                    j = (bits & -bits).bit_length() - 1
                    acc |= reach[j]
                    bits &= bits - 1
                if acc != reach[i]:
                    reach[i] = acc
                    changed = True
        closure: dict[int, frozenset] = {}
        for i in range(n):
            bits = reach[i]
            members = []
            while bits:
                j = (bits & -bits).bit_length() - 1
                members.append(j)
                bits &= bits - 1
            closure[i] = frozenset(members)
        return closure

    @staticmethod
    def _reachability_naive(committed: list[Txn]) -> dict[int, frozenset]:
        """Seed implementation: per-(key, txn) ``reads`` probes and one DFS
        per node. Retained as the differential-testing reference."""
        n = len(committed)
        edges: dict[int, set[int]] = {i: set() for i in range(n)}
        writers_by_key: dict[object, list[int]] = {}
        for pos, txn in enumerate(committed):
            for key in txn.write_set:
                writers_by_key.setdefault(key, []).append(pos)
        for key, writer_positions in writers_by_key.items():
            ordered = sorted(writer_positions)
            for earlier, later in zip(ordered, ordered[1:]):
                edges[earlier].add(later)
            for pos, txn in enumerate(committed):
                if txn.reads(key):
                    for writer_pos in writer_positions:
                        if writer_pos != pos:
                            edges[pos].add(writer_pos)
        closure: dict[int, frozenset] = {}
        for start in range(n):
            seen: set[int] = set()
            stack = list(edges[start])
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(edges[node] - seen)
            closure[start] = frozenset(seen)
        return closure
