"""Harmony: the paper's deterministic concurrency control protocol.

The protocol runs each block in two steps (Section 3.1):

1. **Simulation** — every transaction executes against the same block
   snapshot, producing deterministic read/write sets. rw-dependencies are
   observed on the fly and folded into two per-transaction counters,
   ``min_out`` and ``max_in`` (Algorithm 1).
2. **Commit** — transactions sitting in a *backward dangerous structure*
   abort (Rule 1; generalized to Rule 3 under inter-block parallelism);
   everything else commits. ww/wr conflicts never abort: update commands
   are reordered by ascending ``min_out`` (Rule 2) and coalesced into one
   physical update per key (Section 3.3.2).

Modules:

- :mod:`repro.core.dependencies` — rw-edge detection over read/write sets,
  including range reads (phantom handling).
- :mod:`repro.core.validation` — Rules 1 and 3.
- :mod:`repro.core.reordering` — Rule 2 + update coalescence (Algorithm 2).
- :mod:`repro.core.harmony` — the block executor tying it all together,
  with ablation switches used by Figure 20.
"""

from repro.core.dependencies import BlockDependencyIndex, RWEdge
from repro.core.harmony import BlockExecution, HarmonyConfig, HarmonyExecutor
from repro.core.reordering import ReorderingResult, apply_write_sets
from repro.core.validation import CommittedRecord, HarmonyValidator, ValidationStats

__all__ = [
    "BlockDependencyIndex",
    "BlockExecution",
    "CommittedRecord",
    "HarmonyConfig",
    "HarmonyExecutor",
    "HarmonyValidator",
    "ReorderingResult",
    "RWEdge",
    "ValidationStats",
    "apply_write_sets",
]
