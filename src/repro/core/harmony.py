"""The Harmony block executor (Sections 3.1–3.4).

Pipeline per block: simulate against the block snapshot → validate (Rule 1,
or Rule 3 with inter-block parallelism) → reorder & coalesce updates
(Rule 2) → install writes, group-commit the logical log, checkpoint every
*p* blocks.

``HarmonyConfig`` exposes the ablation switches of Figure 20:

- ``update_reorder=False`` → raw-Harmony aborts ww losers Aria-style;
- ``coalesce=False`` → each updater performs its own physical update;
- ``inter_block=False`` → block *i* waits for block *i−1* and simulates
  against its snapshot (lag 1) instead of overlapping with it (lag 2).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.reordering import apply_write_sets
from repro.core.validation import HarmonyValidator, PrevBlockRecords
from repro.execution import (
    BlockExecution,
    DCCExecutor,
    PreparedBlock,
    simulate_transactions,
)
from repro.intervals import covers
from repro.storage.engine import StorageEngine
from repro.txn.procedures import ProcedureRegistry
from repro.txn.transaction import AbortReason, Txn


def fence_migrated_keys(txns: list[Txn], fence: frozenset) -> None:
    """Deterministically abort every transaction touching an in-flight key.

    At a re-key boundary block, a migrated key's previous-block Rule-3
    facts (committed readers/writers) live on its *old* owner's executor,
    which the new routing no longer consults — an inter-block validator
    would silently miss the edges. The fence closes that hole: touching
    transactions abort at exactly the boundary block, on every replica and
    every backend identically, and retry under the settled ownership.
    """
    for txn in txns:
        if txn.aborted:
            continue
        if (
            any(key in txn.read_set or key in txn.write_set for key in fence)
            or any(
                covers(start, end, key)
                for start, end in txn.read_ranges
                for key in fence
            )
        ):
            txn.mark_aborted(AbortReason.MIGRATION_FENCE)


@dataclass(frozen=True)
class HarmonyConfig:
    """Feature switches; the default is full HarmonyBC."""

    update_reorder: bool = True
    coalesce: bool = True
    inter_block: bool = True
    snapshot_lag: int = 2

    @property
    def effective_lag(self) -> int:
        return self.snapshot_lag if self.inter_block else 1

    def label(self) -> str:
        """Ablation label matching Figure 20's legend."""
        if not self.update_reorder:
            return "raw-Harmony"
        if not self.coalesce:
            return "+update-reorder"
        if not self.inter_block:
            return "+update-coalesce"
        return "Harmony"


class HarmonyExecutor(DCCExecutor):
    """Harmony DCC bound to a storage engine (one replica's database layer)."""

    name = "harmony"
    parallel_commit = True
    supports_two_phase = True

    def __init__(
        self,
        engine: StorageEngine,
        registry: ProcedureRegistry,
        config: HarmonyConfig | None = None,
    ) -> None:
        super().__init__(engine, registry)
        self.config = config or HarmonyConfig()
        self._validator = HarmonyValidator(
            inter_block=self.config.inter_block,
            update_reorder=self.config.update_reorder,
        )
        #: committed reader/writer facts of the previous block (Rule 3)
        self._prev_records = PrevBlockRecords()

    def prepare_block(self, block_id: int, txns: list[Txn]) -> PreparedBlock:
        """Simulate and validate (Rules 1/3); the result is this replica's
        commit/abort vote — nothing is installed yet."""
        snapshot = self.snapshot_for(block_id, lag=self.config.effective_lag)
        sim_durations = simulate_transactions(txns, snapshot, self.registry, self.engine)

        if self.config.inter_block:
            fence = self.migration_fences.get(block_id)
            if fence:
                fence_migrated_keys(txns, fence)

        vstats = self._validator.validate(
            txns,
            self._prev_records if self.config.inter_block else None,
        )
        return PreparedBlock(
            block_id=block_id,
            txns=txns,
            sim_durations_us=sim_durations,
            snapshot_block_id=block_id - self.config.effective_lag,
            payload=vstats,
        )

    def commit_block(
        self, prepared: PreparedBlock, abort_tids: frozenset = frozenset()
    ) -> BlockExecution:
        block_id, txns, vstats = prepared.block_id, prepared.txns, prepared.payload
        self.force_aborts(txns, abort_tids)

        reorder = apply_write_sets(
            txns,
            read_base=self.read_base,
            write_cost=self.engine.write_cost,
            op_cpu_us=self.engine.costs.op_cpu_us,
            do_coalesce=self.config.coalesce,
            dep_index=vstats.dep_index,
            key_scope=self.key_scope,
        )

        self._prev_records = HarmonyValidator.records_for(txns)

        tail_us = self.engine.apply_block(block_id, reorder.ordered_writes)
        tail_us += self.engine.checkpoint_if_due(
            block_id, meta={"prev_records": self._prev_records}
        )

        stats = self.make_stats(block_id, txns)
        stats.dangerous_structure_hits = vstats.dangerous_structure_hits

        commit_durations = [sum(item.chain_durations_us) for item in reorder.key_applies]
        commit_durations.extend(reorder.txn_commit_cpu_us.values())
        return BlockExecution(
            block_id=block_id,
            txns=txns,
            sim_durations_us=prepared.sim_durations_us,
            commit_durations_us=commit_durations,
            serial_commit=False,
            post_commit_serial_us=tail_us,
            stats=stats,
            key_applies=reorder.key_applies,
            snapshot_block_id=prepared.snapshot_block_id,
        )

    def clone_args(self) -> tuple:
        return (self.config,)

    def restore_records(self, records: PrevBlockRecords) -> None:
        """Reinstate Rule-3 records after recovery from a checkpoint."""
        self._prev_records = records or PrevBlockRecords()

    # -- process-backend hooks ----------------------------------------------
    def detach_prepared(self, prepared: PreparedBlock) -> PreparedBlock:
        """Drop the dependency index before shipping: it is pure derived
        data and ``apply_write_sets`` rebuilds it bit-identically when the
        payload arrives with ``dep_index=None`` (the PR-3 differential
        pins that), so only the decision facts cross the pipe."""
        vstats = prepared.payload
        if vstats is not None and vstats.dep_index is not None:
            prepared = dataclasses.replace(
                prepared, payload=dataclasses.replace(vstats, dep_index=None)
            )
        return prepared

    def export_prepare_state(self) -> dict:
        return {"prev_records": self._prev_records}

    def import_prepare_state(self, state: dict) -> None:
        self.restore_records(state.get("prev_records"))

    def decided_prepare_state(
        self, prepared: PreparedBlock, abort_tids: frozenset
    ) -> dict:
        """Rule-3 records of this block, computed at decision time.

        ``commit_block`` derives ``_prev_records`` from the transactions'
        final statuses, which are fully determined once the certificate's
        vetoes are known — marking them here and again in the commit is
        idempotent, so the pipelined driver can hand the records to the
        next block's prepare before this block's physical commit runs.
        """
        txns = prepared.txns
        self.force_aborts(txns, abort_tids)
        for txn in txns:
            if not txn.aborted:
                txn.mark_committed()
        return {"prev_records": HarmonyValidator.records_for(txns)}
