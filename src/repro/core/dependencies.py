"""rw-dependency detection within a block.

A transaction ``R`` rw-depends on ``W`` (``R --rw--> W``) when ``R`` reads a
before-image of ``W``'s writes. Under block-snapshot execution every read in
a block sees the snapshot, so the edge exists whenever ``R`` reads (or
range-scans over) a key that ``W`` writes, for ``R != W``.

Predicate reads are covered: a scan registers its half-open range, and any
write landing inside the range raises the same event — "Harmony does not
have phantoms because a predicate-read will also trigger
on_seeing_rw_dependency" (Section 3.2).

Two implementations share this class:

- ``indexed=True`` (default) answers range-reader lookups through a
  sorted-boundary :class:`~repro.intervals.RangeIndex`, making
  :meth:`BlockDependencyIndex.rw_edges` near-linear in the number of
  edges;
- ``indexed=False`` retains the naive linear scan over every registered
  range per written key. It is kept as the differential-testing reference
  (``tests/test_perf_differential.py``) and as the baseline the
  ``repro.bench.perf`` harness measures speedups against.

Both paths produce identical reader lists and edge streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.intervals import RangeIndex, covers
from repro.txn.transaction import Txn


@dataclass(frozen=True)
class RWEdge:
    """``reader --rw--> writer`` on ``key`` (reader saw the before-image)."""

    reader_tid: int
    writer_tid: int
    key: object


class BlockDependencyIndex:
    """Per-block index of point reads, range reads and writes."""

    def __init__(
        self,
        txns: list[Txn],
        indexed: bool = True,
        collect_writer_txns: bool = False,
    ) -> None:
        self.txns = txns
        self.indexed = indexed
        self._by_tid = {t.tid: t for t in txns}
        self._point_readers: dict[object, list[int]] = {}
        self._range_readers: list[tuple[object, object, int]] = []
        self._range_index = RangeIndex()
        self._writers: dict[object, list[int]] = {}
        #: key -> updater Txns in block (TID) order. Only the commit step
        #: (update reordering) consumes these chains, and the reuse only
        #: beats a commit-time rebuild when they ride along in this loop —
        #: so builders whose commit step will call :meth:`writer_txns`
        #: (Harmony's validator) pass ``collect_writer_txns=True``, and
        #: everyone else (e.g. RBC's SSI checker) pays nothing.
        writer_txns: dict[object, list[Txn]] | None = (
            {} if collect_writer_txns else None
        )
        for txn in txns:
            for key in txn.read_set:
                self._point_readers.setdefault(key, []).append(txn.tid)
            for start, end in txn.read_ranges:
                self._range_readers.append((start, end, txn.tid))
                self._range_index.add(start, end, txn.tid)
            if writer_txns is None:
                for key in txn.write_set:
                    self._writers.setdefault(key, []).append(txn.tid)
            else:
                for key in txn.write_set:
                    self._writers.setdefault(key, []).append(txn.tid)
                    writer_txns.setdefault(key, []).append(txn)
        self._writer_txns = writer_txns

    def txn(self, tid: int) -> Txn:
        return self._by_tid[tid]

    def writers_of(self, key: object) -> list[int]:
        return self._writers.get(key, [])

    def writer_txns(self) -> dict[object, list[Txn]]:
        """Per-key updater chains (all statuses; commit-time callers filter
        aborted updaters themselves). Built on first use when the index was
        constructed without ``collect_writer_txns`` — write sets are frozen
        once validation starts, so the late build sees the same chains
        (though at rebuild cost; pass the flag on hot paths)."""
        chains = self._writer_txns
        if chains is None:
            chains = self._writer_txns = {}
            for txn in self.txns:
                for key in txn.write_set:
                    chains.setdefault(key, []).append(txn)
        return chains

    def readers_of(self, key: object) -> list[int]:
        """Point readers plus range readers whose range covers ``key``.

        De-duplicated (a transaction appears once even when several of its
        ranges cover the key), point readers first, then range readers in
        registration order — identical output on both implementations.
        """
        if not self.indexed:
            return self._readers_of_naive(key)
        point = self._point_readers.get(key)
        ranged = self._range_index.stab(key)
        if not ranged:
            return list(point) if point else []
        readers = list(point) if point else []
        seen = set(readers)
        for tid in ranged:
            if tid not in seen:
                seen.add(tid)
                readers.append(tid)
        return readers

    def _readers_of_naive(self, key: object) -> list[int]:
        """Seed implementation: linear scan over every registered range."""
        readers = list(self._point_readers.get(key, []))
        for start, end, tid in self._range_readers:
            if covers(start, end, key) and tid not in readers:
                readers.append(tid)
        return readers

    def written_keys(self) -> Iterator[object]:
        return iter(self._writers)

    def rw_edges(self) -> Iterator[RWEdge]:
        """All intra-block rw edges, each (reader, writer, key) once.

        With the interval index this is O(written_keys · log ranges +
        edges) instead of O(written_keys · ranges).
        """
        for key, writer_tids in self._writers.items():
            for reader_tid in self.readers_of(key):
                for writer_tid in writer_tids:
                    if reader_tid != writer_tid:
                        yield RWEdge(reader_tid, writer_tid, key)

    def fold_rw_counters(self) -> None:
        """Apply every ``on_seeing_rw_dependency`` event directly to the
        transactions' Algorithm-1 counters.

        Equivalent to iterating :meth:`rw_edges` and folding each edge into
        ``reader.min_out`` / ``writer.max_in``, but without materializing
        an edge object (or two TID lookups) per edge: for each written key
        the per-reader minimum writer TID and per-writer maximum reader TID
        are derived from the key's two extreme writers/readers, so the fold
        is O(readers + writers) per key instead of O(readers · writers).
        """
        by_tid = self._by_tid
        for key, writer_tids in self._writers.items():
            readers = self.readers_of(key)
            if not readers:
                continue
            if len(writer_tids) == 1:
                w_min, w_min2 = writer_tids[0], None
            else:
                w_min = min(writer_tids)
                w_min2 = min(t for t in writer_tids if t != w_min)
            if len(readers) == 1:
                r_max, r_max2 = readers[0], None
            else:
                r_max = max(readers)
                r_max2 = max(t for t in readers if t != r_max)
            for reader_tid in readers:
                target = w_min2 if reader_tid == w_min else w_min
                if target is not None:
                    reader = by_tid[reader_tid]
                    if target < reader.min_out:
                        reader.min_out = target
            for writer_tid in writer_tids:
                source = r_max2 if writer_tid == r_max else r_max
                if source is not None:
                    writer = by_tid[writer_tid]
                    if source > writer.max_in:
                        writer.max_in = source
