"""rw-dependency detection within a block.

A transaction ``R`` rw-depends on ``W`` (``R --rw--> W``) when ``R`` reads a
before-image of ``W``'s writes. Under block-snapshot execution every read in
a block sees the snapshot, so the edge exists whenever ``R`` reads (or
range-scans over) a key that ``W`` writes, for ``R != W``.

Predicate reads are covered: a scan registers its half-open range, and any
write landing inside the range raises the same event — "Harmony does not
have phantoms because a predicate-read will also trigger
on_seeing_rw_dependency" (Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.txn.transaction import Txn


@dataclass(frozen=True)
class RWEdge:
    """``reader --rw--> writer`` on ``key`` (reader saw the before-image)."""

    reader_tid: int
    writer_tid: int
    key: object


class BlockDependencyIndex:
    """Per-block index of point reads, range reads and writes."""

    def __init__(self, txns: list[Txn]) -> None:
        self.txns = txns
        self._by_tid = {t.tid: t for t in txns}
        self._point_readers: dict[object, list[int]] = {}
        self._range_readers: list[tuple[object, object, int]] = []
        self._writers: dict[object, list[int]] = {}
        for txn in txns:
            for key in txn.read_set:
                self._point_readers.setdefault(key, []).append(txn.tid)
            for start, end in txn.read_ranges:
                self._range_readers.append((start, end, txn.tid))
            for key in txn.write_set:
                self._writers.setdefault(key, []).append(txn.tid)

    def txn(self, tid: int) -> Txn:
        return self._by_tid[tid]

    def writers_of(self, key: object) -> list[int]:
        return self._writers.get(key, [])

    def readers_of(self, key: object) -> list[int]:
        """Point readers plus range readers whose range covers ``key``."""
        readers = list(self._point_readers.get(key, []))
        for start, end, tid in self._range_readers:
            try:
                covers = start <= key < end
            except TypeError:
                covers = False
            if covers and tid not in readers:
                readers.append(tid)
        return readers

    def written_keys(self) -> Iterator[object]:
        return iter(self._writers)

    def rw_edges(self) -> Iterator[RWEdge]:
        """All intra-block rw edges, each (reader, writer, key) once."""
        for key, writer_tids in self._writers.items():
            for reader_tid in self.readers_of(key):
                for writer_tid in writer_tids:
                    if reader_tid != writer_tid:
                        yield RWEdge(reader_tid, writer_tid, key)
