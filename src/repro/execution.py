"""Shared block-executor machinery for all DCC protocols.

Every protocol consumes a block of :class:`~repro.txn.transaction.Txn` and
produces a :class:`BlockExecution`: commit/abort decisions applied to the
transactions, the new state installed in the storage engine, and the task
durations the pipeline scheduler turns into throughput.

The *decision* layer is strictly deterministic — it sees TIDs and
read/write sets only. The *timing* layer (durations) never feeds back into
decisions.

This module is deliberately dependency-light so both :mod:`repro.core`
(Harmony) and :mod:`repro.dcc` (the baselines) can build on it without
import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.intervals import covers
from repro.sim.metrics import BlockStats
from repro.storage.engine import StorageEngine
from repro.storage.mvstore import TOMBSTONE, SnapshotView
from repro.txn.context import SimulationContext
from repro.txn.procedures import ProcedureRegistry
from repro.txn.transaction import AbortReason, Txn


@dataclass
class PreparedBlock:
    """Decision state carried from an executor's prepare phase to its commit.

    The two-phase split exists for the sharded pipeline: a shard *prepares*
    a block (simulate + validate — its local 2PC vote) and only *commits*
    after the cross-shard decision round, which may force additional aborts
    (``abort_tids`` of :meth:`DCCExecutor.commit_block`). For an unsharded
    run ``execute_block`` is exactly ``commit_block(prepare_block(...))``
    with no forced aborts, so decisions are bit-identical to the historical
    single-call path.
    """

    block_id: int
    txns: list[Txn]
    #: per-transaction simulation-step durations (us), in block order
    sim_durations_us: list[float] = field(default_factory=list)
    #: snapshot the block simulated against (block id)
    snapshot_block_id: int | None = None
    #: serial critical-path cost accrued before simulation (block verify)
    extra_pre_exec_us: float = 0.0
    #: executor-specific state threaded from prepare to commit
    payload: object = None


@dataclass
class BlockExecution:
    """Everything a system layer needs to know about one executed block."""

    block_id: int
    txns: list[Txn]
    #: per-transaction simulation-step durations (us), in block order
    sim_durations_us: list[float] = field(default_factory=list)
    #: commit-step task durations (us); parallel tasks unless serial_commit
    commit_durations_us: list[float] = field(default_factory=list)
    #: whether the commit/validation step is inherently serial
    serial_commit: bool = False
    #: serial critical-path work before simulation (e.g. graph traversal)
    pre_exec_serial_us: float = 0.0
    #: serial tail (group commit fsync, hash chaining, checkpoint flush)
    post_commit_serial_us: float = 0.0
    stats: BlockStats = None  # type: ignore[assignment]
    #: per-key apply chains (Harmony) — consumed by the history oracle
    key_applies: list = field(default_factory=list)
    #: snapshot the block simulated against (block id)
    snapshot_block_id: int | None = None

    @property
    def committed_txns(self) -> list[Txn]:
        return [t for t in self.txns if t.committed]

    @property
    def aborted_txns(self) -> list[Txn]:
        return [t for t in self.txns if t.aborted]


def simulate_transactions(
    txns: list[Txn],
    snapshot: SnapshotView,
    registry: ProcedureRegistry,
    engine: StorageEngine | None = None,
) -> list[float]:
    """Run every transaction's simulation step against ``snapshot``.

    Returns the per-transaction simulated durations. A procedure raising an
    error aborts only that transaction (EXECUTION_ERROR) — deterministically,
    since the snapshot it ran against is deterministic.
    """
    durations: list[float] = []
    for txn in txns:
        ctx = SimulationContext(txn, snapshot, engine)
        try:
            txn.output = registry.execute(ctx)
        except (KeyError, TypeError, ValueError):
            txn.mark_aborted(AbortReason.EXECUTION_ERROR)
        txn.sim_cost_us = ctx.cost_us
        durations.append(ctx.cost_us)
    return durations


class OverlayView:
    """A snapshot plus an in-progress block's writes (serial execution).

    Serial-commit protocols (serial OE, RBC, Fabric validation) process a
    block transaction-by-transaction; each transaction must observe the
    writes of the ones validated before it. The overlay carries those
    uncommitted-within-the-block values over the base snapshot, with
    version tags ``(block_id, seq)`` so version checks see sub-block
    granularity.
    """

    def __init__(self, base: SnapshotView, block_id: int) -> None:
        self._base = base
        self._block_id = block_id
        self._writes: dict[object, tuple[object, tuple[int, int]]] = {}
        self._seq = 0

    def get(self, key: object):
        if key in self._writes:
            value, version = self._writes[key]
            if value is TOMBSTONE:
                return None, version
            return value, version
        return self._base.get(key)

    def put(self, key: object, value: object) -> None:
        self._writes[key] = (value, (self._block_id, self._seq))
        self._seq += 1

    def scan(self, start: object, end: object):
        """Stream-merge the (sorted) base scan with the overlay's covered
        writes — no materialization of the whole base range. Overlay
        entries shadow base entries on key collisions; dead overlay values
        (tombstones / ``None``) suppress the base row."""
        overlay_keys = [key for key in self._writes if covers(start, end, key)]
        try:
            overlay_keys.sort()
        except TypeError:
            # Heterogeneous overlay keys: fall back to the dict merge.
            yield from self._scan_dict_merge(start, end)
            return
        writes = self._writes
        base = self._base.scan(start, end)
        base_entry = next(base, None)
        for key in overlay_keys:
            while base_entry is not None and base_entry[0] < key:
                yield base_entry
                base_entry = next(base, None)
            if base_entry is not None and base_entry[0] == key:
                base_entry = next(base, None)  # shadowed by the overlay
            value = writes[key][0]
            if value is not TOMBSTONE and value is not None:
                yield key, value
        while base_entry is not None:
            yield base_entry
            base_entry = next(base, None)

    def _scan_dict_merge(self, start: object, end: object):
        """Seed implementation (materializes the base range); retained as
        the unsortable-key fallback and differential-testing reference."""
        merged = {key: value for key, value in self._base.scan(start, end)}
        for key, (value, _version) in self._writes.items():
            if covers(start, end, key):
                merged[key] = value
        for key in sorted(merged):
            if merged[key] is not TOMBSTONE and merged[key] is not None:
                yield key, merged[key]

    def ordered_writes(self) -> list[tuple[object, object]]:
        """Writes in apply (seq) order, for MVStore installation."""
        items = sorted(self._writes.items(), key=lambda kv: kv[1][1])
        return [(key, value) for key, (value, _version) in items]


class DCCExecutor:
    """Base class: a deterministic block executor bound to one engine."""

    name = "abstract"
    parallel_commit = True
    #: True when the executor implements the prepare/commit split the
    #: sharded pipeline drives (SOV validators keep the one-shot path)
    supports_two_phase = False

    def __init__(self, engine: StorageEngine, registry: ProcedureRegistry) -> None:
        self.engine = engine
        self.registry = registry
        #: sharding hooks — both ``None`` outside a sharded deployment, in
        #: which case every code path is byte-for-byte the unsharded one.
        #: ``snapshot_source(block_id)`` returns the read snapshot (a
        #: federated, cross-shard view when set); ``key_scope(key)`` is the
        #: shard-locality predicate commit steps filter writes through.
        self.snapshot_source = None
        self.key_scope = None
        #: block_id -> frozenset of keys in flight at that re-key boundary.
        #: Inter-block validators consult this (the previous block's
        #: decision facts for a migrated key live on its *old* owner, which
        #: the new routing no longer asks) and deterministically abort
        #: touching transactions at exactly the boundary block. Installed
        #: by every migration-apply surface; empty outside adaptive runs.
        self.migration_fences: dict[int, frozenset] = {}

    # -- subclasses implement ------------------------------------------------
    def prepare_block(self, block_id: int, txns: list[Txn]) -> PreparedBlock:
        """Simulate and validate; decide the local commit/abort vote."""
        raise NotImplementedError

    def commit_block(
        self, prepared: PreparedBlock, abort_tids: frozenset = frozenset()
    ) -> BlockExecution:
        """Apply the prepared block; ``abort_tids`` are cross-shard vetoes."""
        raise NotImplementedError

    def execute_block(self, block_id: int, txns: list[Txn]) -> BlockExecution:
        return self.commit_block(self.prepare_block(block_id, txns))

    def clone_args(self) -> tuple:
        """Constructor arguments after ``(engine, registry)`` that rebuild
        this executor with identical configuration — recovery clones a
        crashed replica's executor onto a fresh engine with
        ``type(executor)(engine, registry, *executor.clone_args())``.
        Subclasses with extra switches override."""
        return ()

    # -- shared helpers ------------------------------------------------------
    def snapshot_for(self, block_id: int, lag: int = 1) -> SnapshotView:
        if self.snapshot_source is not None:
            return self.snapshot_source(block_id - lag)
        return self.engine.snapshot(block_id - lag)

    def force_aborts(self, txns: list[Txn], abort_tids) -> None:
        """Mark cross-shard vetoed transactions aborted before commit."""
        if not abort_tids:
            return
        for txn in txns:
            if txn.tid in abort_tids and not txn.aborted:
                txn.mark_aborted(AbortReason.CROSS_SHARD_ABORT)

    def in_scope(self, key: object) -> bool:
        """Whether ``key`` is locally owned (always true unsharded)."""
        return self.key_scope is None or self.key_scope(key)

    # -- process-backend hooks ----------------------------------------------
    # The process-pool prepare backend (``repro.parallel``) runs
    # ``prepare_block`` in a worker process and ships the ``PreparedBlock``
    # back over a pipe. Executors whose prepare payload embeds live store
    # views override ``detach_prepared`` (strip the unpicklable/heavy parts
    # worker-side) and ``attach_prepared`` (rebuild them on the main
    # process, whose stores are at least at the prepare height). Executors
    # with cross-block prepare state (Harmony's Rule-3 records) override
    # the ``export``/``import`` pair so the worker validates against the
    # identical inter-block facts. The defaults are the no-op identity:
    # stateless executors need nothing.
    def detach_prepared(self, prepared: PreparedBlock) -> PreparedBlock:
        """Make ``prepared`` picklable/cheap to ship (worker side)."""
        return prepared

    def attach_prepared(self, prepared: PreparedBlock) -> PreparedBlock:
        """Rebind a shipped ``prepared`` to this executor's stores."""
        return prepared

    def export_prepare_state(self) -> dict:
        """Cross-block decision state the next ``prepare_block`` needs."""
        return {}

    def import_prepare_state(self, state: dict) -> None:
        """Install state captured by :meth:`export_prepare_state`."""

    def decided_prepare_state(
        self, prepared: PreparedBlock, abort_tids: frozenset
    ) -> dict:
        """The prepare state *after* this block's decision is final.

        Equals what :meth:`export_prepare_state` would return once
        ``commit_block(prepared, abort_tids)`` has run — but computable at
        certificate time, before the physical commit. The pipelined driver
        uses it to ship block *i*'s decision facts to the worker preparing
        block *i+1* while block *i* is still committing. Must be
        idempotent with the commit's own bookkeeping (it marks the same
        transaction objects the commit later marks again).
        """
        return {}

    def read_base(self, key: object):
        """Latest committed value (tombstones surface as ``None``)."""
        value, _version = self.engine.store.get_latest(key)
        return value

    def make_stats(self, block_id: int, txns: list[Txn]) -> BlockStats:
        stats = BlockStats(block_id=block_id)
        for txn in txns:
            if txn.committed:
                stats.committed += 1
            elif txn.aborted:
                stats.aborted += 1
        return stats
