"""True parallel execution: process-pool prepares + inter-block pipelining.

This package turns the simulated parallelism of :mod:`repro.sim.scheduler`
into measured wall-clock speedup on real cores, without touching a single
decision bit:

- :mod:`repro.parallel.backend` — a ``concurrent.futures`` process-pool
  backend for per-shard ``prepare_block`` fan-out. Worker processes hold
  their own replica of the (deterministic) state, advanced by shipped
  per-block write deltas, so only sub-blocks and decisions cross the pipe.
- :mod:`repro.parallel.pipeline` — the inter-block pipeline drivers:
  block *N+1*'s simulation/validation overlaps block *N*'s commit
  whenever the executor's snapshot lag allows it (Harmony inter-block).
- :mod:`repro.parallel.replay` — pipelined recovery/replica replay.

``backend="serial"`` (the default everywhere) is the differential
reference: the process backend is held bit-identical to it in decisions,
state hashes and certificate chains.
"""

from repro.parallel.backend import (
    ProcessPrepareBackend,
    StalePrepareError,
    available_cores,
    make_prepare_backend,
)

__all__ = [
    "ProcessPrepareBackend",
    "StalePrepareError",
    "available_cores",
    "make_prepare_backend",
]
