"""Pipelined replica replay: rebuild a full shard group on real cores.

``consistency_check`` and catastrophic (all-shard) recovery replay every
sub-ledger strictly serially: shard after shard, block after block. This
module replays the same artifacts — sub-ledgers plus the global
certificate stream — with the per-shard prepares fanned out to the
:mod:`repro.parallel.backend` worker pool, and (when the executor's
snapshot lag legalizes it) block *i*'s prepare overlapped with block
*i−1*'s commit, exactly like the live pipelined driver.

The certificate stream *is* the decision record, so replay never re-runs
the vote exchange: each block's recorded vetoes are honoured verbatim and
the rebuilt group's state is bit-identical to the serial replay's.
"""

from __future__ import annotations

from repro.shard.rebalance import migration_store_deltas
from repro.shard.system import ShardGroup


def apply_replay_migration(group: ShardGroup, router, record) -> None:
    """Install a certified migration's store deltas on a replaying group.

    The shared router's ownership table already holds every epoch (replay
    reuses the live chain's router), so only the per-store shipment at the
    ``block_id - 1`` boundary happens here — cursor movement is the replay
    loop's job.
    """
    if record is None:
        return
    fence = frozenset(dict(record.moves))
    for node in group.nodes:
        node.executor.migration_fences[record.block_id] = fence
    incoming, outgoing = migration_store_deltas(record, router)
    boundary = record.block_id - 1
    for shard in sorted(set(incoming) | set(outgoing)):
        items = dict(outgoing.get(shard, ()))
        items.update(incoming.get(shard, ()))
        group.nodes[shard].engine.apply_migration(boundary, items)


def replay_group_serial(chain, name_prefix: str = "replay-serial") -> ShardGroup:
    """The reference replay: a fresh group, every block prepared and
    committed in-process, shard after shard (the seed's discipline).

    Migration-aware: the fresh group splits genesis at epoch 0, and each
    certified :class:`~repro.shard.rebalance.MigrationRecord` re-applies at
    exactly its recorded height — the cursor save/restore keeps the shared
    router usable by the live chain afterwards.
    """
    router = chain.router
    saved_height = router.cursor_height
    router.advance_to(0)
    try:
        other = ShardGroup(
            chain.config,
            chain.workload,
            router,
            chain.costs,
            chain.orderer_signer,
            name_prefix=name_prefix,
        )
        height = len(chain.group.nodes[0].ledger)
        for i in range(height):
            router.advance_to(i)
            cert = chain.cert_log[i]
            apply_replay_migration(other, router, cert.migration)
            sub_blocks = {
                shard: node.ledger[i] for shard, node in enumerate(chain.group.nodes)
            }
            prepared = other.prepare(sub_blocks)
            other.finish(prepared, cert.abort_tids)
        return other
    finally:
        router.advance_to(saved_height)


def replay_group(
    chain,
    pipelined: bool = True,
    name_prefix: str = "replay-parallel",
) -> ShardGroup:
    """Rebuild a fresh :class:`ShardGroup` from ``chain``'s sub-ledgers and
    certificate stream with process-pool prepare fan-out.

    ``pipelined`` additionally defers each block's commit one iteration
    (legal iff the executor's snapshot lag >= 2 — Harmony inter-block);
    for lag-1 executors the flag is ignored and the replay still gains the
    per-shard fan-out. Falls back to :func:`replay_group_serial` when the
    configuration has no process backend (``backend != "process"`` or an
    unsupported scheme).
    """
    from repro.parallel.backend import make_prepare_backend

    config = chain.config
    backend = (
        make_prepare_backend(config, chain.workload, config.num_shards)
        if config.backend == "process"
        else None
    )
    if backend is None:
        return replay_group_serial(chain, name_prefix=name_prefix)
    overlap = (
        pipelined
        and config.system == "harmony"
        and config.harmony.inter_block
        and config.harmony.effective_lag >= 2
    )
    router = chain.router
    saved_height = router.cursor_height
    router.advance_to(0)
    other = ShardGroup(
        config,
        chain.workload,
        router,
        chain.costs,
        chain.orderer_signer,
        name_prefix=name_prefix,
    )
    executors = {shard: node.executor for shard, node in enumerate(other.nodes)}
    height = len(chain.group.nodes[0].ledger)
    decided_states = {
        shard: executor.export_prepare_state()
        for shard, executor in executors.items()
    }
    pending = None  # (block_id, prepared, abort_tids)
    try:
        for i in range(height):
            router.advance_to(i)
            cert = chain.cert_log[i]
            if cert.migration is not None:
                # migration barrier, exactly as in the live pipelined
                # driver: the deferred commit lands, every store reaches
                # the boundary, then the re-key installs main-side and
                # ships to the (fresh, epoch-0) worker routers
                if pending is not None:
                    _commit(other, backend, pending)
                    pending = None
                apply_replay_migration(other, router, cert.migration)
                backend.apply_migration(cert.migration)
            sub_blocks = {
                shard: node.ledger[i]
                for shard, node in enumerate(chain.group.nodes)
            }
            abort_tids = cert.abort_tids
            futures = backend.submit(sub_blocks, decided_states)
            for shard, node in enumerate(other.nodes):
                node.ingest_block(sub_blocks[shard])
            if pending is not None:
                _commit(other, backend, pending)
                pending = None
            prepared = backend.collect(futures, executors)
            decided_states = {
                shard: executors[shard].decided_prepare_state(
                    prepared[shard], abort_tids
                )
                for shard in prepared
            }
            if overlap:
                pending = (i, prepared, abort_tids)
            else:
                _commit(other, backend, (i, prepared, abort_tids))
        if pending is not None:
            _commit(other, backend, pending)
    finally:
        backend.close()
        router.advance_to(saved_height)
    return other


def _commit(group: ShardGroup, backend, pending) -> None:
    block_id, prepared, abort_tids = pending
    group.finish(prepared, abort_tids)
    backend.advance(
        block_id, [node.engine.writes_of(block_id) for node in group.nodes]
    )
