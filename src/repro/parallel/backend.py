"""Process-pool prepare backend: per-shard ``prepare_block`` on real cores.

The deterministic prepare/commit split (PR 4) makes per-shard prepares
embarrassingly parallel: a prepare is a pure function of (sub-block,
snapshot at a known height, cross-block prepare state). This backend runs
them in worker *processes* — the only way Python buys wall-clock
parallelism for CPU-bound work — while the main process keeps every
authoritative artifact: ledgers, block log, votes, certificates, commits.

Design:

- **One single-worker pool per process slot.** Shards are assigned
  round-robin to ``backend_workers`` slots (default: one per shard), so a
  shard's prepares always land in the same process and its worker-side
  state advances monotonically.
- **Workers never commit.** Each worker holds a full storage engine for
  the shards it owns (preloaded from the deterministic genesis split) plus
  bare multi-version stores for the peers it may read across shards. All
  of them advance by *shipped deltas*: after the main process commits
  global block *b* it records every shard's ordered writes
  (:meth:`ProcessPrepareBackend.advance`), and the next task replays them
  worker-side with ``MVStore.apply_block`` — no state snapshot is ever
  re-shipped.
- **The cache key is (shard, block height, epoch).** Every task asserts
  each worker store sits exactly at the expected committed height and
  invalidation epoch before preparing; a miss raises
  :class:`StalePrepareError` instead of silently preparing against a stale
  snapshot. :meth:`ProcessPrepareBackend.invalidate` (fired by
  ``ShardGroup.rejoin`` through the chain's listener) bumps the epoch and
  ships a reset — base state at the deepest snapshot height any prepare
  can request plus the last ``lag`` blocks' writes under their real ids,
  so historical snapshot reads stay exact.
- **Results detach before the pipe.** Executors strip live store views /
  derived indexes from their ``PreparedBlock`` payloads worker-side
  (``detach_prepared``) and rebuild them against the main process's stores
  (``attach_prepared``), which are at least at the prepare height when the
  result is collected.

Decisions, state hashes and certificate chains are bit-identical to
``backend="serial"``; simulated timing *metrics* may differ (a worker
engine's buffer pool sees only prepare reads, the main engine's only
commits — costs never feed back into decisions).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.shard.federated import FederatedSnapshot
from repro.shard.rebalance import migration_store_deltas
from repro.sim.costs import CostModel
from repro.storage.engine import StorageEngine
from repro.storage.mvstore import MIGRATION_SEQ_BASE, MVStore
from repro.storage.wal import LogMode


class StalePrepareError(RuntimeError):
    """A worker was asked to prepare against a stale store snapshot."""


def available_cores() -> int:
    """Cores this process may actually schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def make_prepare_backend(config, workload, num_shards: int):
    """The chain-facing constructor: ``None`` unless ``backend="process"``
    applies (two-phase executor, no faults armed — callers gate those)."""
    if getattr(config, "backend", "serial") != "process":
        return None
    if config.system not in ("harmony", "aria", "rbc"):
        # serial execution has no prepare/commit seam; SOV-family keeps
        # the one-shot path
        return None
    return ProcessPrepareBackend(config, workload, num_shards)


# --------------------------------------------------------------- worker side
@dataclass
class ShardReset:
    """Replaces one shard's worker-side store after rejoin/recovery."""

    shard: int
    epoch: int
    #: deepest height a subsequent prepare may snapshot (``height - lag``)
    base_block: int
    #: materialized state at ``base_block`` (loaded at version ``-1``,
    #: visible from every later height)
    base_state: dict
    #: the last ``lag`` blocks' ordered writes under their *real* block
    #: ids, so version checks at historical heights stay exact
    blocks: list
    #: ownership epochs already *baked into* ``base_state`` — migration
    #: records at or below this epoch must not re-apply their store deltas
    #: to the reset store (the router table entry still installs)
    ownership_epoch: int = 0


@dataclass
class PrepareTask:
    """One worker invocation: advance the cached stores, then prepare."""

    block_id: int
    #: shard -> sub-block, only this worker's owned shards
    sub_blocks: dict
    #: shard -> cross-block prepare state (``export_prepare_state`` /
    #: ``decided_prepare_state`` of the previous block, main-side)
    prepare_states: dict
    #: ordered ``(block_id, [per-shard ordered writes])`` since the last
    #: task shipped to this worker
    deltas: list
    #: pending store replacements (rejoin/recovery invalidation)
    resets: list = field(default_factory=list)
    #: certified :class:`~repro.shard.rebalance.MigrationRecord`\ s not yet
    #: shipped to this worker, in epoch order — interleaved with ``deltas``
    #: by block height on the worker side
    migrations: list = field(default_factory=list)
    #: committed height every store must sit at before preparing
    expect_height: int = -1
    #: per-shard invalidation epochs the worker must have observed
    expect_epochs: tuple = ()
    #: ownership epoch the worker's router must reach before preparing
    expect_ownership_epoch: int = 0


class _WorkerState:
    """Per-process state: stores for every shard, executors for owned ones."""

    def __init__(self, config, workload, num_shards: int, owned: tuple) -> None:
        self.num_shards = num_shards
        self.owned = owned
        costs = CostModel()
        if num_shards > 1:
            from repro.shard.system import build_router

            router = build_router(config, workload)
            shard_states = router.split_state(workload.initial_state())
        else:
            router = None
            shard_states = [workload.initial_state()]
        self.router = router
        self.stores: list = [None] * num_shards
        self.executors: dict = {}
        self.epochs = [0] * num_shards
        #: newest ownership epoch whose *store deltas* each shard's store
        #: has absorbed (via migration replay or a covering reset)
        self.store_mig_epochs = [0] * num_shards
        from repro.chain.system import build_executor

        for shard in range(num_shards):
            if shard in owned:
                engine = StorageEngine(
                    costs=costs,
                    profile=config.profile,
                    pool_pages=config.pool_pages,
                    log_mode=LogMode.LOGICAL,
                    checkpoint_interval=config.checkpoint_interval,
                    incremental_checkpoints=config.checkpoint_incremental,
                    checkpoint_base_interval=config.checkpoint_base_interval,
                )
                engine.preload(shard_states[shard])
                self.executors[shard] = build_executor(
                    config, engine, workload.build_registry()
                )
                self.stores[shard] = engine.store
            else:
                store = MVStore()
                store.load(shard_states[shard])
                self.stores[shard] = store
        if num_shards > 1:
            stores = self.stores
            for shard, executor in self.executors.items():
                executor.snapshot_source = (
                    lambda snap_block_id, _stores=stores: FederatedSnapshot(
                        router, _stores, snap_block_id
                    )
                )
                executor.key_scope = (
                    lambda key, _shard=shard: router.shard_of(key) == _shard
                )

    def apply_reset(self, reset: ShardReset) -> None:
        store = MVStore()
        store.load(reset.base_state)
        for block_id, writes in reset.blocks:
            store.apply_block(block_id, writes)
        # slot swap re-points the federation closures (they capture the
        # list), mirroring ShardGroup.rejoin on the main side
        self.stores[reset.shard] = store
        self.epochs[reset.shard] = reset.epoch
        self.store_mig_epochs[reset.shard] = max(
            self.store_mig_epochs[reset.shard], reset.ownership_epoch
        )
        executor = self.executors.get(reset.shard)
        if executor is not None:
            executor.engine.store = store

    def advance(self, deltas: list, migrations: list = ()) -> None:
        """Replay shipped per-block writes, interleaving migration records
        at their exact boundary: a record certified at block *H* ships its
        key versions inside block *H-1*, so it lands after *H-1*'s delta
        and before *H*'s."""
        pending = sorted(migrations, key=lambda record: record.block_id)
        cursor = 0
        for block_id, per_shard in deltas:
            while cursor < len(pending) and pending[cursor].block_id <= block_id:
                self.apply_migration(pending[cursor])
                cursor += 1
            for shard, writes in enumerate(per_shard):
                if writes is None:
                    # recorded during a fault window for a shard that
                    # never committed the block — its reset covers it
                    continue
                store = self.stores[shard]
                if store.last_committed_block >= block_id:
                    continue  # a reset already covered this block
                store.apply_block(block_id, writes)
        for record in pending[cursor:]:
            self.apply_migration(record)

    def apply_migration(self, record) -> None:
        """Install one certified ownership change worker-side.

        The router table entry always installs (epochs are strictly
        sequential; duplicates are dropped). Store deltas apply only to a
        store sitting exactly at the boundary height whose migration
        watermark is below the record's epoch — resets bake newer state in
        and must not be double-applied.
        """
        router = self.router
        if router is None:
            return
        if record.epoch == router.ownership.epoch + 1:
            router.apply_migration(record)
        fence = frozenset(dict(record.moves))
        for executor in self.executors.values():
            executor.migration_fences[record.block_id] = fence
        incoming, outgoing = migration_store_deltas(record, router)
        boundary = record.block_id - 1
        for shard in sorted(set(incoming) | set(outgoing)):
            if self.store_mig_epochs[shard] >= record.epoch:
                continue
            store = self.stores[shard]
            if store.last_committed_block != boundary:
                continue
            items = dict(outgoing.get(shard, ()))
            items.update(incoming.get(shard, ()))
            executor = self.executors.get(shard)
            if executor is not None:
                executor.engine.apply_migration(boundary, items)
            else:
                store.load(items, block_id=boundary, seq_start=MIGRATION_SEQ_BASE)
            self.store_mig_epochs[shard] = record.epoch

    def check_fresh(self, task: PrepareTask) -> None:
        if (
            self.router is not None
            and self.router.ownership.epoch != task.expect_ownership_epoch
        ):
            raise StalePrepareError(
                f"block {task.block_id}: worker router at ownership epoch "
                f"{self.router.ownership.epoch}, expected "
                f"{task.expect_ownership_epoch} — a migration record never "
                f"reached this worker"
            )
        for shard, store in enumerate(self.stores):
            height = store.last_committed_block
            if height != task.expect_height:
                raise StalePrepareError(
                    f"block {task.block_id}: shard {shard} worker store at "
                    f"height {height}, expected {task.expect_height}"
                )
            if task.expect_epochs and self.epochs[shard] != task.expect_epochs[shard]:
                raise StalePrepareError(
                    f"block {task.block_id}: shard {shard} worker store at "
                    f"epoch {self.epochs[shard]}, expected "
                    f"{task.expect_epochs[shard]} — rejoin invalidation "
                    f"never reached this worker"
                )


_WORKER: _WorkerState | None = None


def _worker_init(config, workload, num_shards: int, owned: tuple) -> None:
    global _WORKER
    _WORKER = _WorkerState(config, workload, num_shards, owned)


def _worker_run(task: PrepareTask) -> dict:
    state = _WORKER
    for reset in task.resets:
        state.apply_reset(reset)
    state.advance(task.deltas, task.migrations)
    state.check_fresh(task)
    if state.router is not None:
        # scope/routing closures resolve ownership as of the prepared block
        state.router.advance_to(task.block_id)
    results = {}
    for shard in sorted(task.sub_blocks):
        executor = state.executors[shard]
        executor.import_prepare_state(task.prepare_states.get(shard, {}))
        block = task.sub_blocks[shard]
        prepared = executor.prepare_block(block.block_id, block.build_txns())
        results[shard] = executor.detach_prepared(prepared)
    return results


# ----------------------------------------------------------------- main side
class ProcessPrepareBackend:
    """Fans per-shard prepares out to worker processes; commits stay local."""

    def __init__(self, config, workload, num_shards: int) -> None:
        self.num_shards = num_shards
        workers = config.backend_workers or num_shards
        workers = max(1, min(workers, num_shards))
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        #: shard -> pool slot (round-robin keeps per-shard state sticky)
        self._slot_of_shard = {s: s % workers for s in range(num_shards)}
        owned = [
            tuple(s for s in range(num_shards) if s % workers == slot)
            for slot in range(workers)
        ]
        self._pools = [
            ProcessPoolExecutor(
                max_workers=1,
                mp_context=ctx,
                initializer=_worker_init,
                initargs=(config, workload, num_shards, owned[slot]),
            )
            for slot in range(workers)
        ]
        #: committed blocks not yet shipped to every worker
        self._delta_log: list = []
        self._cursor = [0] * workers
        self._pending_resets: list[list[ShardReset]] = [[] for _ in range(workers)]
        self._epochs = [0] * num_shards
        #: certified migration records not yet shipped, per slot
        self._pending_migrations: list[list] = [[] for _ in range(workers)]
        #: newest certified ownership epoch (workers must match)
        self._ownership_epoch = 0
        self._height = -1
        #: shards whose recorded suspended-window deltas have holes
        #: (``None`` writes or a skipped block) — they need a full reset
        #: at the next rejoin, everyone else advances incrementally
        self._gapped: set = set()
        #: lifetime count of :class:`ShardReset` payloads shipped —
        #: the incremental-rejoin differential tests assert on this
        self.resets_shipped = 0
        #: span/metric sink (:class:`repro.obs.trace.Tracer`); backend
        #: events are ``anno`` spans — they have no serial counterpart, so
        #: they stay out of the deterministic stream
        self.tracer = None
        self._closed = False

    # ---------------------------------------------------------------- submit
    def submit(self, sub_blocks: dict, prepare_states: dict) -> list:
        """Dispatch one global block's prepares; returns per-pool futures.

        ``sub_blocks`` must cover every shard (block-locked advancement);
        ``prepare_states`` carries each shard's cross-block decision state
        as of the previous block's certificate.
        """
        block_id = next(iter(sub_blocks.values())).block_id
        futures = []
        delta_count = 0
        reset_count = 0
        reset_slots = 0
        for slot, pool in enumerate(self._pools):
            deltas = self._delta_log[self._cursor[slot] :]
            self._cursor[slot] = len(self._delta_log)
            owned = [s for s in sub_blocks if self._slot_of_shard[s] == slot]
            task = PrepareTask(
                block_id=block_id,
                sub_blocks={s: sub_blocks[s] for s in owned},
                prepare_states={s: prepare_states.get(s, {}) for s in owned},
                deltas=deltas,
                resets=self._pending_resets[slot],
                migrations=self._pending_migrations[slot],
                expect_height=self._height,
                expect_epochs=tuple(self._epochs),
                expect_ownership_epoch=self._ownership_epoch,
            )
            delta_count += len(deltas)
            if self._pending_resets[slot]:
                reset_count += len(self._pending_resets[slot])
                reset_slots += 1
            self._pending_resets[slot] = []
            self._pending_migrations[slot] = []
            futures.append(pool.submit(_worker_run, task))
        if self.tracer is not None:
            metrics = self.tracer.metrics
            metrics.counter("backend.delta_blocks_shipped").inc(delta_count)
            metrics.counter("backend.resets_shipped").inc(reset_count)
            metrics.counter("backend.cache_hits").inc(
                len(self._pools) - reset_slots
            )
            metrics.counter("backend.cache_misses").inc(reset_slots)
            self.tracer.anno(
                "backend_submit",
                block=block_id,
                timing={"deltas": delta_count, "resets": reset_count},
            )
        floor = min(self._cursor)
        if floor:  # every worker has the prefix — drop it
            del self._delta_log[:floor]
            self._cursor = [c - floor for c in self._cursor]
        return futures

    def collect(self, futures: list, executors: dict) -> dict:
        """Gather the detached prepares and rebind them to the main stores."""
        prepared: dict = {}
        for future in futures:
            prepared.update(future.result())
        return {
            shard: executors[shard].attach_prepared(prep)
            for shard, prep in prepared.items()
        }

    def prepare(self, sub_blocks: dict, nodes: list) -> dict:
        """The sequential driver: submit, ingest main-side, collect.

        Main-side ingest (signature verify + ledger + block log) overlaps
        the worker prepares — the ledgers stay authoritative here while
        the workers' transaction copies carry the decisions.
        """
        prepare_states = {
            shard: nodes[shard].executor.export_prepare_state()
            for shard in sub_blocks
        }
        futures = self.submit(sub_blocks, prepare_states)
        verify_costs = {}
        for shard, block in sub_blocks.items():
            _txns, verify_costs[shard] = nodes[shard].ingest_block(block)
        prepared = self.collect(
            futures, {shard: nodes[shard].executor for shard in sub_blocks}
        )
        for shard, prep in prepared.items():
            prep.extra_pre_exec_us += verify_costs[shard]
        return prepared

    # --------------------------------------------------------------- advance
    def advance(self, block_id: int, per_shard_writes: list) -> None:
        """Record a committed block's per-shard ordered writes for shipping."""
        if block_id != self._height + 1:
            raise ValueError(
                f"advance out of order: block {block_id} after height {self._height}"
            )
        self._delta_log.append((block_id, per_shard_writes))
        self._height = block_id

    def advance_partial(self, block_id: int, per_shard_writes: list) -> None:
        """Record a block committed while the backend was suspended.

        ``per_shard_writes`` holds ``None`` for shards that never
        committed the block (crash windows): those shards are marked
        *gapped* and will be re-shipped wholesale at the next rejoin,
        while every other shard's worker cache catches up from these
        deltas alone — an incremental resync instead of a full one.
        """
        if block_id <= self._height:
            return
        if block_id != self._height + 1:
            # a block was never recorded at all; incremental shipping is
            # no longer sound for anyone — next rejoin does a full resync
            self._gapped.update(range(self.num_shards))
            return
        self._delta_log.append((block_id, list(per_shard_writes)))
        for shard, writes in enumerate(per_shard_writes):
            if writes is None:
                self._gapped.add(shard)
        self._height = block_id

    def apply_migration(self, record) -> None:
        """Queue a certified ownership change for every worker.

        Called at the moment the migration commits main-side (ownership-
        epoch bump): workers that prepare before the record reaches them
        fail ``check_fresh`` with :class:`StalePrepareError` instead of
        routing against stale ownership. The record rides the next task
        and is interleaved with the delta log by block height worker-side.
        """
        self._ownership_epoch = record.epoch
        for slot in range(len(self._pools)):
            self._pending_migrations[slot].append(record)
        if self.tracer is not None:
            self.tracer.metrics.counter("backend.migrations_shipped").inc()
            self.tracer.anno(
                "backend_migrate",
                block=record.block_id,
                timing={"epoch": record.epoch, "keys": len(record.moves)},
            )

    # ---------------------------------------------------------- invalidation
    def invalidate(self, shard: int, store, lag: int = 2) -> None:
        """Invalidate every worker's cached store for ``shard``.

        Called on rejoin/recovery: the recovered store replaces the
        worker-side replica wholesale. The reset ships state materialized
        at ``height - lag`` (the deepest snapshot any prepare can request)
        plus the newer blocks' writes under their real ids, so historical
        version checks behave exactly as on the main store.
        """
        height = store.last_committed_block
        # clamp at -1: materialize_at(-1) is the genesis load, visible
        # from every height
        base_block = max(-1, height - lag)
        epoch = self._epochs[shard] + 1
        self._epochs[shard] = epoch
        reset = ShardReset(
            shard=shard,
            epoch=epoch,
            base_block=base_block,
            base_state=store.materialize_at(base_block),
            blocks=[
                (b, store.writes_in_block(b))
                for b in range(max(0, base_block + 1), height + 1)
            ],
            # the main store has absorbed every certified migration, so a
            # reset bakes them in — the worker must not re-apply their
            # store deltas on top
            ownership_epoch=self._ownership_epoch,
        )
        for slot in range(len(self._pools)):
            self._pending_resets[slot].append(reset)
        self.resets_shipped += 1
        if self.tracer is not None:
            self.tracer.metrics.counter("backend.invalidations").inc()
            self.tracer.anno(
                "backend_invalidate",
                shard=shard,
                timing={"epoch": epoch, "blocks": len(reset.blocks)},
            )

    def resync(self, stores: list, lag: int = 2) -> None:
        """Full invalidation: re-seed every worker store from the main ones.

        The sledgehammer — correct whether or not deltas were recorded
        during the fallback window. :meth:`rejoin_resync` is the
        incremental path when :meth:`advance_partial` kept the log whole.
        """
        for shard, store in enumerate(stores):
            self.invalidate(shard, store, lag=lag)
        self._delta_log.clear()
        self._cursor = [0] * len(self._pools)
        self._gapped.clear()
        self._height = stores[0].last_committed_block
        if self.tracer is not None:
            self.tracer.metrics.counter("backend.resyncs").inc()

    def rejoin_resync(self, shard: int, stores: list, lag: int = 2) -> None:
        """Incremental invalidation after a fault window.

        Only shards whose suspended-window deltas have holes — plus the
        recovered shard itself, whose store was rebuilt — get a
        :class:`ShardReset`; every other worker cache advances by the
        deltas :meth:`advance_partial` recorded while the backend was
        bypassed. Falls back to :meth:`resync` when nothing would be
        saved (every shard stale).
        """
        stale = self._gapped | {shard}
        if len(stale) >= self.num_shards:
            self.resync(stores, lag=lag)
            return
        for s in sorted(stale):
            self.invalidate(s, stores[s], lag=lag)
        self._gapped.clear()
        self._height = stores[0].last_committed_block
        if self.tracer is not None:
            self.tracer.metrics.counter("backend.resyncs").inc()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for pool in self._pools:
            pool.shutdown(wait=False, cancel_futures=True)

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass
