"""Inter-block pipeline drivers: overlap block N's commit with N+1's prepare.

The paper's pipelining story (Section 3.4) on real cores: with a snapshot
lag of 2 (Harmony inter-block), block *i*'s simulation/validation reads
snapshot *i−2* and validates against block *i−1*'s *decision facts* — both
known before block *i−1*'s physical commit runs. So the drivers here
dispatch block *i*'s prepare to the worker pool, run block *i−1*'s commit
on the main process while the workers chew, then collect, certify and roll
forward.

Decision-stream equivalence with the sequential driver is exact:

- block *i* is formed from the same retry queue — retries are final at
  certificate time (``decided_prepare_state`` applies the vetoes to the
  very transaction objects the deferred commit later re-marks);
- the worker validates block *i* against ``decided_prepare_state`` of
  block *i−1*, which equals the ``_prev_records`` the sequential path
  would have after committing it;
- certificates are appended in block order, before the *next* block's
  certificate and after the previous one — the chain is byte-identical.

Both drivers delegate per-block accounting to the chains' own absorb
helpers, so sequential and pipelined runs cannot drift in bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.shard.twopc import derive_votes
from repro.sim.metrics import RunMetrics
from repro.sim.rng import SeededRng


@dataclass
class _PendingBlock:
    """A certified block whose physical commit is deferred one iteration."""

    index: int
    block: object
    participants: list
    cross_tids: set
    sub_blocks: dict
    certificate: object
    prepared: dict
    merged_txns: list


def _commit_pending(chain, backend, state, pending: _PendingBlock) -> None:
    from repro.shard.system import GlobalBlockOutcome

    executions = chain.group.finish(pending.prepared, pending.certificate.abort_tids)
    if chain.tracer is not None:
        chain._trace_commits(chain.tracer, pending.block.block_id, executions)
    backend.advance(
        pending.block.block_id,
        [
            node.engine.writes_of(pending.block.block_id)
            for node in chain.group.nodes
        ],
    )
    outcome = GlobalBlockOutcome(
        block=pending.block,
        participants=pending.participants,
        cross_tids=pending.cross_tids,
        sub_blocks=pending.sub_blocks,
        certificate=pending.certificate,
        executions=executions,
    )
    chain._absorb_block(state, pending.index, outcome, merged_txns=pending.merged_txns)


def run_sharded_pipelined(chain) -> RunMetrics:
    """The pipelined driver for :class:`~repro.shard.system.ShardedBlockchain`.

    Caller guarantees (``_pipelined_ready``): process backend, Harmony
    inter-block (lag >= 2), no fault hooks armed.
    """
    config = chain.config
    workload = chain.workload
    backend = chain._ensure_backend()
    if backend is None:  # suspended under our feet (fault armed mid-setup)
        raise RuntimeError("pipelined run requested but the backend is suspended")
    rng, state = chain._begin_run()
    nodes = chain.group.nodes
    executors = {shard: node.executor for shard, node in enumerate(nodes)}

    retry_queue: list = []
    decided_states = {
        shard: executor.export_prepare_state()
        for shard, executor in executors.items()
    }
    pending: _PendingBlock | None = None
    for i in range(config.num_blocks):
        retries = retry_queue[: config.block_size]
        retry_queue = retry_queue[config.block_size :]
        fresh = workload.generate_block(config.block_size - len(retries), rng)
        block = chain.ordering.form_block(retries + fresh)

        def _drain_pending() -> None:
            # migration barrier: a due re-key ships key versions as of
            # block i-1, so the deferred commit must land first — the
            # one-block bubble is the price of an ownership change
            nonlocal pending
            if pending is not None:
                _commit_pending(chain, backend, state, pending)
                pending = None

        migration, participants, cross_tids, sub_blocks = chain.route_global_block(
            block, migration_barrier=_drain_pending
        )
        tracer = chain.tracer
        if tracer is not None:
            tracer.event(
                "enqueue",
                block=block.block_id,
                attrs={"retries": len(retries), "backlog": len(retry_queue)},
            )
            tracer.metrics.histogram("retry_queue_depth").observe(len(retry_queue))
            chain._trace_order(
                tracer, block, cross_tids, sub_blocks, frozenset(), frozenset()
            )
            # occupancy of the one-deep deferred-commit queue at dispatch
            tracer.metrics.histogram("pipeline.queue_depth").observe(
                1 if pending is not None else 0
            )
            tracer.anno(
                "pipeline_dispatch",
                block=block.block_id,
                timing={"overlap": pending is not None},
            )

        # dispatch block i's prepares, then use the wait to do main-side
        # work: ingest block i and commit block i-1.
        futures = backend.submit(sub_blocks, decided_states)
        verify_costs = {}
        for shard, node in enumerate(nodes):
            _txns, verify_costs[shard] = node.ingest_block(sub_blocks[shard])
        if pending is not None:
            _commit_pending(chain, backend, state, pending)
            pending = None

        prepared = backend.collect(futures, executors)
        for shard, prep in prepared.items():
            prep.extra_pre_exec_us += verify_costs[shard]
        if tracer is not None:
            chain._trace_prepared(tracer, block.block_id, prepared)

        votes = derive_votes(prepared, cross_tids)
        expected = {
            block.first_tid + j: shards
            for j, shards in enumerate(participants)
            if len(shards) > 1
        }
        certificate = chain.cert_log.append(
            votes, block.block_id, expected=expected, migration=migration
        )
        # the decision is final here: mark the vetoes, derive the records
        # block i+1 validates against, and queue the retries — all before
        # (and idempotent with) the deferred physical commit.
        decided_states = {
            shard: executors[shard].decided_prepare_state(
                prepared[shard], certificate.abort_tids
            )
            for shard in prepared
        }
        merged_txns = chain.merged_view(
            block, participants, {s: p.txns for s, p in prepared.items()}
        )
        if config.retry_aborted:
            retry_queue.extend(t.spec for t in merged_txns if t.aborted)
        pending = _PendingBlock(
            index=i,
            block=block,
            participants=participants,
            cross_tids=cross_tids,
            sub_blocks=sub_blocks,
            certificate=certificate,
            prepared=prepared,
            merged_txns=merged_txns,
        )
    if pending is not None:
        _commit_pending(chain, backend, state, pending)
    metrics = chain._finish_run(state)
    metrics.extra["pipelined"] = True
    chain.close_backend()
    return metrics


def run_oe_pipelined(chain) -> RunMetrics:
    """The pipelined driver for the unsharded
    :class:`~repro.chain.system.OEBlockchain` (one worker, real overlap of
    prepare with the main process's commit + ingest)."""
    from repro.parallel.backend import make_prepare_backend

    config = chain.config
    backend = make_prepare_backend(config, chain.workload, 1)
    if backend is None:
        raise RuntimeError(f"no process backend for system {config.system!r}")
    if chain.tracer is not None:
        backend.tracer = chain.tracer
    node = chain.node
    rng = SeededRng(config.seed, f"oe/{config.system}/{chain.workload.name}")
    metrics = RunMetrics(system=config.system, workload=chain.workload.name)
    interval = chain.consensus.min_block_interval_us(
        chain._block_bytes(), config.num_replicas
    )

    timings: list = []
    executions: list = []
    retry_queue: list = []
    decided_state = node.executor.export_prepare_state()
    pending = None  # (block index, PreparedBlock)
    try:
        for i in range(config.num_blocks):
            retries = retry_queue[: config.block_size]
            retry_queue = retry_queue[config.block_size :]
            fresh = chain.workload.generate_block(
                config.block_size - len(retries), rng
            )
            block = chain.ordering.form_block(retries + fresh)
            if chain.tracer is not None:
                chain.tracer.event(
                    "enqueue",
                    block=block.block_id,
                    attrs={"retries": len(retries), "backlog": len(retry_queue)},
                )

            futures = backend.submit({0: block}, {0: decided_state})
            _txns, verify_cost = node.ingest_block(block)
            if pending is not None:
                prev_i, prev_prepared = pending
                execution = node.finish_block(prev_prepared)
                backend.advance(
                    execution.block_id, [node.engine.writes_of(execution.block_id)]
                )
                chain._absorb_execution(
                    metrics, timings, executions, prev_i, interval, execution
                )
                pending = None

            prepared = backend.collect(futures, {0: node.executor})[0]
            prepared.extra_pre_exec_us += verify_cost
            decided_state = node.executor.decided_prepare_state(
                prepared, frozenset()
            )
            if config.retry_aborted:
                retry_queue.extend(t.spec for t in prepared.txns if t.aborted)
            pending = (i, prepared)
        if pending is not None:
            prev_i, prev_prepared = pending
            execution = node.finish_block(prev_prepared)
            chain._absorb_execution(
                metrics, timings, executions, prev_i, interval, execution
            )
    finally:
        backend.close()
    metrics = chain._finalize_metrics(metrics, timings, executions, interval)
    metrics.extra["backend"] = "process"
    metrics.extra["pipelined"] = True
    return metrics
