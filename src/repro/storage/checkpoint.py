"""Block-granularity checkpointing and the persisted block log (Section 4).

HarmonyBC persists the small input blocks before execution (logical
logging) and flushes dirty pages every ``p`` blocks. The previous
checkpoint is never overwritten, so a crash *during* checkpointing still
recovers from the one before — we keep the last two recovery points, like
the paper's use of PostgreSQL's multi-versioned storage.

Incremental (delta-chain) checkpoints
-------------------------------------
Deep-copying the entire materialized state every interval is an
O(keyspace) stall that dwarfs the write rate it amortizes. Section 4 only
requires flushing *dirty* state, so the durable record is a **chain**:

- a periodic **base** checkpoint (the full state, compacted every
  ``base_interval`` intervals by folding the chain — never by re-scanning
  the live store), and
- one **delta** per interval: the ordered writes of every block since the
  previous chain entry (already in hand on the commit path), O(interval
  writes) to persist instead of O(keyspace).

Recovery folds the deltas onto the newest base to reconstruct ``state`` /
``prev_state`` / ``block_writes`` bit-identically to a full snapshot, then
replays the block log as before. The keep-last-two torn-checkpoint
discipline holds at the *chain* level: pruning always retains the chain
prefix one recovery point behind the tip, so a crash mid-delta or
mid-base-compaction falls back to the prior usable prefix.
``incremental=False`` retains the seed's full-deepcopy path as the
differential-testing reference.
"""

from __future__ import annotations

import copy
from bisect import bisect_right
from dataclasses import dataclass

from repro.storage.mvstore import TOMBSTONE


@dataclass
class Checkpoint:
    """A full (base) checkpoint: the materialized durable state."""

    block_id: int
    state: dict[object, object]
    #: state as of the previous block (needed when the first replayed block
    #: simulates against a lag-2 snapshot under inter-block parallelism)
    prev_state: dict[object, object] | None = None
    #: protocol metadata (e.g. Harmony's committed-writer records, Rule 3)
    meta: dict | None = None
    #: the checkpoint block's ordered writes (TOMBSTONEs included) — lets
    #: recovery replay the block's version batch exactly instead of
    #: diffing ``state`` against ``prev_state`` (a value diff misses keys
    #: rewritten with an unchanged value, losing their version)
    block_writes: list[tuple[object, object]] | None = None


@dataclass
class DeltaCheckpoint:
    """One interval's durable delta: the ordered writes of every block
    since the previous chain entry, as ``(block_id, writes)`` pairs in
    block order. O(interval writes) to persist — the incremental
    alternative to deep-copying the whole materialized state."""

    block_id: int
    block_writes: list[tuple[int, list[tuple[object, object]]]]
    meta: dict | None = None


def fold_writes(state: dict[object, object], writes) -> None:
    """Apply one block's ordered writes to a materialized-state dict.

    Mirrors :meth:`MVStore.materialize` semantics exactly: a TOMBSTONE
    deletes the key, everything else (including a stored ``None``) is a
    live entry.
    """
    for key, value in writes:
        if value is TOMBSTONE:
            state.pop(key, None)
        else:
            state[key] = value


def _sorted_state(state: dict[object, object]) -> dict[object, object]:
    """Re-key a folded state into sorted-key order.

    :meth:`MVStore.materialize` emits keys in ``_sorted_keys`` order, and
    recovery's ``store.load`` derives version ``seq`` tags from dict order
    — so folded states must match the full snapshot's order bit-for-bit.
    """
    return dict(sorted(state.items(), key=lambda kv: kv[0]))


class BlockLog:
    """Durable record of ordered input blocks, for deterministic replay."""

    def __init__(self) -> None:
        self._blocks: list[object] = []
        self._ids: list[int] = []
        #: fault-injection hook (``hook(block) -> bool``): a truthy return
        #: tears the append — the log write never became durable, as if the
        #: crash hit mid-write. ``None`` (the default) costs one attribute
        #: check; armed only by :mod:`repro.faults.inject`.
        self.fault_hook = None

    def append(self, block: object) -> None:
        block_id = block.block_id
        if self._ids and block_id <= self._ids[-1]:
            # Appends arrive in id order (the ledger's chain check rejects
            # anything else first); the bisect fast path relies on it.
            raise ValueError(
                f"block {block_id} appended after block {self._ids[-1]}"
            )
        if self.fault_hook is not None and self.fault_hook(block):
            return  # torn log tail: the block was never durably persisted
        self._blocks.append(block)
        self._ids.append(block_id)

    def blocks_after(self, block_id: int, indexed: bool = True) -> list[object]:
        """Blocks with id strictly greater than ``block_id``, in order.

        Blocks append in id order, so the cut point is one bisect instead
        of a full scan per recovery. ``indexed=False`` retains the seed's
        linear scan as the differential-testing reference.
        """
        if not indexed:
            return [b for b in self._blocks if b.block_id > block_id]
        return self._blocks[bisect_right(self._ids, block_id):]

    def __len__(self) -> int:
        return len(self._blocks)


class CheckpointManager:
    """Keeps the last two durable recovery points.

    With ``incremental=True`` (the production default) recovery points
    live on a base+delta chain; with ``incremental=False`` every
    checkpoint is a full deep copy, exactly the seed's behaviour.
    """

    def __init__(
        self,
        interval_blocks: int = 10,
        incremental: bool = True,
        base_interval: int = 8,
    ) -> None:
        if interval_blocks < 1:
            raise ValueError("checkpoint interval must be >= 1")
        if base_interval < 1:
            raise ValueError("base-compaction cadence must be >= 1")
        self.interval_blocks = interval_blocks
        self.incremental = incremental
        #: deltas between base compactions (the chain's maximum length)
        self.base_interval = base_interval
        #: the chain: Checkpoint (base) and DeltaCheckpoint entries
        self._entries: list[Checkpoint | DeltaCheckpoint] = []
        self._deltas_since_base = 0
        #: block id of the newest chain entry (-1 = none yet) — the next
        #: delta must cover exactly the blocks after it
        self.last_checkpoint_block = -1
        #: the preloaded genesis state — the implicit base the chain folds
        #: from until the first compaction (values are never mutated)
        self.genesis: dict[object, object] = {}
        #: Simulates a crash mid-checkpoint: when True, the newest chain
        #: entry (delta or base) is considered torn and unusable.
        self.torn_latest = False
        #: fault-injection hook (``hook(block_id) -> "skip" | "tear" | None``):
        #: ``"skip"`` suppresses the checkpoint entirely (the crash landed
        #: between the commit and the checkpoint write — the engine's delta
        #: buffer fallback re-derives the interval on the next attempt);
        #: ``"tear"`` takes it but marks the chain tip torn (crash *during*
        #: the write — for a base compaction, the tip is the fresh base).
        #: ``None`` default costs one attribute check per checkpoint.
        self.fault_hook = None
        #: span/metric sink (:class:`repro.obs.trace.Tracer`); armed with
        #: the owning shard id by :func:`repro.obs.trace.attach_tracer`.
        self.tracer = None
        self.trace_shard: int | None = None

    def maybe_checkpoint(
        self,
        block_id: int,
        state: dict[object, object],
        prev_state: dict[object, object] | None = None,
        meta: dict | None = None,
        block_writes: list[tuple[object, object]] | None = None,
    ) -> bool:
        """Take a full checkpoint if ``block_id`` hits the interval boundary."""
        if (block_id + 1) % self.interval_blocks != 0:
            return False
        self.force_checkpoint(block_id, state, prev_state, meta, block_writes)
        return True

    def force_checkpoint(
        self,
        block_id: int,
        state: dict[object, object],
        prev_state: dict[object, object] | None = None,
        meta: dict | None = None,
        block_writes: list[tuple[object, object]] | None = None,
    ) -> None:
        """Append a full (base) checkpoint — the O(keyspace) deepcopy path."""
        fault = self.fault_hook(block_id) if self.fault_hook is not None else None
        if fault is not None and self.tracer is not None:
            self.tracer.fault(
                "checkpoint_fault",
                block=block_id,
                shard=self.trace_shard,
                attrs={"mode": "full", "directive": fault},
            )
        if fault == "skip":
            return
        self._entries.append(
            Checkpoint(
                block_id,
                copy.deepcopy(state),
                copy.deepcopy(prev_state) if prev_state is not None else None,
                copy.deepcopy(meta) if meta is not None else None,
                copy.deepcopy(block_writes) if block_writes is not None else None,
            )
        )
        self._deltas_since_base = 0
        self.last_checkpoint_block = block_id
        if fault == "tear":
            self.torn_latest = True
        if self.tracer is not None:
            self.tracer.event(
                "checkpoint",
                block=block_id,
                shard=self.trace_shard,
                attrs={"mode": "full", "keyspace": len(state)},
            )
            self.tracer.metrics.counter("checkpoint.full").inc()
        self._prune()

    def delta_checkpoint(
        self,
        block_id: int,
        interval_writes: list[tuple[int, list[tuple[object, object]]]],
        meta: dict | None = None,
    ) -> None:
        """Append one interval's delta; compact a new base when due.

        ``interval_writes`` is the ordered ``(block_id, writes)`` record of
        every block applied since the previous chain entry, ending with the
        checkpoint block itself. Only the delta is copied — O(interval
        writes), never O(keyspace). Every ``base_interval`` deltas the
        chain is folded into a fresh base so reconstruction and chain
        length stay bounded; the fold reuses the already-isolated delta
        copies, so compaction never touches the live store either.
        """
        fault = self.fault_hook(block_id) if self.fault_hook is not None else None
        if fault is not None and self.tracer is not None:
            self.tracer.fault(
                "checkpoint_fault",
                block=block_id,
                shard=self.trace_shard,
                attrs={"mode": "delta", "directive": fault},
            )
        if fault == "skip":
            return
        self._entries.append(
            DeltaCheckpoint(
                block_id,
                copy.deepcopy(interval_writes),
                copy.deepcopy(meta) if meta is not None else None,
            )
        )
        self._deltas_since_base += 1
        compacted = self._deltas_since_base >= self.base_interval
        if compacted:
            # Base compaction: fold the chain (not the store) into a full
            # checkpoint at the same block. The delta stays in the chain —
            # if the compaction itself tears, the prefix through the delta
            # recovers the identical state.
            self._entries.append(self._reconstruct(self._entries))
            self._deltas_since_base = 0
        if self.tracer is not None:
            delta_writes = sum(len(w) for _, w in interval_writes)
            self.tracer.event(
                "checkpoint",
                block=block_id,
                shard=self.trace_shard,
                attrs={
                    "mode": "delta",
                    "blocks": len(interval_writes),
                    "writes": delta_writes,
                    "compacted": compacted,
                },
            )
            self.tracer.metrics.histogram("checkpoint.delta_writes").observe(
                delta_writes
            )
            if compacted:
                self.tracer.metrics.counter("checkpoint.base_compactions").inc()
        self.last_checkpoint_block = block_id
        if fault == "tear":
            # crash mid-write: the chain tip (the fresh base when the
            # compaction just fired, else this delta) is torn — recovery
            # falls back to the prefix one entry behind it.
            self.torn_latest = True
        self._prune()

    def seed_base(self, checkpoint: Checkpoint) -> None:
        """Restart the chain from a reconstructed checkpoint (recovery).

        The recovered engine's first deltas only cover blocks replayed
        after the recovery point, so they must fold onto this base, not
        onto genesis.
        """
        self._entries = [checkpoint]
        self._deltas_since_base = 0
        self.last_checkpoint_block = checkpoint.block_id
        self.torn_latest = False

    # ------------------------------------------------------------ recovery
    def latest(self) -> Checkpoint | None:
        """The newest usable recovery point (skipping a torn chain tip),
        reconstructed into a full :class:`Checkpoint`."""
        entries = self._entries[:-1] if self.torn_latest else self._entries
        if not entries:
            return None
        return self._reconstruct(entries)

    def _reconstruct(self, entries: list) -> Checkpoint:
        """Fold the chain prefix ``entries`` into a full checkpoint.

        State and prev_state come out in sorted-key order — bit-identical
        (keys, values, and therefore the version tags recovery derives
        from dict order) to ``materialize()`` / ``materialize_at()`` of an
        uncrashed store.
        """
        tip = entries[-1]
        if isinstance(tip, Checkpoint):
            return tip
        base_idx = None
        for i in range(len(entries) - 1, -1, -1):
            if isinstance(entries[i], Checkpoint):
                base_idx = i
                break
        if base_idx is None:
            state = dict(self.genesis)
            deltas = entries
        else:
            state = dict(entries[base_idx].state)
            deltas = entries[base_idx + 1:]
        prev_state: dict[object, object] | None = None
        tip_writes: list[tuple[object, object]] = []
        for delta in deltas:
            for block_id, writes in delta.block_writes:
                if block_id == tip.block_id:
                    prev_state = _sorted_state(state)
                    tip_writes = writes
                fold_writes(state, writes)
        state = _sorted_state(state)
        if prev_state is None:
            # Degenerate: the tip block never recorded writes (manual use);
            # the checkpoint block then installed nothing.
            prev_state = dict(state)
        return Checkpoint(
            tip.block_id,
            state,
            prev_state=prev_state,
            meta=tip.meta,
            block_writes=list(tip_writes),
        )

    def _prune(self) -> None:
        """Keep the last two recovery points, at chain granularity.

        Everything before the newest base that is *not* the chain tip can
        go: the chains through the tip and through the entry before it both
        fold from that base. When the tip itself is a freshly compacted
        base, the previous base (and the deltas between them) must survive
        until a later entry proves the new base durable.
        """
        cut = None
        for i in range(len(self._entries) - 2, -1, -1):
            if isinstance(self._entries[i], Checkpoint):
                cut = i
                break
        if cut is not None and cut > 0:
            del self._entries[:cut]

    @property
    def count(self) -> int:
        return len(self._entries)
