"""Block-granularity checkpointing and the persisted block log (Section 4).

HarmonyBC persists the small input blocks before execution (logical
logging) and flushes dirty pages every ``p`` blocks. The previous
checkpoint is never overwritten, so a crash *during* checkpointing still
recovers from the one before — we keep the last two, like the paper's use
of PostgreSQL's multi-versioned storage.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass


@dataclass
class Checkpoint:
    block_id: int
    state: dict[object, object]
    #: state as of the previous block (needed when the first replayed block
    #: simulates against a lag-2 snapshot under inter-block parallelism)
    prev_state: dict[object, object] | None = None
    #: protocol metadata (e.g. Harmony's committed-writer records, Rule 3)
    meta: dict | None = None
    #: the checkpoint block's ordered writes (TOMBSTONEs included) — lets
    #: recovery replay the block's version batch exactly instead of
    #: diffing ``state`` against ``prev_state`` (a value diff misses keys
    #: rewritten with an unchanged value, losing their version)
    block_writes: list[tuple[object, object]] | None = None


class BlockLog:
    """Durable record of ordered input blocks, for deterministic replay."""

    def __init__(self) -> None:
        self._blocks: list[object] = []

    def append(self, block: object) -> None:
        self._blocks.append(block)

    def blocks_after(self, block_id: int) -> list[object]:
        """Blocks with id strictly greater than ``block_id``, in order."""
        return [b for b in self._blocks if b.block_id > block_id]

    def __len__(self) -> int:
        return len(self._blocks)


class CheckpointManager:
    """Keeps the last two durable state checkpoints."""

    def __init__(self, interval_blocks: int = 10) -> None:
        if interval_blocks < 1:
            raise ValueError("checkpoint interval must be >= 1")
        self.interval_blocks = interval_blocks
        self._checkpoints: list[Checkpoint] = []
        #: Simulates a crash mid-checkpoint: when True, the newest
        #: checkpoint is considered torn and unusable.
        self.torn_latest = False

    def maybe_checkpoint(
        self,
        block_id: int,
        state: dict[object, object],
        prev_state: dict[object, object] | None = None,
        meta: dict | None = None,
        block_writes: list[tuple[object, object]] | None = None,
    ) -> bool:
        """Take a checkpoint if ``block_id`` hits the interval boundary."""
        if (block_id + 1) % self.interval_blocks != 0:
            return False
        self.force_checkpoint(block_id, state, prev_state, meta, block_writes)
        return True

    def force_checkpoint(
        self,
        block_id: int,
        state: dict[object, object],
        prev_state: dict[object, object] | None = None,
        meta: dict | None = None,
        block_writes: list[tuple[object, object]] | None = None,
    ) -> None:
        self._checkpoints.append(
            Checkpoint(
                block_id,
                copy.deepcopy(state),
                copy.deepcopy(prev_state) if prev_state is not None else None,
                copy.deepcopy(meta) if meta is not None else None,
                copy.deepcopy(block_writes) if block_writes is not None else None,
            )
        )
        if len(self._checkpoints) > 2:
            del self._checkpoints[:-2]

    def latest(self) -> Checkpoint | None:
        """The newest usable checkpoint (skipping a torn one)."""
        usable = self._checkpoints[:-1] if self.torn_latest else self._checkpoints
        return usable[-1] if usable else None

    @property
    def count(self) -> int:
        return len(self._checkpoints)
