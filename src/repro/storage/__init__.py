"""Disk-oriented storage substrate.

This package is the "database layer" the paper targets: a paged heap file
behind an LRU buffer pool on a simulated disk, a multi-versioned key-value
store providing the *block snapshots* that optimistic DCC protocols execute
against (Table 2c), a write-ahead log supporting both physical and logical
logging (Section 2.4), and block-granularity checkpointing used for
recovery (Section 4).

The cost of every access (buffer hit vs. page miss, log append, fsync) is
returned in simulated microseconds so the scheduler can turn protocol
behaviour into throughput.
"""

from repro.storage.bufferpool import BufferPool
from repro.storage.checkpoint import BlockLog, CheckpointManager
from repro.storage.disk import SimulatedDisk
from repro.storage.engine import StorageEngine
from repro.storage.heap import HeapFile
from repro.storage.mvstore import MVStore, SnapshotView, TOMBSTONE
from repro.storage.pages import PAGE_RECORD_CAPACITY, Page
from repro.storage.wal import LogMode, WriteAheadLog

__all__ = [
    "BlockLog",
    "BufferPool",
    "CheckpointManager",
    "HeapFile",
    "LogMode",
    "MVStore",
    "PAGE_RECORD_CAPACITY",
    "Page",
    "SimulatedDisk",
    "SnapshotView",
    "StorageEngine",
    "TOMBSTONE",
    "WriteAheadLog",
]
