"""LRU buffer pool.

The pool decides whether a page access is a DRAM hit or a disk miss, and
charges write-back of dirty victims on eviction. This is where "the cost of
masking I/O latency" (Section 5.8) lives: even on a RAMDisk the pool's
bookkeeping cost remains, which is exactly the PGSQL(RAMDisk)-vs-memory-
engine gap in Figure 21.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.sim.costs import CostModel
from repro.storage.disk import SimulatedDisk


@dataclass
class BufferStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BufferPool:
    """Fixed-capacity LRU cache of page frames."""

    def __init__(self, capacity_pages: int, disk: SimulatedDisk, costs: CostModel) -> None:
        if capacity_pages < 1:
            raise ValueError("buffer pool needs at least one frame")
        self.capacity = capacity_pages
        self._disk = disk
        self._costs = costs
        #: page_id -> dirty flag; insertion order == LRU order.
        self._frames: OrderedDict[int, bool] = OrderedDict()
        self.stats = BufferStats()

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._frames

    def access(self, page_id: int, dirty: bool = False) -> float:
        """Touch a page; returns the simulated cost of the access in us."""
        cost = self._costs.buffer_admin_us + self._costs.dram_access_us
        if page_id in self._frames:
            self.stats.hits += 1
            self._frames[page_id] = self._frames[page_id] or dirty
            self._frames.move_to_end(page_id)
            return cost
        self.stats.misses += 1
        cost += self._disk.read_page(page_id)
        cost += self._evict_if_needed()
        self._frames[page_id] = dirty
        return cost

    def _evict_if_needed(self) -> float:
        cost = 0.0
        while len(self._frames) >= self.capacity:
            victim, was_dirty = self._frames.popitem(last=False)
            self.stats.evictions += 1
            if was_dirty:
                self.stats.dirty_writebacks += 1
                cost += self._disk.write_page(victim)
        return cost

    def flush_all(self) -> float:
        """Write back every dirty frame (checkpoint); returns cost in us."""
        cost = 0.0
        for page_id, dirty in self._frames.items():
            if dirty:
                cost += self._disk.write_page(page_id)
                self._frames[page_id] = False
        return cost

    @property
    def resident_pages(self) -> int:
        return len(self._frames)
