"""Multi-versioned key-value store with block snapshots.

Block snapshots are the deterministic read source of optimistic DCC
(Table 2c): the state after block *b* is identical on every replica, so a
transaction in block *b+1* (or *b+2* under inter-block parallelism) that
reads "the snapshot of block *b*" reads the same values everywhere,
regardless of message delays.

Versions are tagged ``(block_id, seq)`` where ``seq`` is the apply order
within the block — the sub-block component is what SOV-style validation
(Fabric) compares read versions against.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left, insort
from typing import Iterator


class _Tombstone:
    """Sentinel marking a deleted key inside a version chain."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<TOMBSTONE>"


TOMBSTONE = _Tombstone()

Version = tuple[int, int]


def canonical(value: object) -> str:
    """A stable textual form of a stored value, for state hashing."""
    if isinstance(value, dict):
        inner = ",".join(f"{k}={canonical(v)}" for k, v in sorted(value.items()))
        return "{" + inner + "}"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class SnapshotView:
    """A read-only view of the store as of the end of ``block_id``."""

    def __init__(self, store: "MVStore", block_id: int) -> None:
        self._store = store
        self.block_id = block_id

    def get(self, key: object) -> tuple[object | None, Version | None]:
        """Return ``(value, version)`` as of this snapshot.

        Missing and deleted keys both return ``(None, None)`` /
        ``(None, version)`` respectively; callers treat ``None`` as absent.
        """
        chain = self._store._versions.get(key)
        if not chain:
            return None, None
        # Find the last version whose block_id <= snapshot block.
        lo, hi = 0, len(chain)
        while lo < hi:
            mid = (lo + hi) // 2
            if chain[mid][0][0] <= self.block_id:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            return None, None
        version, value = chain[lo - 1]
        if value is TOMBSTONE:
            return None, version
        return value, version

    def scan(self, start: object, end: object) -> Iterator[tuple[object, object]]:
        """Yield ``(key, value)`` for live keys with start <= key < end."""
        keys = self._store._sorted_keys
        i = bisect_left(keys, start)
        while i < len(keys) and keys[i] < end:
            value, _version = self.get(keys[i])
            if value is not None:
                yield keys[i], value
            i += 1


class MVStore:
    """Append-only multi-versioned store; one version batch per block."""

    def __init__(self) -> None:
        #: key -> list of ((block_id, seq), value), in commit order.
        self._versions: dict[object, list[tuple[Version, object]]] = {}
        self._sorted_keys: list[object] = []
        self.last_committed_block = -1

    def __contains__(self, key: object) -> bool:
        value, _ = self.get_latest(key)
        return value is not None

    def __len__(self) -> int:
        return sum(1 for key in self._sorted_keys if key in self)

    def keys(self) -> list[object]:
        return [key for key in self._sorted_keys if key in self]

    def load(self, items: dict[object, object], block_id: int = -1) -> None:
        """Bulk-load initial state as a pseudo-block (no snapshot bump)."""
        for seq, (key, value) in enumerate(items.items()):
            self._append(key, (block_id, seq), value)

    def get_latest(self, key: object) -> tuple[object | None, Version | None]:
        chain = self._versions.get(key)
        if not chain:
            return None, None
        version, value = chain[-1]
        if value is TOMBSTONE:
            return None, version
        return value, version

    def snapshot(self, block_id: int) -> SnapshotView:
        return SnapshotView(self, block_id)

    def latest_snapshot(self) -> SnapshotView:
        return SnapshotView(self, self.last_committed_block)

    def apply_block(self, block_id: int, writes: list[tuple[object, object]]) -> None:
        """Install a block's writes, in apply order, as one version batch.

        ``writes`` is an ordered list so that within-block apply order
        (which SOV validation observes via ``seq``) is explicit.
        """
        if block_id <= self.last_committed_block:
            raise ValueError(
                f"block {block_id} is not after last committed {self.last_committed_block}"
            )
        for seq, (key, value) in enumerate(writes):
            self._append(key, (block_id, seq), value)
        self.last_committed_block = block_id

    def _append(self, key: object, version: Version, value: object) -> None:
        chain = self._versions.get(key)
        if chain is None:
            self._versions[key] = [(version, value)]
            insort(self._sorted_keys, key)
        else:
            chain.append((version, value))

    def gc(self, keep_after_block: int) -> int:
        """Drop versions strictly older than the latest one at or before
        ``keep_after_block``. Returns the number of versions dropped."""
        dropped = 0
        for chain in self._versions.values():
            cut = 0
            for i, (version, _value) in enumerate(chain):
                if version[0] <= keep_after_block:
                    cut = i
                else:
                    break
            if cut > 0:
                del chain[:cut]
                dropped += cut
        return dropped

    def state_hash(self) -> str:
        """Digest of the latest live state — replica-consistency fingerprint."""
        hasher = hashlib.sha256()
        for key in self._sorted_keys:
            value, _version = self.get_latest(key)
            if value is not None:
                hasher.update(f"{key!r}->{canonical(value)};".encode())
        return hasher.hexdigest()

    def materialize(self) -> dict[object, object]:
        """The latest live state as a plain dict (checkpointing)."""
        state: dict[object, object] = {}
        for key in self._sorted_keys:
            value, _version = self.get_latest(key)
            if value is not None:
                state[key] = value
        return state

    def materialize_at(self, block_id: int) -> dict[object, object]:
        """The live state as of the end of ``block_id``.

        Checkpoints under inter-block parallelism must capture the previous
        block's snapshot too, because the first replayed block simulates
        against it (snapshot lag 2).
        """
        view = self.snapshot(block_id)
        state: dict[object, object] = {}
        for key in self._sorted_keys:
            value, _version = view.get(key)
            if value is not None:
                state[key] = value
        return state
