"""Multi-versioned key-value store with block snapshots.

Block snapshots are the deterministic read source of optimistic DCC
(Table 2c): the state after block *b* is identical on every replica, so a
transaction in block *b+1* (or *b+2* under inter-block parallelism) that
reads "the snapshot of block *b*" reads the same values everywhere,
regardless of message delays.

Versions are tagged ``(block_id, seq)`` where ``seq`` is the apply order
within the block — the sub-block component is what SOV-style validation
(Fabric) compares read versions against.

Hot-path notes:

- :meth:`MVStore.load` builds the sorted key directory with one sort
  (O(n log n)) instead of a per-key ``insort`` (O(n²) on large workload
  populates); :meth:`MVStore.apply_block` batches new keys the same way.
- :meth:`SnapshotView.scan` bisects the key directory once per boundary
  and walks the slice with a chain-tail fast path, falling back to the
  per-chain binary search only when the newest version is not yet visible
  at the snapshot.
- :meth:`MVStore.state_hash` is incremental: each live ``(key, value)``
  entry contributes a 256-bit SHA digest combined into a running
  accumulator by addition mod 2²⁵⁶ (Bellare–Micciancio's AdHash — order
  independent without XOR's linear malleability), and only keys written
  since the last call are re-hashed. :meth:`MVStore.state_hash_full`
  recomputes from scratch and is the differential-testing reference.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left, insort


class _Tombstone:
    """Sentinel marking a deleted key inside a version chain."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<TOMBSTONE>"


TOMBSTONE = _Tombstone()

Version = tuple[int, int]


def canonical(value: object) -> str:
    """A stable textual form of a stored value, for state hashing."""
    if isinstance(value, dict):
        inner = ",".join(f"{k}={canonical(v)}" for k, v in sorted(value.items()))
        return "{" + inner + "}"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


#: accumulator modulus for the additive (AdHash-style) state hash
_HASH_MOD = 1 << 256


def _entry_digest(key: object, value: object) -> int:
    """The 256-bit contribution of one live entry to the state hash."""
    payload = f"{key!r}->{canonical(value)};".encode()
    return int.from_bytes(hashlib.sha256(payload).digest(), "big")


class SnapshotView:
    """A read-only view of the store as of the end of ``block_id``."""

    def __init__(self, store: "MVStore", block_id: int) -> None:
        self._store = store
        self.block_id = block_id

    def get(self, key: object) -> tuple[object | None, Version | None]:
        """Return ``(value, version)`` as of this snapshot.

        Missing and deleted keys both return ``(None, None)`` /
        ``(None, version)`` respectively; callers treat ``None`` as absent.
        """
        chain = self._store._versions.get(key)
        if not chain:
            return None, None
        # Find the last version whose block_id <= snapshot block.
        lo, hi = 0, len(chain)
        while lo < hi:
            mid = (lo + hi) // 2
            if chain[mid][0][0] <= self.block_id:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            return None, None
        version, value = chain[lo - 1]
        if value is TOMBSTONE:
            return None, version
        return value, version

    def scan(self, start: object, end: object):
        """Yield ``(key, value)`` for live keys with start <= key < end.

        One bisect per range boundary instead of a per-key comparison, and
        a chain-tail fast path: when a key's newest version is already
        visible at this snapshot (the overwhelmingly common case) the
        per-key binary search is skipped entirely.
        """
        keys = self._store._sorted_keys
        versions = self._store._versions
        block_id = self.block_id
        lo = bisect_left(keys, start)
        hi = bisect_left(keys, end)
        for i in range(lo, hi):
            key = keys[i]
            chain = versions[key]
            version, value = chain[-1]
            if version[0] > block_id:
                if chain[0][0][0] > block_id:
                    continue  # key born after this snapshot
                c_lo, c_hi = 0, len(chain)
                while c_lo < c_hi:
                    mid = (c_lo + c_hi) // 2
                    if chain[mid][0][0] <= block_id:
                        c_lo = mid + 1
                    else:
                        c_hi = mid
                version, value = chain[c_lo - 1]
            if value is not TOMBSTONE and value is not None:
                yield key, value


class MVStore:
    """Append-only multi-versioned store; one version batch per block."""

    def __init__(self) -> None:
        #: key -> list of ((block_id, seq), value), in commit order.
        self._versions: dict[object, list[tuple[Version, object]]] = {}
        self._sorted_keys: list[object] = []
        self.last_committed_block = -1
        #: incremental state-hash accumulator (sum of live entry digests
        #: mod 2**256 — additive so stale contributions can be retracted)
        self._live_digest = 0
        #: key -> digest currently folded into the accumulator
        self._key_digest: dict[object, int] = {}
        #: keys written since the accumulator was last brought up to date
        self._stale_keys: set[object] = set()

    def __contains__(self, key: object) -> bool:
        value, _ = self.get_latest(key)
        return value is not None

    def __len__(self) -> int:
        return sum(
            1
            for chain in self._versions.values()
            if chain[-1][1] is not TOMBSTONE and chain[-1][1] is not None
        )

    def keys(self) -> list[object]:
        return [
            key
            for key in self._sorted_keys
            if (latest := self._versions[key][-1][1]) is not TOMBSTONE
            and latest is not None
        ]

    def load(self, items: dict[object, object], block_id: int = -1) -> None:
        """Bulk-load initial state as a pseudo-block (no snapshot bump)."""
        versions = self._versions
        if not versions:
            # Common case — populating a fresh store: build the chain map
            # in one comprehension and the key directory with one sort.
            self._versions = {
                key: [((block_id, seq), value)]
                for seq, (key, value) in enumerate(items.items())
            }
            self._sorted_keys = sorted(self._versions)
            self._stale_keys.update(self._versions)
            return
        new_keys = []
        for seq, (key, value) in enumerate(items.items()):
            chain = versions.get(key)
            if chain is None:
                versions[key] = [((block_id, seq), value)]
                new_keys.append(key)
            else:
                if chain[-1][0][0] > block_id:
                    # Appending an older version would break the
                    # block-sorted chain invariant that every snapshot
                    # lookup (get *and* scan) binary-searches on.
                    raise ValueError(
                        f"load(block_id={block_id}) after block "
                        f"{chain[-1][0][0]} would break {key!r}'s version order"
                    )
                chain.append(((block_id, seq), value))
        self._stale_keys.update(items)
        self._merge_new_keys(new_keys)

    def get_latest(self, key: object) -> tuple[object | None, Version | None]:
        chain = self._versions.get(key)
        if not chain:
            return None, None
        version, value = chain[-1]
        if value is TOMBSTONE:
            return None, version
        return value, version

    def snapshot(self, block_id: int) -> SnapshotView:
        return SnapshotView(self, block_id)

    def latest_snapshot(self) -> SnapshotView:
        return SnapshotView(self, self.last_committed_block)

    def apply_block(self, block_id: int, writes: list[tuple[object, object]]) -> None:
        """Install a block's writes, in apply order, as one version batch.

        ``writes`` is an ordered list so that within-block apply order
        (which SOV validation observes via ``seq``) is explicit.
        """
        if block_id <= self.last_committed_block:
            raise ValueError(
                f"block {block_id} is not after last committed {self.last_committed_block}"
            )
        versions = self._versions
        stale = self._stale_keys
        new_keys = []
        for seq, (key, value) in enumerate(writes):
            chain = versions.get(key)
            if chain is None:
                versions[key] = [((block_id, seq), value)]
                new_keys.append(key)
            else:
                chain.append(((block_id, seq), value))
            stale.add(key)
        self._merge_new_keys(new_keys)
        self.last_committed_block = block_id

    def _merge_new_keys(self, new_keys: list[object]) -> None:
        """Fold freshly-created keys into the sorted directory: one sort
        per batch instead of one O(n) ``insort`` per key."""
        if not new_keys:
            return
        if self._sorted_keys:
            self._sorted_keys.extend(new_keys)
            self._sorted_keys.sort()
        else:
            new_keys.sort()
            self._sorted_keys = new_keys

    def _append(self, key: object, version: Version, value: object) -> None:
        """Single-key append (kept for ad-hoc use; block paths batch)."""
        chain = self._versions.get(key)
        if chain is None:
            self._versions[key] = [(version, value)]
            insort(self._sorted_keys, key)
        else:
            chain.append((version, value))
        self._stale_keys.add(key)

    def gc(self, keep_after_block: int) -> int:
        """Drop versions strictly older than the latest one at or before
        ``keep_after_block``. Returns the number of versions dropped."""
        dropped = 0
        for chain in self._versions.values():
            cut = 0
            for i, (version, _value) in enumerate(chain):
                if version[0] <= keep_after_block:
                    cut = i
                else:
                    break
            if cut > 0:
                del chain[:cut]
                dropped += cut
        return dropped

    def state_hash(self) -> str:
        """Digest of the latest live state — replica-consistency fingerprint.

        Incremental: only keys written since the previous call are
        re-hashed; each live entry's digest is folded into a running
        accumulator by addition mod 2**256 (AdHash-style — commutative,
        so the result depends only on the live content, never on write
        history, while avoiding the linear malleability of an XOR
        combiner that a Byzantine replica could exploit).
        """
        if self._stale_keys:
            digest = self._live_digest
            key_digest = self._key_digest
            versions = self._versions
            for key in self._stale_keys:
                chain = versions.get(key)
                value = chain[-1][1] if chain else None
                if value is TOMBSTONE or value is None:
                    new = 0
                else:
                    new = _entry_digest(key, value)
                old = key_digest.get(key, 0)
                if new != old:
                    digest = (digest - old + new) % _HASH_MOD
                    if new:
                        key_digest[key] = new
                    else:
                        del key_digest[key]
            self._live_digest = digest
            self._stale_keys.clear()
        return f"{self._live_digest:064x}"

    def state_hash_full(self) -> str:
        """Recompute :meth:`state_hash` from scratch (reference path for
        differential tests; never consults the incremental accumulator)."""
        digest = 0
        for key, chain in self._versions.items():
            value = chain[-1][1]
            if value is not TOMBSTONE and value is not None:
                digest = (digest + _entry_digest(key, value)) % _HASH_MOD
        return f"{digest:064x}"

    def materialize(self) -> dict[object, object]:
        """The latest live state as a plain dict (checkpointing)."""
        state: dict[object, object] = {}
        for key in self._sorted_keys:
            value, _version = self.get_latest(key)
            if value is not None:
                state[key] = value
        return state

    def materialize_at(self, block_id: int) -> dict[object, object]:
        """The live state as of the end of ``block_id``.

        Checkpoints under inter-block parallelism must capture the previous
        block's snapshot too, because the first replayed block simulates
        against it (snapshot lag 2).
        """
        view = self.snapshot(block_id)
        state: dict[object, object] = {}
        for key in self._sorted_keys:
            value, _version = view.get(key)
            if value is not None:
                state[key] = value
        return state
